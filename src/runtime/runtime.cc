#include "runtime/runtime.hh"

#include <algorithm>
#include <limits>

#include "support/format.hh"
#include "support/logging.hh"

namespace asyncclock::runtime {

using trace::EventId;
using trace::HandleId;
using trace::kInvalidId;
using trace::QueueId;
using trace::SendAttrs;
using trace::SendKind;
using trace::SiteId;
using trace::Task;
using trace::ThreadId;
using trace::VarId;

namespace {

/** Sort key of a queued message: (dispatch time, tiebreak). AtFront
 * messages use when=0 and a descending tiebreak, matching Android's
 * head insertion (later at-front posts land ahead of earlier ones). */
using QueueKey = std::pair<std::uint64_t, std::uint64_t>;

struct QueueEntry
{
    EventId event = kInvalidId;
    std::shared_ptr<const Script> body;
    bool async = false;
    /** AtFront messages are head-inserted ahead of any sync barrier,
     * so barriers never stall them (Android MessageQueue behavior —
     * and the operational premise of Rule ATFRONT). */
    bool front = false;
    std::uint64_t when = 0;  ///< earliest dispatch time
};

struct QueueState
{
    QueueId id = kInvalidId;
    bool binder = false;
    std::uint32_t fiber = kInvalidId;        ///< looper fiber index
    std::vector<std::uint32_t> binderFibers;
    std::map<QueueKey, QueueEntry> entries;
    std::uint32_t barriers = 0;
};

struct HandleState
{
    std::uint64_t signals = 0;
    std::vector<std::uint32_t> waiters;  ///< blocked fiber indices
};

struct Fiber
{
    ThreadId thread = kInvalidId;
    bool isLooper = false;
    bool isBinder = false;
    QueueId queue = kInvalidId;

    std::shared_ptr<const Script> script;  ///< worker body
    std::size_t pc = 0;

    EventId curEvent = kInvalidId;
    std::shared_ptr<const Script> evBody;
    std::size_t evPc = 0;
    bool evBegun = false;

    enum class St : std::uint8_t { New, Ready, Blocked, Idle, Done };
    St st = St::New;
    bool began = false;
    std::uint64_t time = 0;   ///< local virtual clock
    std::uint64_t gen = 0;    ///< invalidates stale activations

    std::vector<std::uint32_t> joinWaiters;
};

struct Activation
{
    std::uint64_t time;
    std::uint64_t seq;
    std::uint32_t fiber;
    std::uint64_t gen;

    bool
    operator>(const Activation &other) const
    {
        return std::tie(time, seq) > std::tie(other.time, other.seq);
    }
};

enum class TokenKind : std::uint8_t { Event, Worker, Barrier };

struct TokenSlot
{
    TokenKind kind = TokenKind::Event;
    std::uint32_t value = kInvalidId;  ///< event id / fiber / queue
    /** For events: the queue key, to find and erase the entry. */
    QueueKey key{};
    bool active = false;
};

} // namespace

struct Runtime::Impl
{
    RuntimeConfig cfg;
    /** Entity-id allocation and (in materializing mode) op storage.
     * In sink mode only the entity tables grow — O(entities). */
    trace::Trace trace;
    trace::TraceBuildSink ownSink{trace};
    /** Where operations go: the internal trace by default, the
     * caller's sink in runToSink mode. */
    trace::TraceSink *sink = &ownSink;
    /** Non-null in runToSink mode: mid-run entity declarations are
     * forwarded here so the sink's tables keep pace with the ops. */
    trace::TraceSink *ext = nullptr;

    std::vector<Fiber> fibers;
    std::vector<QueueState> queues;
    std::vector<HandleState> handles;
    std::vector<TokenSlot> tokens;

    std::priority_queue<Activation, std::vector<Activation>,
                        std::greater<Activation>>
        heap;
    std::uint64_t seq = 0;
    std::uint64_t now = 0;
    bool ran = false;
    DeliveryGate *gate = nullptr;

    explicit Impl(RuntimeConfig c) : cfg(c) {}

    Task
    taskOf(const Fiber &f) const
    {
        return f.curEvent != kInvalidId ? Task::event(f.curEvent)
                                        : Task::thread(f.thread);
    }

    // ----- mid-run entity creation ----------------------------------
    // The internal trace stays the id allocator; in sink mode the
    // declaration is forwarded so the sink's tables keep pace.
    EventId
    newEvent()
    {
        EventId e = trace.addEvent();
        if (ext)
            ext->declEvent();
        return e;
    }

    ThreadId
    newWorkerThread(const std::string &name)
    {
        ThreadId t =
            trace.addThread(trace::ThreadKind::Worker, name);
        if (ext) {
            ext->declThread(trace::ThreadKind::Worker, name,
                            kInvalidId);
        }
        return t;
    }

    void
    schedule(std::uint32_t fi, std::uint64_t t)
    {
        Fiber &f = fibers[fi];
        ++f.gen;
        heap.push({std::max(t, now), ++seq, fi, f.gen});
    }

    /** Earliest dispatchable entry of a looper queue honoring sync
     * barriers; entries.end() if nothing can ever dispatch now. Also
     * reports the earliest future eligibility time (or UINT64_MAX). */
    std::map<QueueKey, QueueEntry>::iterator
    pickLooperEntry(QueueState &q, std::uint64_t time,
                    std::uint64_t &nextWake)
    {
        nextWake = std::numeric_limits<std::uint64_t>::max();
        for (auto it = q.entries.begin(); it != q.entries.end(); ++it) {
            if (q.barriers > 0 && !it->second.async &&
                !it->second.front) {
                continue;
            }
            // A gated entry is neither deliverable nor a wakeup
            // source; it is re-offered when the gate state changes
            // (after every event end).
            if (gate && !gate->mayDeliver(q.id, it->second.event))
                continue;
            if (it->second.when <= time)
                return it;
            nextWake = std::min(nextWake, it->second.when);
        }
        return q.entries.end();
    }

    /** Re-evaluate a looper after queue changes. */
    void
    armLooper(QueueState &q)
    {
        Fiber &f = fibers[q.fiber];
        if (f.st == Fiber::St::Done || f.curEvent != kInvalidId ||
            f.st == Fiber::St::Blocked) {
            return;
        }
        std::uint64_t nextWake;
        auto it = pickLooperEntry(q, std::max(now, f.time), nextWake);
        if (it != q.entries.end()) {
            f.st = Fiber::St::Ready;
            schedule(q.fiber, std::max(now, f.time));
        } else if (nextWake !=
                   std::numeric_limits<std::uint64_t>::max()) {
            f.st = Fiber::St::Ready;
            schedule(q.fiber, std::max(nextWake, now));
        } else {
            f.st = Fiber::St::Idle;
            ++f.gen;  // cancel stale wakeups
        }
    }

    /** Hand FIFO binder entries to free binder threads. */
    void
    armBinder(QueueState &q)
    {
        while (!q.entries.empty()) {
            std::uint32_t freeFiber = kInvalidId;
            for (std::uint32_t bf : q.binderFibers) {
                Fiber &f = fibers[bf];
                if (f.curEvent == kInvalidId &&
                    f.st != Fiber::St::Done &&
                    f.st != Fiber::St::Blocked) {
                    freeFiber = bf;
                    break;
                }
            }
            if (freeFiber == kInvalidId)
                return;
            auto it = q.entries.begin();
            if (gate) {
                // First ungated entry (the gate reorders FIFO — that
                // is the point of a replay flip).
                while (it != q.entries.end() &&
                       !gate->mayDeliver(q.id, it->second.event)) {
                    ++it;
                }
                if (it == q.entries.end())
                    return;
            }
            Fiber &f = fibers[freeFiber];
            f.curEvent = it->second.event;
            f.evBody = it->second.body;
            f.evPc = 0;
            f.evBegun = false;
            deactivateToken(it->second.event);
            q.entries.erase(it);
            f.st = Fiber::St::Ready;
            schedule(freeFiber, std::max(now, f.time));
        }
    }

    /** An event left its queue: its remove-token (if any) goes dead. */
    void
    deactivateToken(EventId event)
    {
        for (auto &slot : tokens) {
            if (slot.active && slot.kind == TokenKind::Event &&
                slot.value == event) {
                slot.active = false;
            }
        }
    }

    void
    wake(std::uint32_t fi, std::uint64_t t)
    {
        Fiber &f = fibers[fi];
        acAssert(f.st == Fiber::St::Blocked, "waking non-blocked fiber");
        f.st = Fiber::St::Ready;
        schedule(fi, std::max(t, f.time));
    }

    void finishWorker(std::uint32_t fi);
    void finishEvent(std::uint32_t fi);
    void executeStep(std::uint32_t fi);
    void processActivation(const Activation &act);
    void drainChecksAndShutdown();
};

Runtime::Runtime(RuntimeConfig cfg) : impl_(new Impl(cfg)) {}
Runtime::~Runtime() = default;

trace::QueueId
Runtime::addLooper(const std::string &name)
{
    acAssert(!impl_->ran, "runtime already ran");
    QueueId q = impl_->trace.addQueue(trace::QueueKind::Looper, name);
    ThreadId t = impl_->trace.addThread(trace::ThreadKind::Looper,
                                        name + ".looper", q);
    impl_->trace.bindLooper(q, t);

    Fiber f;
    f.thread = t;
    f.isLooper = true;
    f.queue = q;
    impl_->fibers.push_back(std::move(f));

    QueueState qs;
    qs.id = q;
    qs.fiber = static_cast<std::uint32_t>(impl_->fibers.size() - 1);
    impl_->queues.resize(std::max<std::size_t>(impl_->queues.size(),
                                               q + 1));
    impl_->queues[q] = std::move(qs);
    return q;
}

trace::QueueId
Runtime::addBinderPool(const std::string &name, unsigned threads)
{
    acAssert(!impl_->ran, "runtime already ran");
    acAssert(threads > 0, "binder pool needs at least one thread");
    QueueId q = impl_->trace.addQueue(trace::QueueKind::Binder, name);
    QueueState qs;
    qs.id = q;
    qs.binder = true;
    for (unsigned i = 0; i < threads; ++i) {
        ThreadId t = impl_->trace.addThread(
            trace::ThreadKind::Binder,
            strf("%s.binder%u", name.c_str(), i), q);
        Fiber f;
        f.thread = t;
        f.isBinder = true;
        f.queue = q;
        impl_->fibers.push_back(std::move(f));
        qs.binderFibers.push_back(
            static_cast<std::uint32_t>(impl_->fibers.size() - 1));
    }
    impl_->queues.resize(std::max<std::size_t>(impl_->queues.size(),
                                               q + 1));
    impl_->queues[q] = std::move(qs);
    return q;
}

trace::VarId
Runtime::var(const std::string &name, trace::SeedLabel label)
{
    return impl_->trace.addVar(name, label);
}

trace::HandleId
Runtime::handle(const std::string &name)
{
    HandleId h = impl_->trace.addHandle(name);
    impl_->handles.resize(h + 1);
    return h;
}

trace::SiteId
Runtime::site(const std::string &name, trace::Frame frame,
              std::uint32_t commGroup)
{
    return impl_->trace.addSite(name, frame, commGroup);
}

Token
Runtime::token()
{
    impl_->tokens.emplace_back();
    return static_cast<Token>(impl_->tokens.size() - 1);
}

void
Runtime::spawnWorker(const std::string &name, Script script,
                     std::uint64_t startMs)
{
    acAssert(!impl_->ran, "runtime already ran");
    ThreadId t =
        impl_->trace.addThread(trace::ThreadKind::Worker, name);
    Fiber f;
    f.thread = t;
    f.script = std::make_shared<const Script>(std::move(script));
    f.time = startMs;
    impl_->fibers.push_back(std::move(f));
    // Root workers are scheduled when run() starts.
}

trace::ThreadId
Runtime::looperThreadOf(trace::QueueId queue) const
{
    return impl_->trace.queue(queue).looper;
}

void
Runtime::setDeliveryGate(DeliveryGate *gate)
{
    acAssert(!impl_->ran, "runtime already ran");
    impl_->gate = gate;
}

void
Runtime::Impl::finishWorker(std::uint32_t fi)
{
    Fiber &f = fibers[fi];
    sink->threadEnd(f.thread, f.time);
    f.st = Fiber::St::Done;
    for (std::uint32_t w : f.joinWaiters)
        wake(w, f.time);
    f.joinWaiters.clear();
}

void
Runtime::Impl::finishEvent(std::uint32_t fi)
{
    Fiber &f = fibers[fi];
    const EventId ended = f.curEvent;
    sink->eventEnd(ended, f.time);
    f.curEvent = kInvalidId;
    f.evBody.reset();
    f.evPc = 0;
    f.evBegun = false;
    QueueState &q = queues[f.queue];
    if (f.isLooper) {
        armLooper(q);
    } else {
        f.st = Fiber::St::Idle;
        ++f.gen;
        armBinder(q);
    }
    if (gate) {
        // The gate may release deferred entries on any event end, so
        // every queue gets re-offered its work.
        gate->onEventEnd(ended);
        for (QueueState &other : queues) {
            if (other.id == kInvalidId)
                continue;
            if (other.binder)
                armBinder(other);
            else
                armLooper(other);
        }
    }
}

void
Runtime::Impl::executeStep(std::uint32_t fi)
{
    Fiber &f = fibers[fi];
    const bool inEvent = f.curEvent != kInvalidId;
    const Script &script = inEvent ? *f.evBody : *f.script;
    std::size_t &pc = inEvent ? f.evPc : f.pc;

    if (pc >= script.steps().size()) {
        if (inEvent)
            finishEvent(fi);
        else
            finishWorker(fi);
        return;
    }

    const Step &step = script.steps()[pc];
    const Task task = taskOf(f);

    switch (step.kind) {
      case Step::Kind::Read:
        sink->read(task, step.a, step.b, f.time);
        break;
      case Step::Kind::Write:
        sink->write(task, step.a, step.b, f.time);
        break;
      case Step::Kind::Sleep:
        ++pc;
        f.time += step.amount;
        schedule(fi, f.time);
        return;
      case Step::Kind::Post:
        {
            QueueId qid = step.a;
            acAssert(qid < queues.size() &&
                         queues[qid].id != kInvalidId,
                     "post to unknown queue");
            QueueState &q = queues[qid];
            SendAttrs attrs;
            attrs.kind = step.opts.kind;
            attrs.async = step.opts.async;
            std::uint64_t when = f.time;
            switch (step.opts.kind) {
              case SendKind::Delayed:
                // Table 1 compares Delayed events by *delay* ("FIFO
                // events are Delayed events with zero delay"); the
                // absolute dispatch time is separate.
                attrs.time = step.opts.delayMs;
                when = f.time + step.opts.delayMs;
                break;
              case SendKind::AtTime:
                attrs.time = step.opts.atTime;
                when = step.opts.atTime;
                break;
              case SendKind::AtFront:
                attrs.time = 0;
                when = 0;
                break;
            }
            if (q.binder) {
                acAssert(attrs.kind == SendKind::Delayed &&
                             attrs.time == 0,
                         "binder queues accept only plain FIFO posts");
            }
            EventId e = newEvent();
            sink->send(task, qid, e, attrs, f.time);

            QueueEntry entry;
            entry.event = e;
            entry.body = step.body;
            entry.async = attrs.async;
            QueueKey key;
            if (attrs.kind == SendKind::AtFront) {
                entry.front = true;
                entry.when = 0;
                key = {0, std::numeric_limits<std::uint64_t>::max() -
                              ++seq};
            } else {
                entry.when = when;
                key = {when, ++seq};
            }
            q.entries.emplace(key, std::move(entry));
            if (step.token != kInvalidId) {
                TokenSlot &slot = tokens[step.token];
                slot.kind = TokenKind::Event;
                slot.value = e;
                slot.key = key;
                slot.active = true;
            }
            if (q.binder)
                armBinder(q);
            else
                armLooper(q);
        }
        break;
      case Step::Kind::Remove:
        {
            TokenSlot &slot = tokens[step.token];
            if (slot.active && slot.kind == TokenKind::Event) {
                // Still queued: remove it (Handler.removeMessages).
                QueueState *owner = nullptr;
                for (auto &q : queues) {
                    auto it = q.entries.find(slot.key);
                    if (it != q.entries.end() &&
                        it->second.event == slot.value) {
                        owner = &q;
                        q.entries.erase(it);
                        break;
                    }
                }
                if (owner) {
                    sink->removeEvent(task, slot.value, f.time);
                    slot.active = false;
                }
            }
        }
        break;
      case Step::Kind::Fork:
        {
            ThreadId t = newWorkerThread(step.name);
            const std::uint64_t forkTime = f.time;
            sink->fork(task, t, forkTime);
            Fiber child;
            child.thread = t;
            child.script = step.body;
            child.time = forkTime;
            child.st = Fiber::St::Ready;
            // push_back may reallocate `fibers`; `f` (and the `pc`
            // reference) are re-acquired after the switch.
            fibers.push_back(std::move(child));
            std::uint32_t ci =
                static_cast<std::uint32_t>(fibers.size() - 1);
            if (step.token != kInvalidId) {
                TokenSlot &slot = tokens[step.token];
                slot.kind = TokenKind::Worker;
                slot.value = ci;
                slot.active = true;
            }
            schedule(ci, forkTime);
        }
        break;
      case Step::Kind::Join:
        {
            TokenSlot &slot = tokens[step.token];
            acAssert(slot.active && slot.kind == TokenKind::Worker,
                     "join on a token that names no worker");
            Fiber &child = fibers[slot.value];
            if (child.st != Fiber::St::Done) {
                f.st = Fiber::St::Blocked;
                child.joinWaiters.push_back(fi);
                return;  // pc unchanged; re-run when woken
            }
            sink->join(task, child.thread, f.time);
        }
        break;
      case Step::Kind::Signal:
        {
            sink->signal(task, step.a, f.time);
            HandleState &h = handles[step.a];
            ++h.signals;
            for (std::uint32_t w : h.waiters)
                wake(w, f.time);
            h.waiters.clear();
        }
        break;
      case Step::Kind::Await:
        {
            HandleState &h = handles[step.a];
            if (h.signals == 0) {
                f.st = Fiber::St::Blocked;
                h.waiters.push_back(fi);
                return;  // pc unchanged
            }
            sink->wait(task, step.a, f.time);
        }
        break;
      case Step::Kind::PostBarrier:
        {
            QueueState &q = queues[step.a];
            acAssert(!q.binder, "barriers only apply to looper queues");
            ++q.barriers;
            if (step.token != kInvalidId) {
                TokenSlot &slot = tokens[step.token];
                slot.kind = TokenKind::Barrier;
                slot.value = step.a;
                slot.active = true;
            }
        }
        break;
      case Step::Kind::RemoveBarrier:
        {
            TokenSlot &slot = tokens[step.token];
            acAssert(slot.active && slot.kind == TokenKind::Barrier,
                     "removeBarrier on a token that names no barrier");
            QueueState &q = queues[slot.value];
            acAssert(q.barriers > 0, "barrier underflow");
            --q.barriers;
            slot.active = false;
            armLooper(q);
        }
        break;
    }

    // Re-acquire: the Fork case may have reallocated `fibers`,
    // invalidating `f` and `pc`.
    Fiber &f2 = fibers[fi];
    ++(inEvent ? f2.evPc : f2.pc);
    f2.time += cfg.stepCostMs;
    schedule(fi, f2.time);
}

void
Runtime::Impl::processActivation(const Activation &act)
{
    Fiber &f = fibers[act.fiber];
    if (act.gen != f.gen || f.st == Fiber::St::Done ||
        f.st == Fiber::St::Blocked) {
        return;
    }
    now = std::max(now, act.time);
    f.time = std::max(f.time, act.time);

    if (!f.began) {
        sink->threadBegin(f.thread, f.time);
        f.began = true;
    }

    if ((f.isLooper || f.isBinder) && f.curEvent == kInvalidId) {
        if (f.isLooper) {
            QueueState &q = queues[f.queue];
            std::uint64_t nextWake;
            auto it = pickLooperEntry(q, f.time, nextWake);
            if (it == q.entries.end()) {
                armLooper(q);
                return;
            }
            f.curEvent = it->second.event;
            f.evBody = it->second.body;
            f.evPc = 0;
            f.evBegun = false;
            deactivateToken(it->second.event);
            q.entries.erase(it);
        } else {
            // Binder fiber woke with no assigned event: spurious.
            f.st = Fiber::St::Idle;
            return;
        }
    }

    if (f.curEvent != kInvalidId && !f.evBegun) {
        sink->eventBegin(f.curEvent, f.thread, f.time);
        f.evBegun = true;
        f.time += cfg.stepCostMs;
        schedule(act.fiber, f.time);
        return;
    }

    executeStep(act.fiber);
}

void
Runtime::Impl::drainChecksAndShutdown()
{
    for (std::uint32_t fi = 0; fi < fibers.size(); ++fi) {
        Fiber &f = fibers[fi];
        if (f.st == Fiber::St::Blocked || f.curEvent != kInvalidId) {
            fatal(strf("deadlock: thread %u blocked at end of "
                       "simulation",
                       f.thread));
        }
        if (!f.isLooper && !f.isBinder && f.began &&
            f.st != Fiber::St::Done) {
            fatal(strf("worker thread %u never finished", f.thread));
        }
    }
    // Quit loopers and binder threads: their ends come after every
    // event they executed (Rule LOOPEND's premise).
    for (auto &f : fibers) {
        if ((f.isLooper || f.isBinder) && f.began &&
            f.st != Fiber::St::Done) {
            sink->threadEnd(f.thread, now);
            f.st = Fiber::St::Done;
        }
    }
}

void
Runtime::runCommon()
{
    Impl &im = *impl_;
    acAssert(!im.ran, "Runtime::run is single-shot");
    im.ran = true;

    // Schedule all root fibers (creation order).
    for (std::uint32_t fi = 0; fi < im.fibers.size(); ++fi) {
        Fiber &f = im.fibers[fi];
        f.st = Fiber::St::Ready;
        im.schedule(fi, f.time);
    }

    while (!im.heap.empty()) {
        Activation act = im.heap.top();
        im.heap.pop();
        im.processActivation(act);
    }

    im.drainChecksAndShutdown();

    info_.endTimeMs = im.now;
    info_.undelivered = 0;
    for (auto &q : im.queues)
        info_.undelivered += q.entries.size();
}

trace::Trace
Runtime::run()
{
    runCommon();
    return std::move(impl_->trace);
}

RunInfo
Runtime::runToSink(trace::TraceSink &sink)
{
    Impl &im = *impl_;
    acAssert(!im.ran, "Runtime::run is single-shot");
    trace::replayEntities(im.trace, sink);
    im.sink = &sink;
    im.ext = &sink;
    runCommon();
    return info_;
}

} // namespace asyncclock::runtime
