/**
 * @file
 * Task-graph runtime: the async-dialect counterpart of Runtime.
 *
 * Simulates a structured-concurrency executor pool (coroutine-style
 * async/await) and produces an async-dialect trace::Trace
 * (trace/trace.hh). The model:
 *
 *  - A main driver thread runs the root body; a fixed pool of
 *    executor threads runs tasks.
 *  - `spawn` makes a declared task runnable; it starts (EventBegin on
 *    whichever executor frees up first) without ordering against its
 *    siblings — that unordered start is where seeded races live.
 *  - `await` of an unsettled task parks the continuation and releases
 *    the executor (cooperative suspension, so a one-executor pool
 *    cannot deadlock on a parent awaiting its child).
 *  - Every spawning body owns one scope; when the body finishes, it
 *    implicitly waits for its unsettled children, then emits ScopeEnd
 *    before its own end — structured concurrency's guarantee that no
 *    task outlives its scope.
 *  - `cancel` settles a task that has not started yet (TaskCancel op);
 *    cancelling a task that already started or settled is a silent
 *    no-op, as in cooperative cancellation.
 *
 * Deterministic: a discrete-event loop keyed on (virtual time, FIFO
 * sequence), no randomness. The produced trace passes
 * Trace::validate() for the async dialect by construction.
 */

#ifndef ASYNCCLOCK_RUNTIME_TASKGRAPH_HH
#define ASYNCCLOCK_RUNTIME_TASKGRAPH_HH

#include <cstdint>
#include <deque>
#include <queue>
#include <string>
#include <vector>

#include "obs/obs.hh"
#include "trace/trace.hh"

namespace asyncclock::runtime {

struct TaskGraphConfig
{
    /** Virtual time consumed by each non-sleep step (ms). */
    std::uint64_t stepCostMs = 1;
    /** Executor pool size. Tasks wait for a free executor to start. */
    std::uint32_t executors = 2;
    /** With metrics: taskgraph.* counters (tasks spawned / settled /
     * cancelled) and gauges (parked actors, free executors, peak
     * ready-queue depth). Plain atomic metrics, so their values
     * outlive the graph. */
    obs::ObsContext obs{};
};

/** Summary of one task-graph run. */
struct TaskGraphRunInfo
{
    /** Final virtual time (ms). */
    std::uint64_t endTimeMs = 0;
    /** Tasks settled by a TaskCancel (never ran). */
    std::uint64_t cancelled = 0;
};

/**
 * Builder + simulator. Usage: declare vars/sites/tasks, script each
 * task body (and the main body, actor kMain) with read/write/sleep/
 * spawn/await/cancel steps, then run() once to obtain the trace.
 */
class TaskGraph
{
  public:
    using TaskRef = std::uint32_t;
    /** The main driver body (a thread, not a task). */
    static constexpr TaskRef kMain = 0xFFFFFFFFu;

    explicit TaskGraph(TaskGraphConfig cfg = {});

    // ----- entity declaration -------------------------------------
    trace::VarId var(std::string name,
                     trace::SeedLabel label = trace::SeedLabel::None);
    trace::SiteId site(std::string name,
                       trace::Frame frame = trace::Frame::User,
                       std::uint32_t commGroup = trace::kInvalidId);
    /** Declare a task node; script its body with the step builders. */
    TaskRef task(std::string name);

    // ----- body steps (actor = kMain or a TaskRef) ----------------
    void read(TaskRef actor, trace::VarId v, trace::SiteId s);
    void write(TaskRef actor, trace::VarId v, trace::SiteId s);
    /** Advance the actor's virtual clock without emitting an op. */
    void sleepFor(TaskRef actor, std::uint64_t ms);
    /** Make @p child runnable inside @p actor's scope. */
    void spawn(TaskRef actor, TaskRef child);
    /** Join @p child's settle time (parks until it settles). */
    void await(TaskRef actor, TaskRef child);
    /** Cancel @p child if it has not started yet; else no-op. */
    void cancel(TaskRef actor, TaskRef child);

    /** Simulate and return the async-dialect trace. Call once. */
    trace::Trace run(TaskGraphRunInfo *info = nullptr);

  private:
    struct Step
    {
        enum class Kind : std::uint8_t {
            Read,
            Write,
            Sleep,
            Spawn,
            Await,
            Cancel,
        };
        Kind kind;
        std::uint32_t a = trace::kInvalidId;  ///< var / task ref
        std::uint32_t b = trace::kInvalidId;  ///< site
        std::uint64_t ms = 0;                 ///< sleep duration
    };

    struct VarSpec
    {
        std::string name;
        trace::SeedLabel label;
    };
    struct SiteSpec
    {
        std::string name;
        trace::Frame frame;
        std::uint32_t commGroup;
    };

    enum class Phase : std::uint8_t {
        Unspawned,
        Pending,      ///< spawned, waiting for an executor
        Running,
        AwaitParked,  ///< suspended on an unsettled child
        ScopeParked,  ///< body done, waiting for open children
        Settled,      ///< finished or cancelled
    };

    /** Why a ready-queue entry is runnable. */
    enum class Resume : std::uint8_t {
        Start,        ///< fresh task: emit EventBegin
        AfterAwait,   ///< continuation: emit TaskAwait
        CloseScope,   ///< continuation: emit ScopeEnd + end
    };

    struct ReadyEntry
    {
        TaskRef task;
        Resume resume;
        TaskRef child = kMain;  ///< awaited child (AfterAwait)
    };

    /** One scheduled resumption of an actor. Min-ordered on (time,
     * seq) so op emission is globally time-sorted and deterministic. */
    struct SchedEntry
    {
        std::uint64_t time;
        std::uint64_t seq;
        TaskRef actor;

        bool operator>(const SchedEntry &o) const
        {
            return time != o.time ? time > o.time : seq > o.seq;
        }
    };

    /** One scripted body: the main driver (kMain) or a task. */
    struct Body
    {
        std::string name;
        std::vector<Step> steps;
        bool spawns = false;  ///< owns a scope

        // Run-time state.
        Phase phase = Phase::Unspawned;
        std::uint32_t pc = 0;
        trace::EventId event = trace::kInvalidId;  ///< tasks only
        trace::HandleId scope = trace::kInvalidId;
        /** Scope this body was spawned into (tasks only). */
        TaskRef parent = kMain;
        std::uint32_t openChildren = 0;
        TaskRef awaitedChild = kMain;
        /** Actors parked in `await` on this task. */
        std::vector<TaskRef> waiters;
    };

    Body &body(TaskRef actor)
    {
        return actor == kMain ? main_ : nodes_[actor];
    }
    void addStep(TaskRef actor, Step step);

    void schedule(TaskRef actor, std::uint64_t time);
    void tryDispatch(std::uint64_t now);
    /** Run one step of @p actor at @p now. */
    void stepActor(TaskRef actor, std::uint64_t now);
    void finishBody(TaskRef actor, std::uint64_t now);
    /** Emit ScopeEnd (if the body owns a scope) and the end op, then
     * settle. */
    void closeOut(TaskRef actor, std::uint64_t now);
    void settle(TaskRef actor, std::uint64_t now);
    void parkOnChild(TaskRef actor, TaskRef child);
    void releaseExecutor(TaskRef actor, std::uint64_t now);
    trace::Task actorTask(TaskRef actor) const;
    /** Track the peak ready-queue depth (call after a push). */
    void noteReadyDepth();
    /** Push the pool/park gauges into the registry, if attached. */
    void obsSync();

    TaskGraphConfig cfg_;
    std::vector<VarSpec> varSpecs_;
    std::vector<SiteSpec> siteSpecs_;
    std::vector<Body> nodes_;
    Body main_;
    bool ran_ = false;

    // Run-time state (valid during run()).
    trace::Trace *tr_ = nullptr;
    trace::ThreadId mainThread_ = trace::kInvalidId;
    std::vector<trace::ThreadId> executorThreads_;
    std::deque<trace::ThreadId> freeExecutors_;
    /** Executor each running task holds (kInvalidId when parked). */
    std::vector<trace::ThreadId> executorOf_;
    std::deque<ReadyEntry> ready_;
    std::priority_queue<SchedEntry, std::vector<SchedEntry>,
                        std::greater<SchedEntry>>
        sched_;
    std::uint64_t seq_ = 0;

    std::uint64_t cancelled_ = 0;
    std::uint64_t endTime_ = 0;

    // Observability (null unless cfg_.obs.metrics; resolved once in
    // run()).
    obs::Counter *obsSpawned_ = nullptr;
    obs::Counter *obsSettled_ = nullptr;
    obs::Counter *obsCancelled_ = nullptr;
    obs::Gauge *obsParked_ = nullptr;
    obs::Gauge *obsExecFree_ = nullptr;
    obs::Gauge *obsReadyPeak_ = nullptr;
    /** Actors currently parked (await- or scope-parked). */
    std::int64_t parkedNow_ = 0;
    std::size_t readyPeak_ = 0;
};

} // namespace asyncclock::runtime

#endif // ASYNCCLOCK_RUNTIME_TASKGRAPH_HH
