/**
 * @file
 * Scripts: the programs executed by simulated threads and events.
 *
 * The runtime executes *scripts* — flat step lists — rather than host
 * closures, because simulated tasks must be able to block (wait on a
 * handle, join a thread, sleep on the virtual clock) and resume, and
 * because the workload generator needs to synthesize program behavior
 * data-style. A fluent builder keeps hand-written examples readable:
 *
 *   Script body = Script()
 *       .read(cfg, siteLoad)
 *       .post(mainQueue, Script().write(ui, siteDraw))
 *       .signal(done);
 */

#ifndef ASYNCCLOCK_RUNTIME_SCRIPT_HH
#define ASYNCCLOCK_RUNTIME_SCRIPT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/op.hh"

namespace asyncclock::runtime {

/** Token naming a posted event, forked thread, or barrier so later
 * steps can remove/join/clear it. Allocated by Runtime::token(). */
using Token = std::uint32_t;

/** Queueing options for Script::post (Android Handler semantics). */
struct PostOpts
{
    trace::SendKind kind = trace::SendKind::Delayed;
    /** Delay in virtual ms (Delayed only; 0 == plain FIFO post). */
    std::uint64_t delayMs = 0;
    /** Absolute virtual dispatch time (AtTime only). */
    std::uint64_t atTime = 0;
    /** Android Message.setAsynchronous(true). */
    bool async = false;

    static PostOpts
    delayed(std::uint64_t ms, bool async = false)
    {
        return {trace::SendKind::Delayed, ms, 0, async};
    }

    static PostOpts
    at(std::uint64_t time, bool async = false)
    {
        return {trace::SendKind::AtTime, 0, time, async};
    }

    static PostOpts
    atFront(bool async = false)
    {
        return {trace::SendKind::AtFront, 0, 0, async};
    }
};

class Script;

/** One step of a script. Built via the Script fluent API. */
struct Step
{
    enum class Kind : std::uint8_t {
        Read,           ///< rd(var) at site
        Write,          ///< wr(var) at site
        Post,           ///< send an event whose body is `body`
        Remove,         ///< remove the queued event named by `token`
        Fork,           ///< fork a worker running `body`
        Join,           ///< join the worker named by `token`
        Signal,         ///< signal(handle)
        Await,          ///< wait(handle); blocks until signaled
        Sleep,          ///< advance the virtual clock by `amount` ms
        PostBarrier,    ///< install a sync barrier on a looper queue
        RemoveBarrier,  ///< remove the barrier named by `token`
    };

    Kind kind{};
    std::uint32_t a = trace::kInvalidId;  ///< var/handle/queue id
    std::uint32_t b = trace::kInvalidId;  ///< site id (read/write)
    std::uint64_t amount = 0;             ///< sleep duration
    PostOpts opts{};
    Token token = trace::kInvalidId;
    std::shared_ptr<const Script> body;   ///< post/fork payload
    std::string name;                     ///< forked thread name
};

/**
 * A straight-line program for a simulated task. Steps execute one per
 * scheduler activation; each non-sleep step consumes the runtime's
 * configured per-step cost of virtual time.
 */
class Script
{
  public:
    Script() = default;

    Script &
    read(trace::VarId var, trace::SiteId site)
    {
        Step s;
        s.kind = Step::Kind::Read;
        s.a = var;
        s.b = site;
        steps_.push_back(std::move(s));
        return *this;
    }

    Script &
    write(trace::VarId var, trace::SiteId site)
    {
        Step s;
        s.kind = Step::Kind::Write;
        s.a = var;
        s.b = site;
        steps_.push_back(std::move(s));
        return *this;
    }

    /** Post an event executing @p body to @p queue. Pass a token from
     * Runtime::token() to be able to remove it later. */
    Script &
    post(trace::QueueId queue, Script body, PostOpts opts = {},
         Token token = trace::kInvalidId)
    {
        Step s;
        s.kind = Step::Kind::Post;
        s.a = queue;
        s.opts = opts;
        s.token = token;
        s.body = std::make_shared<const Script>(std::move(body));
        steps_.push_back(std::move(s));
        return *this;
    }

    /** Remove the still-queued event previously posted with @p token
     * (no-op if it already started, like Handler.removeMessages). */
    Script &
    remove(Token token)
    {
        Step s;
        s.kind = Step::Kind::Remove;
        s.token = token;
        steps_.push_back(std::move(s));
        return *this;
    }

    /** Fork a worker thread running @p body. */
    Script &
    fork(Token token, std::string name, Script body)
    {
        Step s;
        s.kind = Step::Kind::Fork;
        s.token = token;
        s.name = std::move(name);
        s.body = std::make_shared<const Script>(std::move(body));
        steps_.push_back(std::move(s));
        return *this;
    }

    /** Block until the worker forked with @p token terminates. */
    Script &
    join(Token token)
    {
        Step s;
        s.kind = Step::Kind::Join;
        s.token = token;
        steps_.push_back(std::move(s));
        return *this;
    }

    Script &
    signal(trace::HandleId handle)
    {
        Step s;
        s.kind = Step::Kind::Signal;
        s.a = handle;
        steps_.push_back(std::move(s));
        return *this;
    }

    /** Block until @p handle has been signaled at least once (latch
     * semantics); emits the wait operation when it passes. */
    Script &
    await(trace::HandleId handle)
    {
        Step s;
        s.kind = Step::Kind::Await;
        s.a = handle;
        steps_.push_back(std::move(s));
        return *this;
    }

    Script &
    sleep(std::uint64_t ms)
    {
        Step s;
        s.kind = Step::Kind::Sleep;
        s.amount = ms;
        steps_.push_back(std::move(s));
        return *this;
    }

    /** Install a sync barrier: sync messages on @p queue stall until
     * the barrier is removed; async messages keep flowing. */
    Script &
    postBarrier(trace::QueueId queue, Token token)
    {
        Step s;
        s.kind = Step::Kind::PostBarrier;
        s.a = queue;
        s.token = token;
        steps_.push_back(std::move(s));
        return *this;
    }

    Script &
    removeBarrier(Token token)
    {
        Step s;
        s.kind = Step::Kind::RemoveBarrier;
        s.token = token;
        steps_.push_back(std::move(s));
        return *this;
    }

    /** Append all steps of @p other. */
    Script &
    then(const Script &other)
    {
        steps_.insert(steps_.end(), other.steps_.begin(),
                      other.steps_.end());
        return *this;
    }

    /** Append one pre-built step (used by the workload generator to
     * re-pace scripts). */
    Script &
    append(const Step &step)
    {
        steps_.push_back(step);
        return *this;
    }

    const std::vector<Step> &steps() const { return steps_; }
    bool empty() const { return steps_.empty(); }

  private:
    std::vector<Step> steps_;
};

} // namespace asyncclock::runtime

#endif // ASYNCCLOCK_RUNTIME_SCRIPT_HH
