#include "runtime/taskgraph.hh"

#include <algorithm>

#include "support/format.hh"
#include "support/logging.hh"

namespace asyncclock::runtime {

using trace::kInvalidId;

TaskGraph::TaskGraph(TaskGraphConfig cfg) : cfg_(cfg)
{
    if (cfg_.executors == 0)
        panic("TaskGraph: executor pool must be non-empty");
    main_.name = "main";
}

trace::VarId
TaskGraph::var(std::string name, trace::SeedLabel label)
{
    varSpecs_.push_back({std::move(name), label});
    return static_cast<trace::VarId>(varSpecs_.size() - 1);
}

trace::SiteId
TaskGraph::site(std::string name, trace::Frame frame,
                std::uint32_t commGroup)
{
    siteSpecs_.push_back({std::move(name), frame, commGroup});
    return static_cast<trace::SiteId>(siteSpecs_.size() - 1);
}

TaskGraph::TaskRef
TaskGraph::task(std::string name)
{
    Body b;
    b.name = std::move(name);
    nodes_.push_back(std::move(b));
    return static_cast<TaskRef>(nodes_.size() - 1);
}

void
TaskGraph::addStep(TaskRef actor, Step step)
{
    acAssert(!ran_, "TaskGraph: script mutated after run()");
    if (step.kind == Step::Kind::Spawn)
        body(actor).spawns = true;
    body(actor).steps.push_back(step);
}

void
TaskGraph::read(TaskRef actor, trace::VarId v, trace::SiteId s)
{
    addStep(actor, {Step::Kind::Read, v, s, 0});
}

void
TaskGraph::write(TaskRef actor, trace::VarId v, trace::SiteId s)
{
    addStep(actor, {Step::Kind::Write, v, s, 0});
}

void
TaskGraph::sleepFor(TaskRef actor, std::uint64_t ms)
{
    addStep(actor, {Step::Kind::Sleep, kInvalidId, kInvalidId, ms});
}

void
TaskGraph::spawn(TaskRef actor, TaskRef child)
{
    acAssert(child < nodes_.size(), "TaskGraph: spawn of unknown task");
    addStep(actor, {Step::Kind::Spawn, child, kInvalidId, 0});
}

void
TaskGraph::await(TaskRef actor, TaskRef child)
{
    acAssert(child < nodes_.size(), "TaskGraph: await of unknown task");
    addStep(actor, {Step::Kind::Await, child, kInvalidId, 0});
}

void
TaskGraph::cancel(TaskRef actor, TaskRef child)
{
    acAssert(child < nodes_.size(),
             "TaskGraph: cancel of unknown task");
    addStep(actor, {Step::Kind::Cancel, child, kInvalidId, 0});
}

trace::Task
TaskGraph::actorTask(TaskRef actor) const
{
    return actor == kMain ? trace::Task::thread(mainThread_)
                          : trace::Task::event(nodes_[actor].event);
}

void
TaskGraph::schedule(TaskRef actor, std::uint64_t time)
{
    sched_.push({time, seq_++, actor});
}

void
TaskGraph::releaseExecutor(TaskRef actor, std::uint64_t now)
{
    (void)now;
    trace::ThreadId exec = executorOf_[actor];
    acAssert(exec != kInvalidId,
             "TaskGraph: releasing an executor the task does not hold");
    executorOf_[actor] = kInvalidId;
    freeExecutors_.push_back(exec);
}

void
TaskGraph::noteReadyDepth()
{
    if (ready_.size() > readyPeak_)
        readyPeak_ = ready_.size();
}

void
TaskGraph::obsSync()
{
    if (!obsParked_)
        return;
    obsParked_->set(parkedNow_);
    obsExecFree_->set(
        static_cast<std::int64_t>(freeExecutors_.size()));
    obsReadyPeak_->set(static_cast<std::int64_t>(readyPeak_));
}

void
TaskGraph::parkOnChild(TaskRef actor, TaskRef child)
{
    Body &b = body(actor);
    b.phase = Phase::AwaitParked;
    b.awaitedChild = child;
    nodes_[child].waiters.push_back(actor);
    ++parkedNow_;
}

void
TaskGraph::settle(TaskRef actor, std::uint64_t now)
{
    Body &b = nodes_[actor];
    b.phase = Phase::Settled;
    if (obsSettled_)
        obsSettled_->inc();

    Body &parent = body(b.parent);
    acAssert(parent.openChildren > 0,
             "TaskGraph: scope bookkeeping underflow");
    if (--parent.openChildren == 0 &&
        parent.phase == Phase::ScopeParked) {
        if (b.parent == kMain)
            schedule(kMain, now);
        else
            ready_.push_back({b.parent, Resume::CloseScope, kMain});
    }

    for (TaskRef w : b.waiters) {
        if (w == kMain)
            schedule(kMain, now);
        else
            ready_.push_back({w, Resume::AfterAwait, actor});
    }
    b.waiters.clear();
    noteReadyDepth();
}

void
TaskGraph::closeOut(TaskRef actor, std::uint64_t now)
{
    Body &b = body(actor);
    if (b.scope != kInvalidId)
        tr_->scopeEnd(actorTask(actor), b.scope, now);
    if (actor == kMain) {
        tr_->threadEnd(mainThread_, now);
        b.phase = Phase::Settled;
    } else {
        tr_->eventEnd(b.event, now);
        releaseExecutor(actor, now);
        settle(actor, now);
    }
    endTime_ = std::max(endTime_, now);
    tryDispatch(now);
}

void
TaskGraph::finishBody(TaskRef actor, std::uint64_t now)
{
    Body &b = body(actor);
    if (b.openChildren > 0) {
        // Structured concurrency: the body implicitly waits for its
        // unsettled children before the scope can close.
        b.phase = Phase::ScopeParked;
        ++parkedNow_;
        if (actor != kMain) {
            releaseExecutor(actor, now);
            tryDispatch(now);
        }
        return;
    }
    closeOut(actor, now);
}

void
TaskGraph::tryDispatch(std::uint64_t now)
{
    while (!ready_.empty() && !freeExecutors_.empty()) {
        ReadyEntry e = ready_.front();
        ready_.pop_front();
        Body &b = nodes_[e.task];
        if (e.resume == Resume::Start && b.phase != Phase::Pending)
            continue;  // cancelled before an executor freed up
        trace::ThreadId exec = freeExecutors_.front();
        freeExecutors_.pop_front();
        executorOf_[e.task] = exec;
        switch (e.resume) {
          case Resume::Start:
            tr_->eventBegin(b.event, exec, now);
            b.phase = Phase::Running;
            schedule(e.task, now + cfg_.stepCostMs);
            break;
          case Resume::AfterAwait:
            tr_->taskAwait(trace::Task::event(b.event),
                           nodes_[e.child].event, now);
            b.phase = Phase::Running;
            --parkedNow_;
            ++b.pc;
            schedule(e.task, now + cfg_.stepCostMs);
            break;
          case Resume::CloseScope:
            --parkedNow_;
            closeOut(e.task, now);
            break;
        }
    }
}

void
TaskGraph::stepActor(TaskRef actor, std::uint64_t now)
{
    Body &b = body(actor);
    endTime_ = std::max(endTime_, now);

    // Main parks without an executor, so its continuations arrive
    // here (tasks resume through the ready queue / tryDispatch).
    if (b.phase == Phase::AwaitParked) {
        tr_->taskAwait(actorTask(actor),
                       nodes_[b.awaitedChild].event, now);
        b.phase = Phase::Running;
        --parkedNow_;
        ++b.pc;
        schedule(actor, now + cfg_.stepCostMs);
        return;
    }
    if (b.phase == Phase::ScopeParked) {
        --parkedNow_;
        closeOut(actor, now);
        return;
    }
    acAssert(b.phase == Phase::Running,
             "TaskGraph: scheduled actor is not running");

    if (b.pc >= b.steps.size()) {
        finishBody(actor, now);
        return;
    }

    const Step &st = b.steps[b.pc];
    switch (st.kind) {
      case Step::Kind::Read:
        tr_->read(actorTask(actor), st.a, st.b, now);
        ++b.pc;
        schedule(actor, now + cfg_.stepCostMs);
        break;
      case Step::Kind::Write:
        tr_->write(actorTask(actor), st.a, st.b, now);
        ++b.pc;
        schedule(actor, now + cfg_.stepCostMs);
        break;
      case Step::Kind::Sleep:
        ++b.pc;
        schedule(actor, now + st.ms);
        break;
      case Step::Kind::Spawn:
        {
            Body &c = nodes_[st.a];
            if (c.phase != Phase::Unspawned)
                panic(strf("TaskGraph: task '%s' spawned twice",
                           c.name.c_str()));
            tr_->taskSpawn(actorTask(actor), c.event, b.scope, now);
            c.phase = Phase::Pending;
            c.parent = actor;
            ++b.openChildren;
            if (obsSpawned_)
                obsSpawned_->inc();
            ready_.push_back({st.a, Resume::Start, kMain});
            noteReadyDepth();
            ++b.pc;
            schedule(actor, now + cfg_.stepCostMs);
            tryDispatch(now);
        }
        break;
      case Step::Kind::Await:
        {
            Body &c = nodes_[st.a];
            if (c.phase == Phase::Unspawned)
                panic(strf("TaskGraph: await of unspawned task '%s'",
                           c.name.c_str()));
            if (c.phase == Phase::Settled) {
                tr_->taskAwait(actorTask(actor), c.event, now);
                ++b.pc;
                schedule(actor, now + cfg_.stepCostMs);
            } else {
                parkOnChild(actor, st.a);
                if (actor != kMain) {
                    releaseExecutor(actor, now);
                    tryDispatch(now);
                }
            }
        }
        break;
      case Step::Kind::Cancel:
        {
            Body &c = nodes_[st.a];
            if (c.phase == Phase::Unspawned)
                panic(strf("TaskGraph: cancel of unspawned task '%s'",
                           c.name.c_str()));
            if (c.phase == Phase::Pending) {
                tr_->taskCancel(actorTask(actor), c.event, now);
                ++cancelled_;
                if (obsCancelled_)
                    obsCancelled_->inc();
                settle(st.a, now);
            }
            // Started or settled: cooperative cancellation no-op.
            ++b.pc;
            schedule(actor, now + cfg_.stepCostMs);
        }
        break;
    }
}

trace::Trace
TaskGraph::run(TaskGraphRunInfo *info)
{
    acAssert(!ran_, "TaskGraph: run() called twice");
    ran_ = true;

    if (cfg_.obs.metrics) {
        obs::MetricsRegistry &reg = *cfg_.obs.metrics;
        obsSpawned_ = &reg.counter("taskgraph.tasks_spawned");
        obsSettled_ = &reg.counter("taskgraph.tasks_settled");
        obsCancelled_ = &reg.counter("taskgraph.tasks_cancelled");
        obsParked_ = &reg.gauge("taskgraph.parked");
        obsExecFree_ = &reg.gauge("taskgraph.executors_free");
        obsReadyPeak_ = &reg.gauge("taskgraph.ready_peak");
    }

    trace::Trace tr;
    tr.setDialect(trace::Dialect::Async);
    tr_ = &tr;

    mainThread_ = tr.addThread(trace::ThreadKind::Worker, "main");
    executorThreads_.clear();
    for (std::uint32_t i = 0; i < cfg_.executors; ++i) {
        executorThreads_.push_back(
            tr.addThread(trace::ThreadKind::Worker, strf("exec%u", i)));
        freeExecutors_.push_back(executorThreads_.back());
    }
    for (auto &spec : varSpecs_)
        tr.addVar(spec.name, spec.label);
    for (auto &spec : siteSpecs_)
        tr.addSite(spec.name, spec.frame, spec.commGroup);
    for (auto &node : nodes_)
        node.event = tr.addEvent();
    if (main_.spawns)
        main_.scope = tr.addHandle("main.scope");
    for (auto &node : nodes_) {
        if (node.spawns)
            node.scope = tr.addHandle(node.name + ".scope");
    }
    executorOf_.assign(nodes_.size(), kInvalidId);

    tr.threadBegin(mainThread_, 0);
    for (trace::ThreadId t : executorThreads_)
        tr.threadBegin(t, 0);

    main_.phase = Phase::Running;
    schedule(kMain, 0);

    while (!sched_.empty()) {
        SchedEntry e = sched_.top();
        sched_.pop();
        stepActor(e.actor, e.time);
        obsSync();
    }

    if (main_.phase != Phase::Settled)
        panic("TaskGraph: deadlock — main never finished "
              "(cyclic await?)");
    for (const Body &node : nodes_) {
        if (node.phase != Phase::Unspawned &&
            node.phase != Phase::Settled) {
            panic(strf("TaskGraph: task '%s' never settled",
                       node.name.c_str()));
        }
    }

    for (trace::ThreadId t : executorThreads_)
        tr.threadEnd(t, endTime_);

    if (info) {
        info->endTimeMs = endTime_;
        info->cancelled = cancelled_;
    }
    tr_ = nullptr;
    return tr;
}

} // namespace asyncclock::runtime
