/**
 * @file
 * The simulated Android-like runtime.
 *
 * This is the substitute for the paper's instrumented Dalvik runtime
 * (DESIGN.md section 2): a deterministic discrete-event simulator with
 * the three Android thread models of paper section 2.1 —
 *
 *  - looper threads, each draining one message queue in priority
 *    order (FIFO + Delayed/AtTime/AtFront + async messages and sync
 *    barriers),
 *  - binder thread pools, dequeuing FIFO but executing concurrently,
 *  - worker threads with fork/join and signal/wait handles,
 *
 * all on a virtual millisecond clock. Running an app model produces a
 * trace::Trace with exactly the operation vocabulary of paper
 * section 2.2, which the detectors consume offline.
 */

#ifndef ASYNCCLOCK_RUNTIME_RUNTIME_HH
#define ASYNCCLOCK_RUNTIME_RUNTIME_HH

#include <cstdint>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "runtime/script.hh"
#include "trace/source.hh"
#include "trace/trace.hh"

namespace asyncclock::runtime {

struct RuntimeConfig
{
    /** Virtual time consumed by each non-sleep script step (ms).
     * Drives realistic event rates for the time-window experiments. */
    std::uint64_t stepCostMs = 1;
};

/**
 * Hook consulted before each event delivery — the replay subsystem's
 * entry point into the scheduler (src/verify/). Returning false from
 * mayDeliver defers the event: the queue skips it and delivers the
 * next eligible entry instead (this is how a replay *flips* delivery
 * order). Deferred entries are re-offered every time any event
 * finishes. A gate must eventually release everything it defers, or
 * the held events end the run undelivered (RunInfo::undelivered).
 */
class DeliveryGate
{
  public:
    virtual ~DeliveryGate() = default;

    /** May @p event, queued on @p queue, be delivered now? */
    virtual bool mayDeliver(trace::QueueId queue,
                            trace::EventId event) = 0;

    /** An event finished executing (gates typically release here). */
    virtual void onEventEnd(trace::EventId event) { (void)event; }
};

/** Summary of one simulation run. */
struct RunInfo
{
    /** Events still queued when the simulation drained (e.g. stalled
     * behind a never-removed barrier or an AtTime beyond the end). */
    std::uint64_t undelivered = 0;
    /** Final virtual time. */
    std::uint64_t endTimeMs = 0;
};

/**
 * Deterministic simulator. Usage: create entities (loopers, binder
 * pools, vars, handles, sites), spawn workers with scripts, then
 * run() once to obtain the trace.
 */
class Runtime
{
  public:
    explicit Runtime(RuntimeConfig cfg = {});
    ~Runtime();

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    // ----- entity setup (before run) --------------------------------
    /** Create a looper thread + its message queue; returns the queue
     * (the natural target of post()). */
    trace::QueueId addLooper(const std::string &name);

    /** Create a binder queue drained by @p threads binder threads. */
    trace::QueueId addBinderPool(const std::string &name,
                                 unsigned threads);

    trace::VarId var(const std::string &name,
                     trace::SeedLabel label = trace::SeedLabel::None);
    trace::HandleId handle(const std::string &name);
    trace::SiteId site(const std::string &name, trace::Frame frame,
                       std::uint32_t commGroup = trace::kInvalidId);

    /** Allocate a fresh token for post/fork/barrier naming. */
    Token token();

    /** Spawn a root worker thread running @p script at @p startMs. */
    void spawnWorker(const std::string &name, Script script,
                     std::uint64_t startMs = 0);

    /** Install a delivery gate (replay steering). Must be called
     * before run(); @p gate must outlive the run. Pass nullptr to
     * clear. */
    void setDeliveryGate(DeliveryGate *gate);

    /** Looper thread driving @p queue (for assertions in tests). */
    trace::ThreadId looperThreadOf(trace::QueueId queue) const;

    // ----- simulation -----------------------------------------------
    /** Run to completion and return the trace. Single-shot. */
    trace::Trace run();

    /**
     * Run to completion emitting directly into @p sink instead of
     * materializing the operation vector: pre-declared entities are
     * replayed into the sink up front (per-table order preserves
     * their ids), entities created during the run (forked workers,
     * posted events) are declared as they appear, and every operation
     * is pushed the moment it happens. Single-shot, exclusive with
     * run(). The runtime's own footprint stays O(entities).
     */
    RunInfo runToSink(trace::TraceSink &sink);

    /** Info about the last run() call. */
    const RunInfo &lastRun() const { return info_; }

  private:
    void runCommon();

    struct Impl;
    std::unique_ptr<Impl> impl_;
    RunInfo info_;
};

} // namespace asyncclock::runtime

#endif // ASYNCCLOCK_RUNTIME_RUNTIME_HH
