/**
 * @file
 * The ReplayController: flip a candidate race's order, re-execute,
 * diff the state (DESIGN.md section 11).
 *
 * Two replay substrates share the state-diff oracle (state.hh):
 *
 *  1. *Trace-level* (`ReplayController`): re-linearize the recorded
 *     trace so the second access of the pair executes before the
 *     first, while preserving every other happens-before edge of the
 *     gold closure. Works on any materialized trace — this is what
 *     `trace_analyzer --verify` uses. Simulated task bodies are
 *     straight-line (control flow never depends on data), so a
 *     reordered interpretation of the recorded ops is exactly the
 *     trace a re-execution under the flipped schedule would emit.
 *
 *  2. *Runtime-level* (`reexecuteFlipped`): rebuild the app model via
 *     a factory and re-run it on the simulator with a DeliveryGate
 *     that holds the first access's event back until the second's
 *     has finished — a true re-execution honoring looper atomicity.
 *     Needs the app model in-process; used by tests and embedders.
 *
 * Flips that would violate happens-before are refused up front: an
 * ordered pair cannot occur in any real schedule, so the candidate is
 * INFEASIBLE (a detector false positive).
 */

#ifndef ASYNCCLOCK_VERIFY_REPLAY_HH
#define ASYNCCLOCK_VERIFY_REPLAY_HH

#include <functional>
#include <string>
#include <vector>

#include "gold/closure.hh"
#include "report/triage.hh"
#include "runtime/runtime.hh"
#include "support/status.hh"
#include "trace/trace.hh"
#include "verify/state.hh"

namespace asyncclock::verify {

/** Outcome of one flip experiment. */
struct FlipOutcome
{
    report::ReplayVerdict verdict = report::ReplayVerdict::Unverified;
    /** Deterministic one-line explanation. */
    std::string detail;
};

/**
 * Trace-level replay over one recorded trace. Construction
 * interprets the recorded order once; each verifyPair() call builds
 * and interprets one flipped schedule (O(ops) per call).
 */
class ReplayController
{
  public:
    /** @p hb must be the closure of @p tr; both must outlive this. */
    ReplayController(const trace::Trace &tr, const gold::Closure &hb);

    /**
     * Flip the order of the two access ops and classify the result.
     * The pair is normalized by trace order internally, so argument
     * order does not matter.
     */
    FlipOutcome verifyPair(trace::OpId a, trace::OpId b) const;

    /**
     * The flipped linearization: every op of the trace, in recorded
     * order except that @p first and all its happens-before
     * successors are delayed until just after @p second (@p first
     * must precede @p second in trace order and must not be ordered
     * with it). Exposed for tests.
     */
    std::vector<trace::OpId> flippedSchedule(trace::OpId first,
                                             trace::OpId second) const;

    /** State of the recorded order (the comparison baseline). */
    const StateSnapshot &recordedState() const { return recorded_; }

  private:
    const trace::Trace &tr_;
    const gold::Closure &hb_;
    TraceInterpreter interp_;
    StateSnapshot recorded_;
};

/** Rebuilds an app model on a fresh Runtime (entities, workers,
 * scripts) — must produce the same model every call. */
using AppFactory = std::function<void(runtime::Runtime &)>;

/**
 * Runtime-level replay: re-execute the app with the delivery of the
 * event containing @p first held back until the event containing
 * @p second has finished, and return the alternative trace.
 *
 * Requirements (else ErrCode::Unsupported): both ops must run inside
 * (distinct) events — thread-resident accesses cannot be steered by
 * a delivery gate. Returns ErrCode::Internal if the re-execution did
 * not actually flip the pair (a non-deterministic factory, or a flip
 * the queue discipline forbids).
 */
Expected<trace::Trace> reexecuteFlipped(const AppFactory &factory,
                                        const trace::Trace &recorded,
                                        trace::OpId first,
                                        trace::OpId second);

} // namespace asyncclock::verify

#endif // ASYNCCLOCK_VERIFY_REPLAY_HH
