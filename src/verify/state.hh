/**
 * @file
 * The state-diff oracle: an abstract interpreter for trace schedules.
 *
 * Replay-based verification needs to answer "does executing the same
 * program under a different (happens-before-consistent) schedule end
 * in a different observable state?" Our traces carry no data values,
 * so the interpreter supplies a deterministic value semantics that is
 * exactly as discriminating as the trace allows:
 *
 *  - every write stores a value derived from its source site and from
 *    the values its task has observed so far (dataflow: a read that
 *    feeds a later write propagates schedule differences forward);
 *  - writes from sites in a commutativity group apply a *commutative*
 *    update (wrapping add of a site-derived constant) — that is the
 *    precise claim the commutativity whitelist makes, so flipping two
 *    whitelisted writes provably cannot diverge;
 *  - a read of a never-written variable is recorded as a fault (the
 *    NullPointerException analog of the paper's order-violation
 *    bugs — e.g. BarcodeScanner's use of an uninitialized
 *    CameraManager).
 *
 * A snapshot is the order-insensitive observable state after a run:
 * final variable values, the fault log, the delivered-event set and
 * the undelivered queue remainder. Two schedules of the same op set
 * are compared snapshot-for-snapshot; any difference means the
 * schedule is observable — the race is CONFIRMED harmful.
 */

#ifndef ASYNCCLOCK_VERIFY_STATE_HH
#define ASYNCCLOCK_VERIFY_STATE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace asyncclock::verify {

/** Fault kinds the interpreter can observe (crash analogs). */
enum class FaultKind : std::uint8_t {
    UninitRead,  ///< read of a variable no write has reached yet
};

/** One fault, keyed by the faulting op so fault *sets* can be
 * compared across schedules (the op set is schedule-invariant). */
struct Fault
{
    FaultKind kind = FaultKind::UninitRead;
    trace::OpId op = trace::kInvalidId;
    trace::VarId var = trace::kInvalidId;

    bool operator==(const Fault &other) const = default;
    bool
    operator<(const Fault &other) const
    {
        return op != other.op ? op < other.op : var < other.var;
    }
};

/** Observable end-of-run state (all members kept sorted so equality
 * is order-insensitive). */
struct StateSnapshot
{
    /** Final value per variable (0 when never written). */
    std::vector<std::uint64_t> varValues;
    /** Has any write reached the variable? */
    std::vector<std::uint8_t> varWritten;
    std::vector<Fault> faults;
    /** Events that began executing (sorted set). */
    std::vector<trace::EventId> delivered;
    /** Events sent but never delivered nor removed (sorted set). */
    std::vector<trace::EventId> undelivered;

    bool operator==(const StateSnapshot &other) const = default;

    /**
     * Deterministic one-line description of the first difference to
     * @p other (empty when equal). Variable names resolved through
     * @p tr.
     */
    std::string diff(const StateSnapshot &other,
                     const trace::Trace &tr) const;
};

/**
 * Executes a schedule — a permutation (or subset, for truncated
 * replays) of a trace's op ids — under the value semantics above.
 * Stateless between runs; run() is const and deterministic.
 */
class TraceInterpreter
{
  public:
    explicit TraceInterpreter(const trace::Trace &tr) : tr_(tr) {}

    /** Interpret @p schedule (op ids into the trace, in execution
     * order) and return the final state. */
    StateSnapshot run(const std::vector<trace::OpId> &schedule) const;

    /** Convenience: interpret the trace in its recorded order. */
    StateSnapshot runRecorded() const;

  private:
    const trace::Trace &tr_;
};

} // namespace asyncclock::verify

#endif // ASYNCCLOCK_VERIFY_STATE_HH
