#include "verify/state.hh"

#include <algorithm>

#include "support/format.hh"

namespace asyncclock::verify {

using trace::kInvalidId;
using trace::Operation;
using trace::OpId;
using trace::OpKind;

namespace {

/** splitmix64 finalizer: cheap, well-mixed, dependency-free. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

std::string
StateSnapshot::diff(const StateSnapshot &other,
                    const trace::Trace &tr) const
{
    for (std::size_t v = 0;
         v < varValues.size() && v < other.varValues.size(); ++v) {
        if (varValues[v] != other.varValues[v] ||
            varWritten[v] != other.varWritten[v]) {
            return strf("final value of '%s' differs",
                        tr.var(static_cast<trace::VarId>(v))
                            .name.c_str());
        }
    }
    if (faults != other.faults) {
        // Report the first fault present in exactly one schedule.
        std::vector<Fault> delta;
        std::set_symmetric_difference(faults.begin(), faults.end(),
                                      other.faults.begin(),
                                      other.faults.end(),
                                      std::back_inserter(delta));
        if (!delta.empty()) {
            const Fault &f = delta.front();
            bool inSelf = std::binary_search(faults.begin(),
                                             faults.end(), f);
            return strf("uninitialized read of '%s' (op %u) under the "
                        "%s order",
                        tr.var(f.var).name.c_str(), f.op,
                        inSelf ? "recorded" : "flipped");
        }
    }
    if (delivered != other.delivered)
        return "delivered-event sets differ";
    if (undelivered != other.undelivered)
        return "undelivered-queue contents differ";
    if (varValues.size() != other.varValues.size())
        return "variable tables differ";
    return "";
}

StateSnapshot
TraceInterpreter::run(const std::vector<OpId> &schedule) const
{
    StateSnapshot out;
    out.varValues.assign(tr_.vars().size(), 0);
    out.varWritten.assign(tr_.vars().size(), 0);

    // Per-task dataflow accumulators: what the task has observed.
    std::vector<std::uint64_t> threadAcc(tr_.threads().size(), 0);
    std::vector<std::uint64_t> eventAcc(tr_.events().size(), 0);
    std::vector<std::uint8_t> removed(tr_.events().size(), 0);

    auto accOf = [&](trace::Task task) -> std::uint64_t & {
        return task.isEvent() ? eventAcc[task.index()]
                              : threadAcc[task.index()];
    };

    for (OpId id : schedule) {
        const Operation &op = tr_.op(id);
        switch (op.kind) {
          case OpKind::Read:
            {
                std::uint64_t &acc = accOf(op.task);
                if (!out.varWritten[op.target]) {
                    out.faults.push_back(
                        {FaultKind::UninitRead, id, op.target});
                }
                acc = mix(acc ^ out.varValues[op.target]);
            }
            break;
          case OpKind::Write:
            {
                const std::uint64_t siteKey =
                    op.site == kInvalidId ? 0 : op.site + 1;
                const std::uint32_t group =
                    op.site == kInvalidId
                        ? kInvalidId
                        : tr_.site(op.site).commGroup;
                if (group != kInvalidId) {
                    // The whitelist's claim, taken literally: the
                    // update commutes, so order cannot matter.
                    out.varValues[op.target] += mix(siteKey);
                } else {
                    out.varValues[op.target] =
                        mix(siteKey ^ (accOf(op.task) << 1));
                }
                out.varWritten[op.target] = 1;
            }
            break;
          case OpKind::EventBegin:
            out.delivered.push_back(op.task.index());
            break;
          case OpKind::RemoveEvent:
          case OpKind::TaskCancel:
            // A cancelled task never runs: same observable effect as
            // a removed event.
            removed[op.event] = 1;
            break;
          default:
            break;  // sync/lifecycle ops carry no interpreted state
        }
    }

    std::sort(out.delivered.begin(), out.delivered.end());
    std::sort(out.faults.begin(), out.faults.end());
    std::vector<std::uint8_t> begun(tr_.events().size(), 0);
    for (trace::EventId e : out.delivered)
        begun[e] = 1;
    for (OpId id : schedule) {
        const Operation &op = tr_.op(id);
        if ((op.kind == OpKind::Send ||
             op.kind == OpKind::TaskSpawn) &&
            !begun[op.event] && !removed[op.event]) {
            out.undelivered.push_back(op.event);
        }
    }
    std::sort(out.undelivered.begin(), out.undelivered.end());
    return out;
}

StateSnapshot
TraceInterpreter::runRecorded() const
{
    std::vector<OpId> order(tr_.numOps());
    for (OpId i = 0; i < tr_.numOps(); ++i)
        order[i] = i;
    return run(order);
}

} // namespace asyncclock::verify
