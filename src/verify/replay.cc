#include "verify/replay.hh"

#include <algorithm>
#include <utility>

#include "support/format.hh"

namespace asyncclock::verify {

using report::ReplayVerdict;
using trace::kInvalidId;
using trace::Operation;
using trace::OpId;
using trace::OpKind;

ReplayController::ReplayController(const trace::Trace &tr,
                                   const gold::Closure &hb)
    : tr_(tr), hb_(hb), interp_(tr), recorded_(interp_.runRecorded())
{
}

std::vector<OpId>
ReplayController::flippedSchedule(OpId first, OpId second) const
{
    const OpId n = tr_.numOps();
    std::vector<OpId> order;
    order.reserve(n);
    std::vector<OpId> held;
    bool flushed = false;
    for (OpId o = 0; o < n; ++o) {
        if (!flushed && (o == first || hb_.happensBefore(first, o))) {
            // Delay the first access and everything it causes. No op
            // on the path to `second` can land here: a happens-before
            // edge first -> second would have made the flip
            // infeasible before we got here.
            held.push_back(o);
            continue;
        }
        order.push_back(o);
        if (o == second) {
            // The pair is flipped; release the held block in its
            // original relative order. Everything later runs as
            // recorded.
            order.insert(order.end(), held.begin(), held.end());
            held.clear();
            flushed = true;
        }
    }
    order.insert(order.end(), held.begin(), held.end());
    return order;
}

FlipOutcome
ReplayController::verifyPair(OpId a, OpId b) const
{
    OpId first = std::min(a, b);
    OpId second = std::max(a, b);
    FlipOutcome out;
    if (hb_.happensBefore(first, second) ||
        hb_.happensBefore(second, first)) {
        out.verdict = ReplayVerdict::Infeasible;
        out.detail = strf("accesses are happens-before ordered "
                          "(op %u %s op %u); no schedule can flip "
                          "them",
                          first,
                          hb_.happensBefore(first, second) ? "->"
                                                           : "<-",
                          second);
        return out;
    }
    StateSnapshot flipped = interp_.run(flippedSchedule(first, second));
    std::string divergence = recorded_.diff(flipped, tr_);
    if (divergence.empty()) {
        out.verdict = ReplayVerdict::Benign;
        out.detail = "flipped order ends in identical observable "
                     "state";
    } else {
        out.verdict = ReplayVerdict::Confirmed;
        out.detail = "flipped order diverges: " + divergence;
    }
    return out;
}

namespace {

/** Holds one event back until another has finished executing. */
class FlipGate : public runtime::DeliveryGate
{
  public:
    FlipGate(trace::EventId hold, trace::EventId until)
        : hold_(hold), until_(until)
    {
    }

    bool
    mayDeliver(trace::QueueId, trace::EventId event) override
    {
        return event != hold_ || released_;
    }

    void
    onEventEnd(trace::EventId event) override
    {
        if (event == until_)
            released_ = true;
    }

  private:
    trace::EventId hold_;
    trace::EventId until_;
    bool released_ = false;
};

/** Position of the first op in @p tr matching @p want's task, kind,
 * target and site (the re-executed trace may renumber nothing for a
 * deterministic factory, but matching structurally keeps the check
 * honest). kInvalidId when absent. */
OpId
findMatching(const trace::Trace &tr, const Operation &want)
{
    for (OpId i = 0; i < tr.numOps(); ++i) {
        const Operation &op = tr.op(i);
        if (op.kind == want.kind && op.task == want.task &&
            op.target == want.target && op.site == want.site) {
            return i;
        }
    }
    return kInvalidId;
}

} // namespace

Expected<trace::Trace>
reexecuteFlipped(const AppFactory &factory,
                 const trace::Trace &recorded, OpId first, OpId second)
{
    if (first >= recorded.numOps() || second >= recorded.numOps()) {
        return Status::error(ErrCode::Unsupported,
                             "candidate op id outside the recorded "
                             "trace");
    }
    const Operation &opA = recorded.op(first);
    const Operation &opB = recorded.op(second);
    if (!opA.task.isEvent() || !opB.task.isEvent() ||
        opA.task == opB.task) {
        return Status::error(ErrCode::Unsupported,
                             "runtime replay can only flip accesses "
                             "running in two distinct events");
    }

    FlipGate gate(opA.task.index(), opB.task.index());
    runtime::Runtime rt;
    factory(rt);
    rt.setDeliveryGate(&gate);
    trace::Trace flipped = rt.run();

    OpId posA = findMatching(flipped, opA);
    OpId posB = findMatching(flipped, opB);
    if (posA == kInvalidId || posB == kInvalidId) {
        return Status::error(ErrCode::Internal,
                             "re-executed trace lost the candidate "
                             "accesses (non-deterministic factory?)");
    }
    if (posB > posA) {
        return Status::error(ErrCode::Internal,
                             strf("re-execution did not flip the "
                                  "pair (accesses at %u and %u)",
                                  posA, posB));
    }
    return flipped;
}

} // namespace asyncclock::verify
