/**
 * @file
 * RaceVerifier: the closed loop from detector output back through
 * replay (DESIGN.md section 11).
 *
 * Input: a materialized trace plus triaged candidate classes
 * (report/triage.hh). For each class, the verifier replays the
 * representative pair under the flipped order and assigns the verdict
 * to the class. Candidates that cannot be validated against the
 * replay substrate — op id out of range, op fields disagreeing with
 * the trace (e.g. candidates that came from a fault-injected stream
 * while verification replays the clean file) — stay Unverified
 * instead of poisoning the run.
 *
 * Cost: one gold::Closure fixpoint over the trace (quadratic — this
 * is deliberate: the closure is the executable specification of the
 * causality model, so INFEASIBLE can never disagree with it), plus
 * O(ops) per verified class. VerifyConfig::maxOps bounds the closure;
 * above it every class is left Unverified with a note.
 */

#ifndef ASYNCCLOCK_VERIFY_VERIFIER_HH
#define ASYNCCLOCK_VERIFY_VERIFIER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.hh"
#include "report/triage.hh"
#include "trace/trace.hh"

namespace asyncclock::verify {

struct VerifyConfig
{
    /** Verify at most this many classes (0 = all); classes beyond
     * the cap stay Unverified. Representatives are processed in
     * triage-key order, so the cap is deterministic. */
    std::uint32_t maxClasses = 0;
    /** Refuse to build the closure above this many ops (the closure
     * is quadratic); 0 = no cap. */
    std::uint32_t maxOps = 50000;
    /** Metrics + spans (both optional). */
    obs::ObsContext obs{};
};

/** Aggregate outcome of one verification run. */
struct VerifySummary
{
    std::uint64_t replays = 0;      ///< flip experiments executed
    std::uint64_t confirmed = 0;
    std::uint64_t benign = 0;
    std::uint64_t infeasible = 0;
    std::uint64_t unverified = 0;
    /** Non-empty when verification was skipped or degraded. */
    std::vector<std::string> notes;
    /** Wall time of the whole pass (reported separately from the
     * verdict text so reports stay byte-identical across runs). */
    double wallSec = 0;
};

/**
 * Verify every class of @p triage against @p tr, write verdicts and
 * details into the classes, rank them (report::rankTriage), and
 * return the tally.
 */
VerifySummary verifyTriage(report::TriageReport &triage,
                           const trace::Trace &tr,
                           const VerifyConfig &cfg = {});

} // namespace asyncclock::verify

#endif // ASYNCCLOCK_VERIFY_VERIFIER_HH
