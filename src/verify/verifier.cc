#include "verify/verifier.hh"

#include <chrono>

#include "gold/closure.hh"
#include "support/format.hh"
#include "verify/replay.hh"

namespace asyncclock::verify {

using report::ReplayVerdict;
using report::TriageClass;
using trace::kInvalidId;
using trace::Operation;
using trace::OpId;
using trace::OpKind;

namespace {

/**
 * A candidate may have been produced against a different view of the
 * run than the trace we replay (e.g. detected on a fault-injected
 * stream, verified against the clean file). Before trusting its op
 * ids we check that every field the candidate asserts about its two
 * ops actually holds in the replay substrate.
 */
bool
matchesSubstrate(const trace::Trace &tr, const report::RaceReport &r)
{
    if (r.prevOp >= tr.numOps() || r.curOp >= tr.numOps() ||
        r.prevOp >= r.curOp) {
        return false;
    }
    const Operation &prev = tr.op(r.prevOp);
    const Operation &cur = tr.op(r.curOp);
    auto accessOk = [&](const Operation &op, trace::SiteId site,
                        trace::Task task, bool isWrite) {
        return op.kind == (isWrite ? OpKind::Write : OpKind::Read) &&
               op.target == r.var && op.site == site && op.task == task;
    };
    return accessOk(prev, r.prevSite, r.prevTask, r.prevWrite) &&
           accessOk(cur, r.curSite, r.curTask, r.curWrite);
}

void
tally(VerifySummary &sum, ReplayVerdict verdict)
{
    switch (verdict) {
      case ReplayVerdict::Confirmed:  ++sum.confirmed; break;
      case ReplayVerdict::Benign:     ++sum.benign; break;
      case ReplayVerdict::Infeasible: ++sum.infeasible; break;
      case ReplayVerdict::Unverified: ++sum.unverified; break;
    }
}

} // namespace

VerifySummary
verifyTriage(report::TriageReport &triage, const trace::Trace &tr,
             const VerifyConfig &cfg)
{
    const auto wallStart = std::chrono::steady_clock::now();
    VerifySummary sum;
    obs::Tracer *tracer = cfg.obs.tracer;
    obs::MetricsRegistry *metrics = cfg.obs.metrics;

    auto finish = [&]() -> VerifySummary & {
        report::rankTriage(triage);
        triage.recount();
        sum.wallSec =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wallStart)
                .count();
        if (metrics) {
            metrics->gauge("verify.elapsed_us")
                .set(static_cast<std::int64_t>(sum.wallSec * 1e6));
        }
        return sum;
    };

    if (cfg.maxOps != 0 && tr.numOps() > cfg.maxOps) {
        std::string note =
            strf("trace has %u ops, above the verification cap of %u "
                 "(the closure is quadratic); all classes left "
                 "UNVERIFIED",
                 tr.numOps(), cfg.maxOps);
        for (TriageClass &cls : triage.classes) {
            cls.verdict = ReplayVerdict::Unverified;
            cls.detail = "trace above --verify-max-ops cap";
            ++sum.unverified;
        }
        sum.notes.push_back(std::move(note));
        return finish();
    }

    gold::Closure hb = [&] {
        obs::ScopedSpan span(tracer, obs::kMainTrack,
                             "verify.closure");
        return gold::Closure(tr);
    }();
    ReplayController controller(tr, hb);

    std::uint32_t budget = cfg.maxClasses;
    for (TriageClass &cls : triage.classes) {
        if (cfg.maxClasses != 0 && budget == 0) {
            cls.verdict = ReplayVerdict::Unverified;
            cls.detail = "class budget exhausted (--verify=N)";
            tally(sum, cls.verdict);
            continue;
        }
        if (!matchesSubstrate(tr, cls.representative)) {
            cls.verdict = ReplayVerdict::Unverified;
            cls.detail = "candidate does not match the replay "
                         "substrate (stale or foreign op ids)";
            tally(sum, cls.verdict);
            continue;
        }
        if (cfg.maxClasses != 0)
            --budget;

        const auto t0 = std::chrono::steady_clock::now();
        FlipOutcome out;
        {
            obs::ScopedSpan span(tracer, obs::kMainTrack,
                                 "verify.replay");
            out = controller.verifyPair(cls.representative.prevOp,
                                        cls.representative.curOp);
        }
        ++sum.replays;
        cls.verdict = out.verdict;
        cls.detail = std::move(out.detail);
        tally(sum, cls.verdict);
        if (metrics) {
            const auto us =
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            metrics
                ->histogram("verify.replay_us",
                            {100, 1000, 10000, 100000, 1000000})
                .observe(static_cast<std::uint64_t>(us));
        }
    }

    if (metrics) {
        metrics->counter("verify.replays").inc(sum.replays);
        metrics->counter("verify.verdict.confirmed").inc(sum.confirmed);
        metrics->counter("verify.verdict.benign").inc(sum.benign);
        metrics->counter("verify.verdict.infeasible")
            .inc(sum.infeasible);
        metrics->counter("verify.verdict.unverified")
            .inc(sum.unverified);
    }
    return finish();
}

} // namespace asyncclock::verify
