/**
 * @file
 * Workload generation for the async/await task-graph dialect.
 *
 * The looper generator (workload.hh) models Monkey-driven Android
 * apps; this one models structured-concurrency coroutine programs on
 * the TaskGraph runtime (runtime/taskgraph.hh): trees of spawned
 * tasks on a small executor pool, a configurable mix of awaits and
 * cancellations, and explicitly planted ground truth —
 *
 *  - harmful races: two sibling tasks touch a SeedLabel::Harmful
 *    variable with no await/scope edge between them (one write/write
 *    and one write/read pair per seed, alternating);
 *  - ordered pairs: two tasks touch the same unlabeled variable but
 *    an await edge orders them — any report on these variables is a
 *    detector false positive;
 *  - a cancel cluster sized against the executor pool so that some
 *    TaskCancel ops are guaranteed to land on still-pending tasks.
 *
 * Everything else is confined traffic (each task owns its scratch
 * variables), so the seeded pairs are the only intended races.
 * Deterministic in AsyncProfile::seed.
 */

#ifndef ASYNCCLOCK_WORKLOAD_ASYNC_WORKLOAD_HH
#define ASYNCCLOCK_WORKLOAD_ASYNC_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.hh"
#include "trace/trace.hh"
#include "workload/workload.hh"

namespace asyncclock::workload {

/** Structural description of a simulated coroutine program. */
struct AsyncProfile
{
    std::string name = "async";
    std::uint64_t seed = 1;

    std::uint32_t executors = 3;   ///< executor pool size
    std::uint32_t rootTasks = 10;  ///< subtrees spawned by main
    std::uint32_t maxDepth = 3;    ///< task-tree depth limit
    std::uint32_t childrenMax = 3; ///< children per spawning task
    std::uint32_t stepsMax = 5;    ///< compute steps per body

    double spawnFrac = 0.6;   ///< odds a non-leaf task spawns children
    double awaitFrac = 0.6;   ///< odds a child is explicitly awaited
    double cancelFrac = 0.08; ///< odds a child draws a cancel attempt

    std::uint32_t benignVars = 24;  ///< confined scratch-variable pool
    std::uint32_t seededHarmful = 4; ///< unordered sibling pairs
    std::uint32_t seededOrdered = 4; ///< await-ordered pairs (benign)

    /** Occasional main-body sleeps up to this long stretch vtime so
     * the time-window experiments have something to age. */
    std::uint64_t sleepMaxMs = 40;

    /** Handed to the underlying TaskGraph: with metrics, generation
     * records taskgraph.* counters/gauges (tasks spawned/settled/
     * cancelled, parked actors, pool/queue stats). */
    obs::ObsContext obs{};
};

/** A generated coroutine program: trace plus ground truth. */
struct GeneratedAsyncApp
{
    trace::Trace trace;
    /** Only `harmful` is populated; the harmless taxonomy of the
     * looper generator has no async counterpart yet. */
    SeededTruth truth;
    std::uint64_t endTimeMs = 0;
    /** Tasks settled by TaskCancel (never ran). */
    std::uint64_t cancelledTasks = 0;
};

/** Synthesize a program from a profile (deterministic in seed). */
GeneratedAsyncApp generateAsyncApp(const AsyncProfile &profile);

/** The stock async profiles: AsyncTree (balanced spawn tree),
 * AsyncPipeline (deep await chains), AsyncFanOut (wide, rarely
 * awaited). */
std::vector<AsyncProfile> asyncProfiles();

/** Stock profile by name; fatal if unknown. */
AsyncProfile asyncProfileByName(const std::string &name);

} // namespace asyncclock::workload

#endif // ASYNCCLOCK_WORKLOAD_ASYNC_WORKLOAD_HH
