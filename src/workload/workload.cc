#include "workload/workload.hh"

#include <algorithm>
#include <cmath>
#include <functional>

#include "runtime/runtime.hh"
#include "support/format.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace asyncclock::workload {

using runtime::PostOpts;
using runtime::Runtime;
using runtime::Script;
using trace::Frame;
using trace::HandleId;
using trace::QueueId;
using trace::SeedLabel;
using trace::SendKind;
using trace::SiteId;
using trace::VarId;

namespace {

/** Shared state while synthesizing one app. */
struct Ctx
{
    const AppProfile &profile;
    Runtime rt;
    Rng rng;

    std::vector<QueueId> loopers;
    QueueId binderQueue = trace::kInvalidId;
    std::vector<HandleId> handles;

    /** Generic user/framework sites the generator draws from. */
    std::vector<SiteId> userSites;
    std::vector<SiteId> frameworkSites;

    /** Read-only "configuration" variables (never written). */
    std::vector<VarId> constVars;

    unsigned freshVarCounter = 0;
    unsigned eventBudget = 0;  ///< looper events left to create

    explicit Ctx(const AppProfile &p) : profile(p), rng(p.seed) {}

    VarId
    freshVar(const char *prefix)
    {
        return rt.var(strf("%s%u", prefix, freshVarCounter++));
    }

    SiteId userSite() { return rng.pick(userSites); }

    /** Real apps concentrate traffic on the main looper; secondary
     * HandlerThreads see far less (the paper's apps have up to 128
     * loopers, mostly idle). */
    QueueId
    anyLooper()
    {
        if (loopers.size() == 1 || rng.chance(0.7))
            return loopers[0];
        return loopers[1 + rng.below(loopers.size() - 1)];
    }
};

/** Random per-event delay drawn from a small set so delays repeat
 * (plain posts are delay 0); repeated delays are what lets both
 * pruning and async-before early-stopping do real work. */
std::uint64_t
randomDelay(Rng &rng)
{
    static const std::uint64_t choices[] = {10, 50, 100, 250, 1000};
    return choices[rng.below(5)];
}

/**
 * Build one event body. Bodies read config vars, touch a lineage
 * variable shared only along the parent chain (always ordered), and
 * sometimes post a child event (level-2/-3 FIFO events).
 */
Script
eventBody(Ctx &ctx, unsigned level, VarId lineageVar)
{
    Script body;
    unsigned steps = 1 + static_cast<unsigned>(ctx.rng.below(
                             ctx.profile.maxEventSteps));
    for (unsigned i = 0; i < steps; ++i) {
        switch (ctx.rng.below(4)) {
          case 0:
            body.read(ctx.rng.pick(ctx.constVars), ctx.userSite());
            break;
          case 1:
            body.write(lineageVar, ctx.userSite());
            break;
          case 2:
            body.read(lineageVar, ctx.userSite());
            break;
          default:
            {
                VarId scratch = ctx.freshVar("scratch");
                body.write(scratch, ctx.userSite());
            }
        }
    }
    // Child posts: level-1 events spawn level-2 with chainFrac odds,
    // level-2 spawn level-3 with chain3Frac odds; level-3 stops.
    double odds = level == 1 ? ctx.profile.chainFrac
                : level == 2 ? ctx.profile.chain3Frac : 0.0;
    if (ctx.eventBudget > 0 && ctx.rng.chance(odds)) {
        --ctx.eventBudget;
        body.post(ctx.anyLooper(), eventBody(ctx, level + 1,
                                             lineageVar));
    }
    return body;
}

/** One top-level post from a worker, possibly priority-tagged. */
void
addWorkerPost(Ctx &ctx, Script &w)
{
    const AppProfile &p = ctx.profile;
    VarId lineage = ctx.freshVar("lineage");
    double tag = ctx.rng.uniform();
    bool async = ctx.rng.chance(p.asyncFrac);
    QueueId q = ctx.anyLooper();
    if (tag < p.delayedFrac) {
        Script body = eventBody(ctx, 1, lineage);
        if (ctx.rng.chance(p.removeFrac / p.delayedFrac)) {
            // Post far out and remove it again a step later.
            auto tok = ctx.rt.token();
            w.post(q, std::move(body),
                   PostOpts::delayed(100000, async), tok);
            w.remove(tok);
        } else {
            w.post(q, std::move(body),
                   PostOpts::delayed(randomDelay(ctx.rng), async));
        }
    } else if (tag < p.delayedFrac + p.atTimeFrac) {
        // Distinct absolute times: mix in entropy so equal-time
        // AtTime pairs are rare (the paper's pruning observation).
        std::uint64_t t = 1 + ctx.rng.below(p.spanMs + p.spanMs / 4);
        w.post(q, eventBody(ctx, 1, lineage), PostOpts::at(t, async));
    } else if (tag < p.delayedFrac + p.atTimeFrac + p.atFrontFrac) {
        w.post(q, eventBody(ctx, 1, lineage),
               PostOpts::atFront(async));
    } else if (ctx.rng.chance(p.barrierFrac)) {
        // Barrier episode: async message bypasses, sync stalls.
        auto bar = ctx.rt.token();
        w.postBarrier(q, bar);
        w.post(q, eventBody(ctx, 1, lineage),
               PostOpts::delayed(0, true));
        if (ctx.eventBudget > 0) {
            --ctx.eventBudget;
            w.post(q, eventBody(ctx, 1, ctx.freshVar("lineage")));
        }
        w.removeBarrier(bar);
    } else {
        w.post(q, eventBody(ctx, 1, lineage));
    }
}

/** The Fig 8a shape: E1 signals mid-event and keeps writing; E2 on
 * the same looper waits, then reads — ordered only by Rule ATOMIC. */
void
addAtomicHandoff(Ctx &ctx, Script &w)
{
    QueueId q = ctx.anyLooper();
    HandleId h = ctx.rt.handle(
        strf("atomic%u", ctx.freshVarCounter));
    VarId v = ctx.freshVar("handoff");
    SiteId s = ctx.userSite();
    w.post(q, Script().signal(h).write(v, s));
    w.post(q, Script().await(h).read(v, s));
}

/** RPC-style binder call: the worker blocks on the reply, so the next
 * binder event is causally after this one (keeps binder chains from
 * exploding, like real request/reply IPC). */
void
addBinderPost(Ctx &ctx, Script &w, bool rpc)
{
    VarId v = ctx.freshVar("ipc");
    SiteId s = ctx.userSite();
    if (rpc) {
        HandleId h = ctx.rt.handle(
            strf("reply%u", ctx.freshVarCounter));
        w.post(ctx.binderQueue,
               Script().write(v, s).sleep(2).signal(h));
        w.await(h);
    } else {
        w.post(ctx.binderQueue, Script().write(v, s).sleep(3));
    }
}

/**
 * Plant one labeled racy pair: two dedicated workers post events that
 * access @p var from @p siteA / @p siteB with no ordering between
 * them, @p gapMs apart in virtual time.
 *
 * When @p initSite is valid, worker a first writes @p var from it and
 * signals worker b before either racy access can run, so the variable
 * is initialized happens-before both accesses. That models the
 * harmless idioms faithfully: a Type I/II read can observe a stale
 * value under a flipped schedule, but never an uninitialized one, so
 * replay verification classifies the pair benign — while harmful
 * seeds (no init) crash when the read is reordered first. The init
 * access is ordered with both racy accesses, so it adds no race
 * groups.
 */
void
seedPair(Ctx &ctx, const std::string &name, VarId var, SiteId siteA,
         SiteId siteB, bool writeA, bool writeB, std::uint64_t t1,
         std::uint64_t gapMs, QueueId queue,
         SiteId initSite = trace::kInvalidId)
{
    Script a, b;
    if (initSite != trace::kInvalidId) {
        HandleId ready = ctx.rt.handle(name + ".init");
        a.write(var, initSite).signal(ready);
        b.await(ready);
    }
    a.sleep(t1);
    Script bodyA;
    if (writeA)
        bodyA.write(var, siteA);
    else
        bodyA.read(var, siteA);
    a.post(queue, std::move(bodyA));
    b.sleep(t1 + gapMs);
    Script bodyB;
    if (writeB)
        bodyB.write(var, siteB);
    else
        bodyB.read(var, siteB);
    b.post(queue, std::move(bodyB));
    ctx.rt.spawnWorker(name + ".a", std::move(a));
    ctx.rt.spawnWorker(name + ".b", std::move(b));
}

/** Gap distribution for seeded pairs: mostly close in time, with a
 * log-uniform tail of far-apart pairs so every window size in Fig 10
 * trades away a different fraction (recall rises with the window). */
std::uint64_t
seedGap(Ctx &ctx)
{
    const double span = double(ctx.profile.spanMs);
    if (ctx.rng.chance(0.8))
        return 200 + ctx.rng.below(10000);  // < ~10 s
    // Log-uniform on [10 s, 0.6 * span].
    double lo = std::log(10000.0), hi = std::log(0.6 * span);
    if (hi <= lo)
        return 10000;
    return static_cast<std::uint64_t>(
        std::exp(lo + ctx.rng.uniform() * (hi - lo)));
}

} // namespace

namespace {

/** Build the whole app on @p ctx's runtime (entities, workers,
 * seeded races); the caller picks how to run it. */
void
buildApp(Ctx &ctx, SeededTruth &truth)
{
    const AppProfile &p = ctx.profile;

    for (unsigned i = 0; i < std::max(1u, p.loopers); ++i)
        ctx.loopers.push_back(ctx.rt.addLooper(strf("looper%u", i)));
    if (p.binderThreads > 0)
        ctx.binderQueue = ctx.rt.addBinderPool("binder",
                                               p.binderThreads);
    for (unsigned i = 0; i < p.handles; ++i)
        ctx.handles.push_back(ctx.rt.handle(strf("handle%u", i)));

    for (unsigned i = 0; i < 12; ++i) {
        ctx.userSites.push_back(ctx.rt.site(
            strf("App.java:%u", 100 + i * 7), Frame::User));
    }
    for (unsigned i = 0; i < 6; ++i) {
        ctx.frameworkSites.push_back(ctx.rt.site(
            strf("android.os.Handler:%u", 50 + i * 3),
            Frame::Framework));
    }
    for (unsigned i = 0; i < std::max(1u, p.benignVars); ++i)
        ctx.constVars.push_back(ctx.rt.var(strf("config%u", i)));

    // ----- main workload: workers posting events -------------------
    const unsigned workers = std::max(1u, p.workers);
    ctx.eventBudget = p.looperEvents;
    // Reserve budget for children (they decrement eventBudget too).
    unsigned topLevel = static_cast<unsigned>(
        p.looperEvents / (1.0 + p.chainFrac * (1 + p.chain3Frac)));
    std::vector<Script> scripts(workers);
    unsigned binderLeft = p.binderEvents;
    for (unsigned i = 0; i < topLevel; ++i) {
        unsigned w = static_cast<unsigned>(ctx.rng.below(workers));
        if (ctx.eventBudget == 0)
            break;
        --ctx.eventBudget;
        addWorkerPost(ctx, scripts[w]);
        // Sprinkle binder traffic and pacing.
        if (binderLeft > 0 && ctx.rng.chance(double(p.binderEvents) /
                                             std::max(1u, topLevel))) {
            --binderLeft;
            addBinderPost(ctx, scripts[w],
                          ctx.rng.chance(p.rpcFrac));
        }
    }
    // A couple of ATOMIC handoffs per app exercise Rule ATOMIC.
    if (p.looperEvents >= 20) {
        addAtomicHandoff(ctx, scripts[0]);
        if (workers > 1)
            addAtomicHandoff(ctx, scripts[workers - 1]);
    }

    // Pace each worker so the app spans ~spanMs of virtual time:
    // interleave sleeps between its post steps.
    for (unsigned w = 0; w < workers; ++w) {
        const Script &raw = scripts[w];
        std::size_t n = std::max<std::size_t>(1, raw.steps().size());
        std::uint64_t gap = std::max<std::uint64_t>(1, p.spanMs / n);
        Script paced;
        std::uint64_t jitterBase = ctx.rng.below(gap + 1);
        paced.sleep(jitterBase + w);
        for (const auto &step : raw.steps()) {
            paced.append(step);
            paced.sleep(gap);
        }
        ctx.rt.spawnWorker(strf("worker%u", w), std::move(paced));
    }

    // ----- seeded, labeled races ------------------------------------
    auto spread = [&](unsigned i, unsigned n) {
        return 1 + (p.spanMs * (i + 1)) / (n + 2);
    };
    for (unsigned i = 0; i < p.seededHarmful; ++i) {
        VarId v = ctx.rt.var(strf("camera.state%u", i),
                             SeedLabel::Harmful);
        SiteId sa = ctx.rt.site(strf("App.onResume:%u", i),
                                Frame::User);
        SiteId sb = ctx.rt.site(strf("App.surfaceCreated:%u", i),
                                Frame::User);
        seedPair(ctx, strf("seed.harmful%u", i), v, sa, sb, true,
                 false, spread(i, p.seededHarmful), seedGap(ctx),
                 ctx.anyLooper());
        ++truth.harmful;
    }
    for (unsigned i = 0; i < p.seededTypeI; ++i) {
        VarId v = ctx.rt.var(strf("ui.model%u", i),
                             SeedLabel::HarmlessTypeI);
        SiteId sa = ctx.rt.site(strf("App.onClick:%u", i),
                                Frame::User);
        SiteId sb = ctx.rt.site(strf("App.onDraw:%u", i),
                                Frame::User);
        SiteId init = ctx.rt.site(strf("App.<init>.model:%u", i),
                                  Frame::User);
        seedPair(ctx, strf("seed.typeI%u", i), v, sa, sb, true, false,
                 spread(i, p.seededTypeI) + 7, seedGap(ctx),
                 ctx.loopers[0], init);
        ++truth.typeI;
    }
    for (unsigned i = 0; i < p.seededTypeII; ++i) {
        VarId v = ctx.rt.var(strf("flag%u", i),
                             SeedLabel::HarmlessTypeII);
        SiteId sa = ctx.rt.site(strf("App.setFlag:%u", i),
                                Frame::User);
        SiteId sb = ctx.rt.site(strf("App.checkFlag:%u", i),
                                Frame::User);
        SiteId init = ctx.rt.site(strf("App.<init>.flag:%u", i),
                                  Frame::User);
        seedPair(ctx, strf("seed.typeII%u", i), v, sa, sb, true,
                 false, spread(i, p.seededTypeII) + 13, seedGap(ctx),
                 ctx.anyLooper(), init);
        ++truth.typeII;
    }
    for (unsigned i = 0; i < p.seededCommutative; ++i) {
        VarId v = ctx.rt.var(strf("list.size%u", i),
                             SeedLabel::HarmlessCommutative);
        // Same commutativity group => whitelisted by the filter.
        SiteId sa = ctx.rt.site(strf("java.util.ArrayList.add:%u", i),
                                Frame::Library, /*commGroup=*/i);
        SiteId sb = ctx.rt.site(
            strf("java.util.ArrayList.add':%u", i), Frame::Library,
            /*commGroup=*/i);
        seedPair(ctx, strf("seed.comm%u", i), v, sa, sb, true, true,
                 spread(i, p.seededCommutative) + 17, seedGap(ctx),
                 ctx.anyLooper());
        ++truth.commutative;
    }
    for (unsigned i = 0; i < p.seededFrameworkNoise; ++i) {
        VarId v = ctx.rt.var(strf("fw.cache%u", i),
                             SeedLabel::HarmlessOther);
        SiteId sa = ctx.frameworkSites[i % ctx.frameworkSites.size()];
        SiteId sb = ctx.frameworkSites[(i + 1) %
                                       ctx.frameworkSites.size()];
        seedPair(ctx, strf("seed.fw%u", i), v, sa, sb, true, true,
                 spread(i, p.seededFrameworkNoise) + 23, seedGap(ctx),
                 ctx.anyLooper());
        ++truth.frameworkNoise;
    }
}

} // namespace

GeneratedApp
generateApp(const AppProfile &p)
{
    Ctx ctx(p);
    GeneratedApp out;
    buildApp(ctx, out.truth);
    out.trace = ctx.rt.run();
    out.endTimeMs = ctx.rt.lastRun().endTimeMs;
    return out;
}

SeededTruth
generateAppToSink(const AppProfile &p, trace::TraceSink &sink,
                  std::uint64_t *endTimeMs)
{
    Ctx ctx(p);
    SeededTruth truth;
    buildApp(ctx, truth);
    runtime::RunInfo info = ctx.rt.runToSink(sink);
    if (endTimeMs)
        *endTimeMs = info.endTimeMs;
    return truth;
}

trace::Trace
barcodePattern(unsigned inputEvents, unsigned stepsPerEvent)
{
    Runtime rt;
    QueueId q = rt.addLooper("main");
    SiteId s = rt.site("Barcode.java:42", Frame::User);

    // Build the chain from the inside out: I_k posts I_{k+1}, an
    // AtTime decode event with a distinct time, and does local work.
    Script next;  // I_{inputEvents} body: empty tail
    for (unsigned k = inputEvents; k-- > 0;) {
        Script body;
        VarId v = rt.var(strf("frame%u", k));
        for (unsigned i = 0; i < stepsPerEvent; ++i)
            body.write(v, s);
        // Distinct AtTime constraints: "nearly pruned nothing".
        VarId dv = rt.var(strf("decode%u", k));
        body.post(q, Script().write(dv, s).read(dv, s),
                  PostOpts::at(10 + 37 * (k + 1)));
        body.post(q, std::move(next));
        next = std::move(body);
    }
    rt.spawnWorker("input", Script().post(q, std::move(next)));
    return rt.run();
}

trace::Trace
pingPongPattern(unsigned streams, unsigned hops)
{
    Runtime rt;
    QueueId q1 = rt.addLooper("looperA");
    QueueId q2 = rt.addLooper("looperB");
    SiteId s = rt.site("PingPong.java:7", Frame::User);
    Script w;
    for (unsigned st = 0; st < streams; ++st) {
        VarId v = rt.var(strf("stream%u", st));
        Script body = Script().write(v, s);
        for (unsigned h = hops; h-- > 1;) {
            Script outer = Script().write(v, s);
            outer.post(h % 2 ? q2 : q1, std::move(body));
            body = std::move(outer);
        }
        w.post(q1, std::move(body));
        w.sleep(3);
    }
    rt.spawnWorker("driver", std::move(w));
    return rt.run();
}

trace::Trace
multiPathPattern(unsigned rounds)
{
    Runtime rt;
    QueueId q1 = rt.addLooper("looperA");
    QueueId q2 = rt.addLooper("looperB");
    SiteId s = rt.site("MultiPath.java:3", Frame::User);
    Script w;
    for (unsigned r = 0; r < rounds; ++r) {
        VarId va = rt.var(strf("mpA%u", r));
        VarId vb = rt.var(strf("mpB%u", r));
        // A_r to q1; B_r to q2 (holds A_r in its AsyncClock, posts
        // nothing); then A'_r to q1 displaces A_r from the sender's
        // clock. A_r is heirless once B_r ends, but only multi-path
        // reduction can tell. Each event touches its own variable so
        // the pattern is race-free by construction.
        w.post(q1, Script().write(va, s));
        w.post(q2, Script().write(vb, s));
        w.sleep(5);
        w.post(q1, Script().write(va, s));
        w.sleep(5);
    }
    rt.spawnWorker("driver", std::move(w));
    return rt.run();
}

trace::Trace
lockShadowedPattern()
{
    Runtime rt;
    HandleId h = rt.handle("latch");
    VarId x = rt.var("shadowed.state", SeedLabel::Harmful);
    SiteId sa = rt.site("Shadowed.java:11", Frame::User);
    SiteId sb = rt.site("Shadowed.java:29", Frame::User);
    // The fast signaler releases the latch long before the slow
    // worker's write+signal; the waiter's HB predecessor set still
    // contains the slow signal, hiding the write/write race.
    rt.spawnWorker("fast", Script().signal(h));
    rt.spawnWorker("slow",
                   Script().sleep(5).write(x, sa).signal(h));
    rt.spawnWorker("waiter",
                   Script().sleep(20).await(h).write(x, sb));
    return rt.run();
}

trace::Trace
queueSiblingsPattern()
{
    Runtime rt;
    QueueId q = rt.addLooper("main");
    HandleId h = rt.handle("ready");
    VarId y = rt.var("sibling.slot", SeedLabel::Harmful);
    SiteId s1 = rt.site("Sibling.java:5", Frame::User);
    SiteId s2 = rt.site("Sibling.java:9", Frame::User);
    // The waiter's post is ordered after the poster's only through
    // the poster's non-releasing signal; under the fast release the
    // two posts race and FIFO could dequeue them either way.
    rt.spawnWorker("fast", Script().signal(h));
    rt.spawnWorker("poster", Script().sleep(2)
                                 .post(q, Script().write(y, s1))
                                 .signal(h));
    rt.spawnWorker("waiter", Script().sleep(10).await(h).post(
                                 q, Script().write(y, s2)));
    return rt.run();
}

trace::Trace
fifoForcedPattern()
{
    Runtime rt;
    QueueId q = rt.addLooper("main");
    VarId z = rt.var("fifo.cell");
    SiteId s1 = rt.site("Fifo.java:3", Frame::User);
    SiteId s2 = rt.site("Fifo.java:8", Frame::User);
    // Same sender, same queue: every execution dequeues E1 before
    // E2, so the weak-unordered pair is a false candidate.
    rt.spawnWorker("poster",
                   Script().post(q, Script().write(z, s1))
                       .post(q, Script().write(z, s2)));
    return rt.run();
}

trace::Trace
chaosTrace(std::uint64_t seed, unsigned events)
{
    Rng rng(seed ^ 0xc4a05);
    Runtime rt;

    std::vector<QueueId> loopers;
    unsigned numLoopers = 1 + static_cast<unsigned>(rng.below(3));
    for (unsigned i = 0; i < numLoopers; ++i)
        loopers.push_back(rt.addLooper(strf("chaosL%u", i)));
    QueueId binder = trace::kInvalidId;
    if (rng.chance(0.6))
        binder = rt.addBinderPool("chaosB", 2);

    std::vector<VarId> vars;
    for (unsigned i = 0; i < 8; ++i)
        vars.push_back(rt.var(strf("shared%u", i)));
    std::vector<SiteId> sites;
    for (unsigned i = 0; i < 5; ++i)
        sites.push_back(rt.site(strf("Chaos.java:%u", i),
                                Frame::User));

    unsigned workers = 2 + static_cast<unsigned>(rng.below(3));
    std::vector<HandleId> handles;
    for (unsigned w = 0; w < workers; ++w)
        handles.push_back(rt.handle(strf("chaosH%u", w)));

    auto access = [&](Script &s) {
        if (rng.chance(0.5))
            s.write(rng.pick(vars), rng.pick(sites));
        else
            s.read(rng.pick(vars), rng.pick(sites));
    };

    // Event bodies: dense shared accesses + occasional children.
    std::function<Script(unsigned)> body = [&](unsigned depth) {
        Script s;
        unsigned steps = 1 + static_cast<unsigned>(rng.below(3));
        for (unsigned i = 0; i < steps; ++i)
            access(s);
        if (depth < 2 && rng.chance(0.3)) {
            s.post(rng.pick(loopers), body(depth + 1));
        }
        return s;
    };

    unsigned perWorker = std::max(1u, events / workers);
    for (unsigned w = 0; w < workers; ++w) {
        Script s;
        // Signal first, await later: deadlock-free by construction.
        s.signal(handles[w]);
        for (unsigned i = 0; i < perWorker; ++i) {
            access(s);
            double kind = rng.uniform();
            QueueId q = rng.pick(loopers);
            if (kind < 0.45) {
                s.post(q, body(1));
            } else if (kind < 0.6) {
                s.post(q, body(1),
                       PostOpts::delayed(rng.below(40) * 5,
                                         rng.chance(0.3)));
            } else if (kind < 0.7) {
                s.post(q, body(1),
                       PostOpts::at(rng.below(4000),
                                    rng.chance(0.3)));
            } else if (kind < 0.78) {
                s.post(q, body(1), PostOpts::atFront(rng.chance(0.3)));
            } else if (kind < 0.84 && binder != trace::kInvalidId) {
                s.post(binder, body(2));
            } else if (kind < 0.9) {
                auto tok = rt.token();
                s.post(q, body(1), PostOpts::delayed(50000), tok);
                if (rng.chance(0.8))
                    s.remove(tok);
            } else if (kind < 0.95) {
                auto bar = rt.token();
                s.postBarrier(q, bar);
                s.post(q, body(1), PostOpts::delayed(0, true));
                s.post(q, body(1));
                s.removeBarrier(bar);
            } else {
                auto tok = rt.token();
                s.fork(tok, strf("chaosW%u_%u", w, i),
                       Script().then(body(1)));
                s.join(tok);
            }
            if (rng.chance(0.3))
                s.sleep(1 + rng.below(20));
        }
        if (w + 1 < workers && rng.chance(0.7))
            s.await(handles[w + 1]);
        rt.spawnWorker(strf("chaos%u", w), std::move(s),
                       rng.below(50));
    }
    return rt.run();
}

std::vector<AppProfile>
table2Profiles(double scale)
{
    // Looper/binder event counts from Table 2, scaled; thread mixes
    // approximate the paper's Looper/Binder/Other columns.
    struct Row
    {
        const char *name;
        unsigned looperEvents, binderEvents, loopers, binders,
            workers;
    };
    static const Row rows[] = {
        {"AnyMemo", 244584, 1110, 8, 5, 12},
        {"ConnectBot", 86056, 4819, 3, 6, 8},
        {"Firefox", 78719, 2673, 7, 4, 16},
        {"NPRNews", 77619, 50011, 8, 5, 10},
        {"K9Mail", 48493, 8136, 6, 5, 8},
        {"OpenSudoku", 47062, 2810, 1, 4, 5},
        {"SGTPuzzles", 42110, 1938, 3, 5, 7},
        {"AardDict", 37345, 4331, 3, 4, 10},
        {"BarcodeScanner", 34792, 949, 2, 3, 4},
        {"FlymNews", 31690, 1579, 4, 6, 10},
        {"RemindMe", 31637, 1391, 8, 6, 7},
        {"AdobeReader", 31301, 1751, 8, 4, 12},
        {"FlipKart", 31054, 1264, 10, 4, 12},
        {"OIFileManager", 30841, 6694, 10, 5, 10},
        {"VLCPlayer", 26241, 28133, 10, 8, 12},
        {"ASQLiteManager", 25597, 1529, 1, 4, 5},
        {"Twitter", 24333, 2615, 12, 6, 10},
        {"Tomdroid", 22121, 3441, 2, 6, 8},
        {"FBReader", 21300, 4064, 8, 5, 8},
        {"ATimeTracker", 19620, 1880, 1, 6, 5},
    };
    std::vector<AppProfile> out;
    unsigned idx = 0;
    for (const Row &r : rows) {
        AppProfile p;
        p.name = r.name;
        p.seed = 1000 + idx;
        p.looperEvents = std::max(
            50u, static_cast<unsigned>(r.looperEvents * scale));
        p.binderEvents = std::max(
            5u, static_cast<unsigned>(r.binderEvents * scale));
        p.loopers = r.loopers;
        p.binderThreads = r.binders;
        p.workers = r.workers;
        // The paper's traces run 10-30 minutes against a 2-minute
        // window; keep the span in that regime regardless of event
        // scaling so the window's working-set bound (rt+1 events and
        // chains per looper, section 4.1) is actually exercised.
        p.spanMs = 20 * 60 * 1000;
        out.push_back(std::move(p));
        ++idx;
    }
    return out;
}

AppProfile
profileByName(const std::string &name, double scale)
{
    for (AppProfile &p : table2Profiles(scale)) {
        if (p.name == name)
            return p;
    }
    fatal("unknown app profile: " + name);
}

} // namespace asyncclock::workload
