/**
 * @file
 * Monkey-like workload generation (DESIGN.md section 2).
 *
 * The paper drives 20 real Android apps with the Monkey UI exerciser
 * and records traces on an instrumented phone. Here, an AppProfile
 * describes an app's *structure* — thread/queue counts, event volumes
 * and rates, priority-tag mix, chain depth, synchronization habits —
 * and AppGenerator synthesizes a deterministic simulated app on the
 * runtime whose trace matches those statistics. Ground truth for the
 * race experiments is planted explicitly: harmful order violations,
 * Type I (delayed-update) and Type II (control-dependent) harmless
 * races, commutative library races, and framework-internal noise, all
 * labeled via trace::SeedLabel / site frames so reports can be scored
 * mechanically.
 *
 * Dedicated pattern generators reproduce the paper's stress shapes:
 *  - barcodePattern: Fig 9b — input-event chains posting AtTime
 *    events with distinct times (defeats EventRacer's pruning);
 *  - pingPongPattern: Fig 6a — event streams bouncing between two
 *    loopers so no event becomes heirless without a time window;
 *  - multiPathPattern: Fig 6b — heirless events with positive
 *    reference counts that only multi-path reduction reclaims.
 */

#ifndef ASYNCCLOCK_WORKLOAD_WORKLOAD_HH
#define ASYNCCLOCK_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/source.hh"
#include "trace/trace.hh"

namespace asyncclock::workload {

/** Structural description of a simulated app. */
struct AppProfile
{
    std::string name = "app";
    std::uint64_t seed = 1;

    unsigned loopers = 2;        ///< looper threads (first is "main")
    unsigned binderThreads = 4;  ///< pool size of the binder queue
    unsigned workers = 3;        ///< background worker threads

    /** Approximate looper events to generate (including children). */
    unsigned looperEvents = 400;
    unsigned binderEvents = 40;

    /** Virtual duration target (ms); sets worker posting rates. */
    std::uint64_t spanMs = 60000;

    // Priority-tag mix among looper events (rest are plain FIFO).
    double delayedFrac = 0.12;
    double atTimeFrac = 0.04;
    double atFrontFrac = 0.02;
    double asyncFrac = 0.04;   ///< of tagged events, async flag odds

    /** Odds a level-1/-2 event posts a child (level-2/-3 events; the
     * paper reports 54% / 4.8% / 1.7% level-1/2/3 FIFO events). */
    double chainFrac = 0.10;
    double chain3Frac = 0.35;  ///< of level-2 events, odds of level 3

    double removeFrac = 0.015; ///< delayed posts later removed
    double barrierFrac = 0.01; ///< posts guarded by a sync barrier
    double rpcFrac = 0.6;      ///< binder posts that are RPC-style

    unsigned benignVars = 40;  ///< confined (never racy) variables
    unsigned handles = 6;

    // Seeded, labeled races (each contributes ~1 race group).
    unsigned seededHarmful = 3;
    unsigned seededTypeI = 2;
    unsigned seededTypeII = 2;
    unsigned seededCommutative = 3;
    unsigned seededFrameworkNoise = 4;  ///< filtered by user-induced

    /** Steps per event body (uniform 1..max). */
    unsigned maxEventSteps = 5;
};

/** Counts of what was actually planted (for scoring reports). */
struct SeededTruth
{
    unsigned harmful = 0;
    unsigned typeI = 0;
    unsigned typeII = 0;
    unsigned commutative = 0;
    unsigned frameworkNoise = 0;
};

/** A generated app: the trace plus its ground truth. */
struct GeneratedApp
{
    trace::Trace trace;
    SeededTruth truth;
    std::uint64_t endTimeMs = 0;
};

/** Synthesize an app from a profile (deterministic in profile.seed). */
GeneratedApp generateApp(const AppProfile &profile);

/**
 * Synthesize the same app (bit-identical stream for the same profile)
 * directly into @p sink without materializing the operation vector —
 * e.g. a trace::BinaryTraceWriter recording to disk. Returns the
 * planted ground truth; @p endTimeMs (if non-null) receives the final
 * virtual time.
 */
SeededTruth generateAppToSink(const AppProfile &profile,
                              trace::TraceSink &sink,
                              std::uint64_t *endTimeMs = nullptr);

/**
 * Fig 9b: chains of input events; input event I_k posts I_{k+1}, an
 * AtTime event with a distinct time, and a decode event. EventRacer's
 * backward traversal walks the whole input chain to find AtTime
 * predecessors.
 */
trace::Trace barcodePattern(unsigned inputEvents,
                            unsigned stepsPerEvent = 3);

/**
 * Fig 6a: `streams` event streams bouncing between two loopers
 * (A1 -> A2 -> A3 ...), interleaved so that earlier events are never
 * heirless: only the time window reclaims them.
 */
trace::Trace pingPongPattern(unsigned streams, unsigned hops);

/**
 * Fig 6b: repeated {send A to q1; send B to q2 (B holds A in its
 * AsyncClock but posts nothing); send A' to q1} shapes. A becomes
 * heirless the moment B ends, but its reference count stays positive
 * until multi-path reduction removes it from B's clock.
 */
trace::Trace multiPathPattern(unsigned rounds);

/**
 * Chaos trace: unlike generateApp (whose benign traffic is confined
 * by construction), every task hammers one small shared-variable pool
 * while exercising the full feature surface — priority tags, async
 * messages behind barriers, at-front posts, event removal, nested
 * child events, binder traffic, fork/join and signal/wait — so the
 * resulting races stress every causality rule at once. Deadlock-free
 * by construction (workers signal before they await). Intended for
 * the triple cross-validation sweeps; races carry no ground-truth
 * labels.
 */
trace::Trace chaosTrace(std::uint64_t seed, unsigned events = 60);

/**
 * Seeded shapes for the predictive tier (DESIGN.md section 16): each
 * plants an access pair the HB detector cannot report because the
 * observed schedule ordered it, exercising one weak-ordering rule.
 *
 * lockShadowedPattern — a latch released by a fast signaler while a
 * slow worker writes and then signals the same handle; the waiter's
 * write is HB-ordered after the slow write only through the slow
 * (non-releasing) signal, so the pair is hidden but feasible: a
 * schedule where the fast signal releases the waiter first races the
 * two writes. Prediction must Confirm it.
 */
trace::Trace lockShadowedPattern();

/**
 * queueSiblingsPattern — two events posted to one looper queue from
 * racing senders whose only ordering is a non-releasing signal; FIFO
 * ordered their bodies in the observed run, but the opposite dequeue
 * order is reachable. Prediction must Confirm the sibling writes.
 */
trace::Trace queueSiblingsPattern();

/**
 * fifoForcedPattern — the soundness negative: one worker posts two
 * events to one looper queue, so their dequeue order is forced in
 * every execution. The pair is weak-unordered (queue rules dropped)
 * and must be classified Infeasible, never Confirmed.
 */
trace::Trace fifoForcedPattern();

/** The 20 Table 2 app profiles, event counts scaled by @p scale
 * (1.0 = the paper's looper/binder event counts). */
std::vector<AppProfile> table2Profiles(double scale = 0.1);

/** Profile by app name from table2Profiles(); fatal if unknown. */
AppProfile profileByName(const std::string &name, double scale = 0.1);

} // namespace asyncclock::workload

#endif // ASYNCCLOCK_WORKLOAD_WORKLOAD_HH
