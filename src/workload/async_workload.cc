#include "workload/async_workload.hh"

#include <utility>

#include "runtime/taskgraph.hh"
#include "support/format.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace asyncclock::workload {

namespace {

using runtime::TaskGraph;
using trace::SeedLabel;
using TaskRef = TaskGraph::TaskRef;

struct Ctx
{
    const AsyncProfile &p;
    Rng rng;
    TaskGraph tg;
    /** Main-only variables (main is one actor: never racy). */
    std::vector<trace::VarId> mainVars;
    std::vector<trace::SiteId> userSites;
    SeededTruth truth;
    unsigned taskCount = 0;
    unsigned varCount = 0;

    explicit Ctx(const AsyncProfile &profile)
        : p(profile),
          rng(profile.seed),
          tg(runtime::TaskGraphConfig{1, profile.executors,
                                      profile.obs})
    {
    }

    trace::SiteId userSite() { return rng.pick(userSites); }

    /** A confined variable owned by one body. */
    trace::VarId
    freshVar(const char *tag)
    {
        return tg.var(strf("%s%u", tag, varCount++));
    }
};

/** 1..stepsMax reads/writes on this body's confined variable. */
void
computeSteps(Ctx &ctx, TaskRef t, trace::VarId local)
{
    unsigned steps =
        1 + static_cast<unsigned>(ctx.rng.below(ctx.p.stepsMax));
    for (unsigned i = 0; i < steps; ++i) {
        if (ctx.rng.chance(0.5))
            ctx.tg.read(t, local, ctx.userSite());
        else
            ctx.tg.write(t, local, ctx.userSite());
    }
}

/**
 * Declare one task (plus its subtree) and return its ref. The caller
 * emits the spawn; children here are spawned/awaited/cancelled by the
 * task itself. @p inherit (if valid) is a variable the spawner wrote
 * before the spawn: the child reads it, ordered by the spawn edge —
 * shared but benign, a precision probe.
 */
TaskRef
buildSubtree(Ctx &ctx, unsigned depth, trace::VarId inherit)
{
    TaskRef t = ctx.tg.task(strf("t%u", ctx.taskCount++));
    trace::VarId local = ctx.freshVar("local");
    if (inherit != trace::kInvalidId)
        ctx.tg.read(t, inherit, ctx.userSite());
    computeSteps(ctx, t, local);

    if (depth < ctx.p.maxDepth && ctx.rng.chance(ctx.p.spawnFrac)) {
        // Written once before any spawn, read by the children: the
        // spawn edge orders every pair of accesses.
        trace::VarId handoff = ctx.freshVar("inherit");
        ctx.tg.write(t, handoff, ctx.userSite());
        unsigned n =
            1 + static_cast<unsigned>(ctx.rng.below(ctx.p.childrenMax));
        std::vector<TaskRef> kids;
        for (unsigned i = 0; i < n; ++i) {
            TaskRef c = buildSubtree(ctx, depth + 1, handoff);
            ctx.tg.spawn(t, c);
            kids.push_back(c);
        }
        computeSteps(ctx, t, local);
        for (TaskRef c : kids) {
            // A cancel attempt only lands while the child is still
            // pending; otherwise it is a silent no-op (taskgraph.hh).
            if (ctx.rng.chance(ctx.p.cancelFrac))
                ctx.tg.cancel(t, c);
            else if (ctx.rng.chance(ctx.p.awaitFrac))
                ctx.tg.await(t, c);
            // The rest are joined by the implicit scope close.
        }
    }
    return t;
}

/**
 * One harmful seed: two sibling tasks of main touch a labeled
 * variable with no ordering edge between them. Even seeds plant a
 * write/write pair, odd seeds write/read.
 */
void
plantHarmful(Ctx &ctx, unsigned k)
{
    trace::VarId v =
        ctx.tg.var(strf("race%u", k), SeedLabel::Harmful);
    trace::SiteId sa =
        ctx.tg.site(strf("race%u.a", k), trace::Frame::User);
    trace::SiteId sb =
        ctx.tg.site(strf("race%u.b", k), trace::Frame::User);

    TaskRef a = ctx.tg.task(strf("racer%u.a", k));
    computeSteps(ctx, a, ctx.freshVar("local"));
    ctx.tg.write(a, v, sa);

    TaskRef b = ctx.tg.task(strf("racer%u.b", k));
    computeSteps(ctx, b, ctx.freshVar("local"));
    if (k % 2 == 0)
        ctx.tg.write(b, v, sb);
    else
        ctx.tg.read(b, v, sb);

    ctx.tg.spawn(TaskGraph::kMain, a);
    ctx.tg.spawn(TaskGraph::kMain, b);
    ++ctx.truth.harmful;
}

/**
 * One ordered (benign) pair: writer -> await -> writer, so the await
 * edge orders the two accesses. Reports on these variables are false
 * positives.
 */
void
plantOrdered(Ctx &ctx, unsigned k)
{
    trace::VarId v = ctx.tg.var(strf("ordered%u", k));
    trace::SiteId sa =
        ctx.tg.site(strf("ordered%u.a", k), trace::Frame::User);
    trace::SiteId sb =
        ctx.tg.site(strf("ordered%u.b", k), trace::Frame::User);

    TaskRef a = ctx.tg.task(strf("writer%u.a", k));
    computeSteps(ctx, a, ctx.freshVar("local"));
    ctx.tg.write(a, v, sa);

    TaskRef b = ctx.tg.task(strf("writer%u.b", k));
    ctx.tg.write(b, v, sb);
    computeSteps(ctx, b, ctx.freshVar("local"));

    ctx.tg.spawn(TaskGraph::kMain, a);
    ctx.tg.await(TaskGraph::kMain, a);
    ctx.tg.spawn(TaskGraph::kMain, b);
}

/**
 * Saturate the executor pool with short tasks, then cancel the
 * overflow: the pool holds `executors` of them, so the last two are
 * still pending when the cancels arrive and the TaskCancel ops are
 * guaranteed to appear in the trace.
 */
void
plantCancelCluster(Ctx &ctx)
{
    unsigned n = ctx.p.executors + 2;
    std::vector<TaskRef> burst;
    for (unsigned i = 0; i < n; ++i) {
        TaskRef t = ctx.tg.task(strf("burst%u", i));
        computeSteps(ctx, t, ctx.freshVar("local"));
        burst.push_back(t);
    }
    for (TaskRef t : burst)
        ctx.tg.spawn(TaskGraph::kMain, t);
    ctx.tg.cancel(TaskGraph::kMain, burst[n - 1]);
    ctx.tg.cancel(TaskGraph::kMain, burst[n - 2]);
}

void
maybeSleep(Ctx &ctx)
{
    if (ctx.p.sleepMaxMs > 0 && ctx.rng.chance(0.5))
        ctx.tg.sleepFor(TaskGraph::kMain,
                        1 + ctx.rng.below(ctx.p.sleepMaxMs));
}

} // namespace

GeneratedAsyncApp
generateAsyncApp(const AsyncProfile &profile)
{
    Ctx ctx(profile);

    for (std::uint32_t i = 0; i < profile.benignVars; ++i)
        ctx.mainVars.push_back(ctx.tg.var(strf("scratch%u", i)));
    if (ctx.mainVars.empty())
        ctx.mainVars.push_back(ctx.tg.var("scratch0"));
    for (unsigned i = 0; i < 6; ++i)
        ctx.userSites.push_back(
            ctx.tg.site(strf("%s.cc:%u", profile.name.c_str(),
                             100 + 10 * i),
                        trace::Frame::User));

    // Root subtrees, with harmful/ordered seeds and the cancel
    // cluster interleaved so seeded accesses spread across the run.
    std::vector<TaskRef> roots;
    unsigned harmPlanted = 0, orderedPlanted = 0;
    for (std::uint32_t r = 0; r < profile.rootTasks; ++r) {
        maybeSleep(ctx);
        // Interleave main-confined traffic with the spawns.
        if (ctx.rng.chance(0.7)) {
            trace::VarId v = ctx.rng.pick(ctx.mainVars);
            if (ctx.rng.chance(0.5))
                ctx.tg.read(TaskGraph::kMain, v, ctx.userSite());
            else
                ctx.tg.write(TaskGraph::kMain, v, ctx.userSite());
        }
        TaskRef root = buildSubtree(ctx, 1, trace::kInvalidId);
        ctx.tg.spawn(TaskGraph::kMain, root);
        roots.push_back(root);

        if (harmPlanted < profile.seededHarmful) {
            maybeSleep(ctx);
            plantHarmful(ctx, harmPlanted++);
        }
        if (orderedPlanted < profile.seededOrdered) {
            maybeSleep(ctx);
            plantOrdered(ctx, orderedPlanted++);
        }
        if (r == profile.rootTasks / 2)
            plantCancelCluster(ctx);
    }
    while (harmPlanted < profile.seededHarmful)
        plantHarmful(ctx, harmPlanted++);
    while (orderedPlanted < profile.seededOrdered)
        plantOrdered(ctx, orderedPlanted++);

    // Await a fraction of the roots; the scope close joins the rest.
    for (TaskRef root : roots) {
        if (ctx.rng.chance(profile.awaitFrac))
            ctx.tg.await(TaskGraph::kMain, root);
    }

    GeneratedAsyncApp app;
    runtime::TaskGraphRunInfo info;
    app.trace = ctx.tg.run(&info);
    app.truth = ctx.truth;
    app.endTimeMs = info.endTimeMs;
    app.cancelledTasks = info.cancelled;
    return app;
}

std::vector<AsyncProfile>
asyncProfiles()
{
    std::vector<AsyncProfile> out;

    AsyncProfile tree;
    tree.name = "AsyncTree";
    tree.seed = 11;
    out.push_back(tree);

    AsyncProfile pipe;
    pipe.name = "AsyncPipeline";
    pipe.seed = 22;
    pipe.executors = 2;
    pipe.rootTasks = 6;
    pipe.maxDepth = 4;
    pipe.childrenMax = 1;
    pipe.spawnFrac = 0.9;
    pipe.awaitFrac = 0.9;
    pipe.cancelFrac = 0.02;
    out.push_back(pipe);

    AsyncProfile fan;
    fan.name = "AsyncFanOut";
    fan.seed = 33;
    fan.executors = 4;
    fan.rootTasks = 24;
    fan.maxDepth = 2;
    fan.childrenMax = 5;
    fan.awaitFrac = 0.3;
    fan.cancelFrac = 0.12;
    out.push_back(fan);

    return out;
}

AsyncProfile
asyncProfileByName(const std::string &name)
{
    for (AsyncProfile &p : asyncProfiles()) {
        if (p.name == name)
            return p;
    }
    fatal(strf("unknown async profile '%s'", name.c_str()));
}

} // namespace asyncclock::workload
