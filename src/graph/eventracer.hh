/**
 * @file
 * EVENTRACER-style baseline: happens-before-graph race detection.
 *
 * Re-implementation of the algorithm the paper compares against
 * (section 7.3): keep the entire happens-before graph of all past
 * synchronization and event operations (send, begin, end, fork, join,
 * signal, wait) *with their logical time*, and, when an event is about
 * to begin, traverse the graph backward from its send to find the
 * causally preceding sends to the same queue — the events those sends
 * posted are the predecessors whose end times the event inherits.
 *
 * The traversal uses EventRacer's graph-traversal pruning: expansion
 * stops below a send to the same queue when that send *dominates* any
 * earlier potential predecessor (same kind, sync, equal time
 * constraint — which is why it "nearly pruned nothing for AtTime
 * events since their times are usually different", section 7.3).
 *
 * The full extended causality model (ATOMIC, Table 1 PRIORITY,
 * ATFRONT, removal, binder) is implemented so the baseline reports
 * exactly the same races as AsyncClock, as the paper requires for the
 * end-to-end comparison. What makes it the *baseline* is the cost
 * profile: per-node vector clocks are kept forever (memory grows with
 * trace length) and the backward traversal grows with graph size
 * (super-linear total time).
 */

#ifndef ASYNCCLOCK_GRAPH_EVENTRACER_HH
#define ASYNCCLOCK_GRAPH_EVENTRACER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "clock/vector_clock.hh"
#include "report/checker.hh"
#include "report/detector.hh"
#include "trace/source.hh"
#include "trace/trace.hh"

namespace asyncclock::graph {

struct EventRacerConfig
{
    /** Enable graph-traversal pruning (on in EventRacer; off shows
     * raw graph-walk cost). */
    bool pruning = true;
};

/** Counters for the scaling analysis (Fig 9a). */
struct GraphCounters
{
    std::uint64_t nodes = 0;
    std::uint64_t edges = 0;
    /** Nodes visited across all backward traversals. */
    std::uint64_t traversalVisits = 0;
    std::uint64_t predecessorsFound = 0;
};

class EventRacerDetector : public report::Detector
{
  public:
    /** Stream operations from @p src. @p src and @p checker must
     * outlive the detector. */
    EventRacerDetector(trace::TraceSource &src,
                       report::AccessChecker &checker,
                       EventRacerConfig cfg = {});

    /** Convenience over a materialized trace (owns a
     * MaterializedSource internally). @p tr and @p checker must
     * outlive the detector. */
    EventRacerDetector(const trace::Trace &tr,
                       report::AccessChecker &checker,
                       EventRacerConfig cfg = {});

    bool processNext() override;
    std::uint64_t opsProcessed() const override { return cursor_; }
    std::uint64_t metadataBytes() const override;
    void sampleMemory(MemStats &stats) const override;

    const GraphCounters &counters() const { return counters_; }

  private:
    using VectorClock = clock::VectorClock;
    using Epoch = clock::Epoch;
    using ChainId = clock::ChainId;

    /** A happens-before graph node: one synchronization/event op. */
    struct Node
    {
        trace::OpId op = trace::kInvalidId;
        Epoch epoch{};
        VectorClock vc;
        std::vector<std::uint32_t> preds;
        /** Send-node payload (kInvalidId otherwise). */
        trace::EventId sendEvent = trace::kInvalidId;
        std::uint32_t stamp = 0;  ///< traversal marker
    };

    /** Mutable per-task analysis state. */
    struct TaskState
    {
        ChainId chain = trace::kInvalidId;
        std::uint32_t lastNode = trace::kInvalidId;
        VectorClock vc;
        bool live = false;
    };

    /** Per-event bookkeeping. */
    struct EventState
    {
        std::uint32_t sendNode = trace::kInvalidId;
        std::uint32_t beginNode = trace::kInvalidId;
        std::uint32_t endNode = trace::kInvalidId;
        Epoch beginEpoch{};
        Epoch endEpoch{};
        bool removed = false;
        /** AtFront events executed while this event was queued. */
        std::vector<trace::EventId> sentAtFront;
    };

    struct HandleState
    {
        VectorClock vc;
        std::vector<std::uint32_t> signalNodes;
    };

    struct LooperState
    {
        /** Completed events, for the ATOMIC fold. */
        std::vector<trace::EventId> executed;
        /** Join of end times of executed events (Rule LOOPEND). */
        VectorClock endAccum;
    };

    TaskState &state(trace::Task task);
    std::uint32_t newNode(trace::OpId op, TaskState &ts);
    ChainId newChain();
    Epoch tick(TaskState &ts);

    /** Entity tables seen so far by the source. */
    const trace::TraceMeta &meta() const { return source_->meta(); }
    /** Grow per-entity state to match meta() (entities may be
     * declared mid-stream). */
    void syncEntities();

    void processOp(const trace::Operation &op, trace::OpId id);
    void onEventBegin(const trace::Operation &op, trace::OpId id);
    /** Backward traversal collecting priority/binder predecessors of
     * @p e into its begin-time clock @p vc. Returns pred event list
     * (for greedy chain assignment). */
    std::vector<trace::EventId> collectPredecessors(trace::EventId e,
                                                    VectorClock &vc,
                                                    std::uint32_t node);
    void atomicFold(trace::EventId self, TaskState &ts,
                    std::uint32_t node);
    void atFrontFold(trace::EventId e, TaskState &ts,
                     std::uint32_t node);

    std::unique_ptr<trace::TraceSource> owned_;
    trace::TraceSource *source_;
    report::AccessChecker &checker_;
    EventRacerConfig cfg_;
    std::uint64_t cursor_ = 0;

    std::vector<Node> nodes_;
    std::vector<TaskState> threadStates_;
    std::vector<TaskState> eventStates_;
    std::vector<EventState> events_;
    std::vector<HandleState> handles_;
    std::vector<LooperState> loopers_;   ///< indexed by looper ThreadId
    std::vector<std::vector<trace::EventId>> pending_;  ///< per queue
    std::vector<std::uint32_t> forkNode_;      ///< per thread
    std::vector<std::uint32_t> threadBeginNode_;
    std::vector<std::uint32_t> threadEndNode_;
    std::vector<Epoch> threadEndEpoch_;

    std::vector<std::uint32_t> chainTicks_;
    /** Last event of each chain (kInvalidId for thread chains). */
    std::vector<trace::EventId> chainLast_;
    std::vector<trace::EventId> chainOf_;  ///< chain of each event
    /** Separate chain pool for binder events (section 5.3). */
    std::vector<ChainId> binderChains_;

    std::uint32_t traversalStamp_ = 0;
    GraphCounters counters_;
};

} // namespace asyncclock::graph

#endif // ASYNCCLOCK_GRAPH_EVENTRACER_HH
