#include "graph/eventracer.hh"

#include <algorithm>

#include "support/logging.hh"

namespace asyncclock::graph {

using clock::Epoch;
using trace::EventId;
using trace::kInvalidId;
using trace::OpId;
using trace::OpKind;
using trace::Operation;
using trace::QueueKind;
using trace::SendAttrs;
using trace::SendKind;
using trace::Task;
using trace::ThreadId;

EventRacerDetector::EventRacerDetector(trace::TraceSource &src,
                                       report::AccessChecker &checker,
                                       EventRacerConfig cfg)
    : source_(&src), checker_(checker), cfg_(cfg)
{
    syncEntities();
}

EventRacerDetector::EventRacerDetector(const trace::Trace &tr,
                                       report::AccessChecker &checker,
                                       EventRacerConfig cfg)
    : owned_(std::make_unique<trace::MaterializedSource>(tr)),
      source_(owned_.get()), checker_(checker), cfg_(cfg)
{
    syncEntities();
}

void
EventRacerDetector::syncEntities()
{
    const trace::TraceMeta &m = meta();
    std::size_t nt = m.threads().size();
    if (threadStates_.size() < nt) {
        threadStates_.resize(nt);
        loopers_.resize(nt);
        forkNode_.resize(nt, kInvalidId);
        threadBeginNode_.resize(nt, kInvalidId);
        threadEndNode_.resize(nt, kInvalidId);
        threadEndEpoch_.resize(nt);
    }
    std::size_t ne = m.events().size();
    if (eventStates_.size() < ne) {
        eventStates_.resize(ne);
        events_.resize(ne);
        chainOf_.resize(ne, kInvalidId);
    }
    std::size_t nq = m.queues().size();
    if (pending_.size() < nq)
        pending_.resize(nq);
    std::size_t nh = m.handles().size();
    if (handles_.size() < nh)
        handles_.resize(nh);
}

EventRacerDetector::TaskState &
EventRacerDetector::state(Task task)
{
    return task.isEvent() ? eventStates_[task.index()]
                          : threadStates_[task.index()];
}

clock::ChainId
EventRacerDetector::newChain()
{
    chainTicks_.push_back(0);
    chainLast_.push_back(kInvalidId);
    return static_cast<clock::ChainId>(chainTicks_.size() - 1);
}

Epoch
EventRacerDetector::tick(TaskState &ts)
{
    clock::Tick t = ++chainTicks_[ts.chain];
    // Owner tick: every newNode() snapshot of ts.vc happens right
    // after this, and joins into ts.vc happen before it.
    ts.vc.tick(ts.chain, t);
    return {ts.chain, t};
}

std::uint32_t
EventRacerDetector::newNode(OpId op, TaskState &ts)
{
    Node n;
    n.op = op;
    n.epoch = tick(ts);
    n.vc = ts.vc;
    if (ts.lastNode != kInvalidId)
        n.preds.push_back(ts.lastNode);
    nodes_.push_back(std::move(n));
    std::uint32_t id = static_cast<std::uint32_t>(nodes_.size() - 1);
    ts.lastNode = id;
    ++counters_.nodes;
    counters_.edges += nodes_[id].preds.size();
    return id;
}

bool
EventRacerDetector::processNext()
{
    Operation op;
    if (!source_->next(op))
        return false;
    syncEntities();
    processOp(op, static_cast<OpId>(cursor_));
    ++cursor_;
    return true;
}

void
EventRacerDetector::processOp(const Operation &op, OpId id)
{
    switch (op.kind) {
      case OpKind::ThreadBegin:
        {
            ThreadId t = op.task.index();
            TaskState &ts = threadStates_[t];
            ts.chain = newChain();
            ts.live = true;
            std::uint32_t fn = forkNode_[t];
            if (fn != kInvalidId)
                ts.vc = nodes_[fn].vc;
            std::uint32_t node = newNode(id, ts);
            if (fn != kInvalidId) {
                nodes_[node].preds.push_back(fn);
                ++counters_.edges;
            }
            threadBeginNode_[t] = node;
        }
        break;
      case OpKind::ThreadEnd:
        {
            ThreadId t = op.task.index();
            TaskState &ts = threadStates_[t];
            // Rule LOOPEND: a looper's end inherits every event it
            // executed.
            LooperState &ls = loopers_[t];
            ts.vc.joinWith(ls.endAccum);
            std::uint32_t node = newNode(id, ts);
            for (EventId e : ls.executed) {
                nodes_[node].preds.push_back(events_[e].endNode);
                ++counters_.edges;
            }
            threadEndNode_[t] = node;
            threadEndEpoch_[t] = nodes_[node].epoch;
            ts.live = false;
        }
        break;
      case OpKind::Fork:
        {
            TaskState &ts = state(op.task);
            std::uint32_t node = newNode(id, ts);
            forkNode_[op.target] = node;
        }
        break;
      case OpKind::Join:
        {
            TaskState &ts = state(op.task);
            std::uint32_t endNode = threadEndNode_[op.target];
            acAssert(endNode != kInvalidId, "join before thread end");
            ts.vc.joinWith(nodes_[endNode].vc);
            std::uint32_t node = newNode(id, ts);
            nodes_[node].preds.push_back(endNode);
            ++counters_.edges;
            if (op.task.isEvent())
                atomicFold(op.task.index(), ts, node);
        }
        break;
      case OpKind::Signal:
        {
            TaskState &ts = state(op.task);
            std::uint32_t node = newNode(id, ts);
            HandleState &h = handles_[op.target];
            h.vc.joinWith(nodes_[node].vc);
            h.signalNodes.push_back(node);
        }
        break;
      case OpKind::Wait:
        {
            TaskState &ts = state(op.task);
            HandleState &h = handles_[op.target];
            ts.vc.joinWith(h.vc);
            std::uint32_t node = newNode(id, ts);
            for (std::uint32_t s : h.signalNodes) {
                nodes_[node].preds.push_back(s);
                ++counters_.edges;
            }
            if (op.task.isEvent())
                atomicFold(op.task.index(), ts, node);
        }
        break;
      case OpKind::Send:
        {
            TaskState &ts = state(op.task);
            std::uint32_t node = newNode(id, ts);
            nodes_[node].sendEvent = op.event;
            events_[op.event].sendNode = node;
            pending_[op.target].push_back(op.event);
        }
        break;
      case OpKind::RemoveEvent:
        {
            TaskState &ts = state(op.task);
            newNode(id, ts);
            events_[op.event].removed = true;
            auto &pq = pending_[meta().event(op.event).queue];
            pq.erase(std::find(pq.begin(), pq.end(), op.event));
        }
        break;
      case OpKind::EventBegin:
        onEventBegin(op, id);
        break;
      case OpKind::EventEnd:
        {
            EventId e = op.task.index();
            TaskState &ts = eventStates_[e];
            std::uint32_t node = newNode(id, ts);
            events_[e].endNode = node;
            events_[e].endEpoch = nodes_[node].epoch;
            ThreadId looper = meta().looperOf(e);
            if (looper != kInvalidId) {
                loopers_[looper].endAccum.joinWith(nodes_[node].vc);
                loopers_[looper].executed.push_back(e);
            }
        }
        break;
      case OpKind::Read:
      case OpKind::Write:
        {
            TaskState &ts = state(op.task);
            report::Access acc;
            acc.op = id;
            acc.epoch = tick(ts);
            acc.site = op.site;
            acc.task = op.task;
            acc.isWrite = op.kind == OpKind::Write;
            checker_.onAccess(op.target, acc, ts.vc);
        }
        break;
    }
}

namespace {

/**
 * EventRacer's traversal pruning: expansion may stop below send(E')
 * only if E' *dominates* every potential predecessor of E that could
 * lie deeper on this path — i.e. any X with send(X) hb send(E') and
 * priority(X, E) also has priority(X, E'). With Table 1 this holds
 * exactly when E' is sync, has E's kind, and carries the same time
 * constraint; equality is common for Delayed events (delays repeat,
 * FIFO posts are all zero) and rare for AtTime events — the paper's
 * observation that pruning "nearly pruned nothing for AtTime events".
 */
bool
canPrune(const SendAttrs &found, const SendAttrs &target)
{
    return !found.async && found.kind == target.kind &&
           found.time == target.time &&
           (found.kind == SendKind::Delayed ||
            found.kind == SendKind::AtTime);
}

} // namespace

std::vector<EventId>
EventRacerDetector::collectPredecessors(EventId e, VectorClock &vc,
                                        std::uint32_t beginNode)
{
    std::vector<EventId> predEvents;
    const trace::MetaEvent &info = meta().event(e);
    const bool binder =
        meta().queue(info.queue).kind == QueueKind::Binder;
    if (!binder && info.attrs.kind == SendKind::AtFront) {
        // No Table 1 row orders anything before an AtFront event.
        return predEvents;
    }

    ++traversalStamp_;
    std::vector<std::uint32_t> stack;
    auto push = [&](std::uint32_t n) {
        if (nodes_[n].stamp != traversalStamp_) {
            nodes_[n].stamp = traversalStamp_;
            stack.push_back(n);
            ++counters_.traversalVisits;
        }
    };
    for (std::uint32_t p : nodes_[events_[e].sendNode].preds)
        push(p);

    while (!stack.empty()) {
        std::uint32_t n = stack.back();
        stack.pop_back();
        Node &node = nodes_[n];
        EventId se = node.sendEvent;
        if (se != kInvalidId && se != e &&
            meta().event(se).queue == info.queue) {
            const trace::MetaEvent &seInfo = meta().event(se);
            if (binder) {
                // Binder rule: begins follow sends; inherit the begin.
                std::uint32_t bn = events_[se].beginNode;
                acAssert(bn != kInvalidId,
                         "binder FIFO dispatch violated");
                vc.joinWith(nodes_[bn].vc);
                nodes_[beginNode].preds.push_back(bn);
                ++counters_.edges;
                ++counters_.predecessorsFound;
                continue;  // latest send per path dominates
            }
            if (events_[se].removed) {
                // Removed events relay: nothing to inherit beyond the
                // send clock (already included); keep searching past.
            } else if (trace::priorityOrders(seInfo.attrs,
                                             info.attrs)) {
                std::uint32_t en = events_[se].endNode;
                acAssert(en != kInvalidId,
                         "priority dispatch violated");
                vc.joinWith(nodes_[en].vc);
                nodes_[beginNode].preds.push_back(en);
                ++counters_.edges;
                ++counters_.predecessorsFound;
                predEvents.push_back(se);
                if (cfg_.pruning &&
                    canPrune(seInfo.attrs, info.attrs)) {
                    continue;
                }
            }
        }
        for (std::uint32_t p : node.preds)
            push(p);
    }
    return predEvents;
}

void
EventRacerDetector::atomicFold(EventId self, TaskState &ts,
                               std::uint32_t node)
{
    ThreadId looper = meta().looperOf(self);
    if (looper == kInvalidId)
        return;
    LooperState &ls = loopers_[looper];
    bool changed = true;
    while (changed) {
        changed = false;
        for (EventId e1 : ls.executed) {
            if (e1 == self)
                continue;
            const EventState &es = events_[e1];
            if (ts.vc.knows(es.beginEpoch) &&
                !ts.vc.knows(es.endEpoch)) {
                ts.vc.joinWith(nodes_[es.endNode].vc);
                nodes_[node].preds.push_back(es.endNode);
                ++counters_.edges;
                changed = true;
            }
        }
    }
    nodes_[node].vc = ts.vc;
}

void
EventRacerDetector::atFrontFold(EventId e, TaskState &ts,
                                std::uint32_t node)
{
    EventState &es = events_[e];
    const Epoch mySend = nodes_[es.sendNode].epoch;
    std::vector<bool> joined(es.sentAtFront.size(), false);
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = 0; i < es.sentAtFront.size(); ++i) {
            if (joined[i])
                continue;
            EventId e1 = es.sentAtFront[i];
            const EventState &fs = events_[e1];
            if (fs.endNode == kInvalidId ||
                ts.vc.knows(fs.endEpoch)) {
                // Already (transitively) inherited: skip, or the
                // outer begin-time fixpoint would re-add this edge
                // forever.
                joined[i] = true;
                continue;
            }
            // Premises: send(E) hb send(E1) and send(E1) hb begin(E).
            if (nodes_[fs.sendNode].vc.knows(mySend) &&
                ts.vc.knows(nodes_[fs.sendNode].epoch)) {
                ts.vc.joinWith(nodes_[fs.endNode].vc);
                nodes_[node].preds.push_back(fs.endNode);
                ++counters_.edges;
                joined[i] = true;
                changed = true;
            }
        }
    }
    nodes_[node].vc = ts.vc;
}

void
EventRacerDetector::onEventBegin(const Operation &op, OpId id)
{
    EventId e = op.task.index();
    EventState &es = events_[e];
    TaskState &ts = eventStates_[e];
    const trace::MetaEvent &info = meta().event(e);
    const bool binder =
        meta().queue(info.queue).kind == QueueKind::Binder;

    // Rule SEND: inherit the send clock.
    ts.vc = nodes_[es.sendNode].vc;
    // Rule LOOPBEGIN.
    ThreadId looper = meta().looperOf(e);
    std::vector<std::uint32_t> extraPreds{es.sendNode};
    if (looper != kInvalidId &&
        threadBeginNode_[looper] != kInvalidId) {
        ts.vc.joinWith(nodes_[threadBeginNode_[looper]].vc);
        extraPreds.push_back(threadBeginNode_[looper]);
    }

    // The begin epoch needs a chain, the greedy chain choice needs
    // the predecessors, and the predecessor search wants a node to
    // attach edges to. Resolve the cycle with a scratch node at the
    // back of the node array: collect predecessors and run the folds
    // against it, then move its edges onto the real begin node
    // created after the chain is chosen.
    VectorClock &vc = ts.vc;
    nodes_.push_back(Node{});
    std::uint32_t scratch =
        static_cast<std::uint32_t>(nodes_.size() - 1);
    std::vector<EventId> predEvents =
        collectPredecessors(e, vc, scratch);
    // ATFRONT and ATOMIC can enable each other; iterate to fixpoint.
    bool changed = true;
    while (changed) {
        std::size_t before = nodes_[scratch].preds.size();
        atFrontFold(e, ts, scratch);
        atomicFold(e, ts, scratch);
        changed = nodes_[scratch].preds.size() != before;
    }
    std::vector<std::uint32_t> collected =
        std::move(nodes_[scratch].preds);
    nodes_.pop_back();

    // Greedy chain decomposition.
    clock::ChainId chain = kInvalidId;
    if (!binder) {
        for (EventId p : predEvents) {
            clock::ChainId c = chainOf_[p];
            if (c != kInvalidId && chainLast_[c] == p) {
                chain = c;
                break;
            }
        }
    } else {
        // Binder pool: reuse any binder chain whose last event has
        // *ended* and whose end is causally known (so the chain stays
        // a causal sequence).
        for (clock::ChainId c : binderChains_) {
            EventId last = chainLast_[c];
            if (last != kInvalidId &&
                events_[last].endNode != kInvalidId &&
                vc.knows(events_[last].endEpoch)) {
                chain = c;
                break;
            }
        }
    }
    if (chain == kInvalidId) {
        chain = newChain();
        if (binder)
            binderChains_.push_back(chain);
    }
    ts.chain = chain;
    chainOf_[e] = chain;
    chainLast_[chain] = e;

    std::uint32_t node = newNode(id, ts);
    for (std::uint32_t p : extraPreds) {
        nodes_[node].preds.push_back(p);
        ++counters_.edges;
    }
    // `collected` edges were already counted when attached to the
    // scratch node.
    nodes_[node].preds.insert(nodes_[node].preds.end(),
                              collected.begin(), collected.end());
    es.beginNode = node;
    es.beginEpoch = nodes_[node].epoch;

    // Leave the queue; feed sent-at-front lists.
    auto &pq = pending_[info.queue];
    pq.erase(std::find(pq.begin(), pq.end(), e));
    if (!binder && info.attrs.kind == SendKind::AtFront) {
        for (EventId e2 : pq)
            events_[e2].sentAtFront.push_back(e);
    }
}

std::uint64_t
EventRacerDetector::metadataBytes() const
{
    std::uint64_t total = 0;
    for (const Node &n : nodes_) {
        total += sizeof(Node) + n.vc.byteSize() +
                 n.preds.capacity() * sizeof(std::uint32_t);
    }
    for (const TaskState &ts : threadStates_)
        total += sizeof(TaskState) + ts.vc.byteSize();
    for (const TaskState &ts : eventStates_)
        total += sizeof(TaskState) + ts.vc.byteSize();
    for (const EventState &es : events_) {
        total += sizeof(EventState) +
                 es.sentAtFront.capacity() * sizeof(EventId);
    }
    for (const HandleState &h : handles_) {
        total += sizeof(HandleState) + h.vc.byteSize() +
                 h.signalNodes.capacity() * sizeof(std::uint32_t);
    }
    for (const LooperState &ls : loopers_) {
        total += ls.endAccum.byteSize() +
                 ls.executed.capacity() * sizeof(EventId);
    }
    total += chainTicks_.capacity() * sizeof(std::uint32_t);
    total += chainLast_.capacity() * sizeof(EventId);
    total += checker_.byteSize();
    return total;
}

void
EventRacerDetector::sampleMemory(MemStats &stats) const
{
    std::uint64_t nodeBytes = 0, clockBytes = 0;
    for (const Node &n : nodes_) {
        nodeBytes += sizeof(Node) +
                     n.preds.capacity() * sizeof(std::uint32_t);
        clockBytes += n.vc.byteSize();
    }
    stats.sample(MemCat::GraphNode, nodeBytes);
    stats.sample(MemCat::VectorClock, clockBytes);
    stats.sample(MemCat::VarState, checker_.byteSize());
    stats.sample(MemCat::Other,
                 metadataBytes() - nodeBytes - clockBytes -
                     checker_.byteSize());
}

} // namespace asyncclock::graph
