#include "report/export.hh"

#include "support/json.hh"

namespace asyncclock::report {

std::string
toJson(const ReportSummary &summary, const trace::Trace &tr)
{
    JsonWriter w;
    w.beginObject();
    w.field("allGroups", summary.allGroups);
    w.field("filteredGroups", summary.filteredGroups);
    w.field("harmful", summary.harmful);
    w.field("harmlessTypeI", summary.typeI);
    w.field("harmlessTypeII", summary.typeII);
    w.field("harmlessOther", summary.otherHarmless);
    w.key("groups").beginArray();
    for (const RaceGroup &g : summary.reported) {
        w.beginObject();
        w.field("verdict", verdictName(g.verdict));
        w.field("races", static_cast<std::uint64_t>(g.raceCount));
        w.field("siteA", tr.site(g.siteA).name);
        w.field("siteB", tr.site(g.siteB).name);
        w.field("variable", tr.var(g.sample.var).name);
        w.field("firstAccessWrite", g.sample.prevWrite);
        w.field("secondAccessWrite", g.sample.curWrite);
        w.field("firstOp",
                static_cast<std::uint64_t>(g.sample.prevOp));
        w.field("secondOp",
                static_cast<std::uint64_t>(g.sample.curOp));
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
toJson(const trace::TraceStats &stats)
{
    JsonWriter w;
    w.beginObject();
    w.field("ops", stats.ops);
    w.field("syncOps", stats.syncOps);
    w.field("memOps", stats.memOps);
    w.field("workerThreads", stats.workerThreads);
    w.field("looperThreads", stats.looperThreads);
    w.field("binderThreads", stats.binderThreads);
    w.field("looperEvents", stats.looperEvents);
    w.field("binderEvents", stats.binderEvents);
    w.field("removedEvents", stats.removedEvents);
    w.field("spanMs", stats.spanMs);
    w.endObject();
    return w.str();
}

} // namespace asyncclock::report
