#include "report/export.hh"

#include "support/json.hh"

namespace asyncclock::report {

namespace {

/** Body shared by both report overloads: fields of the open summary
 * object (caller owns beginObject/endObject). */
void
writeSummary(JsonWriter &w, const ReportSummary &summary,
             const trace::Trace &tr)
{
    w.field("allGroups", summary.allGroups);
    w.field("filteredGroups", summary.filteredGroups);
    w.field("harmful", summary.harmful);
    w.field("harmlessTypeI", summary.typeI);
    w.field("harmlessTypeII", summary.typeII);
    w.field("harmlessOther", summary.otherHarmless);
    w.key("groups").beginArray();
    for (const RaceGroup &g : summary.reported) {
        w.beginObject();
        w.field("verdict", verdictName(g.verdict));
        w.field("races", static_cast<std::uint64_t>(g.raceCount));
        w.field("siteA", tr.site(g.siteA).name);
        w.field("siteB", tr.site(g.siteB).name);
        w.field("variable", tr.var(g.sample.var).name);
        w.field("firstAccessWrite", g.sample.prevWrite);
        w.field("secondAccessWrite", g.sample.curWrite);
        w.field("firstOp",
                static_cast<std::uint64_t>(g.sample.prevOp));
        w.field("secondOp",
                static_cast<std::uint64_t>(g.sample.curOp));
        w.endObject();
    }
    w.endArray();
}

/** Verdict tallies + per-class verdict array of the open object
 * (caller owns beginObject/endObject). Shared by the "verification"
 * and "prediction" sections. */
void
writeTriage(JsonWriter &w, const TriageReport &triage,
            const trace::Trace &tr)
{
    w.field("classes",
            static_cast<std::uint64_t>(triage.classes.size()));
    w.field("confirmed", triage.confirmed);
    w.field("benign", triage.benign);
    w.field("infeasible", triage.infeasible);
    w.field("unverified", triage.unverified);
    auto siteName = [&](trace::SiteId id) -> std::string {
        return id < tr.sites().size() ? tr.site(id).name
                                      : "<unknown-site>";
    };
    w.key("verdicts").beginArray();
    for (const TriageClass &cls : triage.classes) {
        w.beginObject();
        w.field("verdict", replayVerdictName(cls.verdict));
        w.field("variable", cls.var < tr.vars().size()
                                ? tr.var(cls.var).name
                                : "<unknown-var>");
        w.field("firstSite", siteName(cls.firstSite));
        w.field("secondSite", siteName(cls.secondSite));
        w.field("races", static_cast<std::uint64_t>(cls.raceCount));
        w.field("firstOp", static_cast<std::uint64_t>(
                               cls.representative.prevOp));
        w.field("secondOp", static_cast<std::uint64_t>(
                                cls.representative.curOp));
        w.field("detail", cls.detail);
        w.endObject();
    }
    w.endArray();
}

} // namespace

std::string
toJson(const ReportSummary &summary, const trace::Trace &tr)
{
    JsonWriter w;
    w.beginObject();
    writeSummary(w, summary, tr);
    w.endObject();
    return w.str();
}

std::string
toJson(const ReportSummary &summary, const TriageReport &triage,
       const trace::Trace &tr)
{
    JsonWriter w;
    w.beginObject();
    writeSummary(w, summary, tr);
    w.key("verification").beginObject();
    writeTriage(w, triage, tr);
    w.endObject();
    w.endObject();
    return w.str();
}

std::string
toJson(const ReportSummary &summary, const TriageReport &triage,
       const PredictionExport &prediction, const trace::Trace &tr)
{
    JsonWriter w;
    w.beginObject();
    writeSummary(w, summary, tr);
    w.key("verification").beginObject();
    writeTriage(w, triage, tr);
    w.endObject();
    w.key("prediction").beginObject();
    w.field("candidates", prediction.candidates);
    w.field("observed", prediction.observed);
    w.field("hidden", prediction.hidden);
    w.field("shadowed", prediction.shadowed);
    w.field("windowDrops", prediction.windowDrops);
    w.field("capDrops", prediction.capDrops);
    w.field("malformedDropped", prediction.malformedDropped);
    if (prediction.triage)
        writeTriage(w, *prediction.triage, tr);
    if (prediction.recallScored) {
        w.key("recall").beginObject();
        w.field("weakRaces", prediction.weakRaces);
        w.field("observedHits", prediction.observedHits);
        w.field("combinedHits", prediction.combinedHits);
        w.field("observedRecall", prediction.observedRecall);
        w.field("combinedRecall", prediction.combinedRecall);
        w.endObject();
    }
    w.endObject();
    w.endObject();
    return w.str();
}

std::string
toJson(const trace::TraceStats &stats)
{
    JsonWriter w;
    w.beginObject();
    w.field("ops", stats.ops);
    w.field("syncOps", stats.syncOps);
    w.field("memOps", stats.memOps);
    w.field("workerThreads", stats.workerThreads);
    w.field("looperThreads", stats.looperThreads);
    w.field("binderThreads", stats.binderThreads);
    w.field("looperEvents", stats.looperEvents);
    w.field("binderEvents", stats.binderEvents);
    w.field("removedEvents", stats.removedEvents);
    w.field("spanMs", stats.spanMs);
    w.endObject();
    return w.str();
}

} // namespace asyncclock::report
