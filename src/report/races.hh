/**
 * @file
 * Race grouping, filtering, and classification (paper section 6).
 *
 * The raw race list from a checker is post-processed the way the
 * paper's tool reports to users:
 *
 *  1. *User-induced filter*: only races between user-induced accesses
 *     are reported — both sites must be user code or library code
 *     (libraries are called by user code in our model); races wholly
 *     inside the Android framework are dropped.
 *  2. *Commutativity filter*: a conservative whitelist marks library
 *     operations that commute (e.g. two List.add calls both bumping
 *     size, counter increments, logger appends). Sites carry a
 *     commutativity group id; a race between two sites of the same
 *     group is filtered as harmless.
 *  3. *Race groups*: races induced by the same pair of user-code
 *     sites are reported as one group (one investigation unit).
 *
 * For experiments, groups are additionally scored against the
 * workload generator's ground-truth SeedLabels (harmful / Type I
 * delayed-update / Type II control-dependent / other), producing the
 * rows of Table 3.
 */

#ifndef ASYNCCLOCK_REPORT_RACES_HH
#define ASYNCCLOCK_REPORT_RACES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "report/checker.hh"
#include "trace/source.hh"
#include "trace/trace.hh"

namespace asyncclock::report {

/** Classification of a reported group against ground truth. */
enum class Verdict : std::uint8_t {
    Harmful,
    HarmlessTypeI,      ///< delayed-update idiom
    HarmlessTypeII,     ///< control-dependent flag idiom
    HarmlessOther,
};

const char *verdictName(Verdict verdict);

/** Races collapsed by their (unordered) site pair. */
struct RaceGroup
{
    trace::SiteId siteA = trace::kInvalidId;  ///< min site id
    trace::SiteId siteB = trace::kInvalidId;  ///< max site id
    std::uint32_t raceCount = 0;
    /** First race seen, as the group's representative. */
    RaceReport sample{};
    Verdict verdict = Verdict::HarmlessOther;
};

struct FilterConfig
{
    bool userInducedOnly = true;
    bool commutativityFilter = true;
};

/** Table 3 row for one analysis. */
struct ReportSummary
{
    /** User-induced race groups before the commutativity filter
     * ("All Races Groups"). */
    std::uint64_t allGroups = 0;
    /** Groups removed by the commutativity filter ("Filtered"). */
    std::uint64_t filteredGroups = 0;
    // Ground-truth classification of what remains:
    std::uint64_t harmful = 0;
    std::uint64_t typeI = 0;
    std::uint64_t typeII = 0;
    std::uint64_t otherHarmless = 0;
    /** The reported groups (post-filter). */
    std::vector<RaceGroup> reported;

    /**
     * Caveats about this run's completeness — corrupt records
     * skipped, protocol-invalid ops dropped, degradation-ladder rungs
     * fired. Empty for a clean run; rendered after the count line so
     * a degraded report can never be mistaken for an authoritative
     * one.
     */
    std::vector<std::string> notes;

    std::string summary() const;
};

/**
 * Post-processor turning a raw race list into a user-facing report.
 * Holds its own copy of the entity tables (site/var names and labels),
 * so it works the same over a materialized trace or the meta view a
 * streaming source accumulated.
 */
class RaceAnalyzer
{
  public:
    explicit RaceAnalyzer(const trace::Trace &tr)
        : meta_(trace::TraceMeta::fromTrace(tr))
    {
    }
    explicit RaceAnalyzer(trace::TraceMeta meta)
        : meta_(std::move(meta))
    {
    }

    /** Is @p site user-induced (user code, or a library reachable
     * from user code)? */
    bool userInduced(trace::SiteId site) const;

    /** Are the two sites whitelisted as mutually commutative? */
    bool commutative(trace::SiteId a, trace::SiteId b) const;

    /** Run the full pipeline. */
    ReportSummary analyze(const std::vector<RaceReport> &races,
                          FilterConfig cfg = {}) const;

    /** Human-readable description of one group. */
    std::string describe(const RaceGroup &group) const;

  private:
    Verdict classify(const RaceGroup &group) const;

    trace::TraceMeta meta_;
};

/**
 * The canonical text race report: the summary line (with notes), then
 * one indented describe() line per reported group, newline-terminated
 * throughout. Every consumer that promises byte-identical reports
 * across runs (trace_analyzer's --report-out, the daemon's per-session
 * reports) renders through this one function, so "identical" can never
 * drift into "identical except for formatting".
 */
std::string renderReportText(const RaceAnalyzer &analyzer,
                             const ReportSummary &summary);

} // namespace asyncclock::report

#endif // ASYNCCLOCK_REPORT_RACES_HH
