#include "report/races.hh"

#include <algorithm>
#include <map>

#include "support/format.hh"

namespace asyncclock::report {

using trace::kInvalidId;
using trace::SeedLabel;
using trace::SiteId;

const char *
verdictName(Verdict verdict)
{
    switch (verdict) {
      case Verdict::Harmful: return "harmful";
      case Verdict::HarmlessTypeI: return "harmless(type-I)";
      case Verdict::HarmlessTypeII: return "harmless(type-II)";
      case Verdict::HarmlessOther: return "harmless(other)";
    }
    return "?";
}

bool
RaceAnalyzer::userInduced(SiteId site) const
{
    if (site == kInvalidId)
        return false;
    return meta_.site(site).frame != trace::Frame::Framework;
}

bool
RaceAnalyzer::commutative(SiteId a, SiteId b) const
{
    if (a == kInvalidId || b == kInvalidId)
        return false;
    std::uint32_t ga = meta_.site(a).commGroup;
    std::uint32_t gb = meta_.site(b).commGroup;
    return ga != kInvalidId && ga == gb;
}

Verdict
RaceAnalyzer::classify(const RaceGroup &group) const
{
    switch (meta_.var(group.sample.var).seedLabel) {
      case SeedLabel::Harmful:
        return Verdict::Harmful;
      case SeedLabel::HarmlessTypeI:
        return Verdict::HarmlessTypeI;
      case SeedLabel::HarmlessTypeII:
        return Verdict::HarmlessTypeII;
      case SeedLabel::HarmlessCommutative:
      case SeedLabel::HarmlessOther:
      case SeedLabel::None:
        return Verdict::HarmlessOther;
    }
    return Verdict::HarmlessOther;
}

ReportSummary
RaceAnalyzer::analyze(const std::vector<RaceReport> &races,
                      FilterConfig cfg) const
{
    // Group user-induced races by unordered site pair.
    std::map<std::pair<SiteId, SiteId>, RaceGroup> groups;
    for (const RaceReport &race : races) {
        if (cfg.userInducedOnly && (!userInduced(race.prevSite) ||
                                    !userInduced(race.curSite))) {
            continue;
        }
        SiteId a = std::min(race.prevSite, race.curSite);
        SiteId b = std::max(race.prevSite, race.curSite);
        RaceGroup &g = groups[{a, b}];
        if (g.raceCount == 0) {
            g.siteA = a;
            g.siteB = b;
            g.sample = race;
        } else if (race < g.sample) {
            // Smallest (prevOp, curOp) pair represents the group, so
            // the choice does not depend on checker emission order
            // (the sharded checker merges shards nondeterministically).
            g.sample = race;
        }
        ++g.raceCount;
    }

    ReportSummary out;
    out.allGroups = groups.size();
    for (auto &[key, group] : groups) {
        if (cfg.commutativityFilter &&
            commutative(group.siteA, group.siteB)) {
            ++out.filteredGroups;
            continue;
        }
        group.verdict = classify(group);
        switch (group.verdict) {
          case Verdict::Harmful: ++out.harmful; break;
          case Verdict::HarmlessTypeI: ++out.typeI; break;
          case Verdict::HarmlessTypeII: ++out.typeII; break;
          case Verdict::HarmlessOther: ++out.otherHarmless; break;
        }
        out.reported.push_back(group);
    }
    // Total deterministic export order: by variable, then by the
    // representative pair's op ids (site-pair map order would leak
    // site numbering, which differs between generator revisions).
    std::stable_sort(out.reported.begin(), out.reported.end(),
                     [](const RaceGroup &x, const RaceGroup &y) {
                         if (x.sample.var != y.sample.var)
                             return x.sample.var < y.sample.var;
                         return x.sample < y.sample;
                     });
    return out;
}

std::string
RaceAnalyzer::describe(const RaceGroup &group) const
{
    const auto &sa = meta_.site(group.siteA);
    const auto &sb = meta_.site(group.siteB);
    const auto &var = meta_.var(group.sample.var);
    return strf("%s: %u race(s) between %s and %s on '%s' (%s %s)",
                verdictName(group.verdict), group.raceCount,
                sa.name.c_str(), sb.name.c_str(), var.name.c_str(),
                group.sample.prevWrite ? "write" : "read",
                group.sample.curWrite ? "vs write" : "vs read");
}

std::string
ReportSummary::summary() const
{
    std::string text =
        strf("groups=%llu filtered=%llu harmful=%llu "
             "harmless(I/II/other)=%llu/%llu/%llu",
             (unsigned long long)allGroups,
             (unsigned long long)filteredGroups,
             (unsigned long long)harmful,
             (unsigned long long)typeI,
             (unsigned long long)typeII,
             (unsigned long long)otherHarmless);
    for (const std::string &note : notes)
        text += "\n  note: " + note;
    return text;
}

std::string
renderReportText(const RaceAnalyzer &analyzer,
                 const ReportSummary &summary)
{
    std::string text = summary.summary() + "\n";
    for (const RaceGroup &group : summary.reported)
        text += "  " + analyzer.describe(group) + "\n";
    return text;
}

} // namespace asyncclock::report
