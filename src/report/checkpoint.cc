#include "report/checkpoint.hh"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "support/format.hh"

namespace asyncclock::report {

const char kCheckpointMagic[4] = {'A', 'C', 'C', 'P'};

namespace {

void
putU64(std::ostream &out, std::uint64_t v)
{
    char buf[8];
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    out.write(buf, 8);
}

bool
getU64(std::istream &in, std::uint64_t &v)
{
    char buf[8];
    in.read(buf, 8);
    if (in.gcount() != 8)
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(buf[i]))
             << (8 * i);
    return true;
}

} // namespace

Expected<CheckpointMeta>
traceIdentity(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return Status::error(ErrCode::IoError,
                             "cannot open trace for hashing: " + path);
    CheckpointMeta meta;
    std::uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a 64 offset
    char buf[65536];
    for (;;) {
        in.read(buf, sizeof(buf));
        std::streamsize got = in.gcount();
        if (got <= 0)
            break;
        for (std::streamsize i = 0; i < got; ++i) {
            hash ^= static_cast<unsigned char>(buf[i]);
            hash *= 0x100000001b3ull;
        }
        meta.traceBytes += static_cast<std::uint64_t>(got);
    }
    if (in.bad())
        return Status::error(ErrCode::IoError,
                             "read failed while hashing: " + path);
    meta.traceHash = hash;
    return meta;
}

Status
saveCheckpoint(const std::string &path, const CheckpointMeta &meta,
               const FastTrackChecker &checker)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp,
                          std::ios::binary | std::ios::trunc);
        if (!out)
            return Status::error(ErrCode::IoError,
                                 "cannot open checkpoint for write: " +
                                     tmp);
        out.write(kCheckpointMagic, 4);
        out.put(static_cast<char>(kCheckpointVersion));
        out.put(static_cast<char>(clock::defaultBackend()));
        out.put(static_cast<char>(meta.modelTag));
        putU64(out, meta.opsProcessed);
        putU64(out, meta.accessesChecked);
        putU64(out, meta.traceBytes);
        putU64(out, meta.traceHash);
        if (Status st = checker.saveState(out); !st)
            return st;
        out.flush();
        if (!out)
            return Status::error(ErrCode::IoError,
                                 "write failed: " + tmp);
    }
    // Publish atomically: a kill before the rename leaves the
    // previous checkpoint; after it, the new one. Never a torn file
    // under the final name.
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        return Status::error(ErrCode::IoError,
                             "cannot rename " + tmp + " to " + path);
    return Status::ok();
}

Expected<CheckpointMeta>
loadCheckpoint(const std::string &path, FastTrackChecker &checker)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return Status::error(ErrCode::IoError,
                             "cannot open checkpoint: " + path);
    char magic[4];
    in.read(magic, 4);
    if (in.gcount() != 4 ||
        std::memcmp(magic, kCheckpointMagic, 4) != 0) {
        return Status::error(ErrCode::ParseError,
                             "not a checkpoint file: " + path);
    }
    int version = in.get();
    if (version < 1 || version > kCheckpointVersion) {
        return Status::error(
            ErrCode::Unsupported,
            strf("unsupported checkpoint version %d (expected <= %d)",
                 version, kCheckpointVersion));
    }
    CheckpointMeta meta;
    if (version >= 2) {
        // Clock-backend tag. Any known backend loads fine: entries
        // are serialized in canonical sparse form and rebuilt under
        // the loader's backend. Pre-v4 files predate the hybrid
        // backend, so a hybrid tag there is corruption, not a newer
        // writer.
        int maxTag = version >= 4
                         ? static_cast<int>(clock::kBackendCount)
                         : 3;
        int tag = in.get();
        if (tag < 0 || tag >= maxTag) {
            return Status::error(
                ErrCode::Corrupt,
                strf("bad clock-backend tag %d in checkpoint", tag));
        }
        meta.clockBackend = static_cast<clock::Backend>(tag);
    }
    if (version >= 3) {
        int tag = in.get();
        if (tag < 0 || tag >= kModelTagCount) {
            return Status::error(
                ErrCode::Corrupt,
                strf("bad causality-model tag %d in checkpoint", tag));
        }
        meta.modelTag = static_cast<std::uint8_t>(tag);
    }
    if (!getU64(in, meta.opsProcessed) ||
        !getU64(in, meta.accessesChecked) ||
        !getU64(in, meta.traceBytes) || !getU64(in, meta.traceHash)) {
        return Status::error(ErrCode::Truncated,
                             "truncated checkpoint header: " + path);
    }
    if (Status st = checker.loadState(in); !st)
        return st;
    return meta;
}

} // namespace asyncclock::report
