/**
 * @file
 * Crash-safe checkpoint/resume for analysis runs.
 *
 * A multi-hour analysis killed at 90% should not start over. Full
 * AsyncClockDetector serialization is intentionally NOT attempted —
 * its metadata is a refcounted, possibly-cyclic object graph whose
 * faithful encoding would be a second implementation of the detector.
 * Instead the checkpoint is a *logical* snapshot exploiting the
 * pipeline's split:
 *
 *  - clock inference (the detector) is a deterministic function of
 *    the op stream and config — it is cheap to REPLAY;
 *  - the checker is a deterministic state machine over the access
 *    sequence the detector emits — it is cheap to SNAPSHOT exactly
 *    (FastTrackChecker::saveState).
 *
 * So a checkpoint stores: the trace's identity, the op cursor, the
 * count K of accesses already checked, and the exact checker state.
 * Resume re-runs the detector from op 0 against a ResumeFilter that
 * discards the first K accesses (the restored checker already
 * contains their effect) and forwards the rest. The final race report
 * is byte-identical to an uninterrupted run, because both sides are
 * deterministic and the detector's memory-pressure ladder keys off
 * detector-only bytes (checker bytes excluded — see
 * DetectorConfig::memBudgetBytes).
 *
 * Crash safety: checkpoints are written to `<path>.tmp` and renamed
 * into place, so a kill mid-write leaves the previous checkpoint
 * intact. The file is versioned ("ACCP" + version) and carries the
 * trace's size and content hash; resume against a different or
 * modified trace is refused.
 *
 * Not supported: resuming a sharded-checker run (per-shard state
 * interleaving is schedule-dependent; loadCheckpoint callers must use
 * the sequential checker) — the analyzer reports ErrCode::Unsupported.
 */

#ifndef ASYNCCLOCK_REPORT_CHECKPOINT_HH
#define ASYNCCLOCK_REPORT_CHECKPOINT_HH

#include <cstdint>
#include <string>

#include "report/checker.hh"
#include "report/fasttrack.hh"
#include "support/status.hh"

namespace asyncclock::report {

/** Magic bytes opening a checkpoint file ("ACCP") + format version.
 * v1: original header. v2: adds a clock-backend tag byte (see
 * clock::Backend) after the version. The tag is informational —
 * checker state is serialized as canonically sorted (chain, tick)
 * entries, so loading converts to whatever backend the loading
 * process runs, and v1 files (implicitly sparse) load unchanged.
 * v3: adds a causality-model tag byte after the backend byte. Unlike
 * the backend tag this one is semantic: resume replays the detector,
 * and a different model would replay a different access sequence, so
 * loaders (trace_analyzer) refuse a checkpoint whose model differs
 * from the run's. v1/v2 files (implicitly looper) load unchanged.
 * v4: the backend tag may also be Hybrid (3). The layout is
 * unchanged; the version bump exists so v3 readers reject hybrid
 * tags they cannot name instead of misreading them, while v4 readers
 * accept tags from every older version. */
extern const char kCheckpointMagic[4];
constexpr std::uint8_t kCheckpointVersion = 4;

/** Causality-model tag values (match core::ModelKind; kept as a raw
 * byte here because report/ sits below core/ in the layering). */
constexpr std::uint8_t kModelTagLooper = 0;
constexpr std::uint8_t kModelTagAsync = 1;
constexpr std::uint8_t kModelTagCount = 2;

/** Everything a checkpoint records besides the checker state. */
struct CheckpointMeta
{
    /** Ops the detector had consumed when the snapshot was taken. */
    std::uint64_t opsProcessed = 0;
    /** Accesses the checker had absorbed (the ResumeFilter skip). */
    std::uint64_t accessesChecked = 0;
    /** Identity of the trace being analyzed (size + FNV-1a hash);
     * resume refuses a mismatch. */
    std::uint64_t traceBytes = 0;
    std::uint64_t traceHash = 0;
    /** Clock backend of the writing process (v2+; v1 files report
     * Sparse). Loading never requires a match — see
     * kCheckpointVersion. */
    clock::Backend clockBackend = clock::Backend::Sparse;
    /** Causality model of the writing run (v3+; older files report
     * looper). Resume requires a match — see kCheckpointVersion. */
    std::uint8_t modelTag = kModelTagLooper;
};

/** Size + FNV-1a content hash of @p path (the identity stored in and
 * verified against checkpoints). */
Expected<CheckpointMeta> traceIdentity(const std::string &path);

/** Atomically write checkpoint @p meta + @p checker state to
 * @p path (via `<path>.tmp` + rename). */
Status saveCheckpoint(const std::string &path,
                      const CheckpointMeta &meta,
                      const FastTrackChecker &checker);

/** Load a checkpoint, restoring @p checker; returns its meta.
 * Verifies magic, version, and framing — a truncated or corrupt file
 * yields a structured error, never a partial restore. */
Expected<CheckpointMeta> loadCheckpoint(const std::string &path,
                                        FastTrackChecker &checker);

/**
 * AccessChecker adapter that discards the first `skip` accesses and
 * forwards the rest — the replay half of resume. Also the access
 * counter for runs that may themselves be checkpointed: wrap the real
 * checker (skip=0 for a fresh run) and read accessesSeen() when
 * snapshotting.
 */
class ResumeFilter : public AccessChecker
{
  public:
    /** @p inner must outlive this filter. */
    explicit ResumeFilter(AccessChecker &inner, std::uint64_t skip = 0)
        : inner_(inner), skip_(skip)
    {
    }

    void
    onAccess(trace::VarId var, const Access &access,
             const clock::VectorClock &vc) override
    {
        if (seen_++ < skip_)
            return;
        inner_.onAccess(var, access, vc);
    }

    const std::vector<RaceReport> &races() const override
    {
        return inner_.races();
    }
    std::uint64_t racesFound() const override
    {
        return inner_.racesFound();
    }
    std::uint64_t byteSize() const override
    {
        return inner_.byteSize();
    }

    /** Total accesses observed, skipped or forwarded — equals the
     * uninterrupted run's access count at this point. */
    std::uint64_t accessesSeen() const { return seen_; }
    /** Still discarding replayed accesses? */
    bool replaying() const { return seen_ < skip_; }

  private:
    AccessChecker &inner_;
    std::uint64_t skip_;
    std::uint64_t seen_ = 0;
};

} // namespace asyncclock::report

#endif // ASYNCCLOCK_REPORT_CHECKPOINT_HH
