#include "report/fasttrack.hh"

#include <algorithm>
#include <istream>
#include <ostream>
#include <utility>
#include <vector>

namespace asyncclock::report {

namespace {

// Fixed-width little-endian scalar I/O. The checkpoint format favors
// dead-simple framing over compactness — checkpoints are transient
// files, not interchange.

void
putU64(std::ostream &out, std::uint64_t v)
{
    char buf[8];
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    out.write(buf, 8);
}

bool
getU64(std::istream &in, std::uint64_t &v)
{
    char buf[8];
    in.read(buf, 8);
    if (in.gcount() != 8)
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(buf[i]))
             << (8 * i);
    return true;
}

void
putU32(std::ostream &out, std::uint32_t v)
{
    putU64(out, v);
}

bool
getU32(std::istream &in, std::uint32_t &v)
{
    std::uint64_t w;
    if (!getU64(in, w) || w > 0xffffffffull)
        return false;
    v = static_cast<std::uint32_t>(w);
    return true;
}

void
putAccess(std::ostream &out, const Access &a)
{
    putU32(out, a.op);
    putU32(out, a.epoch.chain);
    putU32(out, a.epoch.tick);
    putU32(out, a.site);
    putU32(out, a.task.raw());
    putU64(out, a.isWrite ? 1 : 0);
}

bool
getAccess(std::istream &in, Access &a)
{
    std::uint32_t raw = 0;
    std::uint64_t w = 0;
    if (!getU32(in, a.op) || !getU32(in, a.epoch.chain) ||
        !getU32(in, a.epoch.tick) || !getU32(in, a.site) ||
        !getU32(in, raw) || !getU64(in, w)) {
        return false;
    }
    a.task = (raw & 0x80000000u)
                 ? trace::Task::event(raw & ~0x80000000u)
                 : trace::Task::thread(raw);
    a.isWrite = w != 0;
    return true;
}

Status
truncated()
{
    return Status::error(ErrCode::Truncated,
                         "truncated checker state");
}

} // namespace

void
FastTrackChecker::report(trace::VarId var, const Access &prev,
                         const Access &cur)
{
    races_.push_back({var, prev.op, cur.op, prev.site, cur.site,
                      prev.task, cur.task, prev.isWrite, cur.isWrite});
}

void
FastTrackChecker::onAccess(trace::VarId var, const Access &access,
                           const clock::VectorClock &vc)
{
    if (vars_.size() <= var)
        vars_.resize(var + 1);
    VarState &st = vars_[var];

    if (access.isWrite) {
        // Write-write check.
        if (!vc.knows(st.write))
            report(var, st.lastWrite, access);
        // Read-write check.
        if (st.shared) {
            // Race iff some read epoch is not known, i.e. the read
            // clock is not below vc (short-circuits on the first
            // unordered entry); the reported lastRead is the most
            // recent read.
            if (!st.readVC.leq(vc))
                report(var, st.lastRead, access);
        } else if (!vc.knows(st.read)) {
            report(var, st.lastRead, access);
        }
        // FastTrack write: collapse back to exclusive epochs.
        st.write = access.epoch;
        st.lastWrite = access;
        st.read = clock::Epoch{};
        st.shared = false;
        st.readVC.clear();
        return;
    }

    // Read: write-read check.
    if (!vc.knows(st.write))
        report(var, st.lastWrite, access);

    if (st.shared) {
        st.readVC.raise(access.epoch.chain, access.epoch.tick);
        st.lastRead = access;
        return;
    }
    if (st.read.tick == 0 || st.read.chain == access.epoch.chain ||
        vc.knows(st.read)) {
        // Same-epoch/ordered read: stay in cheap exclusive mode.
        st.read = access.epoch;
        st.lastRead = access;
        return;
    }
    // Concurrent reads: become read-shared.
    st.shared = true;
    st.readVC.raise(st.read.chain, st.read.tick);
    st.readVC.raise(access.epoch.chain, access.epoch.tick);
    st.lastRead = access;
}

Status
FastTrackChecker::saveState(std::ostream &out) const
{
    putU64(out, vars_.size());
    for (const VarState &st : vars_) {
        putU32(out, st.write.chain);
        putU32(out, st.write.tick);
        putU32(out, st.read.chain);
        putU32(out, st.read.tick);
        putU64(out, st.shared ? 1 : 0);
        putU32(out, st.readVC.size());
        // Canonical entry order: the clock's iteration order reflects
        // raise() history, which a save/load/save cycle would not
        // reproduce. Sorting makes equal clocks serialize identically.
        std::vector<std::pair<clock::ChainId, clock::Tick>> entries;
        entries.reserve(st.readVC.size());
        st.readVC.forEach(
            [&entries](clock::ChainId c, const clock::Tick &t) {
                entries.emplace_back(c, t);
            });
        std::sort(entries.begin(), entries.end());
        for (const auto &[c, t] : entries) {
            putU32(out, c);
            putU32(out, t);
        }
        putAccess(out, st.lastWrite);
        putAccess(out, st.lastRead);
    }
    putU64(out, races_.size());
    for (const RaceReport &r : races_) {
        putU32(out, r.var);
        putU32(out, r.prevOp);
        putU32(out, r.curOp);
        putU32(out, r.prevSite);
        putU32(out, r.curSite);
        putU32(out, r.prevTask.raw());
        putU32(out, r.curTask.raw());
        putU64(out, (r.prevWrite ? 1 : 0) | (r.curWrite ? 2 : 0));
    }
    if (!out)
        return Status::error(ErrCode::IoError,
                             "write failed while saving checker state");
    return Status::ok();
}

Status
FastTrackChecker::loadState(std::istream &in)
{
    std::vector<VarState> vars;
    std::vector<RaceReport> races;
    std::uint64_t nVars = 0;
    if (!getU64(in, nVars))
        return truncated();
    // Sanity bound: a var table larger than the stream could possibly
    // encode means a corrupt count, not a huge trace.
    if (nVars > (1ull << 32))
        return Status::error(ErrCode::Corrupt,
                             "unreasonable var count in checker state");
    vars.resize(nVars);
    for (VarState &st : vars) {
        std::uint64_t shared = 0;
        std::uint32_t vcEntries = 0;
        if (!getU32(in, st.write.chain) || !getU32(in, st.write.tick) ||
            !getU32(in, st.read.chain) || !getU32(in, st.read.tick) ||
            !getU64(in, shared) || !getU32(in, vcEntries)) {
            return truncated();
        }
        st.shared = shared != 0;
        for (std::uint32_t i = 0; i < vcEntries; ++i) {
            std::uint32_t c = 0, t = 0;
            if (!getU32(in, c) || !getU32(in, t))
                return truncated();
            st.readVC.raise(c, t);
        }
        // Resumed read clocks repeat a few contents across many
        // variables; under the COW backend fold them into shared
        // nodes (no-op elsewhere).
        st.readVC.intern();
        if (!getAccess(in, st.lastWrite) || !getAccess(in, st.lastRead))
            return truncated();
    }
    std::uint64_t nRaces = 0;
    if (!getU64(in, nRaces))
        return truncated();
    if (nRaces > (1ull << 32))
        return Status::error(
            ErrCode::Corrupt,
            "unreasonable race count in checker state");
    races.resize(nRaces);
    for (RaceReport &r : races) {
        std::uint32_t prevRaw = 0, curRaw = 0;
        std::uint64_t w = 0;
        if (!getU32(in, r.var) || !getU32(in, r.prevOp) ||
            !getU32(in, r.curOp) || !getU32(in, r.prevSite) ||
            !getU32(in, r.curSite) || !getU32(in, prevRaw) ||
            !getU32(in, curRaw) || !getU64(in, w)) {
            return truncated();
        }
        r.prevTask = (prevRaw & 0x80000000u)
                         ? trace::Task::event(prevRaw & ~0x80000000u)
                         : trace::Task::thread(prevRaw);
        r.curTask = (curRaw & 0x80000000u)
                        ? trace::Task::event(curRaw & ~0x80000000u)
                        : trace::Task::thread(curRaw);
        r.prevWrite = (w & 1) != 0;
        r.curWrite = (w & 2) != 0;
    }
    vars_ = std::move(vars);
    races_ = std::move(races);
    return Status::ok();
}

std::uint64_t
FastTrackChecker::byteSize() const
{
    std::uint64_t total = vars_.capacity() * sizeof(VarState);
    for (const auto &st : vars_)
        total += st.readVC.byteSize();
    return total;
}

} // namespace asyncclock::report
