#include "report/fasttrack.hh"

namespace asyncclock::report {

void
FastTrackChecker::report(trace::VarId var, const Access &prev,
                         const Access &cur)
{
    races_.push_back({var, prev.op, cur.op, prev.site, cur.site,
                      prev.task, cur.task, prev.isWrite, cur.isWrite});
}

void
FastTrackChecker::onAccess(trace::VarId var, const Access &access,
                           const clock::VectorClock &vc)
{
    if (vars_.size() <= var)
        vars_.resize(var + 1);
    VarState &st = vars_[var];

    if (access.isWrite) {
        // Write-write check.
        if (!vc.knows(st.write))
            report(var, st.lastWrite, access);
        // Read-write check.
        if (st.shared) {
            // Race iff some read epoch is not known; find one for the
            // report (the stored lastRead is the most recent).
            bool racy = false;
            st.readVC.forEach([&](clock::ChainId c, const clock::Tick &t) {
                if (!vc.knows({c, t}))
                    racy = true;
            });
            if (racy)
                report(var, st.lastRead, access);
        } else if (!vc.knows(st.read)) {
            report(var, st.lastRead, access);
        }
        // FastTrack write: collapse back to exclusive epochs.
        st.write = access.epoch;
        st.lastWrite = access;
        st.read = clock::Epoch{};
        st.shared = false;
        st.readVC.clear();
        return;
    }

    // Read: write-read check.
    if (!vc.knows(st.write))
        report(var, st.lastWrite, access);

    if (st.shared) {
        st.readVC.raise(access.epoch.chain, access.epoch.tick);
        st.lastRead = access;
        return;
    }
    if (st.read.tick == 0 || st.read.chain == access.epoch.chain ||
        vc.knows(st.read)) {
        // Same-epoch/ordered read: stay in cheap exclusive mode.
        st.read = access.epoch;
        st.lastRead = access;
        return;
    }
    // Concurrent reads: become read-shared.
    st.shared = true;
    st.readVC.raise(st.read.chain, st.read.tick);
    st.readVC.raise(access.epoch.chain, access.epoch.tick);
    st.lastRead = access;
}

std::uint64_t
FastTrackChecker::byteSize() const
{
    std::uint64_t total = vars_.capacity() * sizeof(VarState);
    for (const auto &st : vars_)
        total += st.readVC.byteSize();
    return total;
}

} // namespace asyncclock::report
