#include "report/triage.hh"

#include <algorithm>
#include <map>
#include <tuple>

#include "support/format.hh"

namespace asyncclock::report {

using trace::SiteId;
using trace::VarId;

const char *
replayVerdictName(ReplayVerdict verdict)
{
    switch (verdict) {
      case ReplayVerdict::Unverified: return "UNVERIFIED";
      case ReplayVerdict::Confirmed: return "CONFIRMED";
      case ReplayVerdict::Benign: return "BENIGN";
      case ReplayVerdict::Infeasible: return "INFEASIBLE";
    }
    return "?";
}

void
TriageReport::recount()
{
    confirmed = benign = infeasible = unverified = 0;
    for (const TriageClass &cls : classes) {
        switch (cls.verdict) {
          case ReplayVerdict::Confirmed: ++confirmed; break;
          case ReplayVerdict::Benign: ++benign; break;
          case ReplayVerdict::Infeasible: ++infeasible; break;
          case ReplayVerdict::Unverified: ++unverified; break;
        }
    }
}

std::string
TriageReport::summary() const
{
    return strf("verify: %llu class(es): %llu confirmed, "
                "%llu unverified, %llu benign, %llu infeasible",
                (unsigned long long)classes.size(),
                (unsigned long long)confirmed,
                (unsigned long long)unverified,
                (unsigned long long)benign,
                (unsigned long long)infeasible);
}

TriageReport
buildTriage(const std::vector<RaceReport> &candidates)
{
    // Keyed map => class order independent of candidate order; the
    // representative is the minimum candidate by (prevOp, curOp), so
    // it is independent of input order too.
    std::map<std::tuple<VarId, SiteId, SiteId>, TriageClass> classes;
    for (const RaceReport &race : candidates) {
        TriageClass &cls =
            classes[{race.var, race.prevSite, race.curSite}];
        if (cls.raceCount == 0) {
            cls.var = race.var;
            cls.firstSite = race.prevSite;
            cls.secondSite = race.curSite;
            cls.representative = race;
        } else if (race < cls.representative) {
            cls.representative = race;
        }
        ++cls.raceCount;
    }

    TriageReport out;
    out.classes.reserve(classes.size());
    for (auto &[key, cls] : classes)
        out.classes.push_back(std::move(cls));
    out.recount();
    return out;
}

void
rankTriage(TriageReport &report)
{
    auto rank = [](ReplayVerdict v) {
        switch (v) {
          case ReplayVerdict::Confirmed: return 0;
          case ReplayVerdict::Unverified: return 1;
          case ReplayVerdict::Benign: return 2;
          case ReplayVerdict::Infeasible: return 3;
        }
        return 4;
    };
    std::stable_sort(
        report.classes.begin(), report.classes.end(),
        [&](const TriageClass &a, const TriageClass &b) {
            if (rank(a.verdict) != rank(b.verdict))
                return rank(a.verdict) < rank(b.verdict);
            return std::tie(a.var, a.firstSite, a.secondSite) <
                   std::tie(b.var, b.firstSite, b.secondSite);
        });
    report.recount();
}

namespace {

const char *
siteName(const trace::TraceMeta &meta, SiteId id)
{
    return id < meta.sites().size() ? meta.site(id).name.c_str()
                                    : "<unknown-site>";
}

} // namespace

std::string
describeClass(const trace::TraceMeta &meta, const TriageClass &cls)
{
    const RaceReport &r = cls.representative;
    return strf("%s: %u race(s) on '%s': %s at %s, then %s at %s%s%s",
                replayVerdictName(cls.verdict), cls.raceCount,
                cls.var < meta.vars().size()
                    ? meta.var(cls.var).name.c_str()
                    : "<unknown-var>",
                r.prevWrite ? "write" : "read",
                siteName(meta, cls.firstSite),
                r.curWrite ? "write" : "read",
                siteName(meta, cls.secondSite),
                cls.detail.empty() ? "" : " — ",
                cls.detail.c_str());
}

} // namespace asyncclock::report
