/**
 * @file
 * Access checkers: the per-variable race-checking layer shared by the
 * AsyncClock detector and the EventRacer-style baseline.
 *
 * A detector resolves each task's logical time (a vector clock over
 * chains) and hands every read/write to an AccessChecker as an
 * (epoch, clock) pair. Two checkers are provided:
 *
 *  - ExactChecker keeps the full access history per variable and
 *    reports *every* unordered conflicting pair. Memory-hungry; used
 *    by the tests to compare detectors against the gold oracle
 *    pair-for-pair.
 *  - FastTrackChecker (fasttrack.hh) implements the FastTrack [10]
 *    epoch state machine the paper uses in production (section 3.4).
 */

#ifndef ASYNCCLOCK_REPORT_CHECKER_HH
#define ASYNCCLOCK_REPORT_CHECKER_HH

#include <cstdint>
#include <vector>

#include "clock/vector_clock.hh"
#include "trace/trace.hh"

namespace asyncclock::report {

/** One memory access as seen by a checker. */
struct Access
{
    trace::OpId op = trace::kInvalidId;
    clock::Epoch epoch{};       ///< (chain, tick) of the access
    trace::SiteId site = trace::kInvalidId;
    trace::Task task{};
    bool isWrite = false;
};

/** A reported race: two unordered conflicting accesses; `prev` comes
 * first in the analyzed trace. */
struct RaceReport
{
    trace::VarId var = trace::kInvalidId;
    trace::OpId prevOp = trace::kInvalidId;
    trace::OpId curOp = trace::kInvalidId;
    trace::SiteId prevSite = trace::kInvalidId;
    trace::SiteId curSite = trace::kInvalidId;
    trace::Task prevTask{};
    trace::Task curTask{};
    bool prevWrite = false;
    bool curWrite = false;

    bool
    operator<(const RaceReport &other) const
    {
        return prevOp != other.prevOp ? prevOp < other.prevOp
                                      : curOp < other.curOp;
    }
    bool operator==(const RaceReport &other) const = default;
};

/** Interface the detectors drive. */
class AccessChecker
{
  public:
    virtual ~AccessChecker() = default;

    /**
     * Record an access to @p var and report any races against prior
     * accesses. @p vc is the logical time of the accessing task; a
     * prior access with epoch e is ordered before this one iff
     * vc.knows(e).
     */
    virtual void onAccess(trace::VarId var, const Access &access,
                          const clock::VectorClock &vc) = 0;

    /** Races found so far. */
    virtual const std::vector<RaceReport> &races() const = 0;

    /**
     * Count of races found so far. Unlike races() — which the sharded
     * checker can only answer by draining its pipeline — this is safe
     * to poll mid-run from the producer thread, so heartbeats and
     * gauges use it.
     */
    virtual std::uint64_t racesFound() const
    {
        return races().size();
    }

    /** Metadata bytes held (for MemStats polling). */
    virtual std::uint64_t byteSize() const = 0;
};

/**
 * Exhaustive checker: every unordered conflicting pair is reported,
 * exactly mirroring gold::Closure::races(). Test/oracle use only.
 */
class ExactChecker : public AccessChecker
{
  public:
    void
    onAccess(trace::VarId var, const Access &access,
             const clock::VectorClock &vc) override
    {
        if (history_.size() <= var)
            history_.resize(var + 1);
        for (const Access &prev : history_[var]) {
            if ((prev.isWrite || access.isWrite) &&
                !vc.knows(prev.epoch)) {
                races_.push_back({var, prev.op, access.op, prev.site,
                                  access.site, prev.task, access.task,
                                  prev.isWrite, access.isWrite});
            }
        }
        history_[var].push_back(access);
    }

    const std::vector<RaceReport> &races() const override
    {
        return races_;
    }

    std::uint64_t
    byteSize() const override
    {
        std::uint64_t total = 0;
        for (const auto &h : history_)
            total += h.capacity() * sizeof(Access);
        return total;
    }

  private:
    std::vector<std::vector<Access>> history_;
    std::vector<RaceReport> races_;
};

} // namespace asyncclock::report

#endif // ASYNCCLOCK_REPORT_CHECKER_HH
