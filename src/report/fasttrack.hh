/**
 * @file
 * FastTrack [10] per-variable race checking.
 *
 * The paper's detector "uses the FASTTRACK algorithm to optimize
 * metadata stored for data variables and find races between their
 * accesses" (section 3.4). Most variables are only ever accessed in
 * totally ordered epochs, so the state per variable is two epochs; a
 * read VC is materialized only for read-shared variables.
 *
 * FastTrack reports at most one race per racy access (it keeps only
 * the last write / the read frontier), so its race *set* is a subset
 * of ExactChecker's; tests cross-check the two (every FastTrack race
 * is exact-confirmed, and FastTrack flags a race on a variable iff
 * the exact set has one... the first racy access is always caught).
 */

#ifndef ASYNCCLOCK_REPORT_FASTTRACK_HH
#define ASYNCCLOCK_REPORT_FASTTRACK_HH

#include <iosfwd>
#include <vector>

#include "report/checker.hh"
#include "support/status.hh"

namespace asyncclock::report {

class FastTrackChecker : public AccessChecker
{
  public:
    void onAccess(trace::VarId var, const Access &access,
                  const clock::VectorClock &vc) override;

    const std::vector<RaceReport> &races() const override
    {
        return races_;
    }

    std::uint64_t byteSize() const override;

    /**
     * Serialize the complete checker state — every VarState (epochs,
     * read VCs, provenance) and the races found so far — so a
     * checkpointed run restores to exactly this machine. The epoch
     * state machine is deterministic in its access sequence, so a
     * restored checker fed the remaining accesses finishes in the
     * same state as an uninterrupted run (checkpoint.hh builds on
     * this).
     */
    Status saveState(std::ostream &out) const;

    /** Restore state saved by saveState(); replaces current state. */
    Status loadState(std::istream &in);

  private:
    /** FastTrack variable state: last-write epoch plus either a
     * last-read epoch (common case) or a read VC (read-shared). */
    struct VarState
    {
        clock::Epoch write{};
        clock::Epoch read{};
        bool shared = false;
        clock::VectorClock readVC;
        /** Provenance of the stored epochs, for race reports. */
        Access lastWrite{};
        Access lastRead{};
    };

    void report(trace::VarId var, const Access &prev,
                const Access &cur);

    std::vector<VarState> vars_;
    std::vector<RaceReport> races_;
};

} // namespace asyncclock::report

#endif // ASYNCCLOCK_REPORT_FASTTRACK_HH
