/**
 * @file
 * Common interface of the two race detectors (AsyncClock and the
 * EventRacer-style baseline), so tests and benchmark harnesses can
 * drive either: process one trace operation at a time and expose the
 * live metadata footprint.
 */

#ifndef ASYNCCLOCK_REPORT_DETECTOR_HH
#define ASYNCCLOCK_REPORT_DETECTOR_HH

#include <cstdint>

#include "support/stats.hh"

namespace asyncclock::report {

class Detector
{
  public:
    virtual ~Detector() = default;

    /** Process the next trace operation; false when the trace is
     * exhausted. */
    virtual bool processNext() = 0;

    /** Operations consumed so far. */
    virtual std::uint64_t opsProcessed() const = 0;

    /** Total live analysis-metadata bytes (vector clocks, event
     * metadata, graph nodes, checker state, ...). */
    virtual std::uint64_t metadataBytes() const = 0;

    /** Record the current per-category live bytes into @p stats. */
    virtual void sampleMemory(MemStats &stats) const = 0;

    /** Convenience: drain the trace, sampling memory every
     * @p pollEvery ops (peaks accumulate in @p stats). */
    void
    runAll(MemStats *stats = nullptr, std::uint64_t pollEvery = 1024)
    {
        std::uint64_t n = 0;
        while (processNext()) {
            if (stats && (++n % pollEvery) == 0)
                sampleMemory(*stats);
        }
        if (stats)
            sampleMemory(*stats);
    }
};

} // namespace asyncclock::report

#endif // ASYNCCLOCK_REPORT_DETECTOR_HH
