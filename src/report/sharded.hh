/**
 * @file
 * Sharded parallel race checking.
 *
 * The detectors' work splits cleanly in two: resolving each task's
 * logical time is inherently sequential (chain state threads through
 * the whole trace), but the per-variable FastTrack check depends only
 * on that variable's access history. ShardedChecker exploits this: the
 * detector thread keeps resolving clocks and hands (var, access, clock)
 * tuples to N worker shards over bounded queues; shard `var % N` runs
 * its own FastTrackChecker.
 *
 * Determinism: partitioning by variable preserves each variable's
 * access order, so every shard's FastTrack state machine sees exactly
 * the sequence the sequential checker would — the union of shard race
 * sets equals the sequential race set regardless of shard count or
 * scheduling. drain() merges them into a canonical (curOp, prevOp)
 * order.
 */

#ifndef ASYNCCLOCK_REPORT_SHARDED_HH
#define ASYNCCLOCK_REPORT_SHARDED_HH

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "obs/obs.hh"
#include "report/fasttrack.hh"
#include "support/bounded_queue.hh"

namespace asyncclock::report {

/**
 * AccessChecker fanning accesses out to per-shard FastTrack workers.
 * onAccess() batches and enqueues; races()/byteSize() remain usable
 * from the producer thread (races() drains first). Not reusable after
 * drain().
 */
struct ShardedConfig
{
    unsigned shards = 4;
    /** Accesses buffered per shard before enqueueing a batch. */
    std::size_t batchOps = 256;
    /** Max batches in flight per shard (backpressure bound). */
    std::size_t queueCapacity = 64;
    /**
     * Observability hookup (both members optional). With metrics:
     * per-shard queue-depth gauges, an aggregate enqueue-block
     * counter, and a batch-check-latency histogram. With a tracer:
     * one track per worker with a span per checked batch. Registered
     * callbacks read the checker, so drop the registry (or stop
     * snapshotting it) before destroying the checker.
     */
    obs::ObsContext obs{};
};

class ShardedChecker : public AccessChecker
{
  public:
    using Config = ShardedConfig;

    explicit ShardedChecker(Config cfg = Config());
    ~ShardedChecker() override;

    ShardedChecker(const ShardedChecker &) = delete;
    ShardedChecker &operator=(const ShardedChecker &) = delete;

    void onAccess(trace::VarId var, const Access &access,
                  const clock::VectorClock &vc) override;

    /** Flush pending batches, stop the workers, and merge the shard
     * race sets. Idempotent; called implicitly by races() and the
     * destructor. No onAccess() after this. */
    void drain();

    /** Merged races in (curOp, prevOp) order; drains first. */
    const std::vector<RaceReport> &races() const override;

    /** Races found so far without draining: per-shard counts
     * published after each batch, so heartbeats can poll mid-run. */
    std::uint64_t racesFound() const override;

    /** Checker metadata bytes across shards. Safe to poll while the
     * workers run (per-shard atomic counters). */
    std::uint64_t byteSize() const override;

    unsigned shards() const { return static_cast<unsigned>(shards_.size()); }

    /** Current per-shard queue depths (for heartbeats). */
    std::vector<std::size_t> queueDepths() const;

    /** Producer push() calls that stalled on a full shard queue. */
    std::uint64_t enqueueBlocked() const;

  private:
    struct Item
    {
        trace::VarId var = trace::kInvalidId;
        Access access{};
        clock::VectorClock vc;
    };
    using Batch = std::vector<Item>;

    struct Shard
    {
        explicit Shard(std::size_t queueCapacity)
            : queue(queueCapacity)
        {
        }

        support::BoundedQueue<Batch> queue;
        std::thread worker;
        FastTrackChecker checker;
        /** checker.byteSize() published after each batch, so the
         * producer can poll without racing the worker. */
        std::atomic<std::uint64_t> bytes{0};
        /** checker.races().size() published the same way. */
        std::atomic<std::uint64_t> races{0};
        /** Tracer track of this shard's worker thread. */
        int track = 0;
        /** Producer-side buffer (only the producer touches it). */
        Batch pending;
    };

    void workerLoop(Shard &shard);
    void flushShard(Shard &shard);

    std::size_t batchOps_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<RaceReport> merged_;
    obs::ObsContext obs_{};
    /** Batch check latency in us (owned by the registry). */
    obs::Histogram *batchHist_ = nullptr;
    bool drained_ = false;
};

} // namespace asyncclock::report

#endif // ASYNCCLOCK_REPORT_SHARDED_HH
