/**
 * @file
 * Sharded parallel race checking.
 *
 * The detectors' work splits cleanly in two: resolving each task's
 * logical time is inherently sequential (chain state threads through
 * the whole trace), but the per-variable FastTrack check depends only
 * on that variable's access history. ShardedChecker exploits this: the
 * detector thread keeps resolving clocks and hands (var, access, clock)
 * tuples to N worker shards over bounded queues; shard `var % N` runs
 * its own FastTrackChecker.
 *
 * Determinism: partitioning by variable preserves each variable's
 * access order, so every shard's FastTrack state machine sees exactly
 * the sequence the sequential checker would — the union of shard race
 * sets equals the sequential race set regardless of shard count or
 * scheduling. drain() merges them into a canonical (curOp, prevOp)
 * order.
 */

#ifndef ASYNCCLOCK_REPORT_SHARDED_HH
#define ASYNCCLOCK_REPORT_SHARDED_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hh"
#include "report/fasttrack.hh"
#include "support/bounded_queue.hh"

namespace asyncclock::report {

/**
 * Shard-level fault injection (see trace/fault.hh for the rationale):
 * slow down or kill a worker on purpose to exercise the producer-side
 * watchdog. Defaults inject nothing.
 */
struct ShardFaults
{
    static constexpr unsigned kNone = ~0u;

    /** This shard's worker sleeps stallMs before each batch. */
    unsigned stallShard = kNone;
    std::uint64_t stallMs = 0;
    /** This shard's worker dies on its first batch (queue closed, so
     * the producer sees Closed pushes, not a silent hang). */
    unsigned poisonShard = kNone;
};

/**
 * AccessChecker fanning accesses out to per-shard FastTrack workers.
 * onAccess() batches and enqueues; races()/byteSize() remain usable
 * from the producer thread (races() drains first). Not reusable after
 * drain().
 */
struct ShardedConfig
{
    unsigned shards = 4;
    /** Accesses buffered per shard before enqueueing a batch. */
    std::size_t batchOps = 256;
    /** Max batches in flight per shard (backpressure bound). */
    std::size_t queueCapacity = 64;
    /**
     * One backoff slice of a blocked enqueue. The producer retries
     * tryPushFor() in slices of this length so it periodically
     * re-checks for a failed run instead of blocking indefinitely.
     */
    std::uint64_t pushTimeoutMs = 50;
    /**
     * Watchdog: once a single enqueue has been blocked this long, the
     * worker is presumed wedged; the run fails with diagnostics
     * (shard, queue depths, progress counters) rather than hanging.
     * 0 disables the watchdog and restores unbounded blocking.
     */
    std::uint64_t watchdogMs = 30000;
    /** Injected worker faults (tests and --inject). */
    ShardFaults faults{};
    /**
     * Observability hookup (both members optional). With metrics:
     * per-shard queue-depth gauges, an aggregate enqueue-block
     * counter, and a batch-check-latency histogram. With a tracer:
     * one track per worker with a span per checked batch. Registered
     * callbacks read the checker, so drop the registry (or stop
     * snapshotting it) before destroying the checker.
     */
    obs::ObsContext obs{};
};

class ShardedChecker : public AccessChecker
{
  public:
    using Config = ShardedConfig;

    explicit ShardedChecker(Config cfg = Config());
    ~ShardedChecker() override;

    ShardedChecker(const ShardedChecker &) = delete;
    ShardedChecker &operator=(const ShardedChecker &) = delete;

    void onAccess(trace::VarId var, const Access &access,
                  const clock::VectorClock &vc) override;

    /** Flush pending batches, stop the workers, and merge the shard
     * race sets. Idempotent; called implicitly by races() and the
     * destructor. No onAccess() after this. */
    void drain();

    /** Merged races in (curOp, prevOp) order; drains first. */
    const std::vector<RaceReport> &races() const override;

    /** Races found so far without draining: per-shard counts
     * published after each batch, so heartbeats can poll mid-run. */
    std::uint64_t racesFound() const override;

    /** Checker metadata bytes across shards. Safe to poll while the
     * workers run (per-shard atomic counters). */
    std::uint64_t byteSize() const override;

    unsigned shards() const { return static_cast<unsigned>(shards_.size()); }

    /** Current per-shard queue depths (for heartbeats). */
    std::vector<std::size_t> queueDepths() const;

    /** Producer push() calls that stalled on a full shard queue. */
    std::uint64_t enqueueBlocked() const;

    /**
     * Did the run fail structurally (worker died, watchdog fired)?
     * Once set, onAccess() drops silently and races() returns only
     * what was merged before the failure — callers must check this
     * before trusting the report.
     */
    bool failed() const { return failed_.load(std::memory_order_acquire); }

    /** Diagnostics for the failure (empty if !failed()). */
    std::string failureMessage() const;

  private:
    struct Item
    {
        trace::VarId var = trace::kInvalidId;
        Access access{};
        clock::VectorClock vc;
    };
    using Batch = std::vector<Item>;

    struct Shard
    {
        explicit Shard(std::size_t queueCapacity)
            : queue(queueCapacity)
        {
        }

        support::BoundedQueue<Batch> queue;
        std::thread worker;
        FastTrackChecker checker;
        unsigned index = 0;
        /** checker.byteSize() published after each batch, so the
         * producer can poll without racing the worker. */
        std::atomic<std::uint64_t> bytes{0};
        /** checker.races().size() published the same way. */
        std::atomic<std::uint64_t> races{0};
        /** Worker exited (drain()'s watchdog polls this). */
        std::atomic<bool> done{false};
        /** Tracer track of this shard's worker thread. */
        int track = 0;
        /** Producer-side buffer (only the producer touches it). */
        Batch pending;
    };

    void workerLoop(Shard &shard);
    void flushShard(Shard &shard);
    /** Record a structural failure and close every queue so both
     * sides unwind; first caller wins. */
    /** Fail the run (first caller wins): record @p msg, close every
     * queue, and log a structured event of @p kind ("shard.failed",
     * or "shard.watchdog" from the watchdog paths). */
    void failRun(const std::string &msg,
                 const char *kind = "shard.failed");

    std::size_t batchOps_;
    std::uint64_t pushTimeoutMs_;
    std::uint64_t watchdogMs_;
    ShardFaults faults_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<RaceReport> merged_;
    obs::ObsContext obs_{};
    /** Batch check latency in us (owned by the registry). */
    obs::Histogram *batchHist_ = nullptr;
    bool drained_ = false;
    std::atomic<bool> failed_{false};
    mutable std::mutex failMu_;
    std::string failureMsg_;
};

} // namespace asyncclock::report

#endif // ASYNCCLOCK_REPORT_SHARDED_HH
