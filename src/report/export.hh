/**
 * @file
 * Machine-readable export of analysis results.
 *
 * The paper's tool reports race groups for human triage; a downstream
 * CI integration wants the same data structured. This module renders
 * a ReportSummary (race groups with sites, variables, verdicts) and
 * trace statistics as JSON.
 */

#ifndef ASYNCCLOCK_REPORT_EXPORT_HH
#define ASYNCCLOCK_REPORT_EXPORT_HH

#include <string>

#include "report/races.hh"
#include "report/triage.hh"
#include "trace/trace.hh"

namespace asyncclock::report {

/** Render a full analysis report as a JSON document. */
std::string toJson(const ReportSummary &summary,
                   const trace::Trace &tr);

/** As above, plus a "verification" section carrying the triage
 * classes and their replay verdicts. */
std::string toJson(const ReportSummary &summary,
                   const TriageReport &triage, const trace::Trace &tr);

/**
 * Data for the "prediction" section. The predictive tier lives above
 * this library (src/predict/ links ac_report), so the analyzer copies
 * its counters into this layering-neutral struct before export.
 */
struct PredictionExport
{
    /** Triage classes of predicted candidates with replay verdicts. */
    const TriageReport *triage = nullptr;

    std::uint64_t candidates = 0;  ///< weak-order candidate pairs
    std::uint64_t observed = 0;    ///< already found by the detector
    std::uint64_t hidden = 0;      ///< HB-ordered, weak-unordered
    std::uint64_t shadowed = 0;    ///< HB-unordered, undetected
    std::uint64_t windowDrops = 0;
    std::uint64_t capDrops = 0;
    std::uint64_t malformedDropped = 0;

    bool recallScored = false;
    std::uint64_t weakRaces = 0;
    std::uint64_t observedHits = 0;
    std::uint64_t combinedHits = 0;
    double observedRecall = 0.0;
    double combinedRecall = 0.0;
};

/** As the verification overload, plus a "prediction" section. */
std::string toJson(const ReportSummary &summary,
                   const TriageReport &triage,
                   const PredictionExport &prediction,
                   const trace::Trace &tr);

/** Render trace statistics as a JSON object. */
std::string toJson(const trace::TraceStats &stats);

} // namespace asyncclock::report

#endif // ASYNCCLOCK_REPORT_EXPORT_HH
