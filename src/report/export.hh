/**
 * @file
 * Machine-readable export of analysis results.
 *
 * The paper's tool reports race groups for human triage; a downstream
 * CI integration wants the same data structured. This module renders
 * a ReportSummary (race groups with sites, variables, verdicts) and
 * trace statistics as JSON.
 */

#ifndef ASYNCCLOCK_REPORT_EXPORT_HH
#define ASYNCCLOCK_REPORT_EXPORT_HH

#include <string>

#include "report/races.hh"
#include "report/triage.hh"
#include "trace/trace.hh"

namespace asyncclock::report {

/** Render a full analysis report as a JSON document. */
std::string toJson(const ReportSummary &summary,
                   const trace::Trace &tr);

/** As above, plus a "verification" section carrying the triage
 * classes and their replay verdicts. */
std::string toJson(const ReportSummary &summary,
                   const TriageReport &triage, const trace::Trace &tr);

/** Render trace statistics as a JSON object. */
std::string toJson(const trace::TraceStats &stats);

} // namespace asyncclock::report

#endif // ASYNCCLOCK_REPORT_EXPORT_HH
