/**
 * @file
 * Race triage: candidate races deduplicated into verification classes.
 *
 * A detector emits raw race pairs; many of them are the same bug seen
 * through different event instances. Triage collapses candidates into
 * equivalence classes keyed by (variable, ordered pair of source
 * sites) — ordered, because "write at A then read at B" and "read at
 * B then write at A" flip in different directions — picks one
 * deterministic representative per class, and carries the replay
 * verdict the verifier (src/verify/) assigns to that representative.
 * Classes are ranked for human consumption: a confirmed divergence
 * outranks anything unverified, which outranks a provably benign or
 * infeasible report.
 *
 * This header deliberately knows nothing about *how* verification
 * happens; src/verify/ fills the verdicts in. That keeps the report
 * library free of a dependency on the runtime/gold machinery.
 */

#ifndef ASYNCCLOCK_REPORT_TRIAGE_HH
#define ASYNCCLOCK_REPORT_TRIAGE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "report/checker.hh"
#include "trace/source.hh"

namespace asyncclock::report {

/**
 * Outcome of replay-verifying one candidate race (DESIGN.md
 * section 11).
 *
 *  - Unverified: not (yet) replayed — over budget, representative
 *    invalid against the replay substrate, or verification off.
 *  - Confirmed: flipping the pair's order produced divergent
 *    observable state or a fault (crash analog) not present under the
 *    recorded order.
 *  - Benign: the flip is feasible and both orders end in identical
 *    observable state.
 *  - Infeasible: the two accesses are happens-before ordered; no real
 *    schedule can flip them (a detector false positive).
 */
enum class ReplayVerdict : std::uint8_t {
    Unverified,
    Confirmed,
    Benign,
    Infeasible,
};

const char *replayVerdictName(ReplayVerdict verdict);

/** One equivalence class of candidate races. */
struct TriageClass
{
    trace::VarId var = trace::kInvalidId;
    /** Site of the access that came first in the analyzed trace. */
    trace::SiteId firstSite = trace::kInvalidId;
    /** Site of the access that came second. */
    trace::SiteId secondSite = trace::kInvalidId;
    /** Candidate pairs collapsed into this class. */
    std::uint32_t raceCount = 0;
    /** Smallest (prevOp, curOp) candidate — the pair the verifier
     * replays; its verdict stands for the whole class. */
    RaceReport representative{};
    ReplayVerdict verdict = ReplayVerdict::Unverified;
    /** One-line, deterministic explanation of the verdict. */
    std::string detail;
};

/** Per-verdict tally plus the (ranked) classes. */
struct TriageReport
{
    std::vector<TriageClass> classes;

    std::uint64_t confirmed = 0;
    std::uint64_t benign = 0;
    std::uint64_t infeasible = 0;
    std::uint64_t unverified = 0;

    /** Recompute the tallies from the classes. */
    void recount();

    /** "verify: N class(es): X confirmed, ..." one-liner. */
    std::string summary() const;
};

/**
 * Collapse candidate races into classes. Deterministic in the *set*
 * of candidates: the class key order and the representative choice do
 * not depend on the input ordering.
 */
TriageReport buildTriage(const std::vector<RaceReport> &candidates);

/**
 * Rank classes most-actionable first: Confirmed, then Unverified,
 * then Benign, then Infeasible; ties broken by (var, firstSite,
 * secondSite) so the order is total and stable across runs.
 */
void rankTriage(TriageReport &report);

/** Human-readable one-liner for a class (deterministic). */
std::string describeClass(const trace::TraceMeta &meta,
                          const TriageClass &cls);

} // namespace asyncclock::report

#endif // ASYNCCLOCK_REPORT_TRIAGE_HH
