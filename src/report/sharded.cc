#include "report/sharded.hh"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "support/format.hh"
#include "support/logging.hh"

namespace asyncclock::report {

ShardedChecker::ShardedChecker(Config cfg)
    : batchOps_(cfg.batchOps > 0 ? cfg.batchOps : 1),
      pushTimeoutMs_(cfg.pushTimeoutMs > 0 ? cfg.pushTimeoutMs : 50),
      watchdogMs_(cfg.watchdogMs), faults_(cfg.faults), obs_(cfg.obs)
{
    unsigned n = cfg.shards > 0 ? cfg.shards : 1;
    std::size_t cap = cfg.queueCapacity > 0 ? cfg.queueCapacity : 1;
    if (obs_.metrics) {
        batchHist_ = &obs_.metrics->histogram(
            "sharded.batch_check_us",
            {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000, 20000});
        obs_.metrics->counterFn("sharded.enqueue_blocked",
                                [this] { return enqueueBlocked(); });
        obs_.metrics->counterFn("sharded.races_found",
                                [this] { return racesFound(); });
        obs_.metrics->gaugeFn("sharded.shards", [n] {
            return static_cast<std::int64_t>(n);
        });
    }
    shards_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        shards_.push_back(std::make_unique<Shard>(cap));
        Shard &shard = *shards_.back();
        shard.index = i;
        shard.pending.reserve(batchOps_);
        if (obs_.tracer)
            shard.track =
                obs_.tracer->registerTrack(strf("shard-%u", i));
        if (obs_.metrics) {
            Shard *s = &shard;
            obs_.metrics->gaugeFn(
                obs::seriesName("sharded.queue_depth",
                                {{"shard", strf("%u", i)}}),
                [s] {
                    return static_cast<std::int64_t>(s->queue.size());
                });
        }
        shard.worker = std::thread([this, &shard] {
            workerLoop(shard);
            shard.done.store(true, std::memory_order_release);
        });
    }
}

ShardedChecker::~ShardedChecker()
{
    drain();
}

void
ShardedChecker::workerLoop(Shard &shard)
{
    Batch batch;
    while (shard.queue.pop(batch)) {
        // A failed run drops whatever is still queued: the report is
        // already void, and drain()'s joins must not wait out a
        // backlog (or an injected stall) batch by batch.
        if (failed_.load(std::memory_order_acquire))
            return;
        if (faults_.poisonShard == shard.index) {
            // A real worker death would leave its queue open and the
            // producer wedged on a full queue; closing here models the
            // recovered behavior (pushes fail fast) while failRun()
            // carries the diagnosis.
            shard.queue.close();
            failRun(strf("shard %u: worker died mid-run "
                         "(injected poison fault)",
                         shard.index));
            return;
        }
        if (faults_.stallShard == shard.index && faults_.stallMs > 0) {
            // Sleep in slices so a failed run interrupts the stall;
            // otherwise drain() would serve out the full sentence.
            std::uint64_t left = faults_.stallMs;
            while (left > 0 &&
                   !failed_.load(std::memory_order_acquire)) {
                std::uint64_t slice = left < 50 ? left : 50;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(slice));
                left -= slice;
            }
            if (failed_.load(std::memory_order_acquire))
                return;
        }
        // Timestamps come from the tracer's epoch when tracing (the
        // span needs them); from the plain steady clock when only the
        // latency histogram is on; from nowhere when obs is off.
        std::uint64_t t0 = 0;
        std::chrono::steady_clock::time_point c0;
        if (obs_.tracer)
            t0 = obs_.tracer->nowUs();
        else if (batchHist_)
            c0 = std::chrono::steady_clock::now();
        for (const Item &item : batch)
            shard.checker.onAccess(item.var, item.access, item.vc);
        shard.bytes.store(shard.checker.byteSize(),
                          std::memory_order_relaxed);
        shard.races.store(shard.checker.races().size(),
                          std::memory_order_relaxed);
        if (obs_.tracer) {
            std::uint64_t t1 = obs_.tracer->nowUs();
            obs_.tracer->span(
                shard.track, "check_batch", t0, t1,
                strf("{\"ops\":%zu}", batch.size()));
            if (batchHist_)
                batchHist_->observe(t1 - t0);
        } else if (batchHist_) {
            batchHist_->observe(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - c0)
                    .count()));
        }
    }
}

void
ShardedChecker::flushShard(Shard &shard)
{
    if (shard.pending.empty())
        return;
    Batch batch;
    batch.reserve(batchOps_);
    batch.swap(shard.pending);
    if (watchdogMs_ == 0) {
        shard.queue.push(std::move(batch));
        return;
    }
    // Timed pushes in backoff slices: ordinary backpressure retries
    // quietly, but a worker that stops consuming altogether trips the
    // watchdog and the run fails with diagnostics instead of hanging.
    std::uint64_t waitedMs = 0;
    for (;;) {
        switch (shard.queue.tryPushFor(
            batch, std::chrono::milliseconds(pushTimeoutMs_))) {
        case support::PushResult::Pushed:
            return;
        case support::PushResult::Closed:
            // Worker exited (poison fault or failed run elsewhere);
            // the batch is dropped, failRun records why.
            if (!failed_.load(std::memory_order_acquire))
                failRun(strf("shard %u: queue closed under the "
                             "producer (worker exited early)",
                             shard.index));
            return;
        case support::PushResult::Timeout:
            break;
        }
        if (failed_.load(std::memory_order_acquire))
            return;
        waitedMs += pushTimeoutMs_;
        if (waitedMs >= watchdogMs_) {
            std::string depths;
            for (const auto &s : shards_)
                depths += strf(" %zu", s->queue.size());
            failRun(strf("watchdog: shard %u accepted no batch for "
                         "%llu ms (races so far: %llu; queue depths:%s)",
                         shard.index,
                         static_cast<unsigned long long>(waitedMs),
                         static_cast<unsigned long long>(racesFound()),
                         depths.c_str()),
                    "shard.watchdog");
            return;
        }
    }
}

void
ShardedChecker::failRun(const std::string &msg, const char *kind)
{
    {
        std::lock_guard<std::mutex> lock(failMu_);
        if (failed_.load(std::memory_order_relaxed))
            return;
        failureMsg_ = msg;
    }
    failed_.store(true, std::memory_order_release);
    warn(strf("sharded checker failed: %s", msg.c_str()));
    if (obs_.events)
        obs_.events->log(obs::EventLog::Severity::Error, kind, msg);
    // Close every queue: blocked producers wake with Closed, workers
    // drain what's left and exit, drain()'s joins complete.
    for (auto &shard : shards_)
        shard->queue.close();
}

std::string
ShardedChecker::failureMessage() const
{
    std::lock_guard<std::mutex> lock(failMu_);
    return failureMsg_;
}

void
ShardedChecker::onAccess(trace::VarId var, const Access &access,
                         const clock::VectorClock &vc)
{
    assert(!drained_ && "onAccess after drain");
    if (failed_.load(std::memory_order_acquire))
        return;
    Shard &shard = *shards_[var % shards_.size()];
    shard.pending.push_back({var, access, vc});
    if (shard.pending.size() >= batchOps_)
        flushShard(shard);
}

void
ShardedChecker::drain()
{
    if (drained_)
        return;
    drained_ = true;
    obs::ScopedSpan span(obs_.tracer, obs::kMainTrack, "shard_drain");
    for (auto &shard : shards_) {
        flushShard(*shard);
        shard->queue.close();
    }
    if (watchdogMs_ > 0) {
        // The joins below are unbounded, so a wedged worker would turn
        // "run finished" into a hang. Poll for progress first: as long
        // as queues are emptying or workers are exiting, keep waiting;
        // once nothing moves for watchdogMs_, fail the run. failRun()
        // also makes the (sliced) injected stall release its worker,
        // so the joins afterwards complete.
        std::uint64_t waitedMs = 0;
        std::size_t lastRemaining = ~std::size_t(0);
        for (;;) {
            std::size_t remaining = 0;
            for (const auto &shard : shards_) {
                remaining += shard->queue.size();
                if (!shard->done.load(std::memory_order_acquire))
                    ++remaining;
            }
            if (remaining == 0)
                break;
            if (remaining < lastRemaining) {
                lastRemaining = remaining;
                waitedMs = 0;
            }
            if (waitedMs >= watchdogMs_) {
                if (!failed_.load(std::memory_order_acquire)) {
                    std::string stuck;
                    for (const auto &shard : shards_) {
                        if (!shard->done.load(
                                std::memory_order_acquire))
                            stuck += strf(" %u", shard->index);
                    }
                    failRun(strf("watchdog: no drain progress for "
                                 "%llu ms (stuck shard(s):%s)",
                                 static_cast<unsigned long long>(
                                     waitedMs),
                                 stuck.c_str()),
                            "shard.watchdog");
                }
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
            waitedMs += 10;
        }
    }
    for (auto &shard : shards_) {
        if (shard->worker.joinable())
            shard->worker.join();
    }
    std::size_t total = 0;
    for (auto &shard : shards_)
        total += shard->checker.races().size();
    merged_.reserve(total);
    for (auto &shard : shards_) {
        const auto &rs = shard->checker.races();
        merged_.insert(merged_.end(), rs.begin(), rs.end());
        shard->bytes.store(shard->checker.byteSize(),
                           std::memory_order_relaxed);
    }
    // Canonical order: by the racy (current) access, then its
    // predecessor — matches the order a sequential checker discovers
    // races in, independent of shard count.
    std::sort(merged_.begin(), merged_.end(),
              [](const RaceReport &a, const RaceReport &b) {
                  if (a.curOp != b.curOp)
                      return a.curOp < b.curOp;
                  if (a.prevOp != b.prevOp)
                      return a.prevOp < b.prevOp;
                  return a.var < b.var;
              });
}

const std::vector<RaceReport> &
ShardedChecker::races() const
{
    // Logically const: finishing the pipeline doesn't change the
    // answer, only materializes it.
    const_cast<ShardedChecker *>(this)->drain();
    return merged_;
}

std::uint64_t
ShardedChecker::racesFound() const
{
    if (drained_)
        return merged_.size();
    std::uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard->races.load(std::memory_order_relaxed);
    return total;
}

std::vector<std::size_t>
ShardedChecker::queueDepths() const
{
    std::vector<std::size_t> depths;
    depths.reserve(shards_.size());
    for (const auto &shard : shards_)
        depths.push_back(shard->queue.size());
    return depths;
}

std::uint64_t
ShardedChecker::enqueueBlocked() const
{
    std::uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard->queue.blockedPushes();
    return total;
}

std::uint64_t
ShardedChecker::byteSize() const
{
    std::uint64_t total = merged_.capacity() * sizeof(RaceReport);
    for (const auto &shard : shards_) {
        total += shard->bytes.load(std::memory_order_relaxed);
        total += shard->pending.capacity() * sizeof(Item);
    }
    return total;
}

} // namespace asyncclock::report
