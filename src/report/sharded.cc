#include "report/sharded.hh"

#include <algorithm>
#include <cassert>

namespace asyncclock::report {

ShardedChecker::ShardedChecker(Config cfg)
    : batchOps_(cfg.batchOps > 0 ? cfg.batchOps : 1)
{
    unsigned n = cfg.shards > 0 ? cfg.shards : 1;
    std::size_t cap = cfg.queueCapacity > 0 ? cfg.queueCapacity : 1;
    shards_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        shards_.push_back(std::make_unique<Shard>(cap));
        Shard &shard = *shards_.back();
        shard.pending.reserve(batchOps_);
        shard.worker =
            std::thread([this, &shard] { workerLoop(shard); });
    }
}

ShardedChecker::~ShardedChecker()
{
    drain();
}

void
ShardedChecker::workerLoop(Shard &shard)
{
    Batch batch;
    while (shard.queue.pop(batch)) {
        for (const Item &item : batch)
            shard.checker.onAccess(item.var, item.access, item.vc);
        shard.bytes.store(shard.checker.byteSize(),
                          std::memory_order_relaxed);
    }
}

void
ShardedChecker::flushShard(Shard &shard)
{
    if (shard.pending.empty())
        return;
    Batch batch;
    batch.reserve(batchOps_);
    batch.swap(shard.pending);
    shard.queue.push(std::move(batch));
}

void
ShardedChecker::onAccess(trace::VarId var, const Access &access,
                         const clock::VectorClock &vc)
{
    assert(!drained_ && "onAccess after drain");
    Shard &shard = *shards_[var % shards_.size()];
    shard.pending.push_back({var, access, vc});
    if (shard.pending.size() >= batchOps_)
        flushShard(shard);
}

void
ShardedChecker::drain()
{
    if (drained_)
        return;
    drained_ = true;
    for (auto &shard : shards_) {
        flushShard(*shard);
        shard->queue.close();
    }
    for (auto &shard : shards_) {
        if (shard->worker.joinable())
            shard->worker.join();
    }
    std::size_t total = 0;
    for (auto &shard : shards_)
        total += shard->checker.races().size();
    merged_.reserve(total);
    for (auto &shard : shards_) {
        const auto &rs = shard->checker.races();
        merged_.insert(merged_.end(), rs.begin(), rs.end());
        shard->bytes.store(shard->checker.byteSize(),
                           std::memory_order_relaxed);
    }
    // Canonical order: by the racy (current) access, then its
    // predecessor — matches the order a sequential checker discovers
    // races in, independent of shard count.
    std::sort(merged_.begin(), merged_.end(),
              [](const RaceReport &a, const RaceReport &b) {
                  if (a.curOp != b.curOp)
                      return a.curOp < b.curOp;
                  if (a.prevOp != b.prevOp)
                      return a.prevOp < b.prevOp;
                  return a.var < b.var;
              });
}

const std::vector<RaceReport> &
ShardedChecker::races() const
{
    // Logically const: finishing the pipeline doesn't change the
    // answer, only materializes it.
    const_cast<ShardedChecker *>(this)->drain();
    return merged_;
}

std::uint64_t
ShardedChecker::byteSize() const
{
    std::uint64_t total = merged_.capacity() * sizeof(RaceReport);
    for (const auto &shard : shards_) {
        total += shard->bytes.load(std::memory_order_relaxed);
        total += shard->pending.capacity() * sizeof(Item);
    }
    return total;
}

} // namespace asyncclock::report
