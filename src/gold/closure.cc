#include "gold/closure.hh"

#include <algorithm>

#include "support/logging.hh"

namespace asyncclock::gold {

using trace::EventId;
using trace::EventInfo;
using trace::kInvalidId;
using trace::OpId;
using trace::OpKind;
using trace::Operation;
using trace::QueueKind;
using trace::ThreadId;

Closure::Closure(const trace::Trace &tr, GoldConfig cfg)
    : trace_(tr), cfg_(cfg)
{
    n_ = tr.numOps();
    words_ = (n_ + 63) / 64;
    pred_.assign(static_cast<std::size_t>(n_) * words_, 0);
    edgesIn_.resize(n_);
    eventOps_.resize(tr.events().size());
    for (OpId i = 0; i < n_; ++i) {
        const Operation &op = tr.op(i);
        if (op.task.isEvent())
            eventOps_[op.task.index()].push_back(i);
    }

    // ----- unconditional edges --------------------------------------
    // PO within each task; previous op of the same task.
    {
        // task raw -> last op id
        std::vector<std::pair<std::uint32_t, OpId>> lastOp;
        auto findLast = [&](std::uint32_t raw) -> OpId * {
            for (auto &p : lastOp) {
                if (p.first == raw)
                    return &p.second;
            }
            return nullptr;
        };
        for (OpId i = 0; i < n_; ++i) {
            std::uint32_t raw = trace_.op(i).task.raw();
            if (OpId *prev = findLast(raw)) {
                addEdge(*prev, i);
                *prev = i;
            } else {
                lastOp.emplace_back(raw, i);
            }
        }
    }

    // SEND, FORK, JOIN, LOOPBEGIN, LOOPEND; SIGNAL needs per-handle
    // signal lists.
    std::vector<std::vector<OpId>> signalsByHandle(tr.handles().size());
    std::vector<OpId> threadBeginOp(tr.threads().size(), kInvalidId);
    std::vector<OpId> threadEndOp(tr.threads().size(), kInvalidId);
    for (OpId i = 0; i < n_; ++i) {
        const Operation &op = tr.op(i);
        switch (op.kind) {
          case OpKind::ThreadBegin:
            threadBeginOp[op.task.index()] = i;
            break;
          case OpKind::ThreadEnd:
            threadEndOp[op.task.index()] = i;
            break;
          case OpKind::Signal:
            signalsByHandle[op.target].push_back(i);
            break;
          case OpKind::Wait:
            if (cfg_.extraSignalEdges) {
                for (OpId s : signalsByHandle[op.target])
                    addEdge(s, i);
            } else if (!signalsByHandle[op.target].empty()) {
                addEdge(signalsByHandle[op.target].front(), i);
            }
            break;
          case OpKind::Fork:
            // begin(T) comes later in the trace; handled below.
            break;
          default:
            break;
        }
    }
    for (EventId e = 0; e < tr.events().size(); ++e) {
        const EventInfo &ev = tr.event(e);
        if (ev.sendOp != kInvalidId && ev.beginOp != kInvalidId)
            addEdge(ev.sendOp, ev.beginOp);  // SEND
        if (cfg_.loopRules && ev.beginOp != kInvalidId) {
            ThreadId looper = tr.looperOf(e);
            if (looper != kInvalidId) {
                if (threadBeginOp[looper] != kInvalidId)
                    addEdge(threadBeginOp[looper], ev.beginOp);
                if (threadEndOp[looper] != kInvalidId &&
                    ev.endOp != kInvalidId) {
                    addEdge(ev.endOp, threadEndOp[looper]);
                }
            }
        }
    }
    for (OpId i = 0; i < n_; ++i) {
        const Operation &op = tr.op(i);
        if (op.kind == OpKind::Fork) {
            if (threadBeginOp[op.target] != kInvalidId)
                addEdge(i, threadBeginOp[op.target]);
        } else if (op.kind == OpKind::Join) {
            acAssert(threadEndOp[op.target] != kInvalidId,
                     "join of never-ending thread");
            addEdge(threadEndOp[op.target], i);
        }
    }

    // ----- async-dialect edges (AWAIT / SCOPE) ----------------------
    // SPAWN is covered above: taskSpawn fills EventInfo::sendOp, so
    // the sendOp -> beginOp edge is the spawn -> start edge. The
    // settle op of a task is its end (if it ran) or its cancel.
    if (tr.dialect() == trace::Dialect::Async) {
        auto settleOp = [&](EventId e) -> OpId {
            const EventInfo &ev = tr.event(e);
            return ev.endOp != kInvalidId ? ev.endOp : ev.removeOp;
        };
        std::vector<std::vector<EventId>> byScope(tr.handles().size());
        for (EventId e = 0; e < tr.events().size(); ++e) {
            if (tr.event(e).scope != kInvalidId)
                byScope[tr.event(e).scope].push_back(e);
        }
        for (OpId i = 0; i < n_; ++i) {
            const Operation &op = tr.op(i);
            if (op.kind == OpKind::TaskAwait) {
                OpId s = settleOp(op.event);
                if (s != kInvalidId)
                    addEdge(s, i);
            } else if (op.kind == OpKind::ScopeEnd) {
                // Structured concurrency: every member of the scope
                // settles before the scope closes.
                for (EventId e : byScope[op.target]) {
                    OpId s = settleOp(e);
                    if (s != kInvalidId && s < i)
                        addEdge(s, i);
                }
            }
        }
    }

    // ----- fixpoint over conditional rules --------------------------
    recomputeClosure();
    rounds_ = 1;
    while (runRuleScan()) {
        recomputeClosure();
        ++rounds_;
        acAssert(rounds_ < 10000, "gold closure did not converge");
    }
}

void
Closure::addEdge(OpId from, OpId to)
{
    acAssert(from < to, "causality edges must go forward in the trace");
    edgesIn_[to].push_back(from);
}

void
Closure::recomputeClosure()
{
    std::fill(pred_.begin(), pred_.end(), 0);
    for (OpId i = 0; i < n_; ++i) {
        std::uint64_t *mine = &pred_[std::size_t(i) * words_];
        for (OpId j : edgesIn_[i]) {
            const std::uint64_t *theirs = &pred_[std::size_t(j) * words_];
            for (std::uint32_t w = 0; w < words_; ++w)
                mine[w] |= theirs[w];
            mine[j / 64] |= 1ULL << (j % 64);
        }
    }
}

bool
Closure::happensBefore(OpId a, OpId b) const
{
    if (a >= n_ || b >= n_)
        return false;
    return (pred_[std::size_t(b) * words_ + a / 64] >>
            (a % 64)) & 1;
}

bool
Closure::runRuleScan()
{
    // The async model has no queues, so none of the conditional
    // looper rules apply; every async edge is unconditional and was
    // added in the constructor. (Also keeps byQueue below from
    // indexing the kInvalidId queue of task events.)
    if (trace_.dialect() == trace::Dialect::Async)
        return false;

    bool added = false;
    auto have = [&](OpId from, OpId to) {
        return happensBefore(from, to);
    };
    auto maybeAdd = [&](OpId from, OpId to) {
        // Direct-edge duplicates are harmless but bloat edge lists;
        // skip anything already in the closure.
        if (from != to && !have(from, to)) {
            addEdge(from, to);
            added = true;
        }
    };

    const auto &events = trace_.events();

    // Group events per queue, in send order.
    std::vector<std::vector<EventId>> byQueue(trace_.queues().size());
    {
        std::vector<std::pair<OpId, EventId>> sends;
        for (EventId e = 0; e < events.size(); ++e) {
            if (events[e].sendOp != kInvalidId)
                sends.emplace_back(events[e].sendOp, e);
        }
        std::sort(sends.begin(), sends.end());
        for (auto &[opId, e] : sends)
            byQueue[events[e].queue].push_back(e);
    }

    for (std::uint32_t q = 0; q < byQueue.size(); ++q) {
        const bool binder =
            trace_.queue(q).kind == QueueKind::Binder;
        const auto &evs = byQueue[q];
        for (std::size_t a = 0; a < evs.size(); ++a) {
            const EventInfo &e1 = events[evs[a]];
            for (std::size_t b = 0; b < evs.size(); ++b) {
                if (a == b)
                    continue;
                const EventInfo &e2 = events[evs[b]];
                if (binder) {
                    // Binder rule: FIFO dequeue orders begins.
                    if (cfg_.binderRule && e1.beginOp != kInvalidId &&
                        e2.beginOp != kInvalidId &&
                        have(e1.sendOp, e2.sendOp)) {
                        maybeAdd(e1.beginOp, e2.beginOp);
                    }
                    continue;
                }
                if (e2.beginOp == kInvalidId)
                    continue;
                // PRIORITY (FIFO is its untagged special case).
                if (cfg_.priorityRule && have(e1.sendOp, e2.sendOp) &&
                    trace::priorityOrders(e1.attrs, e2.attrs)) {
                    if (e1.endOp != kInvalidId) {
                        maybeAdd(e1.endOp, e2.beginOp);
                    } else if (e1.removeOp != kInvalidId &&
                               cfg_.removedRelay) {
                        // Removed events relay their resolved time:
                        // the successor inherits send(E1) (E1's
                        // priority predecessors reach E2 via the
                        // transitivity of the Table 1 priority
                        // function).
                        maybeAdd(e1.sendOp, e2.beginOp);
                    }
                }
                // ATFRONT: send(E2) < send(E1@front) < begin(E2)
                //          => end(E1) < begin(E2).
                if (cfg_.atFrontRule &&
                    e1.attrs.kind == trace::SendKind::AtFront &&
                    e1.endOp != kInvalidId &&
                    have(e2.sendOp, e1.sendOp) &&
                    have(e1.sendOp, e2.beginOp)) {
                    maybeAdd(e1.endOp, e2.beginOp);
                }
            }
        }
    }

    // ATOMIC: events on one looper are atomic w.r.t. each other: if
    // begin(E1) happens-before an op of E2, then end(E1) does too.
    if (cfg_.atomicRule) {
        // Events per looper thread.
        std::vector<std::vector<EventId>> byLooper(
            trace_.threads().size());
        for (EventId e = 0; e < events.size(); ++e) {
            ThreadId looper = trace_.looperOf(e);
            if (looper != kInvalidId && events[e].beginOp != kInvalidId)
                byLooper[looper].push_back(e);
        }
        for (const auto &evs : byLooper) {
            for (EventId e1 : evs) {
                if (events[e1].endOp == kInvalidId)
                    continue;
                for (EventId e2 : evs) {
                    if (e1 == e2)
                        continue;
                    // Earliest op of E2 reached from begin(E1); PO
                    // propagates to the rest of E2.
                    for (OpId beta : eventOps_[e2]) {
                        if (have(events[e1].beginOp, beta)) {
                            maybeAdd(events[e1].endOp, beta);
                            break;
                        }
                    }
                }
            }
        }
    }

    return added;
}

std::vector<GoldRace>
Closure::races() const
{
    // Accesses grouped by variable.
    std::vector<std::vector<OpId>> byVar(trace_.vars().size());
    for (OpId i = 0; i < n_; ++i) {
        const Operation &op = trace_.op(i);
        if (op.kind == OpKind::Read || op.kind == OpKind::Write)
            byVar[op.target].push_back(i);
    }
    std::vector<GoldRace> out;
    for (const auto &accesses : byVar) {
        for (std::size_t i = 0; i < accesses.size(); ++i) {
            for (std::size_t j = i + 1; j < accesses.size(); ++j) {
                OpId a = accesses[i], b = accesses[j];
                bool conflict =
                    trace_.op(a).kind == OpKind::Write ||
                    trace_.op(b).kind == OpKind::Write;
                if (conflict && !happensBefore(a, b) &&
                    !happensBefore(b, a)) {
                    out.push_back({a, b});
                }
            }
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace asyncclock::gold
