/**
 * @file
 * Gold-standard happens-before oracle.
 *
 * Computes the full happens-before closure of a trace by literally
 * applying the causality rules (paper Fig 3, Fig 7, Table 1) to a
 * fixpoint over per-operation predecessor bitsets. Quadratic in trace
 * size and only suitable for small traces — it exists as the *test
 * oracle* against which both the AsyncClock detector and the
 * EventRacer-style baseline are validated, and as the executable
 * specification of the causality model.
 *
 * Rule set implemented (each individually switchable for ablation
 * tests):
 *  - PO, SEND, FORK, JOIN, SIGNAL, LOOPBEGIN, LOOPEND (Fig 3)
 *  - PRIORITY with the Table 1 priority function; plain FIFO events
 *    are Delayed events with zero delay, so Rule FIFO is the special
 *    case of PRIORITY on untagged events
 *  - ATOMIC with the paper's revision (only the part of E2 after its
 *    wait is ordered after end(E1))
 *  - ATFRONT via the paper's rule: send(E2) < send(E1@front) < begin(E2)
 *  - removed events relay their resolved time to their successors
 *    (section 5.3 "Event Removal")
 *  - binder events of one queue have causally ordered begins when
 *    their sends are ordered (dequeued FIFO, executed concurrently)
 *
 * The oracle is model-parameterized by the trace's dialect. For async
 * traces (trace/trace.hh) the looper rule set is replaced by the
 * structured-concurrency edges of core/async_model.hh — SPAWN (the
 * sendOp/beginOp cross-links double as spawn/start), AWAIT (settle ->
 * await, where a task's settle op is its end or its cancel), and
 * SCOPE (every member's settle -> scope close) — all unconditional,
 * so the fixpoint converges in one round.
 */

#ifndef ASYNCCLOCK_GOLD_CLOSURE_HH
#define ASYNCCLOCK_GOLD_CLOSURE_HH

#include <cstdint>
#include <vector>

#include "trace/trace.hh"

namespace asyncclock::gold {

/** Rule toggles; default = full extended Android model. */
struct GoldConfig
{
    bool atomicRule = true;
    bool priorityRule = true;
    bool atFrontRule = true;
    bool binderRule = true;
    bool loopRules = true;      ///< LOOPBEGIN + LOOPEND
    bool removedRelay = true;
    /** SIGNAL edges from every prior signal to a wait. When false,
     * only the first (releasing) signal per handle contributes an
     * edge — latch semantics order the wait after the release, but
     * any later signal could have been the releasing one under a
     * different schedule. The predictive tier (src/predict/) drops
     * the extras to expose schedule-dependent orderings. */
    bool extraSignalEdges = true;
};

/** A race: two conflicting unordered accesses, by operation id.
 * first < second in trace order. */
struct GoldRace
{
    trace::OpId first;
    trace::OpId second;

    bool operator==(const GoldRace &other) const = default;
    bool
    operator<(const GoldRace &other) const
    {
        return first != other.first ? first < other.first
                                    : second < other.second;
    }
};

/**
 * The oracle. Construction runs the fixpoint; queries are O(1).
 */
class Closure
{
  public:
    explicit Closure(const trace::Trace &tr, GoldConfig cfg = {});

    /** Does op @p a happen-before op @p b? (Irreflexive.) */
    bool happensBefore(trace::OpId a, trace::OpId b) const;

    /** All racy conflicting access pairs, sorted. */
    std::vector<GoldRace> races() const;

    /** Number of fixpoint rounds taken (diagnostics). */
    unsigned rounds() const { return rounds_; }

    /** Direct edges into @p op (diagnostics for tests/tools). */
    const std::vector<trace::OpId> &
    edgesInto(trace::OpId op) const
    {
        return edgesIn_[op];
    }

  private:
    void addEdge(trace::OpId from, trace::OpId to);
    bool runRuleScan();
    void recomputeClosure();

    const trace::Trace &trace_;
    GoldConfig cfg_;
    std::uint32_t n_ = 0;
    std::uint32_t words_ = 0;
    /** pred_[i] = bitset over ops that happen-before op i. */
    std::vector<std::uint64_t> pred_;
    /** Direct edges, adjacency by target. */
    std::vector<std::vector<trace::OpId>> edgesIn_;
    /** Ops of each event, in trace order (for ATOMIC). */
    std::vector<std::vector<trace::OpId>> eventOps_;
    unsigned rounds_ = 0;
};

} // namespace asyncclock::gold

#endif // ASYNCCLOCK_GOLD_CLOSURE_HH
