#include "clock/tree_clock.hh"

#include <atomic>

namespace asyncclock::clock {

namespace {

/** Process-wide pruning kill switch (see header: erase on an
 * owner-rooted tree breaks content monotonicity for everyone). */
std::atomic<bool> prunePoisoned{false};

} // namespace

bool
TreeClock::pruningDisabled()
{
    return prunePoisoned.load(std::memory_order_relaxed);
}

void
TreeClock::resetPruneGuard()
{
    prunePoisoned.store(false, std::memory_order_relaxed);
}

void
TreeClock::poisonPruning()
{
    prunePoisoned.store(true, std::memory_order_relaxed);
}

std::int32_t
TreeClock::newNode(ChainId chain, Tick clk)
{
    Node n;
    n.chain = chain;
    n.clk = clk;
    nodes_.push_back(n);
    auto idx = static_cast<std::uint32_t>(nodes_.size() - 1);
    index_[chain] = idx;
    return static_cast<std::int32_t>(idx);
}

void
TreeClock::detach(std::int32_t v)
{
    Node &n = nodes_[static_cast<std::uint32_t>(v)];
    if (n.parent == kNil)
        return;
    if (n.prevSib != kNil)
        nodes_[static_cast<std::uint32_t>(n.prevSib)].nextSib =
            n.nextSib;
    else
        nodes_[static_cast<std::uint32_t>(n.parent)].firstChild =
            n.nextSib;
    if (n.nextSib != kNil)
        nodes_[static_cast<std::uint32_t>(n.nextSib)].prevSib =
            n.prevSib;
    n.parent = n.prevSib = n.nextSib = kNil;
}

void
TreeClock::attachFront(std::int32_t parent, std::int32_t child,
                       Tick aclk)
{
    Node &p = nodes_[static_cast<std::uint32_t>(parent)];
    Node &c = nodes_[static_cast<std::uint32_t>(child)];
    c.parent = parent;
    c.aclk = aclk;
    c.prevSib = kNil;
    c.nextSib = p.firstChild;
    if (p.firstChild != kNil)
        nodes_[static_cast<std::uint32_t>(p.firstChild)].prevSib =
            child;
    p.firstChild = child;
}

void
TreeClock::uncertifyPath(std::int32_t v)
{
    // cert(child)=false does not bound cert(ancestor), so the walk
    // cannot early-stop; tree depth is bounded by join history and
    // stays small under the detector's tick/export discipline.
    while (v != kNil) {
        Node &n = nodes_[static_cast<std::uint32_t>(v)];
        n.cert = false;
        v = n.parent;
    }
}

void
TreeClock::copyFrom(const TreeClock &other)
{
    nodes_ = other.nodes_;
    index_ = other.index_;
    root_ = other.root_;
    // A snapshot is not the chain's live owner clock: it may grow by
    // joins the owner never sees, so it must not hand out finite
    // attach claims against the owner's future ticks.
    ownerRooted_ = false;
    clockStats().deepCopies.fetch_add(1, std::memory_order_relaxed);
}

void
TreeClock::raise(ChainId chain, Tick t)
{
    if (t == 0)
        return;
    if (std::uint32_t *ip = index_.find(chain)) {
        std::int32_t v = static_cast<std::int32_t>(*ip);
        Node &n = nodes_[*ip];
        if (n.clk >= t)
            return;
        // An out-of-band entry: t need not be a tick the chain's
        // owner clock ever published, so no subset claim survives.
        n.clk = t;
        n.cert = false;
        n.covered = false;
        uncertifyPath(n.parent);
        if (v == root_)
            ownerRooted_ = false;
        return;
    }
    std::int32_t v = newNode(chain, t);
    if (root_ == kNil) {
        root_ = v;
        return;
    }
    attachFront(root_, v, kInfAclk);
    uncertifyPath(root_);
}

void
TreeClock::tick(ChainId chain, Tick t)
{
    if (t == 0)
        return;
    if (std::uint32_t *ip = index_.find(chain)) {
        std::int32_t v = static_cast<std::int32_t>(*ip);
        if (nodes_[*ip].clk >= t)
            return;  // non-advancing tick degrades to a no-op raise
        if (v != root_) {
            detach(v);
            std::int32_t old = root_;
            root_ = v;
            Node &n = nodes_[*ip];
            n.parent = kNil;
            n.aclk = kInfAclk;
            // A finite aclk asserts the pair claim
            //   content(old.chain@old.clk) ⊆ content(chain@t),
            // and the right side is exactly this tree at this
            // instant — so the claim holds iff the dethroned root
            // was covered. Uncovered roots attach unprunably.
            attachFront(
                v, old,
                nodes_[static_cast<std::uint32_t>(old)].covered
                    ? t
                    : kInfAclk);
        }
        Node &n = nodes_[*ip];
        n.clk = t;
        n.cert = true;
        n.covered = true;
        ownerRooted_ = true;
        return;
    }
    std::int32_t v = newNode(chain, t);
    Node &n = nodes_[static_cast<std::uint32_t>(v)];
    n.cert = true;
    n.covered = true;
    if (root_ != kNil) {
        std::int32_t old = root_;
        root_ = v;
        // Same covered gate as the re-root path above.
        attachFront(
            v, old,
            nodes_[static_cast<std::uint32_t>(old)].covered
                ? t
                : kInfAclk);
    } else {
        root_ = v;
    }
    ownerRooted_ = true;
}

void
TreeClock::clear()
{
    if (ownerRooted_)
        poisonPruning();
    reset();
}

void
TreeClock::joinWith(const TreeClock &s)
{
    ClockStats &st = clockStats();
    st.joins.fetch_add(1, std::memory_order_relaxed);
    if (s.root_ == kNil || &s == this) {
        st.joinFastPaths.fetch_add(1, std::memory_order_relaxed);
        st.noteJoinSize(0);
        return;
    }
    st.noteJoinSize(s.size());
    if (root_ == kNil) {
        copyFrom(s);
        st.joinFastPaths.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    const bool prune = !pruningDisabled();

    struct Adoption
    {
        std::uint32_t tIdx;
        ChainId parentChain;  ///< valid when !parentIsRoot
        Tick aclk;            ///< valid when !parentIsRoot
        bool parentIsRoot;
    };
    std::vector<Adoption> adoptions;
    std::vector<std::int32_t> stack;
    stack.push_back(s.root_);
    std::uint64_t visited = 0;
    std::uint64_t pruned = 0;

    while (!stack.empty()) {
        std::int32_t ui = stack.back();
        stack.pop_back();
        const Node &u = s.nodes_[static_cast<std::uint32_t>(ui)];
        ++visited;

        // Pre-join target state for u's chain: prune thresholds and
        // the cert formula both need the values before adoption.
        std::int32_t ti = kNil;
        Tick oldClk = 0;
        bool oldCert = false;
        bool oldCovered = false;
        if (const std::uint32_t *ip = index_.find(u.chain)) {
            ti = static_cast<std::int32_t>(*ip);
            const Node &tn = nodes_[*ip];
            oldClk = tn.clk;
            oldCert = tn.cert;
            oldCovered = tn.covered;
        }

        // Whole-subtree prune: subtree_S(u) ⊆ content(u.chain@u.clk)
        // (cert) ⊆ content(u.chain@oldClk) (monotone) ⊆ this tree
        // (covered).
        if (prune && u.cert && oldCovered && oldClk >= u.clk) {
            ++pruned;
            continue;
        }

        if (u.clk > oldClk) {
            bool fresh = (ti == kNil);
            if (fresh)
                ti = newNode(u.chain, u.clk);
            Node &tn = nodes_[static_cast<std::uint32_t>(ti)];
            tn.clk = u.clk;
            tn.cert = u.cert && (fresh || oldCert);
            tn.covered = u.covered;
            if (ti == root_) {
                // The root entry now comes from a join, not from the
                // chain's own tick: this tree stops being the owner
                // clock.
                ownerRooted_ = false;
            } else {
                Adoption a;
                a.tIdx = static_cast<std::uint32_t>(ti);
                if (ui == s.root_) {
                    a.parentIsRoot = true;
                    a.parentChain = 0;
                    a.aclk = kInfAclk;
                } else {
                    a.parentIsRoot = false;
                    a.parentChain =
                        s.nodes_[static_cast<std::uint32_t>(u.parent)]
                            .chain;
                    a.aclk = u.aclk;
                }
                adoptions.push_back(a);
            }
        } else if (ti != kNil && u.clk == oldClk && u.covered) {
            // Equal entries: the source's coverage claim transfers
            // (content ⊆ S ⊆ pointwise this-after-join).
            nodes_[static_cast<std::uint32_t>(ti)].covered = true;
        }

        for (std::int32_t wi = u.firstChild; wi != kNil;
             wi = s.nodes_[static_cast<std::uint32_t>(wi)].nextSib) {
            const Node &w = s.nodes_[static_cast<std::uint32_t>(wi)];
            // Sibling prune:
            //   subtree_S(w) ⊆ content(w.chain@w.clk)      [w.cert,
            //                                     checked at prune
            //                                     time: raises and
            //                                     stale-parent
            //                                     adoptions below w
            //                                     clear it]
            //   ⊆ content(u.chain@w.aclk)                  [pair
            //                                     claim: finite
            //                                     aclks are minted
            //                                     only under a
            //                                     covered root]
            //   ⊆ content(u.chain@oldClk)                  [monotone]
            //   ⊆ this tree                                [oldCovered]
            if (prune && w.cert && oldCovered &&
                w.aclk != kInfAclk && oldClk >= w.aclk) {
                ++pruned;
                continue;
            }
            stack.push_back(wi);
        }
    }

    // Restructure: reattach adopted nodes mirroring the source, in
    // source preorder so image parents exist before their children
    // move.
    for (const Adoption &a : adoptions) {
        std::int32_t p;
        Tick aclk;
        if (a.parentIsRoot) {
            p = root_;
            // Mid-period attach. Claiming content(root.chain@clk+1)
            // would assume the chain's NEXT tick happens on this very
            // clock — but chain reuse can hand the next tick to a
            // fresh owner that only inherited the last exported
            // snapshot, not joins made after it. No safe finite
            // threshold exists, so the attach is unprunable.
            aclk = kInfAclk;
        } else {
            const std::uint32_t *pi = index_.find(a.parentChain);
            // The image parent exists: source parents are visited
            // before their children, and a visited node is either
            // adopted or already present.
            acAssert(pi != nullptr, "tree join: missing image parent");
            p = static_cast<std::int32_t>(*pi);
            aclk = a.aclk;
        }
        std::int32_t v = static_cast<std::int32_t>(a.tIdx);
        // Undisciplined histories can place the image parent inside
        // v's own current subtree; attaching there would cycle. Fall
        // back to an unprunable root attach.
        for (std::int32_t anc = p; anc != kNil;
             anc = nodes_[static_cast<std::uint32_t>(anc)].parent) {
            if (anc == v) {
                p = root_;
                aclk = kInfAclk;
                break;
            }
        }
        if (v == p)
            continue;
        detach(v);
        attachFront(p, v, aclk);
        // The attach parent's subtree grew by content its chain entry
        // never vouched for: clear cert from the parent up.
        uncertifyPath(p);
    }

    st.joinEntriesVisited.fetch_add(visited,
                                    std::memory_order_relaxed);
    if (pruned)
        st.joinFastPaths.fetch_add(pruned, std::memory_order_relaxed);
}

bool
TreeClock::leq(const TreeClock &other) const
{
    return forEachWhile([&](ChainId c, const Tick &t) {
        return other.get(c) >= t;
    });
}

bool
TreeClock::operator==(const TreeClock &other) const
{
    if (size() != other.size())
        return false;
    return forEachWhile([&](ChainId c, const Tick &t) {
        return other.get(c) == t;
    });
}

} // namespace asyncclock::clock
