/**
 * @file
 * Sparse vector clocks over chains, behind a pluggable backend.
 *
 * A chain (section 2.4) is either a worker thread or a chain of
 * causally ordered events produced by chain decomposition; chains play
 * the role threads play in conventional vector clocks. Because a long
 * execution can create thousands of chains while any single operation
 * has causal history in only a few, the clock is stored sparsely
 * (section 4.2 "Sparse Vectors", following accordion clocks [7]):
 * absent entries mean timestamp 0.
 *
 * Since the ClockPolicy refactor (see clock/policy.hh) VectorClock is
 * a facade over one of four representations selected at construction
 * time — the eager sparse clock (SparseClock, default, now SoA with
 * SIMD join/leq kernels via clock/soa_table.hh), the copy-on-write
 * interned clock (clock/cow_clock.hh), the tree clock
 * (clock/tree_clock.hh), and the persistent cow-tree hybrid
 * (clock/hybrid_clock.hh). All expose the same operation set and
 * identical observable state; mixed-backend joins and comparisons go
 * through the canonical (chain, tick) entry view, so backends can
 * coexist in one process.
 */

#ifndef ASYNCCLOCK_CLOCK_VECTOR_CLOCK_HH
#define ASYNCCLOCK_CLOCK_VECTOR_CLOCK_HH

#include <cstdint>
#include <string>
#include <variant>

#include "clock/cow_clock.hh"
#include "clock/hybrid_clock.hh"
#include "clock/policy.hh"
#include "clock/soa_table.hh"
#include "clock/tree_clock.hh"

namespace asyncclock::clock {

/** The original eager sparse clock: chain id -> last known tick,
 * stored as canonical-layout SoA lanes so joins and comparisons
 * between same-layout clocks run through the SIMD kernels. */
class SparseClock
{
  public:
    SparseClock() = default;

    Tick
    get(ChainId chain) const
    {
        return map_.get(chain);
    }

    void
    raise(ChainId chain, Tick tick)
    {
        if (tick == 0)
            return;
        map_.raiseTo(chain, tick);
    }

    bool
    knows(const Epoch &e) const
    {
        return e.tick == 0 || get(e.chain) >= e.tick;
    }

    void
    joinWith(const SparseClock &other)
    {
        ClockStats &st = clockStats();
        st.joins.fetch_add(1, std::memory_order_relaxed);
        st.noteJoinSize(other.map_.size());
        if (other.map_.empty() || &other == this) {
            st.joinFastPaths.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        map_.joinFrom(other.map_);
        st.joinEntriesVisited.fetch_add(other.map_.size(),
                                        std::memory_order_relaxed);
    }

    bool
    leq(const SparseClock &other) const
    {
        return map_.leqAll(other.map_);
    }

    bool
    equals(const SparseClock &other) const
    {
        return map_.equals(other.map_);
    }

    /** True when the SIMD lane fast path applies to this pair. */
    bool
    sameLayoutAs(const SparseClock &other) const
    {
        return map_.sameLayout(other.map_);
    }

    std::uint32_t size() const { return map_.size(); }
    void clear() { map_.clear(); }

    template <typename Pred>
    void
    eraseIf(Pred &&pred)
    {
        map_.eraseIf(pred);
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        map_.forEach(fn);
    }

    template <typename Fn>
    bool
    forEachWhile(Fn &&fn) const
    {
        return map_.forEachWhile(fn);
    }

    std::uint64_t byteSize() const { return map_.byteSize(); }

  private:
    SoaTable map_;
};

/**
 * The clock the rest of the system uses. The representation is fixed
 * per object at construction (default: the process-wide
 * defaultBackend()); copies keep the source's representation.
 */
class VectorClock
{
  public:
    VectorClock() : VectorClock(defaultBackend()) {}

    explicit VectorClock(Backend b)
    {
        if (b == Backend::Cow)
            rep_.emplace<CowClock>();
        else if (b == Backend::Tree)
            rep_.emplace<TreeClock>();
        else if (b == Backend::Hybrid)
            rep_.emplace<HybridClock>();
        // Sparse is the variant's default alternative.
    }

    /** This clock's representation. */
    Backend
    backend() const
    {
        return static_cast<Backend>(rep_.index());
    }

    /** Timestamp known for @p chain (0 if none). */
    Tick
    get(ChainId chain) const
    {
        return std::visit(
            [&](const auto &r) { return r.get(chain); }, rep_);
    }

    /** Raise the entry for @p chain to at least @p tick. */
    void
    raise(ChainId chain, Tick tick)
    {
        std::visit([&](auto &r) { r.raise(chain, tick); }, rep_);
    }

    /**
     * Owner tick: like raise(), but asserts that this clock is chain
     * @p chain's own clock advancing to a fresh, globally unique
     * tick. Semantically identical to raise() on every backend; the
     * tree backend uses the discipline to re-root and certify the
     * entry so later joins can prune.
     */
    void
    tick(ChainId chain, Tick t)
    {
        if (auto *tr = std::get_if<TreeClock>(&rep_))
            tr->tick(chain, t);
        else if (auto *h = std::get_if<HybridClock>(&rep_))
            h->tick(chain, t);
        else
            raise(chain, t);
    }

    /** Does this clock know epoch @p e (i.e. op(e) happens-before the
     * point this clock describes)? */
    bool
    knows(const Epoch &e) const
    {
        return e.tick == 0 || get(e.chain) >= e.tick;
    }

    /** Pointwise maximum with @p other. */
    void
    joinWith(const VectorClock &other)
    {
        if (rep_.index() == other.rep_.index()) {
            std::visit(
                [&](auto &r) {
                    using R = std::decay_t<decltype(r)>;
                    r.joinWith(std::get<R>(other.rep_));
                },
                rep_);
            return;
        }
        // Mixed backends: join through the canonical entry view.
        ClockStats &st = clockStats();
        st.joins.fetch_add(1, std::memory_order_relaxed);
        st.noteJoinSize(other.size());
        std::uint64_t visited = 0;
        other.forEach([&](ChainId c, const Tick &t) {
            ++visited;
            raise(c, t);
        });
        st.joinEntriesVisited.fetch_add(visited,
                                        std::memory_order_relaxed);
    }

    /** True if this clock is pointwise <= @p other. */
    bool
    leq(const VectorClock &other) const
    {
        if (const auto *a = std::get_if<SparseClock>(&rep_)) {
            if (const auto *b =
                    std::get_if<SparseClock>(&other.rep_))
                return a->leq(*b);  // SIMD lane path when same-layout
        }
        if (const auto *a = std::get_if<CowClock>(&rep_)) {
            if (const auto *b = std::get_if<CowClock>(&other.rep_)) {
                if (a->sharesNodeWith(*b))
                    return true;
            }
        }
        if (const auto *a = std::get_if<HybridClock>(&rep_)) {
            if (const auto *b =
                    std::get_if<HybridClock>(&other.rep_)) {
                if (a->sharesTreeWith(*b))
                    return true;
            }
        }
        return forEachWhile([&](ChainId c, const Tick &t) {
            return t <= other.get(c);
        });
    }

    /** Number of nonzero entries. */
    std::uint32_t
    size() const
    {
        return std::visit([](const auto &r) { return r.size(); },
                          rep_);
    }

    /** Drop all entries. */
    void
    clear()
    {
        std::visit([](auto &r) { r.clear(); }, rep_);
    }

    /** Remove entries for which @p pred(chain, tick) holds (used when
     * retiring chains under the time window). */
    template <typename Pred>
    void
    eraseIf(Pred &&pred)
    {
        std::visit([&](auto &r) { r.eraseIf(pred); }, rep_);
    }

    /** Iterate (chain, tick) entries (order unspecified). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        std::visit([&](const auto &r) { r.forEach(fn); }, rep_);
    }

    /** Iterate until @p fn returns false; true if the walk finished. */
    template <typename Fn>
    bool
    forEachWhile(Fn &&fn) const
    {
        return std::visit(
            [&](const auto &r) { return r.forEachWhile(fn); }, rep_);
    }

    /** Fold into the COW intern table (no-op on other backends —
     * hybrid snapshots already share structurally) — call on clocks
     * likely to repeat content, e.g. checkpoint loads. */
    void
    intern()
    {
        if (auto *c = std::get_if<CowClock>(&rep_))
            c->intern();
    }

    /** Heap bytes, for metadata accounting. */
    std::uint64_t
    byteSize() const
    {
        return std::visit(
            [](const auto &r) { return r.byteSize(); }, rep_);
    }

    /** Debug rendering, e.g. "{0:3, 2:7}" (canonically sorted). */
    std::string toString() const;

    bool operator==(const VectorClock &other) const;

  private:
    // Alternative order must match Backend's enumerator values:
    // backend() is the variant index.
    std::variant<SparseClock, CowClock, TreeClock, HybridClock> rep_;
};

} // namespace asyncclock::clock

#endif // ASYNCCLOCK_CLOCK_VECTOR_CLOCK_HH
