/**
 * @file
 * Sparse vector clocks over chains.
 *
 * A chain (section 2.4) is either a worker thread or a chain of
 * causally ordered events produced by chain decomposition; chains play
 * the role threads play in conventional vector clocks. Because a long
 * execution can create thousands of chains while any single operation
 * has causal history in only a few, the clock is stored sparsely
 * (section 4.2 "Sparse Vectors", following accordion clocks [7]):
 * absent entries mean timestamp 0.
 */

#ifndef ASYNCCLOCK_CLOCK_VECTOR_CLOCK_HH
#define ASYNCCLOCK_CLOCK_VECTOR_CLOCK_HH

#include <cstdint>
#include <string>

#include "support/flat_map.hh"

namespace asyncclock::clock {

using ChainId = std::uint32_t;
using Tick = std::uint32_t;

/**
 * A (chain, tick) pair naming one operation's position on its chain —
 * FastTrack's "epoch". The default epoch (tick 0) precedes everything.
 */
struct Epoch
{
    ChainId chain = 0;
    Tick tick = 0;

    bool operator==(const Epoch &other) const = default;
};

/** Sparse vector clock: chain id -> last causally known tick. */
class VectorClock
{
  public:
    VectorClock() = default;

    /** Timestamp known for @p chain (0 if none). */
    Tick
    get(ChainId chain) const
    {
        const Tick *t = map_.find(chain);
        return t ? *t : 0;
    }

    /** Raise the entry for @p chain to at least @p tick. */
    void
    raise(ChainId chain, Tick tick)
    {
        if (tick == 0)
            return;
        Tick &slot = map_[chain];
        if (slot < tick)
            slot = tick;
    }

    /** Does this clock know epoch @p e (i.e. op(e) happens-before the
     * point this clock describes)? */
    bool
    knows(const Epoch &e) const
    {
        return e.tick == 0 || get(e.chain) >= e.tick;
    }

    /** Pointwise maximum with @p other. */
    void
    joinWith(const VectorClock &other)
    {
        other.map_.forEach([this](ChainId c, const Tick &t) {
            raise(c, t);
        });
    }

    /** True if this clock is pointwise <= @p other. */
    bool
    leq(const VectorClock &other) const
    {
        bool ok = true;
        map_.forEach([&](ChainId c, const Tick &t) {
            if (t > other.get(c))
                ok = false;
        });
        return ok;
    }

    /** Number of nonzero entries. */
    std::uint32_t size() const { return map_.size(); }

    /** Drop all entries. */
    void clear() { map_.clear(); }

    /** Remove entries for which @p pred(chain, tick) holds (used when
     * retiring chains under the time window). */
    template <typename Pred>
    void
    eraseIf(Pred &&pred)
    {
        map_.eraseIf(pred);
    }

    /** Iterate (chain, tick) entries. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        map_.forEach(fn);
    }

    /** Heap bytes, for metadata accounting. */
    std::uint64_t
    byteSize() const
    {
        return map_.byteSize();
    }

    /** Debug rendering, e.g. "{0:3, 2:7}". */
    std::string toString() const;

    bool operator==(const VectorClock &other) const;

  private:
    asyncclock::FlatMap<Tick> map_;
};

} // namespace asyncclock::clock

#endif // ASYNCCLOCK_CLOCK_VECTOR_CLOCK_HH
