/**
 * @file
 * Copy-on-write interned vector clock.
 *
 * The detector copies clocks constantly — Fork snapshots, sendVC /
 * endVC / beginVC exports, sharded-checker batch items — and most
 * copies are never mutated afterwards. This backend stores the entry
 * map in a refcounted immutable node: a copy bumps a refcount
 * (pointer-sized, O(1)); the first mutation of a shared node clones
 * it (the classic COW break). An optional intern step (used when
 * checkpoints are loaded, where many per-variable readVCs repeat the
 * same few contents) folds content-equal nodes into one shared node
 * via a bounded thread-local table keyed by a content hash.
 *
 * Refcounts are atomic because clock copies cross threads in the
 * sharded checker's batch queue; the entry map itself is only ever
 * written while uniquely owned (refs == 1), so no further
 * synchronization is needed.
 *
 * Observationally identical to the sparse backend: a null node is the
 * empty clock, and every mutating op lands in a uniquely-owned
 * FlatMap exactly like VectorClock's.
 */

#ifndef ASYNCCLOCK_CLOCK_COW_CLOCK_HH
#define ASYNCCLOCK_CLOCK_COW_CLOCK_HH

#include <atomic>
#include <cstdint>
#include <utility>

#include "clock/policy.hh"
#include "support/flat_map.hh"

namespace asyncclock::clock {

namespace detail {

/** Refcounted immutable clock payload. hash is a lazily computed
 * content fingerprint (0 = not computed) used by interning. */
struct CowNode
{
    FlatMap<Tick> map;
    std::uint64_t hash = 0;
    std::atomic<std::uint32_t> refs{1};
};

} // namespace detail

class CowClock
{
  public:
    CowClock() = default;

    CowClock(const CowClock &other) : node_(other.node_)
    {
        if (node_) {
            node_->refs.fetch_add(1, std::memory_order_relaxed);
            clockStats().sharedCopies.fetch_add(
                1, std::memory_order_relaxed);
        }
    }

    CowClock(CowClock &&other) noexcept : node_(other.node_)
    {
        other.node_ = nullptr;
    }

    CowClock &
    operator=(const CowClock &other)
    {
        if (this == &other)
            return *this;
        detail::CowNode *n = other.node_;
        if (n) {
            n->refs.fetch_add(1, std::memory_order_relaxed);
            clockStats().sharedCopies.fetch_add(
                1, std::memory_order_relaxed);
        }
        release();
        node_ = n;
        return *this;
    }

    CowClock &
    operator=(CowClock &&other) noexcept
    {
        if (this != &other) {
            release();
            node_ = other.node_;
            other.node_ = nullptr;
        }
        return *this;
    }

    ~CowClock() { release(); }

    Tick
    get(ChainId chain) const
    {
        if (!node_)
            return 0;
        const Tick *t = node_->map.find(chain);
        return t ? *t : 0;
    }

    void
    raise(ChainId chain, Tick tick)
    {
        if (tick == 0 || get(chain) >= tick)
            return;
        mut().map[chain] = tick;
    }

    bool
    knows(const Epoch &e) const
    {
        return e.tick == 0 || get(e.chain) >= e.tick;
    }

    void
    joinWith(const CowClock &other)
    {
        ClockStats &st = clockStats();
        st.joins.fetch_add(1, std::memory_order_relaxed);
        if (!other.node_ || other.node_ == node_) {
            st.joinFastPaths.fetch_add(1, std::memory_order_relaxed);
            st.noteJoinSize(0);
            return;
        }
        st.noteJoinSize(other.node_->map.size());
        if (!node_) {
            // Empty target: adopt the source node outright.
            node_ = other.node_;
            node_->refs.fetch_add(1, std::memory_order_relaxed);
            st.joinFastPaths.fetch_add(1, std::memory_order_relaxed);
            st.sharedCopies.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        std::uint64_t visited = 0;
        // other.node_ != node_, so mut() cannot invalidate it.
        detail::CowNode &dst = mut();
        other.node_->map.forEach([&](ChainId c, const Tick &t) {
            ++visited;
            Tick &slot = dst.map[c];
            if (slot < t)
                slot = t;
        });
        st.joinEntriesVisited.fetch_add(visited,
                                        std::memory_order_relaxed);
    }

    std::uint32_t size() const { return node_ ? node_->map.size() : 0; }

    void
    clear()
    {
        release();
        node_ = nullptr;
    }

    template <typename Pred>
    void
    eraseIf(Pred &&pred)
    {
        if (!node_ || node_->map.empty())
            return;
        mut().map.eraseIf(pred);
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        if (node_)
            node_->map.forEach(fn);
    }

    template <typename Fn>
    bool
    forEachWhile(Fn &&fn) const
    {
        return node_ ? node_->map.forEachWhile(fn) : true;
    }

    /** True when both clocks share one node (cheap identity; implies
     * equality). */
    bool sharesNodeWith(const CowClock &other) const
    {
        return node_ && node_ == other.node_;
    }

    /**
     * Fold this clock into the thread-local intern table: if a
     * content-equal node is already interned, share it and drop ours;
     * otherwise publish ours. Cheap no-op for the empty clock.
     */
    void intern();

    std::uint64_t
    byteSize() const
    {
        if (!node_)
            return 0;
        // Shared nodes are charged in full to each holder: accounting
        // stays deterministic and errs conservative.
        return sizeof(detail::CowNode) + node_->map.byteSize();
    }

  private:
    /** Unique-owner access for mutation: clones a shared node, clears
     * a stale hash. Never called with null intent — creates the node
     * if absent. */
    detail::CowNode &
    mut()
    {
        if (!node_) {
            node_ = new detail::CowNode();
            return *node_;
        }
        if (node_->refs.load(std::memory_order_acquire) > 1) {
            auto *fresh = new detail::CowNode();
            fresh->map = node_->map;
            clockStats().cowBreaks.fetch_add(
                1, std::memory_order_relaxed);
            clockStats().deepCopies.fetch_add(
                1, std::memory_order_relaxed);
            release();
            node_ = fresh;
        } else {
            node_->hash = 0;
        }
        return *node_;
    }

    void
    release()
    {
        if (node_ &&
            node_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1)
            delete node_;
        node_ = nullptr;
    }

    detail::CowNode *node_ = nullptr;
};

/** Drop the calling thread's intern table (tests, end of load). */
void clearInternTable();

} // namespace asyncclock::clock

#endif // ASYNCCLOCK_CLOCK_COW_CLOCK_HH
