/**
 * @file
 * Tree clock backend: sublinear monotone joins over chains.
 *
 * Adapts Mathur et al., "Tree Clocks: Improving Vector Clocks for
 * Sparse Synchronization" (PAPERS.md) from threads to AsyncClock
 * chains. Entries are nodes of a rooted tree; each node carries
 *
 *   (chain, clk, aclk)
 *
 * where clk is the known tick for the chain and aclk ("attach clock")
 * is the parent chain's tick at which this subtree became known to
 * the parent chain. A join walks the *source* tree top-down and can
 * prune whole subtrees the target provably already knows, making join
 * cost proportional to the number of entries that actually change —
 * the paper's "monotone join".
 *
 * Soundness bookkeeping. The pruning argument relies on a global
 * discipline — entries enter clocks only through a chain's own tick
 * or joins of full chain clocks snapshotted at a tick. The detector
 * obeys it (every export of a chain clock is immediately preceded by
 * tick() in the same handler), but the clock API also allows raw
 * raise(), eraseIf(), and cross-backend joins. Rather than trust the
 * caller, each node tracks two bits that are the two halves of the
 * pruning chain, where content(c@t) denotes the owner clock of chain
 * c at the moment it ticked t:
 *
 *   cert    ("A"): subtree(v) \subseteq content(v.chain @ v.clk)
 *   covered ("B"): content(v.chain @ v.clk) \subseteq this tree
 *
 * tick(c, t) re-roots the tree at chain c and establishes both bits
 * on the root (at that instant the tree *is* content(c@t)); joins
 * propagate the bits along the adoption rules derived in the .cc;
 * raise() inserts uncertified entries (both bits false, ancestors'
 * cert cleared); copies clear the owner-rooted flag so a snapshot
 * can never impersonate the live owner clock. A subtree is skipped
 * only when source cert, target covered, and the tick comparison all
 * line up — this applies to both prune rules: the whole-subtree rule
 * checks the visited node's cert, and the sibling rule checks the
 * skipped child's cert plus its finite aclk, which is minted only
 * when a tick dethrones a *covered* root (so the pair claim
 * content(child.chain@clk) ⊆ content(parent.chain@aclk) is a
 * historical fact, immune to later mutation). Undisciplined entries
 * merely degrade joins to the sparse cost instead of corrupting
 * results. eraseIf()/clear() on an
 * owner-rooted tree would break the monotonicity of content(c@·)
 * itself, so it trips a process-wide kill switch that disables
 * pruning outright (the detector never does this; the generic-API
 * escape hatch exists for tests and future callers).
 */

#ifndef ASYNCCLOCK_CLOCK_TREE_CLOCK_HH
#define ASYNCCLOCK_CLOCK_TREE_CLOCK_HH

#include <cstdint>
#include <vector>

#include "clock/policy.hh"
#include "support/flat_map.hh"

namespace asyncclock::clock {

class TreeClock
{
  public:
    static constexpr std::int32_t kNil = -1;
    static constexpr Tick kInfAclk = 0xFFFFFFFFu;

    TreeClock() = default;

    TreeClock(const TreeClock &other) { copyFrom(other); }

    TreeClock(TreeClock &&other) noexcept
        : nodes_(std::move(other.nodes_)),
          index_(std::move(other.index_)), root_(other.root_),
          ownerRooted_(other.ownerRooted_)
    {
        other.reset();
    }

    TreeClock &
    operator=(const TreeClock &other)
    {
        if (this != &other) {
            reset();
            copyFrom(other);
        }
        return *this;
    }

    TreeClock &
    operator=(TreeClock &&other) noexcept
    {
        if (this != &other) {
            nodes_ = std::move(other.nodes_);
            index_ = std::move(other.index_);
            root_ = other.root_;
            ownerRooted_ = other.ownerRooted_;
            other.reset();
        }
        return *this;
    }

    Tick
    get(ChainId chain) const
    {
        const std::uint32_t *i = index_.find(chain);
        return i ? nodes_[*i].clk : 0;
    }

    bool
    knows(const Epoch &e) const
    {
        return e.tick == 0 || get(e.chain) >= e.tick;
    }

    /** Generic monotone raise: uncertified entry (see file comment). */
    void raise(ChainId chain, Tick tick);

    /**
     * Owner tick: chain @p chain advances its own clock to @p tick
     * and becomes the root. Only a chain's unique owner clock may
     * call this (the tick values of a chain must be globally unique);
     * a tick that does not advance the entry degrades to raise().
     */
    void tick(ChainId chain, Tick t);

    void joinWith(const TreeClock &other);

    bool leq(const TreeClock &other) const;
    bool operator==(const TreeClock &other) const;

    std::uint32_t
    size() const
    {
        return static_cast<std::uint32_t>(nodes_.size());
    }

    void clear();

    template <typename Pred>
    void
    eraseIf(Pred &&pred)
    {
        bool any = false;
        for (const Node &n : nodes_) {
            // Copy: FlatMap's eraseIf passes a mutable value ref, so
            // predicates may take Tick& — never let them write nodes.
            Tick t = n.clk;
            if (pred(n.chain, t)) {
                any = true;
                break;
            }
        }
        if (any)
            eraseRebuild([&](ChainId c, Tick t) { return pred(c, t); });
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Node &n : nodes_)
            fn(n.chain, static_cast<const Tick &>(n.clk));
    }

    template <typename Fn>
    bool
    forEachWhile(Fn &&fn) const
    {
        for (const Node &n : nodes_) {
            if (!fn(n.chain, static_cast<const Tick &>(n.clk)))
                return false;
        }
        return true;
    }

    std::uint64_t
    byteSize() const
    {
        return nodes_.capacity() * sizeof(Node) + index_.byteSize();
    }

    /** Pruning kill switch state (see file comment). */
    static bool pruningDisabled();
    /** Re-arm pruning after a disciplined test reset. */
    static void resetPruneGuard();

  private:
    struct Node
    {
        ChainId chain = 0;
        Tick clk = 0;
        Tick aclk = kInfAclk;
        bool cert = false;
        bool covered = false;
        std::int32_t parent = kNil;
        std::int32_t firstChild = kNil;
        std::int32_t nextSib = kNil;
        std::int32_t prevSib = kNil;
    };

    void copyFrom(const TreeClock &other);
    std::int32_t newNode(ChainId chain, Tick clk);
    void detach(std::int32_t v);
    void attachFront(std::int32_t parent, std::int32_t child,
                     Tick aclk);
    /** Clear cert on @p v and its ancestors (stop at already-false:
     * false is absorbing, so walks amortize). */
    void uncertifyPath(std::int32_t v);

    void
    reset()
    {
        nodes_.clear();
        index_.clear();
        root_ = kNil;
        ownerRooted_ = false;
    }

    template <typename Pred>
    void
    eraseRebuild(Pred &&pred)
    {
        if (ownerRooted_)
            poisonPruning();
        std::vector<Node> old = std::move(nodes_);
        nodes_.clear();
        index_.clear();
        root_ = kNil;
        ownerRooted_ = false;
        for (const Node &n : old) {
            Tick t = n.clk;
            if (pred(n.chain, t))
                continue;
            // Flat rebuild: structure and both soundness bits are
            // forfeited (any subset claim may now be false).
            std::int32_t v = newNode(n.chain, n.clk);
            if (root_ == kNil)
                root_ = v;
            else
                attachFront(root_, v, kInfAclk);
        }
    }
    static void poisonPruning();

    std::vector<Node> nodes_;
    FlatMap<std::uint32_t> index_;  ///< chain -> index in nodes_
    std::int32_t root_ = kNil;
    /** True while this tree is the live owner clock of root_'s chain,
     * i.e. the last structural op was tick(). Cleared by copies,
     * joins that overwrite the root entry, erase, clear. */
    bool ownerRooted_ = false;
};

} // namespace asyncclock::clock

#endif // ASYNCCLOCK_CLOCK_TREE_CLOCK_HH
