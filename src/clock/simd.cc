#include "clock/simd.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__SSE2__)
#define AC_SIMD_SSE2 1
#include <emmintrin.h>
#elif (defined(__ARM_NEON) || defined(__ARM_NEON__)) && \
    defined(__aarch64__)
// AArch64 only: the kernels use the A64 horizontal vmaxvq_u32.
#define AC_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace asyncclock::clock {

namespace {

bool
simdFromEnv()
{
    const char *env = std::getenv("ASYNCCLOCK_SIMD");
    if (!env || !*env)
        return true;
    return std::strcmp(env, "0") && std::strcmp(env, "off") &&
           std::strcmp(env, "false");
}

std::atomic<bool> &
simdSlot()
{
    static std::atomic<bool> slot{simdFromEnv()};
    return slot;
}

void
scalarMaxU32(std::uint32_t *dst, const std::uint32_t *src,
             std::uint32_t n)
{
    for (std::uint32_t i = 0; i < n; ++i) {
        if (dst[i] < src[i])
            dst[i] = src[i];
    }
}

bool
scalarAllLeqU32(const std::uint32_t *a, const std::uint32_t *b,
                std::uint32_t n)
{
    for (std::uint32_t i = 0; i < n; ++i) {
        if (a[i] > b[i])
            return false;
    }
    return true;
}

} // namespace

bool
simdEnabled()
{
    return simdSlot().load(std::memory_order_relaxed);
}

void
setSimdEnabled(bool on)
{
    simdSlot().store(on, std::memory_order_relaxed);
}

const char *
simdIsa()
{
#if AC_SIMD_SSE2
    return "sse2";
#elif AC_SIMD_NEON
    return "neon";
#else
    return "scalar";
#endif
}

namespace simd {

void
maxU32(std::uint32_t *dst, const std::uint32_t *src, std::uint32_t n)
{
    std::uint32_t i = 0;
#if AC_SIMD_SSE2
    if (simdEnabled()) {
        // SSE2 has no unsigned 32-bit max; flip the sign bit so the
        // signed compare orders unsigned values.
        const __m128i flip = _mm_set1_epi32(
            static_cast<int>(0x80000000u));
        for (; i + 4 <= n; i += 4) {
            __m128i d = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(dst + i));
            __m128i s = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(src + i));
            __m128i gt = _mm_cmpgt_epi32(_mm_xor_si128(s, flip),
                                         _mm_xor_si128(d, flip));
            __m128i mx = _mm_or_si128(_mm_and_si128(gt, s),
                                      _mm_andnot_si128(gt, d));
            _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i),
                             mx);
        }
    }
#elif AC_SIMD_NEON
    if (simdEnabled()) {
        for (; i + 4 <= n; i += 4) {
            uint32x4_t d = vld1q_u32(dst + i);
            uint32x4_t s = vld1q_u32(src + i);
            vst1q_u32(dst + i, vmaxq_u32(d, s));
        }
    }
#endif
    scalarMaxU32(dst + i, src + i, n - i);
}

bool
allLeqU32(const std::uint32_t *a, const std::uint32_t *b,
          std::uint32_t n)
{
    std::uint32_t i = 0;
#if AC_SIMD_SSE2
    if (simdEnabled()) {
        const __m128i flip = _mm_set1_epi32(
            static_cast<int>(0x80000000u));
        for (; i + 4 <= n; i += 4) {
            __m128i av = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(a + i));
            __m128i bv = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(b + i));
            __m128i gt = _mm_cmpgt_epi32(_mm_xor_si128(av, flip),
                                         _mm_xor_si128(bv, flip));
            if (_mm_movemask_epi8(gt))
                return false;
        }
    }
#elif AC_SIMD_NEON
    if (simdEnabled()) {
        for (; i + 4 <= n; i += 4) {
            uint32x4_t av = vld1q_u32(a + i);
            uint32x4_t bv = vld1q_u32(b + i);
            uint32x4_t gt = vcgtq_u32(av, bv);
            // Any lane all-ones => a violation in this block.
            if (vmaxvq_u32(gt))
                return false;
        }
    }
#endif
    return scalarAllLeqU32(a + i, b + i, n - i);
}

std::uint32_t
occupiedMask4(const std::uint32_t *keys, std::uint32_t empty)
{
#if AC_SIMD_SSE2
    if (simdEnabled()) {
        __m128i k = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(keys));
        __m128i eq = _mm_cmpeq_epi32(
            k, _mm_set1_epi32(static_cast<int>(empty)));
        // movemask_ps folds each 32-bit lane to one bit.
        std::uint32_t emptyMask = static_cast<std::uint32_t>(
            _mm_movemask_ps(_mm_castsi128_ps(eq)));
        return ~emptyMask & 0xFu;
    }
#endif
    std::uint32_t m = 0;
    for (unsigned lane = 0; lane < 4; ++lane) {
        if (keys[lane] != empty)
            m |= 1u << lane;
    }
    return m;
}

} // namespace simd

} // namespace asyncclock::clock
