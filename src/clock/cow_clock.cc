#include "clock/cow_clock.hh"

#include <algorithm>
#include <vector>

namespace asyncclock::clock {

namespace {

/**
 * Bounded thread-local intern table: an open-addressed array of node
 * pointers keyed by content hash. Each slot holds one reference on
 * its node (released on replacement or thread exit), so interned
 * nodes stay valid even after every external holder dropped theirs.
 * Thread-local keeps the hot path lock-free; sharing across threads
 * is unnecessary because interning is a memory optimization, not a
 * semantic one.
 */
struct InternTable
{
    static constexpr std::size_t kSlots = 1024;
    detail::CowNode *slots[kSlots] = {};

    ~InternTable()
    {
        for (auto *n : slots) {
            if (n &&
                n->refs.fetch_sub(1, std::memory_order_acq_rel) == 1)
                delete n;
        }
    }
};

InternTable &
internTable()
{
    thread_local InternTable table;
    return table;
}

std::uint64_t
contentHash(const FlatMap<Tick> &map)
{
    // Canonical (sorted) FNV-1a over entries, so hash equality is
    // independent of insertion order and table layout.
    std::vector<std::pair<ChainId, Tick>> entries;
    entries.reserve(map.size());
    map.forEach([&](ChainId c, const Tick &t) {
        entries.emplace_back(c, t);
    });
    std::sort(entries.begin(), entries.end());
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint32_t v) {
        for (int i = 0; i < 4; ++i) {
            h ^= (v >> (i * 8)) & 0xFF;
            h *= 1099511628211ULL;
        }
    };
    for (const auto &[c, t] : entries) {
        mix(c);
        mix(t);
    }
    return h ? h : 1;  // 0 means "not computed"
}

bool
sameContent(const FlatMap<Tick> &a, const FlatMap<Tick> &b)
{
    if (a.size() != b.size())
        return false;
    return a.forEachWhile([&](ChainId c, const Tick &t) {
        const Tick *o = b.find(c);
        return o && *o == t;
    });
}

} // namespace

void
CowClock::intern()
{
    if (!node_)
        return;
    if (node_->hash == 0)
        node_->hash = contentHash(node_->map);
    InternTable &table = internTable();
    std::size_t slot = node_->hash % InternTable::kSlots;
    detail::CowNode *cur = table.slots[slot];
    ClockStats &st = clockStats();
    if (cur && cur != node_ && cur->hash == node_->hash &&
        sameContent(cur->map, node_->map)) {
        // Share the interned node, drop ours.
        cur->refs.fetch_add(1, std::memory_order_relaxed);
        release();
        node_ = cur;
        st.internHits.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    if (cur == node_) {
        st.internHits.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    // Publish ours, evicting whatever held the slot.
    node_->refs.fetch_add(1, std::memory_order_relaxed);
    if (cur &&
        cur->refs.fetch_sub(1, std::memory_order_acq_rel) == 1)
        delete cur;
    table.slots[slot] = node_;
    st.internMisses.fetch_add(1, std::memory_order_relaxed);
}

void
clearInternTable()
{
    InternTable &table = internTable();
    for (auto *&n : table.slots) {
        if (n && n->refs.fetch_sub(1, std::memory_order_acq_rel) == 1)
            delete n;
        n = nullptr;
    }
}

} // namespace asyncclock::clock
