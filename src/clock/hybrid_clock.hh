/**
 * @file
 * Hybrid cow-tree clock: persistent tree-clock nodes in a refcounted
 * family arena, guarded by generation stamps.
 *
 * The PR 5 bench data split the field: the cow backend wins
 * snapshot-heavy detector runs (copies are refcount bumps) and the
 * tree backend wins join-dominated regimes (monotone subtree pruning)
 * but pays a deep copy on every export. This backend takes both
 * columns at once by making the *tree* persistent:
 *
 *   - A clock holds one refcounted HybridRep; copying a clock bumps
 *     that single count — a snapshot is a pointer bump, exactly the
 *     cow cost.
 *   - Mutation first splits a shared rep (index copy — no node
 *     copies), then path-copies only the root-to-target spine, and
 *     only those spine nodes the rep does not own. A tick that
 *     dethrones the root touches O(depth) nodes; joins that prune do
 *     not touch nodes at all.
 *   - The attach clock (aclk) lives on the parent's child *edge*, not
 *     in the child node, so dethroning attaches the old root without
 *     mutating it — the O(1) fresh-chain dethrone.
 *
 * Ownership is *generational*, not per-node refcounted. A first cut
 * of this backend refcounted every HNode; cloning a node then cost
 * one atomic increment per child edge and releasing the stale spine
 * cost the matching decrements — with root fanouts near the chain
 * count, that refcount traffic dominated the split path by an order
 * of magnitude. Instead, all nodes of one clock lineage live in one
 * bump-allocated *family pool* (freed when the last rep of the family
 * dies), and each node carries the pool stamp at which it was born.
 * A rep records the stamp at which it last became shared (a split
 * stamps both sides); a node is writable by a rep iff it was born
 * after that point — a plain load and compare, no refcounts. The
 * proof obligation is the same as for per-node counts: a node born
 * after rep R last shared is reachable only from R, because other
 * reps' indexes were copied before it existed and R's spine clones
 * link fresh nodes only under already-owned parents.
 *
 * Unlinked nodes (dethroned spines, superseded clones) stay in the
 * pool as garbage; when a rep is sole owner of its family and the
 * pool's lifetime allocation exceeds a multiple of the live tree, the
 * tree is compacted into a fresh pool (counted as a deepCopy). That
 * bounds garbage to a constant factor of live bytes, amortized
 * O(1) per mutation. byteSize() deliberately charges the *live*
 * content formula, not pool bytes, so the memory-budget ladder makes
 * identical decisions when a checkpointed run is replayed.
 *
 * Structure bookkeeping that TreeClock keeps in nodes (parent /
 * sibling links) cannot live in shared persistent nodes, so each rep
 * carries a chain -> (node, parent chain) index; parent paths are
 * reconstructed by walking parent chains through the index. The
 * cert/covered soundness bits and the pruning rules are ported
 * verbatim from clock/tree_clock.hh (see its file comment for the
 * subset-claim derivation); undisciplined ops degrade pruning rather
 * than corrupt results, and eraseIf()/clear() on an owner-rooted
 * clock trips this backend's own process-wide prune kill switch.
 *
 * Concurrency: clock copies cross threads in the sharded checker, so
 * rep/pool refcounts and the stamp counter are atomic, and pool
 * allocation takes a spinlock. As everywhere in the clock layer, one
 * clock object must not be mutated concurrently with reads of the
 * same object; shared nodes are never written (that is what the
 * stamp discipline enforces), so cross-clock sharing needs no locks.
 */

#ifndef ASYNCCLOCK_CLOCK_HYBRID_CLOCK_HH
#define ASYNCCLOCK_CLOCK_HYBRID_CLOCK_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "clock/policy.hh"
#include "support/flat_map.hh"

namespace asyncclock::clock {

namespace detail {

struct HNode;

/** Child edge. The attach clock is edge state: it asserts a claim the
 * *parent* makes about the child subtree, and keeping it here lets a
 * dethrone adopt the old root without mutating it. */
struct HEdge
{
    HNode *child = nullptr;
    Tick aclk = 0xFFFFFFFFu;
};

/** Persistent tree-clock node. Plain data; lives in the family pool
 * and is immutable unless born after its rep's last share point. */
struct HNode
{
    ChainId chain = 0;
    Tick clk = 0;
    bool cert = false;
    bool covered = false;
    std::uint64_t born = 0;   ///< family stamp at creation/clone
    /** Stamp at which the kids array was last privately allocated.
     * The array is copy-on-write one level below the node: a clone
     * shares its source's array (a value-only mutation like a root
     * tick never touches edges), and any edge write first copies the
     * array unless kidsBorn proves it is already private. */
    std::uint64_t kidsBorn = 0;
    std::uint32_t kidCount = 0;
    std::uint32_t kidCap = 0;
    HEdge *kids = nullptr;    ///< family-pool array
};

/** Bump allocator + stamp source shared by every rep of one clock
 * lineage. Nodes are never freed individually; the whole pool dies
 * with its last rep, and compaction migrates live nodes out. */
struct HPool
{
    std::atomic<std::uint32_t> refs{1};
    std::atomic<std::uint64_t> stamp{0};
    /** Next allocated() level at which compaction re-evaluates.
     * Atomic: two reps of one family can race to re-arm it; any of
     * the raced values keeps the gate sound (it is only a
     * throttle). */
    std::atomic<std::uint64_t> compactAt{4096};

    /** Bump-allocate @p bytes (8-aligned). Inline fast path: the
     * common case is a fitting bump in the current block; the block
     * refill is out of line. The spinlock is cheap here — families
     * are almost always single-threaded, so it stays core-local. */
    void *
    alloc(std::size_t bytes)
    {
        bytes = (bytes + 7) & ~std::size_t(7);
        while (lock_.test_and_set(std::memory_order_acquire)) {
        }
        char *p;
        if (cur_ && bytes <= std::size_t(curEnd_ - cur_)) {
            p = cur_;
            cur_ += bytes;
        } else {
            p = refill(bytes);
        }
        allocated_.fetch_add(bytes, std::memory_order_relaxed);
        lock_.clear(std::memory_order_release);
        return p;
    }
    std::uint64_t
    nextStamp()
    {
        return stamp.fetch_add(1, std::memory_order_relaxed) + 1;
    }
    std::uint64_t
    allocated() const
    {
        return allocated_.load(std::memory_order_relaxed);
    }

  private:
    struct Block
    {
        std::unique_ptr<char[]> mem;
        std::size_t size = 0;
    };
    /** Grow blocks_ and serve @p bytes from the fresh block.
     * Called with lock_ held. */
    char *refill(std::size_t bytes);

    std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
    std::vector<Block> blocks_;
    char *cur_ = nullptr;        ///< bump cursor in blocks_.back()
    char *curEnd_ = nullptr;
    std::size_t nextBlock_ = 256;  ///< geometric: tiny clocks stay tiny
    std::atomic<std::uint64_t> allocated_{0};
};

/** Index entry: where a chain's node is and who its parent is (the
 * root's parentChain is kNoChain). Non-owning; node lifetime is the
 * pool's. */
struct HIdx
{
    HNode *node = nullptr;
    ChainId parentChain = 0;
};

/** Shareable clock state: one count covers the whole snapshot. */
struct HybridRep
{
    HPool *pool = nullptr;
    HNode *root = nullptr;
    FlatMap<HIdx> index;  ///< chain -> HIdx
    std::atomic<std::uint32_t> refs{1};
    /** Stamp at which this rep last became shared (0 = never): nodes
     * born later are exclusively reachable from this rep. Atomic
     * because a split of a shared rep stamps the side it leaves
     * behind. */
    std::atomic<std::uint64_t> sharedStamp{0};
};

} // namespace detail

class HybridClock
{
  public:
    static constexpr Tick kInfAclk = 0xFFFFFFFFu;
    static constexpr ChainId kNoChain = 0xFFFFFFFFu;

    HybridClock() = default;

    HybridClock(const HybridClock &other) : rep_(other.rep_)
    {
        if (rep_) {
            rep_->refs.fetch_add(1, std::memory_order_relaxed);
            clockStats().sharedCopies.fetch_add(
                1, std::memory_order_relaxed);
        }
        // A snapshot is not the chain's live owner clock (see
        // TreeClock's copyFrom rationale).
    }

    HybridClock(HybridClock &&other) noexcept
        : rep_(other.rep_), ownerRooted_(other.ownerRooted_)
    {
        other.rep_ = nullptr;
        other.ownerRooted_ = false;
    }

    HybridClock &
    operator=(const HybridClock &other)
    {
        if (this == &other)
            return *this;
        detail::HybridRep *r = other.rep_;
        if (r) {
            r->refs.fetch_add(1, std::memory_order_relaxed);
            clockStats().sharedCopies.fetch_add(
                1, std::memory_order_relaxed);
        }
        releaseRep();
        rep_ = r;
        ownerRooted_ = false;
        return *this;
    }

    HybridClock &
    operator=(HybridClock &&other) noexcept
    {
        if (this != &other) {
            releaseRep();
            rep_ = other.rep_;
            ownerRooted_ = other.ownerRooted_;
            other.rep_ = nullptr;
            other.ownerRooted_ = false;
        }
        return *this;
    }

    ~HybridClock() { releaseRep(); }

    Tick
    get(ChainId chain) const
    {
        if (!rep_)
            return 0;
        const detail::HIdx *e = rep_->index.find(chain);
        return e ? e->node->clk : 0;
    }

    bool
    knows(const Epoch &e) const
    {
        return e.tick == 0 || get(e.chain) >= e.tick;
    }

    /** Generic monotone raise: uncertified entry. */
    void raise(ChainId chain, Tick tick);

    /** Owner tick: re-roots at @p chain and certifies the entry (see
     * TreeClock::tick). */
    void tick(ChainId chain, Tick t);

    void joinWith(const HybridClock &other);

    bool leq(const HybridClock &other) const;
    bool operator==(const HybridClock &other) const;

    std::uint32_t
    size() const
    {
        return rep_ ? rep_->index.size() : 0;
    }

    void clear();

    template <typename Pred>
    void
    eraseIf(Pred &&pred)
    {
        if (!rep_ || rep_->index.empty())
            return;
        bool any = !rep_->index.forEachWhile(
            [&](ChainId c, const detail::HIdx &e) {
                Tick t = e.node->clk;
                return !pred(c, t);
            });
        if (any)
            eraseRebuild([&](ChainId c, Tick t) { return pred(c, t); });
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        if (!rep_)
            return;
        rep_->index.forEach([&](ChainId c, const detail::HIdx &e) {
            fn(c, static_cast<const Tick &>(e.node->clk));
        });
    }

    template <typename Fn>
    bool
    forEachWhile(Fn &&fn) const
    {
        if (!rep_)
            return true;
        return rep_->index.forEachWhile(
            [&](ChainId c, const detail::HIdx &e) {
                return fn(c,
                          static_cast<const Tick &>(e.node->clk));
            });
    }

    /** True when both clocks provably hold identical content: same
     * rep, or split reps still sharing one root node (a shared root
     * is immutable under the stamp discipline, so it pins identical
     * trees). */
    bool
    sharesTreeWith(const HybridClock &other) const
    {
        if (rep_ && rep_ == other.rep_)
            return true;
        return rep_ && other.rep_ && rep_->root &&
               rep_->root == other.rep_->root;
    }

    /**
     * Deterministic size accounting: nodes are shared across
     * snapshots and pool garbage depends on mutation history, so
     * (like the cow backend) each holder is charged the live-content
     * formula — entry count times node + edge cost plus its own
     * index. Checkpoint replay must reproduce ladder decisions, so
     * pool bytes are deliberately not part of the measure.
     */
    std::uint64_t
    byteSize() const
    {
        if (!rep_)
            return 0;
        std::uint64_t n = size();
        std::uint64_t edges = n > 0 ? n - 1 : 0;
        return sizeof(detail::HybridRep) + rep_->index.byteSize() +
               n * sizeof(detail::HNode) +
               edges * sizeof(detail::HEdge);
    }

    /** Pruning kill switch state (separate from TreeClock's). */
    static bool pruningDisabled();
    /** Re-arm pruning after a disciplined test reset. */
    static void resetPruneGuard();

  private:
    /** Unique-owner access for mutation. Inline fast path: when the
     * rep is unshared this is one acquire load plus the relaxed
     * compaction-gate compare; the cold cases (no rep yet, shared
     * rep split, actual compaction) are out of line. */
    void
    ensureRepUnique()
    {
        if (rep_ &&
            rep_->refs.load(std::memory_order_acquire) == 1) {
            detail::HPool *pool = rep_->pool;
            if (pool->allocated() >=
                pool->compactAt.load(std::memory_order_relaxed))
                maybeCompact();
            return;
        }
        splitRep();
    }
    void splitRep();
    void maybeCompact();
    detail::HNode *newNode(ChainId chain, Tick clk);
    detail::HNode *cloneNode(const detail::HNode *n);
    void addKid(detail::HNode *p, detail::HNode *c, Tick aclk);
    void removeEdge(detail::HNode *p, detail::HNode *v);
    /** Copy @p p's kid array (same capacity) unless already private;
     * required before any in-place edge write. */
    void ownKidsInPlace(detail::HNode *p);
    /** True when @p n was born after this rep last became shared, so
     * no other rep can reach it. */
    bool
    owns(const detail::HNode *n) const
    {
        return n->born >
               rep_->sharedStamp.load(std::memory_order_relaxed);
    }
    /** Make every node on the root -> @p chain path writable
     * (path-copying stale ones); returns @p chain's node. The chain
     * must be present. Inline fast path: an owned node implies an
     * owned path all the way up (a node born after the rep's last
     * share was linked under a then-owned parent, and shares stamp
     * both sides) — one load and compare, no walk. */
    detail::HNode *
    ownSpine(ChainId chain)
    {
        detail::HIdx *te = rep_->index.find(chain);
        acAssert(te, "hybrid clock: missing spine target");
        if (owns(te->node))
            return te->node;
        return ownSpineSlow(te);
    }
    detail::HNode *ownSpineSlow(detail::HIdx *te);
    /** Clear cert on @p chain's node and its ancestors. All spine
     * nodes must already be owned (ownSpine on a descendant-or-self
     * guarantees it). */
    void uncertifyOwnedPath(ChainId chain);
    /** Drop this handle's reference; destroyRep() is the cold path
     * that actually frees the rep (and the pool with it when this
     * was the family's last rep). Inline so a snapshot's destructor
     * is one branch + one atomic in the common shared case. */
    void
    releaseRep()
    {
        if (rep_ && rep_->refs.fetch_sub(
                        1, std::memory_order_acq_rel) == 1)
            destroyRep();
        rep_ = nullptr;
    }
    void destroyRep();
    static void poisonPruning();

    template <typename Pred>
    void
    eraseRebuild(Pred &&pred)
    {
        if (ownerRooted_)
            poisonPruning();
        // Flat rebuild into a fresh family: structure and both
        // soundness bits are forfeited (any subset claim may now be
        // false).
        std::vector<std::pair<ChainId, Tick>> keep;
        rep_->index.forEach([&](ChainId c, const detail::HIdx &e) {
            Tick t = e.node->clk;
            if (!pred(c, t))
                keep.emplace_back(c, e.node->clk);
        });
        releaseRep();
        ownerRooted_ = false;
        if (keep.empty())
            return;
        ensureRepUnique();  // fresh rep + pool
        for (const auto &[c, t] : keep) {
            detail::HNode *n = newNode(c, t);
            if (!rep_->root) {
                rep_->root = n;
                rep_->index[c] = detail::HIdx{n, kNoChain};
            } else {
                addKid(rep_->root, n, kInfAclk);
                rep_->index[c] =
                    detail::HIdx{n, rep_->root->chain};
            }
        }
    }

    detail::HybridRep *rep_ = nullptr;
    /** True while this clock is the live owner clock of the root's
     * chain (last structural op was tick()). Cleared by copies, joins
     * that overwrite the root entry, erase, clear. */
    bool ownerRooted_ = false;
};

} // namespace asyncclock::clock

#endif // ASYNCCLOCK_CLOCK_HYBRID_CLOCK_HH
