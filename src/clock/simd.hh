/**
 * @file
 * Portable SIMD kernels for the sparse clock hot loops.
 *
 * The sparse backend stores its table as SoA lanes (clock/soa_table.hh):
 * a keys array and a ticks array. Two clocks whose key lanes are
 * byte-identical (the common steady state under Robin Hood's canonical
 * layout) can join and compare lane-wise over the raw tick arrays —
 * empty slots hold tick 0, which is the identity of both max and <=.
 * These kernels implement that lane work:
 *
 *   maxU32    dst[i] = max(dst[i], src[i])        (pointwise join)
 *   allLeqU32 forall i: a[i] <= b[i]              (clock leq), with
 *             block-granularity early exit mirroring the scalar
 *             short-circuit
 *   occupiedMask4  4-lane "key != empty" bitmask  (occupancy scan for
 *             the general join path)
 *
 * Instruction sets: SSE2 (the x86-64 baseline — unsigned max needs the
 * sign-flip trick, _mm_max_epu32 is SSE4.1) and NEON, with a scalar
 * fallback that is always compiled and can be forced at runtime via
 * setSimdEnabled(false) / ASYNCCLOCK_SIMD=0 so differential tests can
 * sweep vector vs scalar on the same build.
 */

#ifndef ASYNCCLOCK_CLOCK_SIMD_HH
#define ASYNCCLOCK_CLOCK_SIMD_HH

#include <cstdint>

namespace asyncclock::clock {

/** Runtime kernel selection: true = vector ISA (when compiled in),
 * false = scalar loops. Seeded from $ASYNCCLOCK_SIMD (unset/1/on =
 * enabled; 0/off = scalar). */
bool simdEnabled();
void setSimdEnabled(bool on);

/** The vector ISA this build dispatches to when enabled: "sse2",
 * "neon", or "scalar". */
const char *simdIsa();

namespace simd {

/** dst[i] = max(dst[i], src[i]) for i in [0, n). Unaligned-safe. */
void maxU32(std::uint32_t *dst, const std::uint32_t *src,
            std::uint32_t n);

/** forall i in [0, n): a[i] <= b[i]. Early-exits on the first
 * violating block. Unaligned-safe. */
bool allLeqU32(const std::uint32_t *a, const std::uint32_t *b,
               std::uint32_t n);

/** Bit i (i in 0..3) set iff keys[i] != empty. @p keys must have 4
 * readable lanes. Used to skip empty runs in the general join scan. */
std::uint32_t occupiedMask4(const std::uint32_t *keys,
                            std::uint32_t empty);

} // namespace simd

} // namespace asyncclock::clock

#endif // ASYNCCLOCK_CLOCK_SIMD_HH
