#include "clock/hybrid_clock.hh"

#include <cstring>
#include <new>

#include "support/logging.hh"

namespace asyncclock::clock {

using detail::HEdge;
using detail::HIdx;
using detail::HNode;
using detail::HPool;
using detail::HybridRep;

namespace {

/** Process-wide pruning kill switch, separate from TreeClock's: the
 * two backends can coexist in one process (mixed-backend tests) and
 * an undisciplined erase on one must not degrade the other. */
std::atomic<bool> hybridPrunePoisoned{false};

/** Stack-buffer vector with heap spill: joins average a handful of
 * visited nodes, so the common case should not touch malloc. */
template <typename T, unsigned N>
class SmallVec
{
  public:
    void
    push(const T &v)
    {
        if (!spilled_) {
            if (n_ < N) {
                buf_[n_++] = v;
                return;
            }
            heap_.assign(buf_, buf_ + N);
            spilled_ = true;
        }
        heap_.push_back(v);
        ++n_;
    }
    T
    pop()
    {
        T v = spilled_ ? heap_.back() : buf_[n_ - 1];
        if (spilled_)
            heap_.pop_back();
        --n_;
        return v;
    }
    const T &
    operator[](unsigned i) const
    {
        return spilled_ ? heap_[i] : buf_[i];
    }
    unsigned size() const { return n_; }
    bool empty() const { return n_ == 0; }

  private:
    T buf_[N];
    std::vector<T> heap_;
    unsigned n_ = 0;
    bool spilled_ = false;
};


} // namespace

namespace detail {

char *
HPool::refill(std::size_t bytes)
{
    std::size_t cap = bytes > nextBlock_ ? bytes : nextBlock_;
    blocks_.push_back(Block{std::make_unique<char[]>(cap), cap});
    if (nextBlock_ < 16384)
        nextBlock_ *= 4;
    char *p = blocks_.back().mem.get();
    cur_ = p + bytes;
    curEnd_ = p + cap;
    return p;
}

} // namespace detail

bool
HybridClock::pruningDisabled()
{
    return hybridPrunePoisoned.load(std::memory_order_relaxed);
}

void
HybridClock::resetPruneGuard()
{
    hybridPrunePoisoned.store(false, std::memory_order_relaxed);
}

void
HybridClock::poisonPruning()
{
    hybridPrunePoisoned.store(true, std::memory_order_relaxed);
}

void
HybridClock::destroyRep()
{
    // Caller saw this rep's refs hit zero.
    if (rep_->pool->refs.fetch_sub(
            1, std::memory_order_acq_rel) == 1)
        delete rep_->pool;
    delete rep_;
}

void
HybridClock::splitRep()
{
    if (!rep_) {
        rep_ = new HybridRep();
        rep_->pool = new HPool();
        return;
    }
    // Split the shared rep: copy the index, share the whole tree.
    // This is the cheap half of the cow break — no node is copied
    // until ownSpine() actually reaches it. Stamping *both* reps at
    // the split point makes every existing node stale for both
    // sides; whichever holder mutates next clones its spine.
    auto *fresh = new HybridRep();
    fresh->pool = rep_->pool;
    fresh->pool->refs.fetch_add(1, std::memory_order_relaxed);
    fresh->root = rep_->root;
    fresh->index = rep_->index;
    std::uint64_t s = fresh->pool->nextStamp();
    fresh->sharedStamp.store(s, std::memory_order_relaxed);
    rep_->sharedStamp.store(s, std::memory_order_relaxed);
    clockStats().cowBreaks.fetch_add(1, std::memory_order_relaxed);
    releaseRep();
    rep_ = fresh;
}

void
HybridClock::maybeCompact()
{
    // Sole owner of rep and family: migrate the live tree into a
    // fresh pool once garbage (superseded clones, dethroned spines,
    // outgrown kid arrays) dominates. Amortized O(1) per mutation —
    // several multiples of live bytes of garbage accrued since the
    // last compaction pay for the O(live) copy.
    // Caller (inline ensureRepUnique) already saw allocated() cross
    // the compactAt gate.
    HPool *pool = rep_->pool;
    if (!rep_->root ||
        pool->refs.load(std::memory_order_acquire) != 1) {
        // Shared family: re-arm the gate so the check stays cheap
        // while snapshots pin the pool.
        pool->compactAt.store(pool->allocated() + 4096,
                              std::memory_order_relaxed);
        return;
    }
    std::uint64_t n = rep_->index.size();
    std::uint64_t live = n * (sizeof(HNode) + sizeof(HEdge));
    if (pool->allocated() < 8 * live + 4096) {
        pool->compactAt.store(8 * live + 4096,
                              std::memory_order_relaxed);
        return;
    }

    auto *np = new HPool();
    auto copyOf = [&](const HNode *src) {
        auto *d = new (np->alloc(sizeof(HNode))) HNode();
        d->chain = src->chain;
        d->clk = src->clk;
        d->cert = src->cert;
        d->covered = src->covered;
        d->born = np->nextStamp();
        d->kidsBorn = d->born;
        d->kidCount = src->kidCount;
        d->kidCap = src->kidCount;
        d->kids = nullptr;
        if (src->kidCount) {
            d->kids = static_cast<HEdge *>(
                np->alloc(src->kidCount * sizeof(HEdge)));
            std::memcpy(d->kids, src->kids,
                        src->kidCount * sizeof(HEdge));
        }
        return d;
    };
    std::vector<std::pair<const HNode *, HNode *>> stack;
    HNode *nr = copyOf(rep_->root);
    rep_->index.find(nr->chain)->node = nr;
    stack.emplace_back(rep_->root, nr);
    while (!stack.empty()) {
        auto [src, dst] = stack.back();
        stack.pop_back();
        for (std::uint32_t i = 0; i < dst->kidCount; ++i) {
            const HNode *sc = dst->kids[i].child;
            HNode *dc = copyOf(sc);
            dst->kids[i].child = dc;
            rep_->index.find(dc->chain)->node = dc;
            stack.emplace_back(sc, dc);
        }
        (void)src;
    }
    np->compactAt.store(8 * live + 4096,
                        std::memory_order_relaxed);
    rep_->root = nr;
    rep_->pool = np;
    rep_->sharedStamp.store(0, std::memory_order_relaxed);
    if (pool->refs.fetch_sub(1, std::memory_order_acq_rel) == 1)
        delete pool;
    clockStats().deepCopies.fetch_add(1, std::memory_order_relaxed);
}

HNode *
HybridClock::newNode(ChainId chain, Tick clk)
{
    auto *n = new (rep_->pool->alloc(sizeof(HNode))) HNode();
    n->chain = chain;
    n->clk = clk;
    n->cert = false;
    n->covered = false;
    n->born = rep_->pool->nextStamp();
    n->kidsBorn = n->born;
    n->kidCount = 0;
    n->kidCap = 0;
    n->kids = nullptr;
    return n;
}

HNode *
HybridClock::cloneNode(const HNode *n)
{
    HNode *c = newNode(n->chain, n->clk);
    c->cert = n->cert;
    c->covered = n->covered;
    // Share the source's kid array: a clone made for a value write
    // (root tick after a snapshot) never touches edges. kidsBorn
    // stays stale, so the first edge write copies the array.
    c->kidCount = n->kidCount;
    c->kidCap = n->kidCap;
    c->kids = n->kids;
    c->kidsBorn = n->kidsBorn;
    clockStats().cowBreaks.fetch_add(1, std::memory_order_relaxed);
    return c;
}

void
HybridClock::addKid(HNode *p, HNode *c, Tick aclk)
{
    HPool *pool = rep_->pool;
    bool shared =
        p->kidsBorn <=
        rep_->sharedStamp.load(std::memory_order_relaxed);
    if (shared || p->kidCount == p->kidCap) {
        std::uint32_t cap = p->kidCount == p->kidCap
                                ? (p->kidCap ? p->kidCap * 2 : 4)
                                : p->kidCap;
        auto *fresh = static_cast<HEdge *>(
            pool->alloc(cap * sizeof(HEdge)));
        if (p->kidCount)
            std::memcpy(fresh, p->kids,
                        p->kidCount * sizeof(HEdge));
        p->kids = fresh;  // the old array becomes pool garbage
        p->kidCap = cap;
        p->kidsBorn = pool->nextStamp();
    }
    p->kids[p->kidCount++] = HEdge{c, aclk};
}

void
HybridClock::removeEdge(HNode *p, HNode *v)
{
    ownKidsInPlace(p);
    for (std::uint32_t i = 0; i < p->kidCount; ++i) {
        if (p->kids[i].child == v) {
            // Order within kids is not observable (joins decide per
            // node, not per position), so swap-erase.
            p->kids[i] = p->kids[p->kidCount - 1];
            --p->kidCount;
            return;
        }
    }
    acAssert(false, "hybrid clock: edge not found");
}

void
HybridClock::ownKidsInPlace(HNode *p)
{
    if (p->kidsBorn >
        rep_->sharedStamp.load(std::memory_order_relaxed))
        return;
    HPool *pool = rep_->pool;
    if (p->kidCap) {
        auto *fresh = static_cast<HEdge *>(
            pool->alloc(p->kidCap * sizeof(HEdge)));
        if (p->kidCount)
            std::memcpy(fresh, p->kids,
                        p->kidCount * sizeof(HEdge));
        p->kids = fresh;
    }
    p->kidsBorn = pool->nextStamp();
}

HNode *
HybridClock::ownSpineSlow(HIdx *te)
{
    // Collect the stale suffix of the path (target upward) until an
    // owned ancestor or the root, then clone top-down, relinking
    // each clone under its (now owned) parent.
    HIdx *pathBuf[32];
    std::vector<HIdx *> pathHeap;
    std::uint32_t depth = 0;
    bool onHeap = false;
    HNode *anchor = nullptr;  // first owned ancestor, if any
    for (HIdx *e = te;;) {
        if (!onHeap && depth < 32) {
            pathBuf[depth++] = e;
        } else {
            if (!onHeap) {
                pathHeap.assign(pathBuf, pathBuf + depth);
                onHeap = true;
            }
            pathHeap.push_back(e);
            ++depth;
        }
        if (e->parentChain == kNoChain)
            break;
        HIdx *pe = rep_->index.find(e->parentChain);
        if (owns(pe->node)) {
            anchor = pe->node;
            break;
        }
        e = pe;
    }
    auto pathAt = [&](std::uint32_t i) {
        return onHeap ? pathHeap[i] : pathBuf[i];
    };
    HNode *cur = anchor;
    for (std::uint32_t i = depth; i-- > 0;) {
        HIdx *se = pathAt(i);
        HNode *old = se->node;
        HNode *nc = cloneNode(old);
        if (!cur) {
            rep_->root = nc;
        } else {
            ownKidsInPlace(cur);
            HEdge *edge = nullptr;
            for (std::uint32_t k = 0; k < cur->kidCount; ++k) {
                if (cur->kids[k].child == old) {
                    edge = &cur->kids[k];
                    break;
                }
            }
            acAssert(edge, "hybrid clock: broken spine");
            edge->child = nc;
        }
        se->node = nc;
        cur = nc;
    }
    return cur;
}

void
HybridClock::uncertifyOwnedPath(ChainId chain)
{
    // Mirrors TreeClock::uncertifyPath: cert(child)=false does not
    // bound cert(ancestor), so walk all the way to the root.
    for (ChainId c = chain; c != kNoChain;) {
        HIdx *e = rep_->index.find(c);
        e->node->cert = false;
        c = e->parentChain;
    }
}

void
HybridClock::raise(ChainId chain, Tick t)
{
    if (t == 0)
        return;
    if (rep_) {
        if (const HIdx *e = rep_->index.find(chain)) {
            if (e->node->clk >= t)
                return;
            ensureRepUnique();
            HNode *n = ownSpine(chain);
            // An out-of-band entry: t need not be a tick the chain's
            // owner clock ever published, so no subset claim
            // survives.
            n->clk = t;
            n->covered = false;
            uncertifyOwnedPath(chain);
            if (n == rep_->root)
                ownerRooted_ = false;
            return;
        }
    }
    ensureRepUnique();
    if (!rep_->root) {
        HNode *n = newNode(chain, t);
        rep_->root = n;
        rep_->index[chain] = HIdx{n, kNoChain};
        return;
    }
    HNode *r = ownSpine(rep_->root->chain);
    HNode *n = newNode(chain, t);
    addKid(r, n, kInfAclk);
    rep_->index[chain] = HIdx{n, r->chain};
    r->cert = false;
}

void
HybridClock::tick(ChainId chain, Tick t)
{
    if (t == 0)
        return;
    if (rep_) {
        if (const HIdx *e = rep_->index.find(chain)) {
            if (e->node->clk >= t)
                return;  // non-advancing tick degrades to a no-op
            ensureRepUnique();
            HNode *v = ownSpine(chain);
            if (v != rep_->root) {
                HIdx *ev = rep_->index.find(chain);
                HNode *p = rep_->index.find(ev->parentChain)->node;
                removeEdge(p, v);
                HNode *oldRoot = rep_->root;
                rep_->root = v;
                // A finite aclk asserts
                //   content(old.chain@old.clk) ⊆ content(chain@t),
                // and the right side is exactly this tree at this
                // instant — so the claim holds iff the dethroned
                // root was covered (see TreeClock::tick).
                addKid(v, oldRoot,
                       oldRoot->covered ? t : kInfAclk);
                ev->parentChain = kNoChain;
                rep_->index.find(oldRoot->chain)->parentChain =
                    chain;
            }
            v->clk = t;
            v->cert = true;
            v->covered = true;
            ownerRooted_ = true;
            return;
        }
    }
    ensureRepUnique();
    HNode *v = newNode(chain, t);
    v->cert = true;
    v->covered = true;
    if (rep_->root) {
        // The O(1) dethrone: the old root is adopted through a new
        // edge without being touched, so it can stay shared.
        HNode *oldRoot = rep_->root;
        addKid(v, oldRoot,
               oldRoot->covered ? t : kInfAclk);
        rep_->root = v;
        rep_->index[chain] = HIdx{v, kNoChain};
        rep_->index.find(oldRoot->chain)->parentChain = chain;
    } else {
        rep_->root = v;
        rep_->index[chain] = HIdx{v, kNoChain};
    }
    ownerRooted_ = true;
}

void
HybridClock::clear()
{
    if (ownerRooted_)
        poisonPruning();
    releaseRep();
    ownerRooted_ = false;
}

void
HybridClock::joinWith(const HybridClock &s)
{
    ClockStats &st = clockStats();
    st.joins.fetch_add(1, std::memory_order_relaxed);
    if (!s.rep_ || !s.rep_->root || s.rep_ == rep_) {
        st.joinFastPaths.fetch_add(1, std::memory_order_relaxed);
        st.noteJoinSize(0);
        return;
    }
    st.noteJoinSize(s.size());
    if (!rep_ || !rep_->root) {
        // Empty target: adopt the source rep outright — the hybrid
        // analogue of TreeClock's copyFrom fast path, at cow cost.
        releaseRep();
        rep_ = s.rep_;
        rep_->refs.fetch_add(1, std::memory_order_relaxed);
        ownerRooted_ = false;
        st.joinFastPaths.fetch_add(1, std::memory_order_relaxed);
        st.sharedCopies.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    if (rep_->root == s.rep_->root) {
        // Split reps still sharing one root: identical content.
        st.joinFastPaths.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    const bool prune = !pruningDisabled();

    // Phase 1 (read-only): walk the source tree, record decisions
    // against the pre-join target state. Each chain appears at most
    // once in the source tree, so deferring the writes observes
    // exactly the same pre-join values TreeClock's interleaved walk
    // captures, and the source tree — which may share nodes with this
    // one — is never touched while being read (phase 2 only writes
    // nodes ownSpine() has made ours).
    struct Decision
    {
        ChainId chain;
        Tick clk;
        Tick aclk;
        ChainId parentChain;
        bool cert;
        bool covered;
        bool exists;
        bool coveredOnly;
        bool targetIsRoot;
        bool parentIsRoot;
    };
    struct Frame
    {
        const HNode *u;
        ChainId srcParentChain;
        Tick aclk;
    };
    SmallVec<Decision, 16> decisions;
    SmallVec<Frame, 24> stack;
    stack.push(Frame{s.rep_->root, kNoChain, kInfAclk});
    std::uint64_t visited = 0;
    std::uint64_t pruned = 0;
    const ChainId rootChain = rep_->root->chain;

    while (!stack.empty()) {
        Frame f = stack.pop();
        const HNode *u = f.u;
        ++visited;

        Tick oldClk = 0;
        bool oldCert = false;
        bool oldCovered = false;
        bool exists = false;
        if (const HIdx *e = rep_->index.find(u->chain)) {
            exists = true;
            oldClk = e->node->clk;
            oldCert = e->node->cert;
            oldCovered = e->node->covered;
        }

        // Whole-subtree prune (see TreeClock::joinWith for the
        // subset-claim chain).
        if (prune && u->cert && oldCovered && oldClk >= u->clk) {
            ++pruned;
            continue;
        }

        if (u->clk > oldClk) {
            Decision d;
            d.chain = u->chain;
            d.clk = u->clk;
            d.cert = u->cert && (!exists || oldCert);
            d.covered = u->covered;
            d.exists = exists;
            d.coveredOnly = false;
            d.targetIsRoot = exists && u->chain == rootChain;
            if (u == s.rep_->root) {
                // Mid-period attach under the target root is
                // unprunable (see TreeClock's adoption comment).
                d.parentIsRoot = true;
                d.parentChain = 0;
                d.aclk = kInfAclk;
            } else {
                d.parentIsRoot = false;
                d.parentChain = f.srcParentChain;
                d.aclk = f.aclk;
            }
            decisions.push(d);
        } else if (exists && u->clk == oldClk && u->covered &&
                   !oldCovered) {
            // Equal entries: the source's coverage claim transfers.
            Decision d{};
            d.chain = u->chain;
            d.coveredOnly = true;
            decisions.push(d);
        }

        for (std::uint32_t i = 0; i < u->kidCount; ++i) {
            const HEdge &e = u->kids[i];
            // Sibling prune: the child's cert plus the finite edge
            // aclk minted under a covered root (see TreeClock).
            if (prune && e.child->cert && oldCovered &&
                e.aclk != kInfAclk && oldClk >= e.aclk) {
                ++pruned;
                continue;
            }
            stack.push(Frame{e.child, u->chain, e.aclk});
        }
    }

    // Phase 2: apply in source preorder, so image parents exist
    // before their children attach.
    if (!decisions.empty()) {
        ensureRepUnique();
        // Attach parents to uncertify, deduplicated. Deferring the
        // walks to after the loop is sound: cert=false only ever
        // disables pruning, and a walk over the *final* structure
        // covers exactly the ancestors that still contain the grown
        // subtrees (a parent that was re-parented mid-join carries
        // its growth along with it).
        SmallVec<ChainId, 16> dirty;
        auto markDirty = [&dirty](ChainId pc) {
            for (unsigned k = 0; k < dirty.size(); ++k)
                if (dirty[k] == pc)
                    return;
            dirty.push(pc);
        };
        for (unsigned di = 0; di < decisions.size(); ++di) {
            const Decision &d = decisions[di];
            if (d.coveredOnly) {
                ownSpine(d.chain)->covered = true;
                continue;
            }
            ChainId pc = 0;
            Tick aclk = kInfAclk;
            if (d.exists) {
                HNode *v = ownSpine(d.chain);
                v->clk = d.clk;
                v->cert = d.cert;
                v->covered = d.covered;
                if (d.targetIsRoot) {
                    // The root entry now comes from a join, not from
                    // the chain's own tick.
                    ownerRooted_ = false;
                    continue;
                }
                if (d.parentIsRoot) {
                    pc = rep_->root->chain;
                } else {
                    pc = d.parentChain;
                    aclk = d.aclk;
                    acAssert(rep_->index.find(pc),
                             "hybrid join: missing image parent");
                    // Undisciplined histories can place the image
                    // parent inside v's own subtree; attaching there
                    // would cycle. Fall back to an unprunable root
                    // attach. (Checked before detaching v.)
                    for (ChainId a = pc; a != kNoChain;
                         a = rep_->index.find(a)->parentChain) {
                        if (a == d.chain) {
                            pc = rep_->root->chain;
                            aclk = kInfAclk;
                            break;
                        }
                    }
                }
                if (pc == d.chain)
                    continue;
                HIdx *ev = rep_->index.find(d.chain);
                HNode *oldP =
                    rep_->index.find(ev->parentChain)->node;
                removeEdge(oldP, v);
                HNode *p = ownSpine(pc);
                addKid(p, v, aclk);
                ev->parentChain = pc;
            } else {
                if (d.parentIsRoot) {
                    pc = rep_->root->chain;
                } else {
                    pc = d.parentChain;
                    aclk = d.aclk;
                    acAssert(rep_->index.find(pc),
                             "hybrid join: missing image parent");
                }
                HNode *p = ownSpine(pc);
                HNode *v = newNode(d.chain, d.clk);
                v->cert = d.cert;
                v->covered = d.covered;
                addKid(p, v, aclk);
                rep_->index[d.chain] = HIdx{v, pc};
            }
            // The attach parent's subtree grew by content its chain
            // entry never vouched for: clear cert from the parent up
            // (walked once per distinct parent, after the loop).
            markDirty(pc);
        }
        for (unsigned k = 0; k < dirty.size(); ++k)
            uncertifyOwnedPath(dirty[k]);
    }

    st.joinEntriesVisited.fetch_add(visited,
                                    std::memory_order_relaxed);
    if (pruned)
        st.joinFastPaths.fetch_add(pruned, std::memory_order_relaxed);
}

bool
HybridClock::leq(const HybridClock &other) const
{
    if (sharesTreeWith(other))
        return true;
    return forEachWhile([&](ChainId c, const Tick &t) {
        return other.get(c) >= t;
    });
}

bool
HybridClock::operator==(const HybridClock &other) const
{
    if (sharesTreeWith(other))
        return true;
    if (size() != other.size())
        return false;
    return forEachWhile([&](ChainId c, const Tick &t) {
        return other.get(c) == t;
    });
}

} // namespace asyncclock::clock
