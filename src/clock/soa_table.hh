/**
 * @file
 * SoaTable: canonical-layout SoA hash table for sparse clocks.
 *
 * The sparse clock is a map chain -> tick. The original FlatMap
 * interleaves keys and values (AoS) and places entries by plain linear
 * probing, so the physical layout depends on insertion order and
 * joins must go entry-by-entry. This table changes both properties to
 * make the hot loops (joinWith, leq) SIMD-able:
 *
 *   - SoA lanes: keys and ticks live in two parallel uint32 arrays,
 *     so a join is lane-wise max over the tick array and leq is a
 *     lane-wise compare (clock/simd.hh).
 *   - Canonical layout via Robin Hood hashing with a total-order tie
 *     break (probe distance, then key): the layout is a pure function
 *     of (key set, capacity), independent of insertion order.
 *     Backward-shift deletion preserves the invariant and growth is
 *     deterministic, so two clocks that passed through the same
 *     entries end up with byte-identical key lanes — and the
 *     join/leq fast path is then a single memcmp plus one vector pass
 *     over the tick lanes, no per-entry probing at all.
 *
 * Empty slots hold tick 0 — the identity of both max and <= — so the
 * lane kernels can run over the full capacity without masking.
 * Observable behavior (find/insert-max/erase/eraseIf/iteration set)
 * matches FlatMap exactly; only iteration *order* differs, which no
 * clock consumer observes (all serialization sorts canonically).
 */

#ifndef ASYNCCLOCK_CLOCK_SOA_TABLE_HH
#define ASYNCCLOCK_CLOCK_SOA_TABLE_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "clock/simd.hh"
#include "support/logging.hh"

namespace asyncclock::clock {

class SoaTable
{
  public:
    static constexpr std::uint32_t emptyKey = 0xFFFFFFFFu;

    SoaTable() = default;

    bool empty() const { return size_ == 0; }
    std::uint32_t size() const { return size_; }

    std::uint64_t
    byteSize() const
    {
        return (keys_.capacity() + ticks_.capacity()) *
               sizeof(std::uint32_t);
    }

    /** Value for @p key; 0 if absent. */
    std::uint32_t
    get(std::uint32_t key) const
    {
        if (keys_.empty())
            return 0;
        std::uint32_t i = probeStart(key);
        while (keys_[i] != emptyKey) {
            if (keys_[i] == key)
                return ticks_[i];
            i = (i + 1) & mask_;
        }
        return 0;
    }

    bool
    contains(std::uint32_t key) const
    {
        if (keys_.empty())
            return false;
        std::uint32_t i = probeStart(key);
        while (keys_[i] != emptyKey) {
            if (keys_[i] == key)
                return true;
            i = (i + 1) & mask_;
        }
        return false;
    }

    /** Insert-or-max: entry for @p key becomes max(current, @p val).
     * @p val must be nonzero (0 means "absent" in clock semantics). */
    void
    raiseTo(std::uint32_t key, std::uint32_t val)
    {
        acAssert(key != emptyKey, "SoaTable key reserved");
        if (!keys_.empty()) {
            std::uint32_t i = probeStart(key);
            while (keys_[i] != emptyKey) {
                if (keys_[i] == key) {
                    if (ticks_[i] < val)
                        ticks_[i] = val;
                    return;
                }
                i = (i + 1) & mask_;
            }
        }
        if (keys_.empty() || (size_ + 1) * 4 > keys_.size() * 3)
            grow();
        insertFresh(key, val);
        ++size_;
    }

    bool
    erase(std::uint32_t key)
    {
        if (keys_.empty())
            return false;
        std::uint32_t i = probeStart(key);
        while (keys_[i] != key) {
            if (keys_[i] == emptyKey)
                return false;
            i = (i + 1) & mask_;
        }
        // Backward-shift deletion: slide the rest of the cluster back
        // one slot while displaced; restores the canonical layout of
        // the reduced key set.
        std::uint32_t j = (i + 1) & mask_;
        while (keys_[j] != emptyKey && dist(j, keys_[j]) > 0) {
            keys_[i] = keys_[j];
            ticks_[i] = ticks_[j];
            i = j;
            j = (j + 1) & mask_;
        }
        keys_[i] = emptyKey;
        ticks_[i] = 0;
        --size_;
        return true;
    }

    void
    clear()
    {
        std::fill(keys_.begin(), keys_.end(), emptyKey);
        std::fill(ticks_.begin(), ticks_.end(), 0u);
        size_ = 0;
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::uint32_t i = 0; i < keys_.size(); ++i) {
            if (keys_[i] != emptyKey)
                fn(keys_[i],
                   static_cast<const std::uint32_t &>(ticks_[i]));
        }
    }

    template <typename Fn>
    bool
    forEachWhile(Fn &&fn) const
    {
        for (std::uint32_t i = 0; i < keys_.size(); ++i) {
            if (keys_[i] != emptyKey &&
                !fn(keys_[i],
                    static_cast<const std::uint32_t &>(ticks_[i])))
                return false;
        }
        return true;
    }

    /** Erase entries where @p pred(key, tick) holds. Rebuilds into
     * the same capacity; canonical insertion makes the result
     * layout-identical to building from the surviving set. */
    template <typename Pred>
    void
    eraseIf(Pred &&pred)
    {
        if (size_ == 0)
            return;
        std::vector<std::uint32_t> oldKeys = std::move(keys_);
        std::vector<std::uint32_t> oldTicks = std::move(ticks_);
        keys_.assign(oldKeys.size(), emptyKey);
        ticks_.assign(oldTicks.size(), 0u);
        size_ = 0;
        for (std::uint32_t i = 0; i < oldKeys.size(); ++i) {
            if (oldKeys[i] == emptyKey)
                continue;
            std::uint32_t t = oldTicks[i];
            if (pred(oldKeys[i], t))
                continue;
            insertFresh(oldKeys[i], oldTicks[i]);
            ++size_;
        }
    }

    /** True when both tables have byte-identical key lanes — the
     * precondition for the lane-wise join/leq kernels. */
    bool
    sameLayout(const SoaTable &other) const
    {
        return keys_.size() == other.keys_.size() && !keys_.empty() &&
               !std::memcmp(keys_.data(), other.keys_.data(),
                            keys_.size() * sizeof(std::uint32_t));
    }

    /**
     * Pointwise max with @p other. Same-layout pairs take one vector
     * pass over the tick lanes; otherwise the occupied slots of
     * @p other are scanned blockwise and inserted individually.
     */
    void
    joinFrom(const SoaTable &other)
    {
        if (other.size_ == 0)
            return;
        if (sameLayout(other)) {
            simd::maxU32(ticks_.data(), other.ticks_.data(),
                         static_cast<std::uint32_t>(ticks_.size()));
            return;
        }
        const std::uint32_t cap =
            static_cast<std::uint32_t>(other.keys_.size());
        std::uint32_t i = 0;
        for (; i + 4 <= cap; i += 4) {
            std::uint32_t occ =
                simd::occupiedMask4(other.keys_.data() + i, emptyKey);
            while (occ) {
                unsigned lane =
                    static_cast<unsigned>(__builtin_ctz(occ));
                occ &= occ - 1;
                raiseTo(other.keys_[i + lane],
                        other.ticks_[i + lane]);
            }
        }
        for (; i < cap; ++i) {
            if (other.keys_[i] != emptyKey)
                raiseTo(other.keys_[i], other.ticks_[i]);
        }
    }

    /** forall entries (k, t) here: t <= other.get(k). */
    bool
    leqAll(const SoaTable &other) const
    {
        if (size_ == 0)
            return true;
        if (sameLayout(other))
            return simd::allLeqU32(
                ticks_.data(), other.ticks_.data(),
                static_cast<std::uint32_t>(ticks_.size()));
        return forEachWhile(
            [&](std::uint32_t k, const std::uint32_t &t) {
                return t <= other.get(k);
            });
    }

    /** Content equality (same entry set and ticks). */
    bool
    equals(const SoaTable &other) const
    {
        if (size_ != other.size_)
            return false;
        if (sameLayout(other))
            return !std::memcmp(ticks_.data(), other.ticks_.data(),
                                ticks_.size() *
                                    sizeof(std::uint32_t));
        return forEachWhile(
            [&](std::uint32_t k, const std::uint32_t &t) {
                return other.get(k) == t;
            });
    }

  private:
    std::uint32_t
    probeStart(std::uint32_t key) const
    {
        std::uint64_t h = static_cast<std::uint64_t>(key) *
                          0x9e3779b97f4a7c15ULL;
        return static_cast<std::uint32_t>(h >> 32) & mask_;
    }

    /** Probe distance of the entry at slot @p i with key @p key. */
    std::uint32_t
    dist(std::uint32_t i, std::uint32_t key) const
    {
        return (i - probeStart(key)) & mask_;
    }

    /**
     * Robin Hood insertion of a key not present. Displaces richer
     * entries; ties on probe distance break by key order, giving a
     * layout that is a pure function of (key set, capacity).
     */
    void
    insertFresh(std::uint32_t key, std::uint32_t val)
    {
        std::uint32_t ck = key;
        std::uint32_t cv = val;
        std::uint32_t i = probeStart(ck);
        std::uint32_t d = 0;
        while (keys_[i] != emptyKey) {
            std::uint32_t ed = dist(i, keys_[i]);
            if (ed < d || (ed == d && keys_[i] > ck)) {
                std::swap(ck, keys_[i]);
                std::swap(cv, ticks_[i]);
                d = ed;
            }
            i = (i + 1) & mask_;
            ++d;
        }
        keys_[i] = ck;
        ticks_[i] = cv;
    }

    void
    grow()
    {
        std::vector<std::uint32_t> oldKeys = std::move(keys_);
        std::vector<std::uint32_t> oldTicks = std::move(ticks_);
        std::size_t cap = oldKeys.empty() ? 8 : oldKeys.size() * 2;
        keys_.assign(cap, emptyKey);
        ticks_.assign(cap, 0u);
        mask_ = static_cast<std::uint32_t>(cap - 1);
        for (std::uint32_t i = 0; i < oldKeys.size(); ++i) {
            if (oldKeys[i] != emptyKey)
                insertFresh(oldKeys[i], oldTicks[i]);
        }
    }

    std::vector<std::uint32_t> keys_;
    std::vector<std::uint32_t> ticks_;
    std::uint32_t mask_ = 0;
    std::uint32_t size_ = 0;
};

} // namespace asyncclock::clock

#endif // ASYNCCLOCK_CLOCK_SOA_TABLE_HH
