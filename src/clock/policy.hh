/**
 * @file
 * Clock substrate policy: runtime-selectable vector-clock backend.
 *
 * Every consumer of causal timestamps (detector, FastTrack checkers,
 * gold closure, EventRacer graph, checkpoints, replay verifier) talks
 * to clock::VectorClock, which since the ClockPolicy refactor is a
 * facade over one of four representations:
 *
 *   - Sparse: the original eager sparse map (chain -> tick), now a
 *             canonical-layout SoA table with SIMD join/leq kernels
 *             (clock/soa_table.hh, clock/simd.hh).
 *   - Cow:    copy-on-write interned nodes — copies are refcount
 *             bumps, content-equal clocks can share storage.
 *   - Tree:   a tree clock (Mathur et al., "Tree Clocks: Improving
 *             Vector Clocks for Sparse Dynamic Races", adapted from
 *             threads to chains) with monotone sublinear joins.
 *   - Hybrid: the cow-tree: persistent refcounted tree-clock nodes,
 *             so a snapshot is a pointer bump AND joins prune
 *             monotone subtrees, with path copying only on the
 *             mutated spine (clock/hybrid_clock.hh).
 *
 * The backend is a process-wide runtime choice: the facade's default
 * constructor reads defaultBackend(), which is seeded from the
 * ASYNCCLOCK_CLOCK environment variable ("sparse" | "cow" | "tree" |
 * "hybrid") and may be overridden programmatically (trace_analyzer
 * --clock=...) via setDefaultBackend(). All backends are observationally
 * equivalent: identical get/knows/leq/forEach results, identical
 * serialized (canonically sorted) entry lists, hence byte-identical
 * reports and checkpoints.
 *
 * This header also owns ClockStats, the cheap relaxed-atomic counters
 * behind the obs clock.* metrics (join sizes, copy counts, intern
 * hits), so the backends can be compared on live runs.
 */

#ifndef ASYNCCLOCK_CLOCK_POLICY_HH
#define ASYNCCLOCK_CLOCK_POLICY_HH

#include <atomic>
#include <cstdint>

namespace asyncclock::obs {
class MetricsRegistry;
}

namespace asyncclock::clock {

using ChainId = std::uint32_t;
using Tick = std::uint32_t;

/**
 * A (chain, tick) pair naming one operation's position on its chain —
 * FastTrack's "epoch". The default epoch (tick 0) precedes everything.
 */
struct Epoch
{
    ChainId chain = 0;
    Tick tick = 0;

    bool operator==(const Epoch &other) const = default;
};

/** Clock representation backends (see file comment). */
enum class Backend : std::uint8_t {
    Sparse = 0,
    Cow = 1,
    Tree = 2,
    Hybrid = 3,
};

/** Number of backends (checkpoint tag validation, test loops). */
inline constexpr unsigned kBackendCount = 4;

/** "sparse" | "cow" | "tree" | "hybrid". */
const char *backendName(Backend b);

/** The full allowed-name set, pipe-separated
 * ("sparse|cow|tree|hybrid") — for usage text and parse errors. */
const char *backendNames();

/** Parse a backend name; returns false (and leaves @p out alone) on
 * unknown names. Callers reporting the failure should include
 * backendNames() in the message. */
bool parseBackend(const char *name, Backend &out);

/** The process-wide backend new default-constructed clocks use.
 * Initialized lazily from $ASYNCCLOCK_CLOCK (unset/unknown =>
 * Sparse). */
Backend defaultBackend();

/**
 * Override the process-wide default backend. Affects clocks
 * constructed afterwards only; existing clocks keep their
 * representation (cross-representation joins convert through the
 * canonical sparse entry view). Call before building detectors and
 * checkers.
 */
void setDefaultBackend(Backend b);

/**
 * Substrate-wide counters, updated with relaxed atomics from the
 * copy/join/intern paths only (raise/get stay free). joinSizeBuckets
 * is a log2 histogram of the entry count of join sources.
 */
struct ClockStats
{
    static constexpr unsigned kJoinBuckets = 16;

    std::atomic<std::uint64_t> joins{0};
    /** Joins resolved without touching entries (same node, empty
     * source, whole-tree/subtree prune). */
    std::atomic<std::uint64_t> joinFastPaths{0};
    /** Entries actually visited by joins (the work a join did). */
    std::atomic<std::uint64_t> joinEntriesVisited{0};
    /** Deep clock copies (entry-by-entry). */
    std::atomic<std::uint64_t> deepCopies{0};
    /** Copies served as COW refcount bumps. */
    std::atomic<std::uint64_t> sharedCopies{0};
    /** COW nodes cloned because a shared node was mutated. */
    std::atomic<std::uint64_t> cowBreaks{0};
    std::atomic<std::uint64_t> internHits{0};
    std::atomic<std::uint64_t> internMisses{0};
    /** log2 histogram of join-source entry counts; bucket i counts
     * sources with size in [2^i, 2^(i+1)), last bucket is overflow. */
    std::atomic<std::uint64_t> joinSizeBuckets[kJoinBuckets];

    void
    noteJoinSize(std::uint32_t entries)
    {
        // bucket = floor(log2(entries)), clamped; 0 and 1 share
        // bucket 0.
        unsigned b = 0;
        while (entries > 1 && b < kJoinBuckets - 1) {
            entries >>= 1;
            ++b;
        }
        joinSizeBuckets[b].fetch_add(1, std::memory_order_relaxed);
    }

    void reset();
};

/** The process-wide stats instance. */
namespace detail
{
/** Storage for clockStats(). constinit: no static-init guard on the
 * hot paths (every snapshot copy bumps a counter through this). */
inline constinit ClockStats gClockStats{};
} // namespace detail

/** Process-wide clock instrumentation counters. */
inline ClockStats &
clockStats()
{
    return detail::gClockStats;
}

/** Zero all counters (bench harnesses, tests). */
void resetClockStats();

/** Publish clockStats() as "clock.*" callback metrics on @p reg. */
void registerClockStats(obs::MetricsRegistry &reg);

} // namespace asyncclock::clock

#endif // ASYNCCLOCK_CLOCK_POLICY_HH
