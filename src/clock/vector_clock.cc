#include "clock/vector_clock.hh"

#include <algorithm>
#include <vector>

#include "support/format.hh"

namespace asyncclock::clock {

std::string
VectorClock::toString() const
{
    std::vector<std::pair<ChainId, Tick>> entries;
    forEach([&](ChainId c, const Tick &t) {
        entries.emplace_back(c, t);
    });
    std::sort(entries.begin(), entries.end());
    std::string out = "{";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (i)
            out += ", ";
        out += strf("%u:%u", entries[i].first, entries[i].second);
    }
    out += "}";
    return out;
}

bool
VectorClock::operator==(const VectorClock &other) const
{
    if (const auto *a = std::get_if<SparseClock>(&rep_)) {
        if (const auto *b = std::get_if<SparseClock>(&other.rep_))
            return a->equals(*b);  // SIMD lane path when same-layout
    }
    if (const auto *a = std::get_if<CowClock>(&rep_)) {
        if (const auto *b = std::get_if<CowClock>(&other.rep_)) {
            if (a->sharesNodeWith(*b))
                return true;
        }
    }
    if (const auto *a = std::get_if<HybridClock>(&rep_)) {
        if (const auto *b = std::get_if<HybridClock>(&other.rep_)) {
            if (a->sharesTreeWith(*b))
                return true;
        }
    }
    // Sparse equality: nonzero entries must match both ways (a zero
    // entry equals an absent one); no backend stores zero entries, so
    // equal sizes plus a one-way pointwise match suffice — with early
    // exit in both checks.
    if (size() != other.size())
        return false;
    return forEachWhile([&](ChainId c, const Tick &t) {
        return other.get(c) == t;
    });
}

} // namespace asyncclock::clock
