#include "clock/vector_clock.hh"

#include <algorithm>
#include <vector>

#include "support/format.hh"

namespace asyncclock::clock {

std::string
VectorClock::toString() const
{
    std::vector<std::pair<ChainId, Tick>> entries;
    map_.forEach([&](ChainId c, const Tick &t) {
        entries.emplace_back(c, t);
    });
    std::sort(entries.begin(), entries.end());
    std::string out = "{";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (i)
            out += ", ";
        out += strf("%u:%u", entries[i].first, entries[i].second);
    }
    out += "}";
    return out;
}

bool
VectorClock::operator==(const VectorClock &other) const
{
    // Sparse equality: nonzero entries must match both ways (a zero
    // entry equals an absent one).
    bool eq = true;
    map_.forEach([&](ChainId c, const Tick &t) {
        if (t != other.get(c))
            eq = false;
    });
    other.map_.forEach([&](ChainId c, const Tick &t) {
        if (t != get(c))
            eq = false;
    });
    return eq;
}

} // namespace asyncclock::clock
