#include "clock/policy.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/metrics.hh"
#include "support/logging.hh"

namespace asyncclock::clock {

const char *
backendName(Backend b)
{
    switch (b) {
      case Backend::Sparse:
        return "sparse";
      case Backend::Cow:
        return "cow";
      case Backend::Tree:
        return "tree";
      case Backend::Hybrid:
        return "hybrid";
    }
    return "sparse";
}

const char *
backendNames()
{
    return "sparse|cow|tree|hybrid";
}

bool
parseBackend(const char *name, Backend &out)
{
    if (!name)
        return false;
    if (!std::strcmp(name, "sparse")) {
        out = Backend::Sparse;
        return true;
    }
    if (!std::strcmp(name, "cow")) {
        out = Backend::Cow;
        return true;
    }
    if (!std::strcmp(name, "tree")) {
        out = Backend::Tree;
        return true;
    }
    if (!std::strcmp(name, "hybrid")) {
        out = Backend::Hybrid;
        return true;
    }
    return false;
}

namespace {

Backend
backendFromEnv()
{
    Backend b = Backend::Sparse;
    const char *env = std::getenv("ASYNCCLOCK_CLOCK");
    if (env && *env && !parseBackend(env, b))
        warnOnce("clock.env",
                 std::string("ASYNCCLOCK_CLOCK=") + env +
                     " not recognized (want " + backendNames() +
                     "); using sparse");
    return b;
}

std::atomic<Backend> &
defaultBackendSlot()
{
    // Lazily env-seeded so namespace-scope DetectorConfig instances
    // observe the override regardless of static init order.
    static std::atomic<Backend> slot{backendFromEnv()};
    return slot;
}

} // namespace

Backend
defaultBackend()
{
    return defaultBackendSlot().load(std::memory_order_relaxed);
}

void
setDefaultBackend(Backend b)
{
    defaultBackendSlot().store(b, std::memory_order_relaxed);
}

void
ClockStats::reset()
{
    joins.store(0, std::memory_order_relaxed);
    joinFastPaths.store(0, std::memory_order_relaxed);
    joinEntriesVisited.store(0, std::memory_order_relaxed);
    deepCopies.store(0, std::memory_order_relaxed);
    sharedCopies.store(0, std::memory_order_relaxed);
    cowBreaks.store(0, std::memory_order_relaxed);
    internHits.store(0, std::memory_order_relaxed);
    internMisses.store(0, std::memory_order_relaxed);
    for (auto &b : joinSizeBuckets)
        b.store(0, std::memory_order_relaxed);
}

void
resetClockStats()
{
    clockStats().reset();
}

void
registerClockStats(obs::MetricsRegistry &reg)
{
    ClockStats &s = clockStats();
    auto rd = [](const std::atomic<std::uint64_t> &v) {
        return v.load(std::memory_order_relaxed);
    };
    reg.counterFn("clock.joins", [&s, rd] { return rd(s.joins); });
    reg.counterFn("clock.join_fast_paths",
                  [&s, rd] { return rd(s.joinFastPaths); });
    reg.counterFn("clock.join_entries_visited",
                  [&s, rd] { return rd(s.joinEntriesVisited); });
    reg.counterFn("clock.copies_deep",
                  [&s, rd] { return rd(s.deepCopies); });
    reg.counterFn("clock.copies_shared",
                  [&s, rd] { return rd(s.sharedCopies); });
    reg.counterFn("clock.cow_breaks",
                  [&s, rd] { return rd(s.cowBreaks); });
    reg.counterFn("clock.intern_hits",
                  [&s, rd] { return rd(s.internHits); });
    reg.counterFn("clock.intern_misses",
                  [&s, rd] { return rd(s.internMisses); });
    for (unsigned i = 0; i < ClockStats::kJoinBuckets; ++i) {
        char name[48];
        std::snprintf(name, sizeof name, "clock.join_size_log2.%02u",
                      i);
        reg.counterFn(name, [&s, rd, i] {
            return rd(s.joinSizeBuckets[i]);
        });
    }
}

} // namespace asyncclock::clock
