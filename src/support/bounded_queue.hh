/**
 * @file
 * Bounded MPSC/SPSC queue for the sharded checker pipeline: blocking
 * push with backpressure, blocking pop, close() to drain and stop.
 */

#ifndef ASYNCCLOCK_SUPPORT_BOUNDED_QUEUE_HH
#define ASYNCCLOCK_SUPPORT_BOUNDED_QUEUE_HH

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

namespace asyncclock::support {

/** Outcome of a timed push; Timeout leaves the item with the caller. */
enum class PushResult
{
    Pushed,
    Timeout,
    Closed,
};

/**
 * A mutex/condvar bounded queue. push() blocks while the queue is at
 * capacity (backpressure keeps the pipeline's buffering bounded);
 * pop() blocks while empty. close() wakes everyone: subsequent push()
 * fails and pop() drains the remaining items then fails.
 */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

    /** Enqueue @p item; false if the queue was closed. */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (!closed_ && items_.size() >= capacity_)
            ++blockedPushes_;
        notFull_.wait(lock, [this] {
            return closed_ || items_.size() < capacity_;
        });
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        lock.unlock();
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Enqueue with a deadline: wait at most @p timeout for space.
     * @p item is moved from only when the result is Pushed, so a
     * Timeout caller can retry (or give up) without losing the item.
     * Unlike push(), this can never hang on a stalled consumer — the
     * sharded checker's watchdog is built on it.
     *
     * Close-while-pushing contract: a close() issued while callers
     * are blocked in here wakes every one of them *immediately* (not
     * at their timeout) and they return Closed with the item
     * untouched. The daemon's drain path relies on this: closing a
     * session's ingest queue releases any admission-throttled
     * producer within a scheduling quantum, never after a full
     * admission timeout.
     */
    PushResult
    tryPushFor(T &item, std::chrono::milliseconds timeout)
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (!closed_ && items_.size() >= capacity_)
            ++blockedPushes_;
        if (!notFull_.wait_for(lock, timeout, [this] {
                return closed_ || items_.size() < capacity_;
            })) {
            return PushResult::Timeout;
        }
        if (closed_)
            return PushResult::Closed;
        items_.push_back(std::move(item));
        lock.unlock();
        notEmpty_.notify_one();
        return PushResult::Pushed;
    }

    /** Dequeue into @p item; false when closed and drained. */
    bool
    pop(T &item)
    {
        std::unique_lock<std::mutex> lock(mu_);
        notEmpty_.wait(lock,
                       [this] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return false;
        item = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        notFull_.notify_one();
        return true;
    }

    /** Items currently queued (locks; cheap enough for gauges). */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return items_.size();
    }

    /** push() calls that found the queue full and had to wait — the
     * producer-side backpressure stalls that are otherwise silent. */
    std::uint64_t
    blockedPushes() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return blockedPushes_;
    }

    /**
     * Stop the queue: pending items remain poppable, new pushes
     * fail. Wakes *all* waiters at once — blocked push()/tryPushFor()
     * callers return false/Closed immediately (see the
     * close-while-pushing contract on tryPushFor), and blocked pop()
     * callers drain the remaining items then fail. Idempotent.
     */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            closed_ = true;
        }
        notFull_.notify_all();
        notEmpty_.notify_all();
    }

    /** Has close() been called? (Pending items may still be
     * poppable.) */
    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return closed_;
    }

  private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::deque<T> items_;
    std::uint64_t blockedPushes_ = 0;
    bool closed_ = false;
};

} // namespace asyncclock::support

#endif // ASYNCCLOCK_SUPPORT_BOUNDED_QUEUE_HH
