/**
 * @file
 * Process shutdown signals, delivered the self-pipe way.
 *
 * A long-lived analysis (an interactive `--serve` run, the
 * `asyncclockd` daemon) must turn SIGINT/SIGTERM into a *graceful*
 * exit: stop admissions, flush sessions to checkpoints or reports,
 * then leave with status 0. Signal handlers can do almost nothing
 * safely, so the handler here only records the signal number and
 * writes one byte to a pipe. Everything else polls:
 *
 *  - pipeline loops call shutdownRequested() on their op cadence
 *    (one relaxed atomic load);
 *  - event loops (the HTTP listener, the daemon main thread) include
 *    shutdownFd() in their poll set and wake instantly — shutdown is
 *    signal-driven, never a poll-timeout race.
 *
 * Installation is idempotent and the state is process-global by
 * design: SIGTERM is addressed to the process, and both the --serve
 * path and the daemon drain path react to the same request.
 * requestShutdown() raises the flag without a real signal, so tests
 * exercise the drain protocol deterministically.
 */

#ifndef ASYNCCLOCK_SUPPORT_SIGNAL_HH
#define ASYNCCLOCK_SUPPORT_SIGNAL_HH

namespace asyncclock::support {

/** Install SIGINT/SIGTERM handlers routing into the shutdown flag +
 * self-pipe. Idempotent; returns false (with a warn) if the pipe or
 * sigaction setup fails — the process then keeps the default
 * die-on-signal behaviour. */
bool installShutdownHandlers();

/** Has a shutdown been requested (signal caught, or
 * requestShutdown())? One relaxed atomic load — poll freely. */
bool shutdownRequested();

/** The signal that requested shutdown (SIGINT/SIGTERM), or 0. */
int shutdownSignal();

/**
 * Read end of the self-pipe: becomes readable on the first shutdown
 * request and stays readable (the byte is never drained), so any
 * number of poll loops can select on it. -1 until
 * installShutdownHandlers() succeeds.
 */
int shutdownFd();

/** Block until a shutdown is requested (poll on shutdownFd()). */
void waitForShutdown();

/** Raise the shutdown flag as if @p sig had been delivered (tests,
 * and in-process drain triggers). Async-signal-safe. */
void requestShutdown(int sig);

/** Clear the flag so one process can run several independent
 * shutdown cycles (tests only — real shutdowns don't come back). */
void resetShutdownForTest();

} // namespace asyncclock::support

#endif // ASYNCCLOCK_SUPPORT_SIGNAL_HH
