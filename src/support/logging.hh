/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * `panic` is for internal invariant violations (a bug in this library);
 * `fatal` is for user errors (bad configuration, malformed traces).
 */

#ifndef ASYNCCLOCK_SUPPORT_LOGGING_HH
#define ASYNCCLOCK_SUPPORT_LOGGING_HH

#include <functional>
#include <string>

namespace asyncclock {

/** Abort with a message: something that should never happen happened. */
[[noreturn]] void panic(const std::string &msg);

/** Exit(1) with a message: the user asked for something impossible. */
[[noreturn]] void fatal(const std::string &msg);

/** Print a warning to stderr and continue. */
void warn(const std::string &msg);

/**
 * Print at most @p limit warnings for @p key, then one final
 * "further warnings suppressed" note. For failure paths that can fire
 * once per record of a corrupt input — the first few instances carry
 * all the signal, the rest just flood stderr. Thread-safe.
 */
void warnRateLimited(const std::string &key, const std::string &msg,
                     unsigned limit = 5);

/** warnRateLimited with limit 1: one warning per key, ever. */
inline void
warnOnce(const std::string &key, const std::string &msg)
{
    warnRateLimited(key, msg, 1);
}

/**
 * Observer of the warn family. Invoked for *every* warn()/
 * warnRateLimited()/warnOnce() call — including the ones the rate
 * limiter swallowed (@p suppressed true, nothing printed) — so the
 * observability layer can count warnings that never reached stderr
 * (obs::WarnTap). @p key is the rate-limit key ("" for plain
 * warn()). Called outside the rate-limit lock from whichever thread
 * warned; the listener must be thread-safe and must not warn.
 */
using WarnListener = std::function<void(
    const std::string &key, const std::string &msg, bool suppressed)>;

/** Install (or, with nullptr, clear) the process-wide listener. */
void setWarnListener(WarnListener listener);

/**
 * Internal invariant check. Unlike assert(), stays on in release builds:
 * the detectors are validated against each other and silent corruption
 * would invalidate every experiment.
 */
inline void
acAssert(bool cond, const char *what)
{
    if (!cond)
        panic(std::string("assertion failed: ") + what);
}

} // namespace asyncclock

#endif // ASYNCCLOCK_SUPPORT_LOGGING_HH
