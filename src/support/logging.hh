/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * `panic` is for internal invariant violations (a bug in this library);
 * `fatal` is for user errors (bad configuration, malformed traces).
 */

#ifndef ASYNCCLOCK_SUPPORT_LOGGING_HH
#define ASYNCCLOCK_SUPPORT_LOGGING_HH

#include <string>

namespace asyncclock {

/** Abort with a message: something that should never happen happened. */
[[noreturn]] void panic(const std::string &msg);

/** Exit(1) with a message: the user asked for something impossible. */
[[noreturn]] void fatal(const std::string &msg);

/** Print a warning to stderr and continue. */
void warn(const std::string &msg);

/**
 * Internal invariant check. Unlike assert(), stays on in release builds:
 * the detectors are validated against each other and silent corruption
 * would invalidate every experiment.
 */
inline void
acAssert(bool cond, const char *what)
{
    if (!cond)
        panic(std::string("assertion failed: ") + what);
}

} // namespace asyncclock

#endif // ASYNCCLOCK_SUPPORT_LOGGING_HH
