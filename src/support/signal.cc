#include "support/signal.hh"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>

#include <poll.h>
#include <unistd.h>

#include "support/format.hh"
#include "support/logging.hh"

namespace asyncclock::support {

namespace {

std::atomic<int> gSignal{0};
std::atomic<bool> gRequested{false};
// Self-pipe. Written once by the handler; the byte is intentionally
// never read back, so the read end stays level-triggered readable for
// every poller. -1 until installed.
int gPipeRead = -1;
int gPipeWrite = -1;
std::atomic<bool> gInstalled{false};

extern "C" void
shutdownHandler(int sig)
{
    // Async-signal-safe: two atomic stores and one write(2).
    gSignal.store(sig, std::memory_order_relaxed);
    gRequested.store(true, std::memory_order_release);
    if (gPipeWrite >= 0) {
        char b = 1;
        // Best effort; a full pipe already means "readable".
        [[maybe_unused]] ssize_t n = ::write(gPipeWrite, &b, 1);
    }
}

} // namespace

bool
installShutdownHandlers()
{
    if (gInstalled.load(std::memory_order_acquire))
        return true;
    int fds[2];
    if (::pipe(fds) != 0) {
        warn(strf("signal: pipe() failed: %s", std::strerror(errno)));
        return false;
    }
    gPipeRead = fds[0];
    gPipeWrite = fds[1];
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = shutdownHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    if (::sigaction(SIGINT, &sa, nullptr) != 0 ||
        ::sigaction(SIGTERM, &sa, nullptr) != 0) {
        warn(strf("signal: sigaction failed: %s",
                  std::strerror(errno)));
        return false;
    }
    gInstalled.store(true, std::memory_order_release);
    return true;
}

bool
shutdownRequested()
{
    return gRequested.load(std::memory_order_acquire);
}

int
shutdownSignal()
{
    return gSignal.load(std::memory_order_relaxed);
}

int
shutdownFd()
{
    return gPipeRead;
}

void
waitForShutdown()
{
    while (!shutdownRequested()) {
        if (gPipeRead >= 0) {
            pollfd pfd{gPipeRead, POLLIN, 0};
            ::poll(&pfd, 1, 500);
        } else {
            // No pipe (install failed): degrade to coarse polling.
            pollfd none{-1, 0, 0};
            ::poll(&none, 1, 100);
        }
    }
}

void
requestShutdown(int sig)
{
    shutdownHandler(sig);
}

void
resetShutdownForTest()
{
    gRequested.store(false, std::memory_order_release);
    gSignal.store(0, std::memory_order_relaxed);
    if (gPipeRead >= 0) {
        // Drain any pending wakeup bytes so shutdownFd() goes quiet.
        char buf[16];
        ssize_t n;
        do {
            pollfd pfd{gPipeRead, POLLIN, 0};
            if (::poll(&pfd, 1, 0) <= 0 || !(pfd.revents & POLLIN))
                break;
            n = ::read(gPipeRead, buf, sizeof(buf));
        } while (n > 0);
    }
}

} // namespace asyncclock::support
