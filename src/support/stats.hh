/**
 * @file
 * Deterministic metadata byte accounting.
 *
 * The paper's scalability claims (Fig 9a, Fig 10, Table 2 "Mem") are
 * about how much *analysis metadata* — vector clocks, AsyncClocks,
 * event metadata, happens-before graph nodes — is alive over time.
 * Process RSS is noisy and allocator-dependent, so every metadata
 * container in this library reports its byte footprint to a MemStats
 * instance owned by the detector. Benches report live/peak bytes per
 * category; the numbers are bit-for-bit reproducible.
 */

#ifndef ASYNCCLOCK_SUPPORT_STATS_HH
#define ASYNCCLOCK_SUPPORT_STATS_HH

#include <array>
#include <cstdint>
#include <string>

#include "support/logging.hh"

namespace asyncclock {

/** Categories of analysis metadata tracked by MemStats. */
enum class MemCat : unsigned {
    EventMeta,      ///< Per-event metadata records (send/end VCs + ACs).
    VectorClock,    ///< Vector-clock storage (chain state, variables).
    AsyncClock,     ///< AsyncClock entries (chain/handle/event ACs).
    AsyncBefore,    ///< Async-before list entries (section 5.3).
    GraphNode,      ///< Baseline happens-before graph nodes.
    GraphEdge,      ///< Baseline happens-before graph edges.
    VarState,       ///< FastTrack per-variable state.
    Other,          ///< Anything else (handle tables, window queues...).
    NumCategories,
};

/** Human-readable name of a MemCat. */
const char *memCatName(MemCat cat);

/**
 * Live/peak byte counters, one pair per MemCat plus a total.
 *
 * Not thread-safe by design: each detector instance is single-threaded
 * (the tool is a single-pass offline analyzer) and owns its MemStats.
 */
class MemStats
{
  public:
    /** Record an allocation of @p bytes in category @p cat. */
    void
    alloc(MemCat cat, std::uint64_t bytes)
    {
        auto i = static_cast<unsigned>(cat);
        live_[i] += bytes;
        liveTotal_ += bytes;
        if (live_[i] > peak_[i])
            peak_[i] = live_[i];
        if (liveTotal_ > peakTotal_)
            peakTotal_ = liveTotal_;
    }

    /** Record that @p bytes in category @p cat were released. A
     * release exceeding the category's live count is a mismatched
     * alloc/release pair: panic at the bug instead of wrapping the
     * uint64 and poisoning every later Fig 9/10 number. */
    void
    release(MemCat cat, std::uint64_t bytes)
    {
        auto i = static_cast<unsigned>(cat);
        acAssert(live_[i] >= bytes, "MemStats release underflow");
        live_[i] -= bytes;
        liveTotal_ -= bytes;
    }

    /**
     * Set the live byte count of @p cat to an absolute value (used by
     * detectors that poll their containers' byteSize() periodically
     * rather than instrumenting every mutation).
     */
    void
    sample(MemCat cat, std::uint64_t bytes)
    {
        auto i = static_cast<unsigned>(cat);
        liveTotal_ = liveTotal_ - live_[i] + bytes;
        live_[i] = bytes;
        if (live_[i] > peak_[i])
            peak_[i] = live_[i];
        if (liveTotal_ > peakTotal_)
            peakTotal_ = liveTotal_;
    }

    std::uint64_t
    live(MemCat cat) const
    {
        return live_[static_cast<unsigned>(cat)];
    }

    std::uint64_t
    peak(MemCat cat) const
    {
        return peak_[static_cast<unsigned>(cat)];
    }

    std::uint64_t liveTotal() const { return liveTotal_; }
    std::uint64_t peakTotal() const { return peakTotal_; }

    /** Multi-line human-readable summary of all categories. */
    std::string summary() const;

    /** Reset all counters to zero. */
    void reset();

  private:
    static constexpr unsigned numCats =
        static_cast<unsigned>(MemCat::NumCategories);

    std::array<std::uint64_t, numCats> live_{};
    std::array<std::uint64_t, numCats> peak_{};
    std::uint64_t liveTotal_ = 0;
    std::uint64_t peakTotal_ = 0;
};

} // namespace asyncclock

#endif // ASYNCCLOCK_SUPPORT_STATS_HH
