/**
 * @file
 * FlatMap: open-addressing hash map from uint32 keys to small values.
 *
 * Sparse vector clocks and AsyncClocks (section 4.2 "Sparse Vectors",
 * following accordion clocks [7]) are hash tables from chain ids to
 * timestamps/event references. std::unordered_map's node allocations
 * would dominate both time and the metadata byte accounting, so this
 * is a compact linear-probing table with backshift deletion (no
 * tombstones) and a byteSize() hook for MemStats.
 */

#ifndef ASYNCCLOCK_SUPPORT_FLAT_MAP_HH
#define ASYNCCLOCK_SUPPORT_FLAT_MAP_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "support/logging.hh"

namespace asyncclock {

/**
 * Open-addressing map keyed by uint32. Key 0xFFFFFFFF is reserved as
 * the empty marker; chain ids never reach it in practice.
 */
template <typename V>
class FlatMap
{
  public:
    static constexpr std::uint32_t emptyKey = 0xFFFFFFFFu;

    struct Slot
    {
        std::uint32_t key = emptyKey;
        V value{};
    };

    FlatMap() = default;

    bool empty() const { return size_ == 0; }
    std::uint32_t size() const { return size_; }

    /** Bytes of heap storage, for MemStats accounting. */
    std::uint64_t
    byteSize() const
    {
        return slots_.capacity() * sizeof(Slot);
    }

    /** Find a value; nullptr if absent. */
    const V *
    find(std::uint32_t key) const
    {
        if (slots_.empty())
            return nullptr;
        std::uint32_t i = probeStart(key);
        while (slots_[i].key != emptyKey) {
            if (slots_[i].key == key)
                return &slots_[i].value;
            i = (i + 1) & mask_;
        }
        return nullptr;
    }

    V *
    find(std::uint32_t key)
    {
        return const_cast<V *>(std::as_const(*this).find(key));
    }

    /** Insert or fetch; returns a reference to the mapped value. */
    V &
    operator[](std::uint32_t key)
    {
        acAssert(key != emptyKey, "FlatMap key reserved");
        if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3)
            grow();
        std::uint32_t i = probeStart(key);
        while (slots_[i].key != emptyKey) {
            if (slots_[i].key == key)
                return slots_[i].value;
            i = (i + 1) & mask_;
        }
        slots_[i].key = key;
        ++size_;
        return slots_[i].value;
    }

    /** Remove a key if present; returns true if removed. */
    bool
    erase(std::uint32_t key)
    {
        if (slots_.empty())
            return false;
        std::uint32_t i = probeStart(key);
        while (slots_[i].key != key) {
            if (slots_[i].key == emptyKey)
                return false;
            i = (i + 1) & mask_;
        }
        // Backshift deletion keeps probe sequences intact without
        // tombstones.
        std::uint32_t hole = i;
        std::uint32_t j = (i + 1) & mask_;
        while (slots_[j].key != emptyKey) {
            std::uint32_t home = probeStart(slots_[j].key);
            // Move j back into the hole if its probe path crosses it.
            bool wraps = hole <= j ? (home <= hole || home > j)
                                   : (home <= hole && home > j);
            if (wraps) {
                slots_[hole] = std::move(slots_[j]);
                hole = j;
            }
            j = (j + 1) & mask_;
        }
        slots_[hole].key = emptyKey;
        slots_[hole].value = V{};
        --size_;
        return true;
    }

    void
    clear()
    {
        for (auto &s : slots_) {
            s.key = emptyKey;
            s.value = V{};
        }
        size_ = 0;
    }

    /** Iterate occupied slots. @p fn receives (key, value&). */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (auto &s : slots_) {
            if (s.key != emptyKey)
                fn(s.key, s.value);
        }
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &s : slots_) {
            if (s.key != emptyKey)
                fn(s.key, s.value);
        }
    }

    /**
     * Iterate occupied slots until @p fn returns false. @p fn
     * receives (key, const value&) and returns bool ("keep going").
     * Returns true if the walk completed, false if @p fn stopped it —
     * the early-exit primitive behind short-circuiting clock
     * comparisons (leq/==).
     */
    template <typename Fn>
    bool
    forEachWhile(Fn &&fn) const
    {
        for (const auto &s : slots_) {
            if (s.key != emptyKey && !fn(s.key, s.value))
                return false;
        }
        return true;
    }

    /**
     * Erase every entry for which @p pred(key, value) returns true.
     * Implemented by rebuilding: backshift deletion during iteration
     * would revisit moved slots.
     */
    template <typename Pred>
    void
    eraseIf(Pred &&pred)
    {
        if (size_ == 0)
            return;
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.size(), Slot{});
        size_ = 0;
        for (auto &s : old) {
            if (s.key != emptyKey && !pred(s.key, s.value))
                insertFresh(s.key, std::move(s.value));
        }
    }

  private:
    std::uint32_t
    probeStart(std::uint32_t key) const
    {
        // Fibonacci hashing spreads consecutive chain ids.
        std::uint64_t h = static_cast<std::uint64_t>(key) *
                          0x9e3779b97f4a7c15ULL;
        return static_cast<std::uint32_t>(h >> 32) & mask_;
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        std::size_t cap = old.empty() ? 8 : old.size() * 2;
        slots_.assign(cap, Slot{});
        mask_ = static_cast<std::uint32_t>(cap - 1);
        size_ = 0;
        for (auto &s : old) {
            if (s.key != emptyKey)
                insertFresh(s.key, std::move(s.value));
        }
    }

    void
    insertFresh(std::uint32_t key, V &&value)
    {
        std::uint32_t i = probeStart(key);
        while (slots_[i].key != emptyKey)
            i = (i + 1) & mask_;
        slots_[i].key = key;
        slots_[i].value = std::move(value);
        ++size_;
    }

    std::vector<Slot> slots_;
    std::uint32_t mask_ = 0;
    std::uint32_t size_ = 0;
};

} // namespace asyncclock

#endif // ASYNCCLOCK_SUPPORT_FLAT_MAP_HH
