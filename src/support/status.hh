/**
 * @file
 * Structured, recoverable error model.
 *
 * The pipeline's original failure discipline was assert-and-abort:
 * good for catching bugs in the analysis itself, fatal for a service
 * that must survive contact with corrupt traces, wedged shards, and
 * killed runs. Status carries an error category, a human-readable
 * message, and — for decode failures — the byte/line offset of the
 * offending record, so a caller can skip, retry, degrade, or fail the
 * run *cleanly* with a summary instead of taking the process down.
 *
 * Expected<T> is the value-or-Status composition used by the
 * fallible constructors (open a trace source, read a checkpoint).
 * Both types are cheap when ok: an ok Status is a single enum load
 * and never allocates.
 */

#ifndef ASYNCCLOCK_SUPPORT_STATUS_HH
#define ASYNCCLOCK_SUPPORT_STATUS_HH

#include <cstdint>
#include <string>
#include <utility>

#include "support/logging.hh"

namespace asyncclock {

/** Error categories, coarse enough to drive policy (retry? skip?
 * degrade?) without string matching. */
enum class ErrCode : std::uint8_t {
    Ok = 0,
    IoError,        ///< open/read/write/rename failed
    ParseError,     ///< malformed record, bad header, unknown tag
    Truncated,      ///< stream ended mid-record / missing end marker
    Corrupt,        ///< structurally valid but semantically impossible
    BudgetExceeded, ///< per-run error budget exhausted
    Stalled,        ///< watchdog: a pipeline stage stopped progressing
    Unsupported,    ///< valid request the current mode cannot honor
    Internal,       ///< invariant violation surfaced as error
};

/** Human-readable name of an ErrCode ("ok", "io-error", ...). */
const char *errCodeName(ErrCode code);

/** No offset information attached to a Status. */
constexpr std::uint64_t kNoOffset = ~0ull;

/**
 * An error category + message + optional input offset. Default
 * constructed it is ok. Statuses are value types: copy freely, return
 * by value.
 */
class Status
{
  public:
    Status() = default;

    static Status ok() { return Status(); }

    static Status
    error(ErrCode code, std::string msg,
          std::uint64_t offset = kNoOffset)
    {
        Status s;
        s.code_ = code;
        s.message_ = std::move(msg);
        s.offset_ = offset;
        return s;
    }

    bool isOk() const { return code_ == ErrCode::Ok; }
    explicit operator bool() const { return isOk(); }

    ErrCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** Byte (binary) or line (text) offset of the failing record;
     * kNoOffset when not applicable. */
    std::uint64_t offset() const { return offset_; }
    bool hasOffset() const { return offset_ != kNoOffset; }

    /** "parse-error at offset 123: bad magic" (offset part elided
     * when absent); "ok" when ok. */
    std::string toString() const;

  private:
    ErrCode code_ = ErrCode::Ok;
    std::uint64_t offset_ = kNoOffset;
    std::string message_;
};

/**
 * A value or the Status explaining why there is none. Minimal by
 * design (no exceptions, no variant): exactly one of value()/status()
 * is meaningful, guarded by ok().
 */
template <typename T>
class Expected
{
  public:
    /*implicit*/ Expected(T value) : value_(std::move(value)) {}
    /*implicit*/ Expected(Status status) : status_(std::move(status))
    {
        acAssert(!status_.isOk(),
                 "Expected constructed from an ok Status");
    }

    bool ok() const { return status_.isOk(); }
    explicit operator bool() const { return ok(); }

    const Status &status() const { return status_; }

    T &
    value()
    {
        acAssert(ok(), "Expected::value() on error");
        return value_;
    }
    const T &
    value() const
    {
        acAssert(ok(), "Expected::value() on error");
        return value_;
    }

    T &&
    take()
    {
        acAssert(ok(), "Expected::take() on error");
        return std::move(value_);
    }

  private:
    T value_{};
    Status status_;
};

} // namespace asyncclock

#endif // ASYNCCLOCK_SUPPORT_STATUS_HH
