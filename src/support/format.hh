/**
 * @file
 * Tiny printf-style formatting helpers (GCC 12 lacks std::format).
 */

#ifndef ASYNCCLOCK_SUPPORT_FORMAT_HH
#define ASYNCCLOCK_SUPPORT_FORMAT_HH

#include <cstdarg>
#include <cstdint>
#include <string>

namespace asyncclock {

/** printf into a std::string. */
std::string strf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Render a byte count as a human-readable string, e.g. "1.4MB". */
std::string humanBytes(std::uint64_t bytes);

/** Render a count with thousands separators, e.g. "12,345". */
std::string withCommas(std::uint64_t value);

} // namespace asyncclock

#endif // ASYNCCLOCK_SUPPORT_FORMAT_HH
