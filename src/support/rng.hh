/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomness in the workload generator and tests flows through
 * SplitMix64 so that every trace, table, and figure is reproducible
 * from a seed, independent of platform or standard-library version
 * (std::mt19937 distributions are not portable across libstdc++
 * versions).
 */

#ifndef ASYNCCLOCK_SUPPORT_RNG_HH
#define ASYNCCLOCK_SUPPORT_RNG_HH

#include <cstdint>
#include <vector>

#include "support/logging.hh"

namespace asyncclock {

/** SplitMix64: tiny, fast, well-distributed, and fork-able. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). @p bound must be positive. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        acAssert(bound > 0, "Rng::below bound must be positive");
        // Multiply-shift rejection-free mapping; bias is negligible
        // (<2^-32) for the bounds used here and keeps determinism simple.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        acAssert(lo <= hi, "Rng::range lo must be <= hi");
        return lo + below(hi - lo + 1);
    }

    /** True with probability @p p (clamped to [0,1]). */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return static_cast<double>(next() >> 11) *
                   (1.0 / 9007199254740992.0) < p;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) *
               (1.0 / 9007199254740992.0);
    }

    /** Pick a uniformly random element of a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &items)
    {
        acAssert(!items.empty(), "Rng::pick on empty vector");
        return items[below(items.size())];
    }

    /**
     * Fork an independent stream. Derives a child seed so that adding
     * draws to one stream does not perturb another.
     */
    Rng
    fork()
    {
        return Rng(next() ^ 0xd1b54a32d192ed03ULL);
    }

  private:
    std::uint64_t state_;
};

} // namespace asyncclock

#endif // ASYNCCLOCK_SUPPORT_RNG_HH
