#include "support/stats.hh"

#include "support/format.hh"

namespace asyncclock {

const char *
memCatName(MemCat cat)
{
    switch (cat) {
      case MemCat::EventMeta: return "event-meta";
      case MemCat::VectorClock: return "vector-clock";
      case MemCat::AsyncClock: return "async-clock";
      case MemCat::AsyncBefore: return "async-before";
      case MemCat::GraphNode: return "graph-node";
      case MemCat::GraphEdge: return "graph-edge";
      case MemCat::VarState: return "var-state";
      case MemCat::Other: return "other";
      case MemCat::NumCategories: break;
    }
    return "?";
}

std::string
MemStats::summary() const
{
    std::string out;
    for (unsigned i = 0; i < numCats; ++i) {
        auto cat = static_cast<MemCat>(i);
        if (peak_[i] == 0)
            continue;
        out += strf("  %-14s live %10s  peak %10s\n", memCatName(cat),
                    humanBytes(live_[i]).c_str(),
                    humanBytes(peak_[i]).c_str());
    }
    out += strf("  %-14s live %10s  peak %10s\n", "TOTAL",
                humanBytes(liveTotal_).c_str(),
                humanBytes(peakTotal_).c_str());
    return out;
}

void
MemStats::reset()
{
    live_.fill(0);
    peak_.fill(0);
    liveTotal_ = 0;
    peakTotal_ = 0;
}

} // namespace asyncclock
