/**
 * @file
 * Minimal JSON writer.
 *
 * The report and bench layers export machine-readable results (race
 * reports, detector counters) for downstream tooling; this is the
 * small, dependency-free writer they share. Write-only by design —
 * the library has no need to parse JSON.
 */

#ifndef ASYNCCLOCK_SUPPORT_JSON_HH
#define ASYNCCLOCK_SUPPORT_JSON_HH

#include <cstdint>
#include <string>

namespace asyncclock {

/** Incremental JSON document builder with explicit structure calls.
 * The caller is responsible for balanced begin/end pairs; keys are
 * escaped like values. */
class JsonWriter
{
  public:
    JsonWriter &
    beginObject()
    {
        comma();
        out_ += '{';
        first_ = true;
        return *this;
    }

    JsonWriter &
    endObject()
    {
        out_ += '}';
        first_ = false;
        return *this;
    }

    JsonWriter &
    beginArray()
    {
        comma();
        out_ += '[';
        first_ = true;
        return *this;
    }

    JsonWriter &
    endArray()
    {
        out_ += ']';
        first_ = false;
        return *this;
    }

    /** Emit a key inside an object; follow with a value call. */
    JsonWriter &
    key(const std::string &name)
    {
        comma();
        appendString(name);
        out_ += ':';
        first_ = true;  // the upcoming value needs no comma
        return *this;
    }

    JsonWriter &
    value(const std::string &v)
    {
        comma();
        appendString(v);
        return *this;
    }

    JsonWriter &
    value(const char *v)
    {
        return value(std::string(v));
    }

    JsonWriter &
    value(std::uint64_t v)
    {
        comma();
        out_ += std::to_string(v);
        return *this;
    }

    JsonWriter &
    value(std::int64_t v)
    {
        comma();
        out_ += std::to_string(v);
        return *this;
    }

    JsonWriter &
    value(double v)
    {
        comma();
        out_ += std::to_string(v);
        return *this;
    }

    JsonWriter &
    value(bool v)
    {
        comma();
        out_ += v ? "true" : "false";
        return *this;
    }

    /** Splice a pre-rendered JSON value in verbatim. The caller
     * vouches for its validity (used to nest independently built
     * documents without reparsing). */
    JsonWriter &
    raw(const std::string &json)
    {
        comma();
        out_ += json;
        return *this;
    }

    /** Shorthand: key + value. */
    template <typename T>
    JsonWriter &
    field(const std::string &name, const T &v)
    {
        key(name);
        return value(v);
    }

    const std::string &str() const { return out_; }

  private:
    void
    comma()
    {
        if (!first_)
            out_ += ',';
        first_ = false;
    }

    void
    appendString(const std::string &s)
    {
        out_ += '"';
        for (char c : s) {
            switch (c) {
              case '"': out_ += "\\\""; break;
              case '\\': out_ += "\\\\"; break;
              case '\n': out_ += "\\n"; break;
              case '\r': out_ += "\\r"; break;
              case '\t': out_ += "\\t"; break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out_ += buf;
                } else {
                    out_ += c;
                }
            }
        }
        out_ += '"';
    }

    std::string out_;
    bool first_ = true;
};

} // namespace asyncclock

#endif // ASYNCCLOCK_SUPPORT_JSON_HH
