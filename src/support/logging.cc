#include "support/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

namespace asyncclock {

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

namespace {

std::mutex listenerMu;
WarnListener listener;

/** Copy the listener under its lock; invoking the copy outside the
 * lock keeps warn() reentrant-safe against setWarnListener() from
 * another thread. */
WarnListener
currentListener()
{
    std::lock_guard<std::mutex> lock(listenerMu);
    return listener;
}

} // namespace

void
setWarnListener(WarnListener l)
{
    std::lock_guard<std::mutex> lock(listenerMu);
    listener = std::move(l);
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
    if (WarnListener l = currentListener())
        l("", msg, false);
}

void
warnRateLimited(const std::string &key, const std::string &msg,
                unsigned limit)
{
    bool suppressed;
    {
        static std::mutex mu;
        static std::map<std::string, unsigned> seen;
        std::lock_guard<std::mutex> lock(mu);
        unsigned &count = seen[key];
        suppressed = count >= limit;
        if (count < limit) {
            std::fprintf(stderr, "warn: %s\n", msg.c_str());
        } else if (count == limit) {
            std::fprintf(stderr,
                         "warn: [%s] further warnings suppressed\n",
                         key.c_str());
        }
        // Saturate so a long-running process can't overflow the
        // counter.
        if (count <= limit)
            ++count;
    }
    if (WarnListener l = currentListener())
        l(key, msg, suppressed);
}

} // namespace asyncclock
