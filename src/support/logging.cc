#include "support/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

namespace asyncclock {

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
warnRateLimited(const std::string &key, const std::string &msg,
                unsigned limit)
{
    static std::mutex mu;
    static std::map<std::string, unsigned> seen;
    std::lock_guard<std::mutex> lock(mu);
    unsigned &count = seen[key];
    if (count < limit) {
        warn(msg);
    } else if (count == limit) {
        std::fprintf(stderr,
                     "warn: [%s] further warnings suppressed\n",
                     key.c_str());
    }
    // Saturate so a long-running process can't overflow the counter.
    if (count <= limit)
        ++count;
}

} // namespace asyncclock
