/**
 * @file
 * InvPtr: a reference-counted pointer with explicit invalidation.
 *
 * Section 4.1 of the paper implements AsyncClock entries as "reference
 * counting pointers ... with an invalidate operation: when an event
 * becomes old, we invalidate an arbitrary pointer to its metadata, so
 * that the metadata is immediately relinquished, and all other
 * pointers to the same metadata become null pointers."
 *
 * InvPtr is exactly that: shared ownership of a payload through a
 * small control block; `invalidate()` destroys the payload eagerly
 * while surviving references observe null. When the last reference
 * drops, a still-valid payload is destroyed too — that is the
 * refcount-based heirless-event reclamation of section 4.1.
 */

#ifndef ASYNCCLOCK_SUPPORT_INV_PTR_HH
#define ASYNCCLOCK_SUPPORT_INV_PTR_HH

#include <cstdint>
#include <utility>

namespace asyncclock {

template <typename T>
class WeakPtr;

/** Shared pointer with explicit payload invalidation. Not thread-safe
 * (detectors are single-threaded single-pass analyzers). */
template <typename T>
class InvPtr
{
    friend class WeakPtr<T>;

  public:
    InvPtr() = default;

    /** Create a payload with shared ownership. */
    template <typename... Args>
    static InvPtr
    make(Args &&...args)
    {
        InvPtr p;
        p.ctrl_ = new Ctrl{new T(std::forward<Args>(args)...), 1, 0};
        return p;
    }

    InvPtr(const InvPtr &other) : ctrl_(other.ctrl_)
    {
        if (ctrl_)
            ++ctrl_->refs;
    }

    InvPtr(InvPtr &&other) noexcept : ctrl_(other.ctrl_)
    {
        other.ctrl_ = nullptr;
    }

    InvPtr &
    operator=(const InvPtr &other)
    {
        if (this != &other) {
            InvPtr tmp(other);
            swap(tmp);
        }
        return *this;
    }

    InvPtr &
    operator=(InvPtr &&other) noexcept
    {
        swap(other);
        return *this;
    }

    ~InvPtr() { reset(); }

    /** Drop this reference. */
    void
    reset()
    {
        Ctrl *c = ctrl_;
        ctrl_ = nullptr;
        if (!c)
            return;
        if (--c->refs == 0) {
            destroyPayload(c);
            if (c->weak == 0 && c->refs == 0)
                delete c;
        }
    }

    void
    swap(InvPtr &other) noexcept
    {
        std::swap(ctrl_, other.ctrl_);
    }

    /** Payload, or nullptr if never set or invalidated. */
    T *get() const { return ctrl_ ? ctrl_->payload : nullptr; }
    T *operator->() const { return get(); }
    T &operator*() const { return *get(); }
    explicit operator bool() const { return get() != nullptr; }

    /** True if this points at a control block (even an invalidated
     * one); used by GC passes to distinguish null refs to purge. */
    bool hasRef() const { return ctrl_ != nullptr; }

    /**
     * Destroy the payload now. All other InvPtrs sharing it observe
     * null from this point on. Idempotent.
     */
    void
    invalidate()
    {
        if (ctrl_)
            destroyPayload(ctrl_);
    }

    /** Number of live references to the control block (0 if unset). */
    std::uint32_t refCount() const { return ctrl_ ? ctrl_->refs : 0; }

    /** Identity comparison: same control block. */
    bool
    sameAs(const InvPtr &other) const
    {
        return ctrl_ == other.ctrl_;
    }

  private:
    struct Ctrl
    {
        T *payload;
        std::uint32_t refs;
        std::uint32_t weak;
    };

    /** Adopt an existing control block, bumping the strong count
     * (WeakPtr::lock). */
    static InvPtr
    fromCtrl(Ctrl *ctrl)
    {
        InvPtr p;
        p.ctrl_ = ctrl;
        ++ctrl->refs;
        return p;
    }

    /**
     * Destroy a control block's payload safely in the presence of
     * reference *cycles* (event metadata can reference other events
     * that reference back): the payload pointer is cleared before the
     * destructor runs, and the refcount is parked on a sentinel so
     * that references dropped recursively from inside the destructor
     * can neither double-delete the payload nor free the control
     * block under us.
     */
    static void
    destroyPayload(Ctrl *c)
    {
        T *p = c->payload;
        if (!p)
            return;
        c->payload = nullptr;
        std::uint32_t savedRefs = c->refs;
        c->refs = kDestroySentinel;
        delete p;
        // References the destructor dropped recursively (cycle
        // back-edges) must stay dropped; clamp against a true
        // self-reference underflow.
        std::uint32_t dropped = kDestroySentinel - c->refs;
        c->refs = savedRefs > dropped ? savedRefs - dropped : 0;
    }

    static constexpr std::uint32_t kDestroySentinel = 1u << 30;

    Ctrl *ctrl_ = nullptr;
};

/**
 * Non-owning companion of InvPtr: does not keep the payload alive
 * (reference-count reclamation proceeds as if it did not exist) but
 * can observe whether it still is. Used by the time-window aging
 * queue, which must see events without pinning them.
 */
template <typename T>
class WeakPtr
{
  public:
    WeakPtr() = default;

    explicit WeakPtr(const InvPtr<T> &strong) : ctrl_(strong.ctrl_)
    {
        if (ctrl_)
            ++ctrl_->weak;
    }

    WeakPtr(const WeakPtr &other) : ctrl_(other.ctrl_)
    {
        if (ctrl_)
            ++ctrl_->weak;
    }

    WeakPtr(WeakPtr &&other) noexcept : ctrl_(other.ctrl_)
    {
        other.ctrl_ = nullptr;
    }

    WeakPtr &
    operator=(const WeakPtr &other)
    {
        if (this != &other) {
            WeakPtr tmp(other);
            std::swap(ctrl_, tmp.ctrl_);
        }
        return *this;
    }

    WeakPtr &
    operator=(WeakPtr &&other) noexcept
    {
        std::swap(ctrl_, other.ctrl_);
        return *this;
    }

    ~WeakPtr() { reset(); }

    void
    reset()
    {
        Ctrl *c = ctrl_;
        ctrl_ = nullptr;
        if (!c)
            return;
        if (--c->weak == 0 && c->refs == 0)
            delete c;
    }

    /** Payload if it is still alive, else nullptr. */
    T *
    get() const
    {
        return ctrl_ ? ctrl_->payload : nullptr;
    }

    /** Take a counted reference if the payload is still alive (else
     * an empty pointer). Use to pin an object while operating on its
     * contents when the operation may drop other references to it. */
    InvPtr<T>
    lock() const
    {
        if (!ctrl_ || !ctrl_->payload)
            return {};
        return InvPtr<T>::fromCtrl(ctrl_);
    }

    /** Destroy the payload now (see InvPtr::invalidate). */
    void
    invalidate()
    {
        if (ctrl_)
            InvPtr<T>::destroyPayload(ctrl_);
    }

  private:
    using Ctrl = typename InvPtr<T>::Ctrl;

    Ctrl *ctrl_ = nullptr;
};

} // namespace asyncclock

#endif // ASYNCCLOCK_SUPPORT_INV_PTR_HH
