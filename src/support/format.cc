#include "support/format.hh"

#include <cstdio>
#include <vector>

namespace asyncclock {

std::string
strf(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<size_t>(n));
        // +1 for the NUL vsnprintf writes; std::string guarantees the
        // extra byte past size() since C++11.
        std::vsnprintf(out.data(), static_cast<size_t>(n) + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

std::string
humanBytes(std::uint64_t bytes)
{
    static const char *units[] = {"B", "KB", "MB", "GB", "TB"};
    double v = static_cast<double>(bytes);
    int u = 0;
    while (v >= 1024.0 && u < 4) {
        v /= 1024.0;
        ++u;
    }
    if (u == 0)
        return strf("%lluB", static_cast<unsigned long long>(bytes));
    return strf("%.1f%s", v, units[u]);
}

std::string
withCommas(std::uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    return std::string(out.rbegin(), out.rend());
}

} // namespace asyncclock
