#include "support/status.hh"

#include "support/format.hh"

namespace asyncclock {

const char *
errCodeName(ErrCode code)
{
    switch (code) {
      case ErrCode::Ok: return "ok";
      case ErrCode::IoError: return "io-error";
      case ErrCode::ParseError: return "parse-error";
      case ErrCode::Truncated: return "truncated";
      case ErrCode::Corrupt: return "corrupt";
      case ErrCode::BudgetExceeded: return "budget-exceeded";
      case ErrCode::Stalled: return "stalled";
      case ErrCode::Unsupported: return "unsupported";
      case ErrCode::Internal: return "internal";
    }
    return "?";
}

std::string
Status::toString() const
{
    if (isOk())
        return "ok";
    if (hasOffset()) {
        return strf("%s at offset %llu: %s", errCodeName(code_),
                    static_cast<unsigned long long>(offset_),
                    message_.c_str());
    }
    return strf("%s: %s", errCodeName(code_), message_.c_str());
}

} // namespace asyncclock
