/**
 * @file
 * Trace container: entity tables (threads, queues, events, variables,
 * handles, source sites) plus the operation sequence of section 2.2.
 *
 * A Trace is produced by the simulated runtime (src/runtime) or read
 * from a file (trace/trace_io.hh) and consumed operation-by-operation
 * by the detectors. It also carries the workload generator's ground
 * truth (seeded race labels) so experiments can score reports.
 */

#ifndef ASYNCCLOCK_TRACE_TRACE_HH
#define ASYNCCLOCK_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/ids.hh"
#include "trace/op.hh"

namespace asyncclock::trace {

/**
 * Causality-model vocabulary of a trace. Looper traces use the
 * message-queue op set of HsiaoNKPP17 (send/begin/end/remove); async
 * traces use the structured-concurrency set (spawn/await/scope-end/
 * cancel) with events standing in for tasks. Detectors pick their
 * CausalityModel from this tag.
 */
enum class Dialect : std::uint8_t { Looper, Async };

const char *dialectName(Dialect d);

/** Thread flavors of the three Android thread models (section 2.1). */
enum class ThreadKind : std::uint8_t { Worker, Looper, Binder };

/** Queue flavors: a looper queue is drained by one looper thread in
 * FIFO order; a binder queue is drained FIFO by a pool of binder
 * threads that execute events concurrently. */
enum class QueueKind : std::uint8_t { Looper, Binder };

/** Which code "frame" a source site belongs to; drives the
 * user-induced filter of section 6. */
enum class Frame : std::uint8_t { User, Framework, Library };

/**
 * Ground-truth label the workload generator attaches to a seeded racy
 * variable (section 7.7 taxonomy). `None` marks variables without a
 * seeded race (any race on them would be a detector bug).
 */
enum class SeedLabel : std::uint8_t {
    None,
    Harmful,                ///< Order violation planted on purpose.
    HarmlessTypeI,          ///< Delayed-update idiom.
    HarmlessTypeII,         ///< Control-dependent flag idiom.
    HarmlessCommutative,    ///< Commutative library operation.
    HarmlessOther,          ///< Benign by construction, untyped.
};

const char *seedLabelName(SeedLabel label);

struct ThreadInfo
{
    ThreadKind kind = ThreadKind::Worker;
    /** Queue served (looper/binder threads only). */
    QueueId queue = kInvalidId;
    std::string name;
};

struct QueueInfo
{
    QueueKind kind = QueueKind::Looper;
    /** The looper thread draining this queue (looper queues only). */
    ThreadId looper = kInvalidId;
    std::string name;
};

/** Per-event record; the op cross-links are filled in as operations
 * are appended. In the async dialect an event is a task: `scope` is
 * its structured-concurrency scope, sendOp/removeOp double as the
 * spawn/cancel ops, and `queue` stays kInvalidId. */
struct EventInfo
{
    QueueId queue = kInvalidId;
    SendAttrs attrs{};
    Task sender{};
    /** Thread that executed the event (filled at begin). */
    ThreadId executor = kInvalidId;
    /** Async dialect: the scope handle the task was spawned into. */
    HandleId scope = kInvalidId;
    OpId sendOp = kInvalidId;
    OpId beginOp = kInvalidId;
    OpId endOp = kInvalidId;
    OpId removeOp = kInvalidId;
};

struct VarInfo
{
    std::string name;
    SeedLabel seedLabel = SeedLabel::None;
};

struct HandleInfo
{
    std::string name;
};

struct SiteInfo
{
    std::string name;
    Frame frame = Frame::User;
    /** Commutativity group: sites sharing a group id are whitelisted
     * as mutually commutative (section 6); kInvalidId = none. */
    std::uint32_t commGroup = kInvalidId;
};

/** Aggregate statistics of a trace (Table 2 columns). */
struct TraceStats
{
    std::uint64_t ops = 0;
    std::uint64_t syncOps = 0;      ///< fork/join/signal/wait/send
    std::uint64_t memOps = 0;       ///< reads + writes
    std::uint64_t workerThreads = 0;
    std::uint64_t looperThreads = 0;
    std::uint64_t binderThreads = 0;
    std::uint64_t looperEvents = 0;
    std::uint64_t binderEvents = 0;
    std::uint64_t removedEvents = 0;
    std::uint64_t spanMs = 0;       ///< vtime span of the trace

    std::string summary() const;
};

/**
 * The trace: entity tables plus the operation sequence.
 *
 * Building: addThread/addQueue/... then append() ops in execution
 * order. append() maintains the EventInfo op cross-links. validate()
 * checks well-formedness and the queueing-discipline guarantees the
 * causality model relies on.
 */
class Trace
{
  public:
    // ----- entity construction ------------------------------------
    ThreadId addThread(ThreadKind kind, std::string name,
                       QueueId queue = kInvalidId);
    QueueId addQueue(QueueKind kind, std::string name);
    EventId addEvent();
    VarId addVar(std::string name, SeedLabel label = SeedLabel::None);
    HandleId addHandle(std::string name);
    SiteId addSite(std::string name, Frame frame,
                   std::uint32_t commGroup = kInvalidId);

    /** Bind a looper thread to its queue (after both exist). */
    void bindLooper(QueueId queue, ThreadId looper);

    // ----- operation construction ---------------------------------
    /** Append an operation; updates event cross-links. Returns its
     * OpId. */
    OpId append(const Operation &op);

    // Convenience appenders (all take the executing task + vtime).
    OpId threadBegin(ThreadId t, std::uint64_t vtime);
    OpId threadEnd(ThreadId t, std::uint64_t vtime);
    OpId eventBegin(EventId e, ThreadId executor, std::uint64_t vtime);
    OpId eventEnd(EventId e, std::uint64_t vtime);
    OpId read(Task task, VarId var, SiteId site, std::uint64_t vtime);
    OpId write(Task task, VarId var, SiteId site, std::uint64_t vtime);
    OpId fork(Task task, ThreadId child, std::uint64_t vtime);
    OpId join(Task task, ThreadId child, std::uint64_t vtime);
    OpId signal(Task task, HandleId handle, std::uint64_t vtime);
    OpId wait(Task task, HandleId handle, std::uint64_t vtime);
    OpId send(Task task, QueueId queue, EventId event,
              const SendAttrs &attrs, std::uint64_t vtime);
    OpId removeEvent(Task task, EventId event, std::uint64_t vtime);

    // Async-dialect appenders (events stand in for tasks).
    OpId taskSpawn(Task task, EventId child, HandleId scope,
                   std::uint64_t vtime);
    OpId taskAwait(Task task, EventId child, std::uint64_t vtime);
    OpId scopeEnd(Task task, HandleId scope, std::uint64_t vtime);
    OpId taskCancel(Task task, EventId child, std::uint64_t vtime);

    // ----- access ---------------------------------------------------
    const std::vector<Operation> &ops() const { return ops_; }
    const Operation &op(OpId id) const { return ops_[id]; }
    std::uint32_t numOps() const
    {
        return static_cast<std::uint32_t>(ops_.size());
    }

    const std::vector<ThreadInfo> &threads() const { return threads_; }
    const std::vector<QueueInfo> &queues() const { return queues_; }
    const std::vector<EventInfo> &events() const { return events_; }
    const std::vector<VarInfo> &vars() const { return vars_; }
    const std::vector<HandleInfo> &handles() const { return handles_; }
    const std::vector<SiteInfo> &sites() const { return sites_; }

    const ThreadInfo &thread(ThreadId id) const { return threads_[id]; }
    const QueueInfo &queue(QueueId id) const { return queues_[id]; }
    const EventInfo &event(EventId id) const { return events_[id]; }
    const VarInfo &var(VarId id) const { return vars_[id]; }
    const SiteInfo &site(SiteId id) const { return sites_[id]; }

    /** Mutable entity access for deserialization and the generator. */
    ThreadInfo &threadMut(ThreadId id) { return threads_[id]; }
    EventInfo &eventMut(EventId id) { return events_[id]; }
    VarInfo &varMut(VarId id) { return vars_[id]; }
    SiteInfo &siteMut(SiteId id) { return sites_[id]; }

    /** Looper thread of the queue executing event @p e (kInvalidId for
     * binder events). */
    ThreadId looperOf(EventId e) const;

    /** Which op vocabulary this trace uses (default Looper). */
    Dialect dialect() const { return dialect_; }
    void setDialect(Dialect d) { dialect_ = d; }

    /** Compute aggregate statistics. */
    TraceStats stats() const;

    /**
     * Well-formedness + queue-discipline validation.
     *
     * @param full Also run the O(events^2)-per-queue dispatch-order
     *             checks that underpin rules FIFO/PRIORITY/ATFRONT.
     * @return empty string if valid, else a description of the first
     *         violation found.
     */
    std::string validate(bool full = true) const;

  private:
    std::vector<ThreadInfo> threads_;
    std::vector<QueueInfo> queues_;
    std::vector<EventInfo> events_;
    std::vector<VarInfo> vars_;
    std::vector<HandleInfo> handles_;
    std::vector<SiteInfo> sites_;
    std::vector<Operation> ops_;
    Dialect dialect_ = Dialect::Looper;
};

} // namespace asyncclock::trace

#endif // ASYNCCLOCK_TRACE_TRACE_HH
