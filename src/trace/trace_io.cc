#include "trace/trace_io.hh"

#include <fstream>
#include <ostream>
#include <sstream>

#include "support/format.hh"
#include "support/logging.hh"

namespace asyncclock::trace {

namespace {

constexpr const char *kTextHeader = "asyncclock-trace v1";
/** Async-dialect header; looper traces keep the v1 header unchanged. */
constexpr const char *kTextHeaderAsync = "asyncclock-trace v2 async";

const char *
threadKindName(ThreadKind k)
{
    switch (k) {
      case ThreadKind::Worker: return "worker";
      case ThreadKind::Looper: return "looper";
      case ThreadKind::Binder: return "binder";
    }
    return "?";
}

const char *
frameName(Frame f)
{
    switch (f) {
      case Frame::User: return "user";
      case Frame::Framework: return "framework";
      case Frame::Library: return "library";
    }
    return "?";
}

std::string
taskToken(Task task)
{
    return strf("%c%u", task.isEvent() ? 'E' : 'T', task.index());
}

std::string
attrsToken(const SendAttrs &attrs)
{
    char kind = attrs.kind == SendKind::Delayed ? 'D'
              : attrs.kind == SendKind::AtTime ? 'T' : 'F';
    return strf("%c%c%llu", kind, attrs.async ? 'A' : 'S',
                (unsigned long long)attrs.time);
}

bool
parseTask(const std::string &tok, Task &task)
{
    if (tok.size() < 2 || (tok[0] != 'E' && tok[0] != 'T'))
        return false;
    std::uint32_t idx =
        static_cast<std::uint32_t>(std::stoul(tok.substr(1)));
    task = tok[0] == 'E' ? Task::event(idx) : Task::thread(idx);
    return true;
}

bool
parseAttrs(const std::string &tok, SendAttrs &attrs)
{
    if (tok.size() < 3)
        return false;
    switch (tok[0]) {
      case 'D': attrs.kind = SendKind::Delayed; break;
      case 'T': attrs.kind = SendKind::AtTime; break;
      case 'F': attrs.kind = SendKind::AtFront; break;
      default: return false;
    }
    if (tok[1] != 'A' && tok[1] != 'S')
        return false;
    attrs.async = tok[1] == 'A';
    attrs.time = std::stoull(tok.substr(2));
    return true;
}

/**
 * One-line parser shared by the materializing reader and the
 * streaming source. Entity lines are applied to @p entities; op lines
 * set @p isOp and fill @p op (the caller routes the op to its trace or
 * its consumer). On failure, @p error gets "line N: <message>
 * ('<token>')" naming the offending token.
 */
class TextLineParser
{
  public:
    explicit TextLineParser(EntitySink &entities,
                            Dialect dialect = Dialect::Looper)
        : entities_(entities), dialect_(dialect)
    {
    }

    bool
    parseLine(const std::string &line, std::size_t lineNo, bool &isOp,
              Operation &op, std::string &error)
    {
        isOp = false;
        if (line.empty() || line[0] == '#')
            return true;
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        auto fail = [&](const std::string &msg,
                        const std::string &token) {
            error = strf("line %zu: %s ('%s')", lineNo, msg.c_str(),
                         token.c_str());
            return false;
        };
        try {
            if (tag == "thread") {
                std::uint32_t id;
                std::string kind, queueTok, name;
                ls >> id >> kind >> queueTok >> name;
                if (ls.fail())
                    return fail("bad thread line", line);
                ThreadKind tk = kind == "worker" ? ThreadKind::Worker
                              : kind == "looper" ? ThreadKind::Looper
                              : ThreadKind::Binder;
                QueueId q = queueTok == "-"
                                ? kInvalidId
                                : static_cast<QueueId>(
                                      std::stoul(queueTok));
                ThreadId got = entities_.declThread(
                    tk, name == "-" ? "" : name, q);
                if (got != id)
                    return fail("thread ids must be dense",
                                strf("%u", id));
            } else if (tag == "queue") {
                std::uint32_t id;
                std::string kind, looperTok, name;
                ls >> id >> kind >> looperTok >> name;
                if (ls.fail())
                    return fail("bad queue line", line);
                QueueId got = entities_.declQueue(
                    kind == "looper" ? QueueKind::Looper
                                     : QueueKind::Binder,
                    name == "-" ? "" : name);
                if (got != id)
                    return fail("queue ids must be dense",
                                strf("%u", id));
                if (looperTok != "-") {
                    entities_.bindLooper(
                        got,
                        static_cast<ThreadId>(std::stoul(looperTok)));
                }
            } else if (tag == "events") {
                std::uint32_t n;
                ls >> n;
                if (ls.fail())
                    return fail("bad events line", line);
                for (std::uint32_t i = 0; i < n; ++i)
                    entities_.declEvent();
            } else if (tag == "var") {
                std::uint32_t id;
                std::string label, name;
                ls >> id >> label >> name;
                if (ls.fail())
                    return fail("bad var line", line);
                SeedLabel sl = SeedLabel::None;
                for (int l = 0; l <= 5; ++l) {
                    if (label ==
                        seedLabelName(static_cast<SeedLabel>(l))) {
                        sl = static_cast<SeedLabel>(l);
                        break;
                    }
                }
                VarId got =
                    entities_.declVar(name == "-" ? "" : name, sl);
                if (got != id)
                    return fail("var ids must be dense",
                                strf("%u", id));
            } else if (tag == "handle") {
                std::uint32_t id;
                std::string name;
                ls >> id >> name;
                if (ls.fail())
                    return fail("bad handle line", line);
                HandleId got =
                    entities_.declHandle(name == "-" ? "" : name);
                if (got != id)
                    return fail("handle ids must be dense",
                                strf("%u", id));
            } else if (tag == "site") {
                std::uint32_t id;
                std::string frame, groupTok, name;
                ls >> id >> frame >> groupTok >> name;
                if (ls.fail())
                    return fail("bad site line", line);
                Frame f = frame == "user" ? Frame::User
                        : frame == "framework" ? Frame::Framework
                        : Frame::Library;
                std::uint32_t g = groupTok == "-"
                                      ? kInvalidId
                                      : static_cast<std::uint32_t>(
                                            std::stoul(groupTok));
                SiteId got =
                    entities_.declSite(name == "-" ? "" : name, f, g);
                if (got != id)
                    return fail("site ids must be dense",
                                strf("%u", id));
            } else if (tag == "op") {
                std::string kindTok, taskTok;
                ls >> kindTok >> taskTok;
                if (ls.fail())
                    return fail("bad op line", line);
                op = Operation();
                if (!parseTask(taskTok, op.task))
                    return fail("bad task token", taskTok);
                bool found = false;
                // Async-dialect kinds (12..15) are only words of an
                // async trace; in a looper trace they stay unknown.
                const int maxKind =
                    dialect_ == Dialect::Async ? 15 : 11;
                for (int k = 0; k <= maxKind; ++k) {
                    if (kindTok == opKindName(static_cast<OpKind>(k))) {
                        op.kind = static_cast<OpKind>(k);
                        found = true;
                        break;
                    }
                }
                if (!found)
                    return fail("unknown op kind", kindTok);
                std::string tok;
                switch (op.kind) {
                  case OpKind::ThreadBegin:
                  case OpKind::ThreadEnd:
                  case OpKind::EventEnd:
                    break;
                  case OpKind::EventBegin:
                  case OpKind::Fork:
                  case OpKind::Join:
                  case OpKind::Signal:
                  case OpKind::Wait:
                    ls >> op.target;
                    break;
                  case OpKind::Read:
                  case OpKind::Write:
                    ls >> op.target >> tok;
                    op.site = tok == "-" ? kInvalidId
                                         : static_cast<SiteId>(
                                               std::stoul(tok));
                    break;
                  case OpKind::Send:
                    ls >> op.target >> op.event >> tok;
                    if (!parseAttrs(tok, op.attrs))
                        return fail("bad send attrs", tok);
                    break;
                  case OpKind::RemoveEvent:
                    ls >> op.event;
                    break;
                  case OpKind::TaskSpawn:
                    ls >> op.event >> op.target;
                    break;
                  case OpKind::TaskAwait:
                  case OpKind::TaskCancel:
                    ls >> op.event;
                    break;
                  case OpKind::ScopeEnd:
                    ls >> op.target;
                    break;
                }
                std::string at;
                ls >> at;
                if (ls.fail() || at.empty() || at[0] != '@')
                    return fail("missing @vtime", at);
                op.vtime = std::stoull(at.substr(1));
                isOp = true;
            } else {
                return fail("unknown tag", tag);
            }
        } catch (const std::exception &e) {
            error = strf("line %zu: parse error: %s", lineNo, e.what());
            return false;
        }
        return true;
    }

  private:
    EntitySink &entities_;
    Dialect dialect_;
};

/** Event ids index the event table on both the materializing and the
 * streaming path; reject out-of-range references instead of crashing.
 * Returns the offending token, or nullopt-style empty string if ok. */
std::string
checkOpEventRange(const Operation &op, std::uint64_t numEvents)
{
    if (op.task.isEvent() && op.task.index() >= numEvents)
        return strf("E%u", op.task.index());
    if ((op.kind == OpKind::Send || op.kind == OpKind::RemoveEvent ||
         op.kind == OpKind::TaskSpawn || op.kind == OpKind::TaskAwait ||
         op.kind == OpKind::TaskCancel) &&
        op.event >= numEvents) {
        return strf("%u", op.event);
    }
    return "";
}

/** Is this a line whose skip would shift positional entity ids?
 * Those must hard-fail; op and unknown-tag lines are skippable. */
bool
isEntityLine(const std::string &line)
{
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    return tag == "thread" || tag == "queue" || tag == "events" ||
           tag == "var" || tag == "handle" || tag == "site";
}

} // namespace

void
writeTrace(const Trace &tr, std::ostream &out)
{
    out << (tr.dialect() == Dialect::Async ? kTextHeaderAsync
                                           : kTextHeader)
        << '\n';
    for (std::size_t i = 0; i < tr.threads().size(); ++i) {
        const ThreadInfo &t = tr.threads()[i];
        out << "thread " << i << ' ' << threadKindName(t.kind) << ' ';
        if (t.queue == kInvalidId)
            out << '-';
        else
            out << t.queue;
        out << ' ' << (t.name.empty() ? "-" : t.name) << '\n';
    }
    for (std::size_t i = 0; i < tr.queues().size(); ++i) {
        const QueueInfo &q = tr.queues()[i];
        out << "queue " << i << ' '
            << (q.kind == QueueKind::Looper ? "looper" : "binder")
            << ' ';
        if (q.looper == kInvalidId)
            out << '-';
        else
            out << q.looper;
        out << ' ' << (q.name.empty() ? "-" : q.name) << '\n';
    }
    out << "events " << tr.events().size() << '\n';
    for (std::size_t i = 0; i < tr.vars().size(); ++i) {
        const VarInfo &v = tr.vars()[i];
        out << "var " << i << ' ' << seedLabelName(v.seedLabel) << ' '
            << (v.name.empty() ? "-" : v.name) << '\n';
    }
    for (std::size_t i = 0; i < tr.handles().size(); ++i) {
        const HandleInfo &h = tr.handles()[i];
        out << "handle " << i << ' '
            << (h.name.empty() ? "-" : h.name) << '\n';
    }
    for (std::size_t i = 0; i < tr.sites().size(); ++i) {
        const SiteInfo &s = tr.sites()[i];
        out << "site " << i << ' ' << frameName(s.frame) << ' ';
        if (s.commGroup == kInvalidId)
            out << '-';
        else
            out << s.commGroup;
        out << ' ' << (s.name.empty() ? "-" : s.name) << '\n';
    }
    for (const Operation &op : tr.ops()) {
        out << "op " << opKindName(op.kind) << ' '
            << taskToken(op.task);
        switch (op.kind) {
          case OpKind::ThreadBegin:
          case OpKind::ThreadEnd:
          case OpKind::EventEnd:
            break;
          case OpKind::EventBegin:
            out << ' ' << op.target;
            break;
          case OpKind::Read:
          case OpKind::Write:
            out << ' ' << op.target << ' ';
            if (op.site == kInvalidId)
                out << '-';
            else
                out << op.site;
            break;
          case OpKind::Fork:
          case OpKind::Join:
          case OpKind::Signal:
          case OpKind::Wait:
            out << ' ' << op.target;
            break;
          case OpKind::Send:
            out << ' ' << op.target << ' ' << op.event << ' '
                << attrsToken(op.attrs);
            break;
          case OpKind::RemoveEvent:
            out << ' ' << op.event;
            break;
          case OpKind::TaskSpawn:
            out << ' ' << op.event << ' ' << op.target;
            break;
          case OpKind::TaskAwait:
          case OpKind::TaskCancel:
            out << ' ' << op.event;
            break;
          case OpKind::ScopeEnd:
            out << ' ' << op.target;
            break;
        }
        out << " @" << op.vtime << '\n';
    }
}

std::string
writeTraceToString(const Trace &tr)
{
    std::ostringstream ss;
    writeTrace(tr, ss);
    return ss.str();
}

bool
readTrace(std::istream &in, Trace &tr, std::string &error)
{
    tr = Trace();
    std::string line;
    if (!std::getline(in, line) ||
        (line != kTextHeader && line != kTextHeaderAsync)) {
        error = strf("line 1: bad header ('%s')", line.c_str());
        return false;
    }
    tr.setDialect(line == kTextHeaderAsync ? Dialect::Async
                                           : Dialect::Looper);
    TraceBuildSink sink(tr);
    TextLineParser parser(sink, tr.dialect());
    std::size_t lineNo = 1;
    while (std::getline(in, line)) {
        ++lineNo;
        bool isOp = false;
        Operation op;
        if (!parser.parseLine(line, lineNo, isOp, op, error)) {
            tr = Trace();
            return false;
        }
        if (isOp) {
            std::string bad =
                checkOpEventRange(op, tr.events().size());
            if (!bad.empty()) {
                error = strf("line %zu: op names undeclared event "
                             "('%s')",
                             lineNo, bad.c_str());
                tr = Trace();
                return false;
            }
            tr.append(op);
        }
    }
    return true;
}

bool
readTraceFromString(const std::string &text, Trace &tr,
                    std::string &error)
{
    std::istringstream ss(text);
    return readTrace(ss, tr, error);
}

Status
trySaveTraceFile(const Trace &tr, const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        return Status::error(ErrCode::IoError,
                             "cannot open " + path + " for writing");
    }
    writeTrace(tr, out);
    if (!out) {
        return Status::error(ErrCode::IoError,
                             "write to " + path + " failed");
    }
    return Status::ok();
}

void
saveTraceFile(const Trace &tr, const std::string &path)
{
    Status st = trySaveTraceFile(tr, path);
    if (!st)
        fatal(st.toString());
}

Expected<Trace>
tryLoadTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return Status::error(ErrCode::IoError, "cannot open " + path);
    Trace tr;
    std::string error;
    if (!readTrace(in, tr, error)) {
        return Status::error(ErrCode::ParseError,
                             "parsing " + path + ": " + error);
    }
    return tr;
}

Trace
loadTraceFile(const std::string &path)
{
    Expected<Trace> tr = tryLoadTraceFile(path);
    if (!tr)
        fatal(tr.status().toString());
    return tr.take();
}

// ----- StreamingTextSource --------------------------------------------

StreamingTextSource::StreamingTextSource(std::istream &in,
                                         SourceErrorPolicy policy)
    : in_(in), policy_(policy)
{
    lineNo_ = 1;
    if (!std::getline(in_, line_) ||
        (line_ != kTextHeader && line_ != kTextHeaderAsync)) {
        fail(ErrCode::ParseError,
             strf("line 1: bad header ('%s')", line_.c_str()));
        return;
    }
    meta_.setDialect(line_ == kTextHeaderAsync ? Dialect::Async
                                               : Dialect::Looper);
}

bool
StreamingTextSource::fail(ErrCode code, const std::string &msg)
{
    ok_ = false;
    errCode_ = code;
    error_ = msg;
    return false;
}

Status
StreamingTextSource::status() const
{
    if (ok_)
        return Status::ok();
    return Status::error(errCode_, error_, lineNo_);
}

bool
StreamingTextSource::skipRecord(const std::string &why)
{
    if (skipped_ >= policy_.maxRecordErrors) {
        return fail(
            skipped_ > 0 ? ErrCode::BudgetExceeded
                         : ErrCode::ParseError,
            skipped_ > 0
                ? strf("error budget exhausted after %llu skipped "
                       "records; last: %s",
                       static_cast<unsigned long long>(skipped_),
                       why.c_str())
                : why);
    }
    ++skipped_;
    warnRateLimited("trace_text.skip",
                    "skipping corrupt trace line: " + why);
    return true;
}

bool
StreamingTextSource::next(Operation &op)
{
    if (!ok_)
        return false;
    TextLineParser parser(meta_, meta_.dialect());
    while (std::getline(in_, line_)) {
        ++lineNo_;
        bool isOp = false;
        std::string err;
        if (!parser.parseLine(line_, lineNo_, isOp, op, err)) {
            // Entity lines are positional: a skip would shift every
            // later id, so only op/unknown lines are skippable.
            if (isEntityLine(line_))
                return fail(ErrCode::ParseError, err);
            if (!skipRecord(err))
                return false;
            continue;
        }
        if (isOp) {
            std::string bad =
                checkOpEventRange(op, meta_.events().size());
            if (!bad.empty()) {
                if (!skipRecord(
                        strf("line %zu: op names undeclared event "
                             "('%s')",
                             lineNo_, bad.c_str()))) {
                    return false;
                }
                continue;
            }
            if (op.kind == OpKind::Send)
                meta_.noteSend(op.event, op.target, op.attrs);
            return true;
        }
    }
    return false;  // clean EOF
}

std::uint64_t
StreamingTextSource::containerBytes() const
{
    // Only the current line buffer; the stream itself is O(1).
    return line_.capacity();
}

} // namespace asyncclock::trace
