#include "trace/trace_io.hh"

#include <fstream>
#include <ostream>
#include <sstream>

#include "support/format.hh"
#include "support/logging.hh"

namespace asyncclock::trace {

namespace {

const char *
threadKindName(ThreadKind k)
{
    switch (k) {
      case ThreadKind::Worker: return "worker";
      case ThreadKind::Looper: return "looper";
      case ThreadKind::Binder: return "binder";
    }
    return "?";
}

const char *
frameName(Frame f)
{
    switch (f) {
      case Frame::User: return "user";
      case Frame::Framework: return "framework";
      case Frame::Library: return "library";
    }
    return "?";
}

std::string
taskToken(Task task)
{
    return strf("%c%u", task.isEvent() ? 'E' : 'T', task.index());
}

std::string
attrsToken(const SendAttrs &attrs)
{
    char kind = attrs.kind == SendKind::Delayed ? 'D'
              : attrs.kind == SendKind::AtTime ? 'T' : 'F';
    return strf("%c%c%llu", kind, attrs.async ? 'A' : 'S',
                (unsigned long long)attrs.time);
}

bool
parseTask(const std::string &tok, Task &task)
{
    if (tok.size() < 2 || (tok[0] != 'E' && tok[0] != 'T'))
        return false;
    std::uint32_t idx =
        static_cast<std::uint32_t>(std::stoul(tok.substr(1)));
    task = tok[0] == 'E' ? Task::event(idx) : Task::thread(idx);
    return true;
}

bool
parseAttrs(const std::string &tok, SendAttrs &attrs)
{
    if (tok.size() < 3)
        return false;
    switch (tok[0]) {
      case 'D': attrs.kind = SendKind::Delayed; break;
      case 'T': attrs.kind = SendKind::AtTime; break;
      case 'F': attrs.kind = SendKind::AtFront; break;
      default: return false;
    }
    if (tok[1] != 'A' && tok[1] != 'S')
        return false;
    attrs.async = tok[1] == 'A';
    attrs.time = std::stoull(tok.substr(2));
    return true;
}

} // namespace

void
writeTrace(const Trace &tr, std::ostream &out)
{
    out << "asyncclock-trace v1\n";
    for (std::size_t i = 0; i < tr.threads().size(); ++i) {
        const ThreadInfo &t = tr.threads()[i];
        out << "thread " << i << ' ' << threadKindName(t.kind) << ' ';
        if (t.queue == kInvalidId)
            out << '-';
        else
            out << t.queue;
        out << ' ' << (t.name.empty() ? "-" : t.name) << '\n';
    }
    for (std::size_t i = 0; i < tr.queues().size(); ++i) {
        const QueueInfo &q = tr.queues()[i];
        out << "queue " << i << ' '
            << (q.kind == QueueKind::Looper ? "looper" : "binder")
            << ' ';
        if (q.looper == kInvalidId)
            out << '-';
        else
            out << q.looper;
        out << ' ' << (q.name.empty() ? "-" : q.name) << '\n';
    }
    out << "events " << tr.events().size() << '\n';
    for (std::size_t i = 0; i < tr.vars().size(); ++i) {
        const VarInfo &v = tr.vars()[i];
        out << "var " << i << ' ' << seedLabelName(v.seedLabel) << ' '
            << (v.name.empty() ? "-" : v.name) << '\n';
    }
    for (std::size_t i = 0; i < tr.handles().size(); ++i) {
        const HandleInfo &h = tr.handles()[i];
        out << "handle " << i << ' '
            << (h.name.empty() ? "-" : h.name) << '\n';
    }
    for (std::size_t i = 0; i < tr.sites().size(); ++i) {
        const SiteInfo &s = tr.sites()[i];
        out << "site " << i << ' ' << frameName(s.frame) << ' ';
        if (s.commGroup == kInvalidId)
            out << '-';
        else
            out << s.commGroup;
        out << ' ' << (s.name.empty() ? "-" : s.name) << '\n';
    }
    for (const Operation &op : tr.ops()) {
        out << "op " << opKindName(op.kind) << ' '
            << taskToken(op.task);
        switch (op.kind) {
          case OpKind::ThreadBegin:
          case OpKind::ThreadEnd:
          case OpKind::EventEnd:
            break;
          case OpKind::EventBegin:
            out << ' ' << op.target;
            break;
          case OpKind::Read:
          case OpKind::Write:
            out << ' ' << op.target << ' ';
            if (op.site == kInvalidId)
                out << '-';
            else
                out << op.site;
            break;
          case OpKind::Fork:
          case OpKind::Join:
          case OpKind::Signal:
          case OpKind::Wait:
            out << ' ' << op.target;
            break;
          case OpKind::Send:
            out << ' ' << op.target << ' ' << op.event << ' '
                << attrsToken(op.attrs);
            break;
          case OpKind::RemoveEvent:
            out << ' ' << op.event;
            break;
        }
        out << " @" << op.vtime << '\n';
    }
}

std::string
writeTraceToString(const Trace &tr)
{
    std::ostringstream ss;
    writeTrace(tr, ss);
    return ss.str();
}

bool
readTrace(std::istream &in, Trace &tr, std::string &error)
{
    tr = Trace();
    std::string line;
    if (!std::getline(in, line) || line != "asyncclock-trace v1") {
        error = "bad header";
        return false;
    }
    std::size_t lineNo = 1;
    auto fail = [&](const std::string &msg) {
        error = strf("line %zu: %s", lineNo, msg.c_str());
        return false;
    };

    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        try {
            if (tag == "thread") {
                std::uint32_t id;
                std::string kind, queueTok, name;
                ls >> id >> kind >> queueTok >> name;
                if (ls.fail())
                    return fail("bad thread line");
                ThreadKind tk = kind == "worker" ? ThreadKind::Worker
                              : kind == "looper" ? ThreadKind::Looper
                              : ThreadKind::Binder;
                QueueId q = queueTok == "-"
                                ? kInvalidId
                                : static_cast<QueueId>(
                                      std::stoul(queueTok));
                ThreadId got = tr.addThread(tk, name == "-" ? "" : name,
                                            q);
                if (got != id)
                    return fail("thread ids must be dense");
            } else if (tag == "queue") {
                std::uint32_t id;
                std::string kind, looperTok, name;
                ls >> id >> kind >> looperTok >> name;
                if (ls.fail())
                    return fail("bad queue line");
                QueueId got = tr.addQueue(kind == "looper"
                                              ? QueueKind::Looper
                                              : QueueKind::Binder,
                                          name == "-" ? "" : name);
                if (got != id)
                    return fail("queue ids must be dense");
                if (looperTok != "-") {
                    tr.bindLooper(got, static_cast<ThreadId>(
                                           std::stoul(looperTok)));
                }
            } else if (tag == "events") {
                std::uint32_t n;
                ls >> n;
                if (ls.fail())
                    return fail("bad events line");
                for (std::uint32_t i = 0; i < n; ++i)
                    tr.addEvent();
            } else if (tag == "var") {
                std::uint32_t id;
                std::string label, name;
                ls >> id >> label >> name;
                if (ls.fail())
                    return fail("bad var line");
                SeedLabel sl = SeedLabel::None;
                for (int l = 0; l <= 5; ++l) {
                    if (label == seedLabelName(
                            static_cast<SeedLabel>(l))) {
                        sl = static_cast<SeedLabel>(l);
                        break;
                    }
                }
                VarId got = tr.addVar(name == "-" ? "" : name, sl);
                if (got != id)
                    return fail("var ids must be dense");
            } else if (tag == "handle") {
                std::uint32_t id;
                std::string name;
                ls >> id >> name;
                if (ls.fail())
                    return fail("bad handle line");
                HandleId got = tr.addHandle(name == "-" ? "" : name);
                if (got != id)
                    return fail("handle ids must be dense");
            } else if (tag == "site") {
                std::uint32_t id;
                std::string frame, groupTok, name;
                ls >> id >> frame >> groupTok >> name;
                if (ls.fail())
                    return fail("bad site line");
                Frame f = frame == "user" ? Frame::User
                        : frame == "framework" ? Frame::Framework
                        : Frame::Library;
                std::uint32_t g = groupTok == "-"
                                      ? kInvalidId
                                      : static_cast<std::uint32_t>(
                                            std::stoul(groupTok));
                SiteId got = tr.addSite(name == "-" ? "" : name, f, g);
                if (got != id)
                    return fail("site ids must be dense");
            } else if (tag == "op") {
                std::string kindTok, taskTok;
                ls >> kindTok >> taskTok;
                if (ls.fail())
                    return fail("bad op line");
                Operation op;
                if (!parseTask(taskTok, op.task))
                    return fail("bad task token");
                bool found = false;
                for (int k = 0; k <= 11; ++k) {
                    if (kindTok == opKindName(
                            static_cast<OpKind>(k))) {
                        op.kind = static_cast<OpKind>(k);
                        found = true;
                        break;
                    }
                }
                if (!found)
                    return fail("unknown op kind");
                std::string tok;
                switch (op.kind) {
                  case OpKind::ThreadBegin:
                  case OpKind::ThreadEnd:
                  case OpKind::EventEnd:
                    break;
                  case OpKind::EventBegin:
                  case OpKind::Fork:
                  case OpKind::Join:
                  case OpKind::Signal:
                  case OpKind::Wait:
                    ls >> op.target;
                    break;
                  case OpKind::Read:
                  case OpKind::Write:
                    ls >> op.target >> tok;
                    op.site = tok == "-" ? kInvalidId
                                         : static_cast<SiteId>(
                                               std::stoul(tok));
                    break;
                  case OpKind::Send:
                    ls >> op.target >> op.event >> tok;
                    if (!parseAttrs(tok, op.attrs))
                        return fail("bad send attrs");
                    break;
                  case OpKind::RemoveEvent:
                    ls >> op.event;
                    break;
                }
                std::string at;
                ls >> at;
                if (ls.fail() || at.empty() || at[0] != '@')
                    return fail("missing @vtime");
                op.vtime = std::stoull(at.substr(1));
                tr.append(op);
            } else {
                return fail("unknown tag '" + tag + "'");
            }
        } catch (const std::exception &e) {
            return fail(std::string("parse error: ") + e.what());
        }
    }
    return true;
}

bool
readTraceFromString(const std::string &text, Trace &tr,
                    std::string &error)
{
    std::istringstream ss(text);
    return readTrace(ss, tr, error);
}

void
saveTraceFile(const Trace &tr, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open " + path + " for writing");
    writeTrace(tr, out);
    if (!out)
        fatal("write to " + path + " failed");
}

Trace
loadTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open " + path);
    Trace tr;
    std::string error;
    if (!readTrace(in, tr, error))
        fatal("parsing " + path + ": " + error);
    return tr;
}

} // namespace asyncclock::trace
