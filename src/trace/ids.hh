/**
 * @file
 * Identifier types shared across the trace model.
 *
 * Plain 32-bit aliases indexing into the Trace's entity tables. The
 * reserved value kInvalidId means "absent".
 */

#ifndef ASYNCCLOCK_TRACE_IDS_HH
#define ASYNCCLOCK_TRACE_IDS_HH

#include <cstdint>

namespace asyncclock::trace {

using ThreadId = std::uint32_t;
using EventId = std::uint32_t;
using QueueId = std::uint32_t;
using VarId = std::uint32_t;
using HandleId = std::uint32_t;
using SiteId = std::uint32_t;
using OpId = std::uint32_t;

constexpr std::uint32_t kInvalidId = 0xFFFFFFFFu;

/**
 * A task is the unit an operation is attributed to: either a thread
 * (worker / looper / binder) or an event. Packed into one word so it
 * can be used as a map key.
 */
class Task
{
  public:
    Task() = default;

    static Task thread(ThreadId id) { return Task(id); }
    static Task event(EventId id) { return Task(id | eventBit); }

    bool isEvent() const { return raw_ & eventBit; }
    std::uint32_t index() const { return raw_ & ~eventBit; }
    std::uint32_t raw() const { return raw_; }

    bool operator==(const Task &other) const = default;

  private:
    explicit Task(std::uint32_t raw) : raw_(raw) {}

    static constexpr std::uint32_t eventBit = 0x80000000u;

    std::uint32_t raw_ = kInvalidId;
};

} // namespace asyncclock::trace

#endif // ASYNCCLOCK_TRACE_IDS_HH
