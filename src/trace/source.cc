#include "trace/source.hh"

namespace asyncclock::trace {

namespace {

Operation
makeOp(OpKind kind, Task task, std::uint64_t vtime)
{
    Operation op;
    op.kind = kind;
    op.task = task;
    op.vtime = vtime;
    return op;
}

} // namespace

void
TraceSink::threadBegin(ThreadId t, std::uint64_t vtime)
{
    emit(makeOp(OpKind::ThreadBegin, Task::thread(t), vtime));
}

void
TraceSink::threadEnd(ThreadId t, std::uint64_t vtime)
{
    emit(makeOp(OpKind::ThreadEnd, Task::thread(t), vtime));
}

void
TraceSink::eventBegin(EventId e, ThreadId executor, std::uint64_t vtime)
{
    Operation op = makeOp(OpKind::EventBegin, Task::event(e), vtime);
    op.target = executor;
    emit(op);
}

void
TraceSink::eventEnd(EventId e, std::uint64_t vtime)
{
    emit(makeOp(OpKind::EventEnd, Task::event(e), vtime));
}

void
TraceSink::read(Task task, VarId var, SiteId site, std::uint64_t vtime)
{
    Operation op = makeOp(OpKind::Read, task, vtime);
    op.target = var;
    op.site = site;
    emit(op);
}

void
TraceSink::write(Task task, VarId var, SiteId site, std::uint64_t vtime)
{
    Operation op = makeOp(OpKind::Write, task, vtime);
    op.target = var;
    op.site = site;
    emit(op);
}

void
TraceSink::fork(Task task, ThreadId child, std::uint64_t vtime)
{
    Operation op = makeOp(OpKind::Fork, task, vtime);
    op.target = child;
    emit(op);
}

void
TraceSink::join(Task task, ThreadId child, std::uint64_t vtime)
{
    Operation op = makeOp(OpKind::Join, task, vtime);
    op.target = child;
    emit(op);
}

void
TraceSink::signal(Task task, HandleId handle, std::uint64_t vtime)
{
    Operation op = makeOp(OpKind::Signal, task, vtime);
    op.target = handle;
    emit(op);
}

void
TraceSink::wait(Task task, HandleId handle, std::uint64_t vtime)
{
    Operation op = makeOp(OpKind::Wait, task, vtime);
    op.target = handle;
    emit(op);
}

void
TraceSink::send(Task task, QueueId queue, EventId event,
                const SendAttrs &attrs, std::uint64_t vtime)
{
    Operation op = makeOp(OpKind::Send, task, vtime);
    op.target = queue;
    op.event = event;
    op.attrs = attrs;
    emit(op);
}

void
TraceSink::removeEvent(Task task, EventId event, std::uint64_t vtime)
{
    Operation op = makeOp(OpKind::RemoveEvent, task, vtime);
    op.event = event;
    emit(op);
}

void
TraceSink::taskSpawn(Task task, EventId child, HandleId scope,
                     std::uint64_t vtime)
{
    Operation op = makeOp(OpKind::TaskSpawn, task, vtime);
    op.target = scope;
    op.event = child;
    emit(op);
}

void
TraceSink::taskAwait(Task task, EventId child, std::uint64_t vtime)
{
    Operation op = makeOp(OpKind::TaskAwait, task, vtime);
    op.event = child;
    emit(op);
}

void
TraceSink::scopeEnd(Task task, HandleId scope, std::uint64_t vtime)
{
    Operation op = makeOp(OpKind::ScopeEnd, task, vtime);
    op.target = scope;
    emit(op);
}

void
TraceSink::taskCancel(Task task, EventId child, std::uint64_t vtime)
{
    Operation op = makeOp(OpKind::TaskCancel, task, vtime);
    op.event = child;
    emit(op);
}

TraceMeta
TraceMeta::fromTrace(const Trace &tr)
{
    TraceMeta meta;
    meta.dialect_ = tr.dialect();
    meta.threads_ = tr.threads();
    meta.queues_ = tr.queues();
    meta.vars_ = tr.vars();
    meta.handles_ = tr.handles();
    meta.sites_ = tr.sites();
    meta.events_.reserve(tr.events().size());
    for (const EventInfo &ev : tr.events())
        meta.events_.push_back({ev.queue, ev.attrs});
    return meta;
}

std::uint64_t
TraceMeta::byteSize() const
{
    std::uint64_t total =
        threads_.capacity() * sizeof(ThreadInfo) +
        queues_.capacity() * sizeof(QueueInfo) +
        events_.capacity() * sizeof(MetaEvent) +
        vars_.capacity() * sizeof(VarInfo) +
        handles_.capacity() * sizeof(HandleInfo) +
        sites_.capacity() * sizeof(SiteInfo);
    for (const auto &t : threads_)
        total += t.name.capacity();
    for (const auto &q : queues_)
        total += q.name.capacity();
    for (const auto &v : vars_)
        total += v.name.capacity();
    for (const auto &h : handles_)
        total += h.name.capacity();
    for (const auto &s : sites_)
        total += s.name.capacity();
    return total;
}

void
replayEntities(const Trace &tr, EntitySink &sink)
{
    for (const QueueInfo &q : tr.queues())
        sink.declQueue(q.kind, q.name);
    for (const ThreadInfo &t : tr.threads())
        sink.declThread(t.kind, t.name, t.queue);
    for (std::size_t q = 0; q < tr.queues().size(); ++q) {
        if (tr.queues()[q].looper != kInvalidId) {
            sink.bindLooper(static_cast<QueueId>(q),
                            tr.queues()[q].looper);
        }
    }
    for (std::size_t i = 0; i < tr.events().size(); ++i)
        sink.declEvent();
    for (const VarInfo &v : tr.vars())
        sink.declVar(v.name, v.seedLabel);
    for (const HandleInfo &h : tr.handles())
        sink.declHandle(h.name);
    for (const SiteInfo &s : tr.sites())
        sink.declSite(s.name, s.frame, s.commGroup);
}

const std::string &
TraceSource::error() const
{
    static const std::string empty;
    return empty;
}

} // namespace asyncclock::trace
