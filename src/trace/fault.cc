#include "trace/fault.hh"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "support/format.hh"
#include "trace/trace_io.hh"

namespace asyncclock::trace {

// ----- spec parsing ---------------------------------------------------

const char *
faultSpecHelp()
{
    return "  seed=N            RNG seed (default 1)\n"
           "  truncate=N        EOF after N bytes\n"
           "  flip=RATE         per-byte bit-flip probability\n"
           "  shortread=RATE    short-read probability\n"
           "  stall=US@BYTES    sleep US us every BYTES bytes\n"
           "  dup=RATE          duplicate-op probability\n"
           "  reorder=RATE      swap-with-successor probability\n"
           "  drop=RATE         drop-op probability\n"
           "  shard-stall=S:MS  shard S's worker sleeps MS ms/batch\n"
           "  poison=S          shard S's worker dies on first batch\n"
           "  sess-disconnect=N client drops mid-body on chunk N\n"
           "  sess-dup=N        client re-creates its id on chunk N\n"
           "  sess-interleave=N client mixes dialects on chunk N\n";
}

namespace {

bool
parseRate(const std::string &v, double &out)
{
    char *end = nullptr;
    out = std::strtod(v.c_str(), &end);
    return end && *end == '\0' && out >= 0.0 && out <= 1.0;
}

bool
parseU64(const std::string &v, std::uint64_t &out)
{
    if (v.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(v.c_str(), &end, 10);
    return end && *end == '\0';
}

} // namespace

Expected<FaultConfig>
parseFaultSpec(const std::string &spec)
{
    FaultConfig cfg;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string pair = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (pair.empty())
            continue;
        std::size_t eq = pair.find('=');
        if (eq == std::string::npos) {
            return Status::error(ErrCode::ParseError,
                                 "fault spec entry missing '=': '" +
                                     pair + "'");
        }
        std::string key = pair.substr(0, eq);
        std::string val = pair.substr(eq + 1);
        auto bad = [&]() -> Status {
            return Status::error(ErrCode::ParseError,
                                 "bad fault spec value: '" + pair +
                                     "'");
        };
        if (key == "seed") {
            if (!parseU64(val, cfg.seed))
                return bad();
        } else if (key == "truncate") {
            if (!parseU64(val, cfg.truncateAfterBytes))
                return bad();
        } else if (key == "flip") {
            if (!parseRate(val, cfg.bitFlipRate))
                return bad();
        } else if (key == "shortread") {
            if (!parseRate(val, cfg.shortReadRate))
                return bad();
        } else if (key == "stall") {
            std::size_t at = val.find('@');
            if (at == std::string::npos ||
                !parseU64(val.substr(0, at), cfg.stallMicros) ||
                !parseU64(val.substr(at + 1), cfg.stallEveryBytes)) {
                return bad();
            }
        } else if (key == "dup") {
            if (!parseRate(val, cfg.dupRate))
                return bad();
        } else if (key == "reorder") {
            if (!parseRate(val, cfg.reorderRate))
                return bad();
        } else if (key == "drop") {
            if (!parseRate(val, cfg.dropRate))
                return bad();
        } else if (key == "shard-stall") {
            std::size_t colon = val.find(':');
            std::uint64_t shard = 0;
            if (colon == std::string::npos ||
                !parseU64(val.substr(0, colon), shard) ||
                !parseU64(val.substr(colon + 1), cfg.shardStallMs)) {
                return bad();
            }
            cfg.stallShard = static_cast<unsigned>(shard);
        } else if (key == "poison") {
            std::uint64_t shard = 0;
            if (!parseU64(val, shard))
                return bad();
            cfg.poisonShard = static_cast<unsigned>(shard);
        } else if (key == "sess-disconnect") {
            if (!parseU64(val, cfg.sessDisconnectAtChunk))
                return bad();
        } else if (key == "sess-dup") {
            if (!parseU64(val, cfg.sessDupCreateAt))
                return bad();
        } else if (key == "sess-interleave") {
            if (!parseU64(val, cfg.sessInterleaveAtChunk))
                return bad();
        } else {
            return Status::error(ErrCode::ParseError,
                                 "unknown fault spec key: '" + key +
                                     "'");
        }
    }
    return cfg;
}

// ----- FaultyStreamBuf ------------------------------------------------

FaultyStreamBuf::FaultyStreamBuf(std::istream &under,
                                 const FaultConfig &cfg)
    : under_(under), cfg_(cfg), rng_(cfg.seed)
{
    nextStallAt_ = cfg_.stallEveryBytes;
    setg(buf_, buf_, buf_);  // empty: first read underflows
}

FaultyStreamBuf::int_type
FaultyStreamBuf::underflow()
{
    if (gptr() < egptr())
        return traits_type::to_int_type(*gptr());
    if (cfg_.truncateAfterBytes > 0 &&
        pos_ >= cfg_.truncateAfterBytes) {
        return traits_type::eof();
    }
    std::size_t want = kBufSize;
    if (cfg_.shortReadRate > 0 && rng_.chance(cfg_.shortReadRate))
        want = static_cast<std::size_t>(rng_.range(1, 64));
    if (cfg_.truncateAfterBytes > 0) {
        std::uint64_t left = cfg_.truncateAfterBytes - pos_;
        if (left < want)
            want = static_cast<std::size_t>(left);
    }
    under_.read(buf_, static_cast<std::streamsize>(want));
    std::size_t got = static_cast<std::size_t>(under_.gcount());
    if (got == 0)
        return traits_type::eof();
    if (cfg_.bitFlipRate > 0) {
        for (std::size_t i = 0; i < got; ++i) {
            if (rng_.chance(cfg_.bitFlipRate)) {
                buf_[i] = static_cast<char>(
                    static_cast<unsigned char>(buf_[i]) ^
                    (1u << rng_.below(8)));
                ++flips_;
            }
        }
    }
    pos_ += got;
    if (cfg_.stallEveryBytes > 0 && pos_ >= nextStallAt_) {
        nextStallAt_ += cfg_.stallEveryBytes;
        std::this_thread::sleep_for(
            std::chrono::microseconds(cfg_.stallMicros));
    }
    setg(buf_, buf_, buf_ + got);
    return traits_type::to_int_type(*gptr());
}

FaultyStreamBuf::pos_type
FaultyStreamBuf::seekoff(off_type off, std::ios_base::seekdir dir,
                         std::ios_base::openmode which)
{
    if (off == 0 && dir == std::ios_base::cur &&
        (which & std::ios_base::in)) {
        return static_cast<pos_type>(
            pos_ - static_cast<std::uint64_t>(egptr() - gptr()));
    }
    return pos_type(off_type(-1));
}

// ----- FaultInjectingSource -------------------------------------------

FaultInjectingSource::FaultInjectingSource(TraceSource &inner,
                                           const FaultConfig &cfg)
    : inner_(inner), cfg_(cfg), rng_(cfg.seed ^ 0x0fau)
{
}

bool
FaultInjectingSource::next(Operation &op)
{
    if (haveDup_) {
        op = dupOp_;
        haveDup_ = false;
        return true;
    }
    if (haveHeld_) {
        op = held_;
        haveHeld_ = false;
    } else {
        for (;;) {
            if (!inner_.next(op))
                return false;
            if (cfg_.dropRate > 0 && rng_.chance(cfg_.dropRate)) {
                ++drops_;
                continue;
            }
            break;
        }
        if (cfg_.reorderRate > 0 && rng_.chance(cfg_.reorderRate)) {
            Operation successor;
            if (inner_.next(successor)) {
                held_ = op;
                haveHeld_ = true;
                op = successor;
                ++reorders_;
            }
        }
    }
    if (cfg_.dupRate > 0 && rng_.chance(cfg_.dupRate)) {
        dupOp_ = op;
        haveDup_ = true;
        ++dups_;
    }
    return true;
}

// ----- openFaultyTraceSource ------------------------------------------

Expected<FaultyOpenedSource>
openFaultyTraceSource(const std::string &path,
                      const FaultConfig &faults,
                      SourceErrorPolicy policy)
{
    Expected<bool> binary = tryIsBinaryTraceFile(path);
    if (!binary)
        return binary.status();
    auto file = std::make_unique<std::ifstream>(
        path, binary.value() ? std::ios::binary : std::ios::in);
    if (!*file)
        return Status::error(ErrCode::IoError, "cannot open " + path);

    FaultyOpenedSource out;
    std::istream *decoderStream = file.get();
    if (faults.anyByteFaults()) {
        out.faultBuf =
            std::make_unique<FaultyStreamBuf>(*file, faults);
        out.faultStream =
            std::make_unique<std::istream>(out.faultBuf.get());
        decoderStream = out.faultStream.get();
    }
    std::unique_ptr<TraceSource> inner;
    if (binary.value()) {
        inner = std::make_unique<StreamingBinarySource>(
            *decoderStream, policy);
    } else {
        inner = std::make_unique<StreamingTextSource>(*decoderStream,
                                                      policy);
    }
    // Header damage (magic/version under a byte fault) surfaces as a
    // structured status, not an abort.
    if (!inner->ok())
        return inner->status();
    out.file = std::move(file);
    if (faults.anyOpFaults()) {
        out.source = std::make_unique<FaultInjectingSource>(*inner,
                                                            faults);
        out.inner = std::move(inner);
    } else {
        out.source = std::move(inner);
    }
    return out;
}

} // namespace asyncclock::trace
