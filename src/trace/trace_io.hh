/**
 * @file
 * Trace serialization: the line-based text format and the compact
 * binary format, each with a materializing reader/writer pair and a
 * streaming TraceSource.
 *
 * The paper's workflow records a trace on the phone and analyzes it
 * offline; these are the interchange formats so traces from the
 * simulated runtime can be stored, diffed, and replayed into either
 * detector. The text format is human-readable (entity names must not
 * contain whitespace). The binary format is a varint-encoded record
 * stream — magic "ACTB" + version byte, then tagged records: entity
 * declarations (which may also appear mid-stream, for entities the
 * runtime creates while executing) and operations (task id, per-kind
 * payload, zigzag-delta-coded vtime), closed by an end marker so
 * truncation is detected. Typical ops encode in 4-8 bytes vs the
 * 48-byte in-memory Operation.
 *
 * The Streaming*Source classes implement trace::TraceSource over a
 * stream of either format: entity tables populate a TraceMeta as
 * declarations stream past and operations are decoded one at a time,
 * so the analysis' trace-container footprint is O(1) in the op count.
 */

#ifndef ASYNCCLOCK_TRACE_TRACE_IO_HH
#define ASYNCCLOCK_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <memory>
#include <string>

#include "trace/source.hh"
#include "trace/trace.hh"

namespace asyncclock::trace {

// ----- text format ----------------------------------------------------

/** Serialize @p tr to @p out. */
void writeTrace(const Trace &tr, std::ostream &out);

/** Serialize to a string (convenience for tests). */
std::string writeTraceToString(const Trace &tr);

/**
 * Parse a trace. On malformed input, returns false, resets @p tr to an
 * empty trace, and sets @p error to a message carrying the 1-based
 * line number and the offending token.
 */
bool readTrace(std::istream &in, Trace &tr, std::string &error);

/** Parse from a string (convenience for tests). */
bool readTraceFromString(const std::string &text, Trace &tr,
                         std::string &error);

/** Write @p tr to @p path; fatal() on I/O failure. */
void saveTraceFile(const Trace &tr, const std::string &path);

/** Read a trace from @p path; fatal() on failure. */
Trace loadTraceFile(const std::string &path);

/** Recoverable variant of saveTraceFile. */
Status trySaveTraceFile(const Trace &tr, const std::string &path);

/** Recoverable variant of loadTraceFile. */
Expected<Trace> tryLoadTraceFile(const std::string &path);

/** Streaming TraceSource over the text format. The stream must
 * outlive the source. */
class StreamingTextSource : public TraceSource
{
  public:
    /** Validates the header line eagerly; check ok(). */
    explicit StreamingTextSource(std::istream &in,
                                 SourceErrorPolicy policy = {});

    const TraceMeta &meta() const override { return meta_; }
    bool next(Operation &op) override;
    bool ok() const override { return ok_; }
    const std::string &error() const override { return error_; }
    Status status() const override;
    std::uint64_t recordsSkipped() const override { return skipped_; }
    std::uint64_t containerBytes() const override;

  private:
    bool fail(ErrCode code, const std::string &msg);
    /** Count a corrupt op line against the budget; false (having
     * failed the stream) once the budget is exhausted. */
    bool skipRecord(const std::string &why);

    std::istream &in_;
    SourceErrorPolicy policy_;
    TraceMeta meta_;
    std::string line_;
    std::size_t lineNo_ = 0;
    std::uint64_t skipped_ = 0;
    bool ok_ = true;
    ErrCode errCode_ = ErrCode::Ok;
    std::string error_;
};

// ----- binary format --------------------------------------------------

/**
 * Magic bytes opening a binary trace ("ACTB") + format versions.
 * Version 1 is the original looper-dialect encoding and stays
 * byte-for-byte unchanged. Version 2 adds a dialect byte after the
 * version (0 = looper, 1 = async) and, in the async dialect, the four
 * task-graph op tags 0x0C..0x0F. Looper traces are always written as
 * version 1 so existing consumers keep working.
 */
extern const char kBinaryMagic[4];
constexpr std::uint8_t kBinaryVersion = 1;
constexpr std::uint8_t kBinaryVersionDialect = 2;

/**
 * TraceSink streaming the compact binary encoding to @p out as records
 * arrive — the runtime's direct-to-sink mode writes through this, so
 * recording never materializes the op vector. finish() (or the
 * destructor) writes the end marker.
 */
class BinaryTraceWriter : public TraceSink
{
  public:
    /** Writes the magic + version (+ dialect byte for async traces)
     * eagerly. */
    explicit BinaryTraceWriter(std::ostream &out,
                               Dialect dialect = Dialect::Looper);
    ~BinaryTraceWriter() override;

    ThreadId declThread(ThreadKind kind, std::string name,
                        QueueId queue) override;
    QueueId declQueue(QueueKind kind, std::string name) override;
    void bindLooper(QueueId queue, ThreadId looper) override;
    EventId declEvent() override;
    VarId declVar(std::string name, SeedLabel label) override;
    HandleId declHandle(std::string name) override;
    SiteId declSite(std::string name, Frame frame,
                    std::uint32_t commGroup) override;
    void emit(const Operation &op) override;

    /** Write the end marker; idempotent. */
    void finish();

    std::uint64_t opsWritten() const { return ops_; }

  private:
    std::ostream &out_;
    Dialect dialect_ = Dialect::Looper;
    std::uint32_t threads_ = 0, queues_ = 0, events_ = 0;
    std::uint32_t vars_ = 0, handles_ = 0, sites_ = 0;
    std::uint64_t ops_ = 0;
    std::uint64_t lastVtime_ = 0;
    bool finished_ = false;
};

/** Serialize @p tr to @p out in the binary format. */
void writeBinaryTrace(const Trace &tr, std::ostream &out);

/** Binary-serialize to a string (convenience for tests). */
std::string writeBinaryTraceToString(const Trace &tr);

/**
 * Parse a binary trace. On malformed/truncated input, returns false,
 * resets @p tr to an empty trace, and sets @p error (with the byte
 * offset of the bad record).
 */
bool readBinaryTrace(std::istream &in, Trace &tr, std::string &error);

/** Parse from a string (convenience for tests). */
bool readBinaryTraceFromString(const std::string &data, Trace &tr,
                               std::string &error);

/** Write @p tr to @p path in the binary format; fatal() on failure. */
void saveBinaryTraceFile(const Trace &tr, const std::string &path);

/** Read a binary trace from @p path; fatal() on failure. */
Trace loadBinaryTraceFile(const std::string &path);

/** Recoverable variant of saveBinaryTraceFile. */
Status trySaveBinaryTraceFile(const Trace &tr,
                              const std::string &path);

/** Recoverable variant of loadBinaryTraceFile. */
Expected<Trace> tryLoadBinaryTraceFile(const std::string &path);

/** Streaming TraceSource over the binary format. The stream must
 * outlive the source. */
class StreamingBinarySource : public TraceSource
{
  public:
    /** Validates magic + version eagerly; check ok(). */
    explicit StreamingBinarySource(std::istream &in,
                                   SourceErrorPolicy policy = {});
    ~StreamingBinarySource() override;

    const TraceMeta &meta() const override { return meta_; }
    bool next(Operation &op) override;
    bool ok() const override;
    const std::string &error() const override;
    Status status() const override;
    std::uint64_t recordsSkipped() const override;
    std::uint64_t containerBytes() const override;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
    TraceMeta meta_;
};

// ----- format-agnostic helpers ----------------------------------------

/** Does @p path hold a binary trace (by magic)? fatal() if the file
 * cannot be opened. */
bool isBinaryTraceFile(const std::string &path);

/** Recoverable variant of isBinaryTraceFile. */
Expected<bool> tryIsBinaryTraceFile(const std::string &path);

/**
 * Open a streaming source over @p path, auto-detecting the format.
 * The returned holder owns the file stream and the source; fatal() on
 * open/header failure.
 */
struct OpenedSource
{
    std::unique_ptr<std::istream> stream;
    std::unique_ptr<TraceSource> source;
};
OpenedSource openTraceSource(const std::string &path);

/** Recoverable variant of openTraceSource; @p policy sets the opened
 * source's corrupt-record budget. */
Expected<OpenedSource> tryOpenTraceSource(const std::string &path,
                                          SourceErrorPolicy policy = {});

} // namespace asyncclock::trace

#endif // ASYNCCLOCK_TRACE_TRACE_IO_HH
