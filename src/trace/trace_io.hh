/**
 * @file
 * Text serialization of traces.
 *
 * The paper's workflow records a trace on the phone and analyzes it
 * offline; this module is the equivalent interchange format so traces
 * from the simulated runtime can be stored, diffed, and replayed into
 * either detector. The format is line-based and human-readable; entity
 * names must not contain whitespace.
 */

#ifndef ASYNCCLOCK_TRACE_TRACE_IO_HH
#define ASYNCCLOCK_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "trace/trace.hh"

namespace asyncclock::trace {

/** Serialize @p tr to @p out. */
void writeTrace(const Trace &tr, std::ostream &out);

/** Serialize to a string (convenience for tests). */
std::string writeTraceToString(const Trace &tr);

/**
 * Parse a trace. On malformed input, returns false and sets @p error;
 * @p tr is left in an unspecified state.
 */
bool readTrace(std::istream &in, Trace &tr, std::string &error);

/** Parse from a string (convenience for tests). */
bool readTraceFromString(const std::string &text, Trace &tr,
                         std::string &error);

/** Write @p tr to @p path; fatal() on I/O failure. */
void saveTraceFile(const Trace &tr, const std::string &path);

/** Read a trace from @p path; fatal() on failure. */
Trace loadTraceFile(const std::string &path);

} // namespace asyncclock::trace

#endif // ASYNCCLOCK_TRACE_TRACE_IO_HH
