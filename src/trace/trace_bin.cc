/**
 * @file
 * Compact binary trace format (trace_io.hh): LEB128 varints, tagged
 * records, zigzag-delta-coded vtimes.
 *
 * Layout:
 *   magic "ACTB", version byte
 *   version 2 only: dialect byte (0 = looper, 1 = async)
 *   records until the end marker:
 *     0x00..0x0B  operation (tag == OpKind)
 *     0x0C..0x0F  async-dialect operation (version 2 async only)
 *     0xE0..0xE6  entity declaration
 *     0xFF        end marker
 *
 * Looper traces are always written as version 1, so the original
 * encoding stays byte-for-byte unchanged; only async traces use the
 * version-2 header and the task-graph op tags.
 *
 * Operation record: task varint ((index << 1) | isEvent), then the
 * kind-specific payload, then zigzag varint of (vtime - prev vtime).
 * Optional ids (site, thread queue, site commGroup) are stored as
 * id + 1 with 0 meaning absent, so kInvalidId never costs 5 bytes.
 * Strings are varint length + bytes.
 *
 * Entity declarations may appear anywhere before first use, which is
 * what lets the runtime's direct-to-sink mode stream a recording while
 * it forks threads and allocates events mid-run. A missing end marker
 * means truncation; every id is bounds-checked against the tables
 * declared so far, so corrupted bytes are rejected, not crashed on.
 */

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/format.hh"
#include "support/logging.hh"
#include "trace/trace_io.hh"

namespace asyncclock::trace {

const char kBinaryMagic[4] = {'A', 'C', 'T', 'B'};

namespace {

constexpr std::uint8_t kTagThread = 0xE0;
constexpr std::uint8_t kTagQueue = 0xE1;
constexpr std::uint8_t kTagBindLooper = 0xE2;
constexpr std::uint8_t kTagEvent = 0xE3;
constexpr std::uint8_t kTagVar = 0xE4;
constexpr std::uint8_t kTagHandle = 0xE5;
constexpr std::uint8_t kTagSite = 0xE6;
constexpr std::uint8_t kTagEnd = 0xFF;
constexpr std::uint8_t kMaxOpTag = 0x0B;
constexpr std::uint8_t kMaxOpTagAsync = 0x0F;

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t z)
{
    return static_cast<std::int64_t>(z >> 1) ^
           -static_cast<std::int64_t>(z & 1);
}

void
putVarint(std::ostream &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.put(static_cast<char>((v & 0x7F) | 0x80));
        v >>= 7;
    }
    out.put(static_cast<char>(v));
}

void
putString(std::ostream &out, const std::string &s)
{
    putVarint(out, s.size());
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

/** Incremental decoder shared by the materializing reader and the
 * streaming source. Tracks declared-entity counts for bounds checks
 * and the running vtime for delta decoding.
 *
 * Failure discipline: *structural* damage (truncated varint/string,
 * unknown tag, missing end marker) is unrecoverable — the record
 * boundary is lost, so the stream hard-fails with a Status carrying
 * the byte offset. *Value* damage (an id out of range, a bad enum) is
 * discovered only after the record's bytes were fully consumed, so
 * the record can be skipped and counted against the error budget.
 * Entity declarations are the exception: their ids are positional, so
 * skipping one would silently shift every later id — they hard-fail
 * (bind-looper carries no id of its own and stays skippable). */
class BinaryDecoder
{
  public:
    explicit BinaryDecoder(std::istream &in,
                           SourceErrorPolicy policy = {})
        : in_(in), policy_(policy)
    {
    }

    bool ok() const { return ok_; }
    const std::string &error() const { return error_; }
    bool atEnd() const { return sawEnd_; }
    std::uint64_t skipped() const { return skipped_; }
    Dialect dialect() const { return dialect_; }

    Status
    status() const
    {
        if (ok_)
            return Status::ok();
        return Status::error(errCode_, error_, errOffset_);
    }

    /** Validate magic + version; call once before records. */
    bool
    readHeader()
    {
        char magic[4];
        if (!in_.read(magic, 4))
            return fail(ErrCode::Truncated, "missing magic");
        if (std::memcmp(magic, kBinaryMagic, 4) != 0)
            return fail(ErrCode::ParseError, "bad magic");
        int version = in_.get();
        if (version == EOF)
            return fail(ErrCode::Truncated, "missing version");
        if (version == kBinaryVersion) {
            dialect_ = Dialect::Looper;
            return true;
        }
        if (version != kBinaryVersionDialect) {
            return fail(ErrCode::Unsupported,
                        strf("unsupported version %d", version));
        }
        int dialect = in_.get();
        if (dialect == EOF)
            return fail(ErrCode::Truncated, "missing dialect byte");
        if (dialect > 1) {
            return fail(ErrCode::Corrupt,
                        strf("bad dialect tag %d", dialect));
        }
        dialect_ = static_cast<Dialect>(dialect);
        return true;
    }

    /**
     * Decode the next record. Entity declarations are applied to
     * @p entities; an operation sets @p isOp and fills @p op. Returns
     * false at the end marker or on error (check ok()). Corrupt
     * records within the error budget are skipped internally and
     * never surface here.
     */
    bool
    nextRecord(EntitySink &entities, bool &isOp, Operation &op)
    {
        for (;;) {
            Rec rec = nextRecordOnce(entities, isOp, op);
            if (rec == Rec::Soft && skipRecord())
                continue;
            return rec == Rec::Good;
        }
    }

  private:
    /** Outcome of one record: decoded, skippable-corrupt, or
     * end/hard-error (Stop covers both; check ok()/atEnd()). */
    enum class Rec { Good, Soft, Stop };

    Rec
    nextRecordOnce(EntitySink &entities, bool &isOp, Operation &op)
    {
        isOp = false;
        if (!ok_ || sawEnd_)
            return Rec::Stop;
        int tag = in_.get();
        if (tag == EOF) {
            fail(ErrCode::Truncated, "truncated: missing end marker");
            return Rec::Stop;
        }
        std::uint8_t t = static_cast<std::uint8_t>(tag);
        if (t == kTagEnd) {
            sawEnd_ = true;
            return Rec::Stop;
        }
        // The async op tags are only words of the async dialect; in a
        // looper stream 0x0C..0x0F stay unknown tags (hard failure —
        // the payload layout cannot be trusted to resynchronize).
        const std::uint8_t maxOpTag =
            dialect_ == Dialect::Async ? kMaxOpTagAsync : kMaxOpTag;
        if (t <= maxOpTag) {
            Rec rec = decodeOp(static_cast<OpKind>(t), op);
            isOp = rec == Rec::Good;
            return rec;
        }
        return decodeEntity(t, entities) ? Rec::Good
               : ok_                     ? Rec::Soft
                                         : Rec::Stop;
    }

    /** False on failure: soft if ok() still holds (only the
     * non-positional bind-looper record), hard otherwise. */
    bool
    decodeEntity(std::uint8_t t, EntitySink &entities)
    {
        switch (t) {
          case kTagThread:
            {
                std::uint64_t kind, queuePlus1;
                std::string name;
                if (!getVarint(kind) || !getVarint(queuePlus1) ||
                    !getString(name)) {
                    return false;
                }
                if (kind > 2)
                    return fail(ErrCode::Corrupt, "bad thread kind");
                QueueId q = queuePlus1 == 0
                                ? kInvalidId
                                : static_cast<QueueId>(queuePlus1 - 1);
                entities.declThread(static_cast<ThreadKind>(kind),
                                    std::move(name), q);
                ++threads_;
                return true;
            }
          case kTagQueue:
            {
                std::uint64_t kind;
                std::string name;
                if (!getVarint(kind) || !getString(name))
                    return false;
                if (kind > 1)
                    return fail(ErrCode::Corrupt, "bad queue kind");
                entities.declQueue(static_cast<QueueKind>(kind),
                                   std::move(name));
                ++queues_;
                return true;
            }
          case kTagBindLooper:
            {
                std::uint64_t q, looper;
                if (!getVarint(q) || !getVarint(looper))
                    return false;
                if (q >= queues_ || looper >= threads_)
                    return softFail("bind-looper id out of range");
                entities.bindLooper(static_cast<QueueId>(q),
                                    static_cast<ThreadId>(looper));
                return true;
            }
          case kTagEvent:
            entities.declEvent();
            ++events_;
            return true;
          case kTagVar:
            {
                std::uint64_t label;
                std::string name;
                if (!getVarint(label) || !getString(name))
                    return false;
                if (label > 5)
                    return fail(ErrCode::Corrupt, "bad seed label");
                entities.declVar(std::move(name),
                                 static_cast<SeedLabel>(label));
                ++vars_;
                return true;
            }
          case kTagHandle:
            {
                std::string name;
                if (!getString(name))
                    return false;
                entities.declHandle(std::move(name));
                ++handles_;
                return true;
            }
          case kTagSite:
            {
                std::uint64_t frame, groupPlus1;
                std::string name;
                if (!getVarint(frame) || !getVarint(groupPlus1) ||
                    !getString(name)) {
                    return false;
                }
                if (frame > 2)
                    return fail(ErrCode::Corrupt, "bad site frame");
                std::uint32_t g =
                    groupPlus1 == 0
                        ? kInvalidId
                        : static_cast<std::uint32_t>(groupPlus1 - 1);
                entities.declSite(std::move(name),
                                  static_cast<Frame>(frame), g);
                ++sites_;
                return true;
            }
          default:
            return fail(ErrCode::ParseError,
                        strf("unknown record tag 0x%02X", t));
        }
    }

    std::uint64_t
    inputOffset()
    {
        // tellg() refuses once eof/fail bits are set (the usual
        // state on a truncated stream); clear, read, restore so
        // the error still carries the real offset.
        std::ios_base::iostate state = in_.rdstate();
        in_.clear();
        long long at = static_cast<long long>(in_.tellg());
        in_.setstate(state);
        return at < 0 ? kNoOffset : static_cast<std::uint64_t>(at);
    }

    bool
    fail(ErrCode code, const std::string &msg)
    {
        if (ok_) {
            ok_ = false;
            errCode_ = code;
            errOffset_ = inputOffset();
            error_ = strf("byte %lld: %s",
                          static_cast<long long>(errOffset_),
                          msg.c_str());
            // Surface the failure immediately but rate-limited: a
            // harness decoding many corrupt traces (fuzzing, batch
            // ingestion) must not flood stderr one line per stream.
            warnRateLimited("trace_bin.decode",
                            "binary trace decode: " + error_);
        }
        return false;
    }

    /** A value-corrupt record whose bytes were fully consumed: the
     * stream stays usable, nextRecord() may skip it under the
     * budget. */
    bool
    softFail(const std::string &msg)
    {
        softMsg_ = strf("byte %lld: %s",
                        static_cast<long long>(inputOffset()),
                        msg.c_str());
        return false;
    }

    /** Charge the last softFail against the budget; false (stream
     * hard-failed) once the budget is exhausted. */
    bool
    skipRecord()
    {
        if (skipped_ >= policy_.maxRecordErrors) {
            if (skipped_ > 0) {
                return fail(
                    ErrCode::BudgetExceeded,
                    strf("error budget exhausted after %llu skipped "
                         "records; last: %s",
                         static_cast<unsigned long long>(skipped_),
                         softMsg_.c_str()));
            }
            return fail(ErrCode::Corrupt, softMsg_);
        }
        ++skipped_;
        warnRateLimited("trace_bin.skip",
                        "skipping corrupt trace record: " + softMsg_);
        return true;
    }

    bool
    getVarint(std::uint64_t &v)
    {
        v = 0;
        for (unsigned shift = 0; shift < 64; shift += 7) {
            int byte = in_.get();
            if (byte == EOF)
                return fail(ErrCode::Truncated, "truncated varint");
            v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
            if (!(byte & 0x80))
                return true;
        }
        return fail(ErrCode::ParseError, "varint overflow");
    }

    bool
    getString(std::string &s)
    {
        std::uint64_t len;
        if (!getVarint(len))
            return false;
        if (len > (1u << 20))
            return fail(ErrCode::ParseError,
                        "unreasonable string length");
        s.resize(len);
        if (len &&
            !in_.read(s.data(), static_cast<std::streamsize>(len))) {
            return fail(ErrCode::Truncated, "truncated string");
        }
        return true;
    }

    /**
     * Decode one operation record. Reads the *entire* payload before
     * validating any value, so a value failure leaves the stream
     * positioned at the next record and the op is skippable (Soft);
     * only byte-level truncation hard-fails (Stop).
     */
    Rec
    decodeOp(OpKind kind, Operation &op)
    {
        op = Operation();
        op.kind = kind;
        std::uint64_t taskRaw = 0, a = 0, b = 0, c = 0, d = 0;
        unsigned payload = 0;
        switch (kind) {
          case OpKind::ThreadBegin:
          case OpKind::ThreadEnd:
          case OpKind::EventEnd:
            payload = 0;
            break;
          case OpKind::EventBegin:
          case OpKind::Fork:
          case OpKind::Join:
          case OpKind::Signal:
          case OpKind::Wait:
          case OpKind::RemoveEvent:
          case OpKind::TaskAwait:
          case OpKind::ScopeEnd:
          case OpKind::TaskCancel:
            payload = 1;
            break;
          case OpKind::Read:
          case OpKind::Write:
          case OpKind::TaskSpawn:
            payload = 2;
            break;
          case OpKind::Send:
            payload = 4;
            break;
        }
        std::uint64_t delta = 0;
        if (!getVarint(taskRaw) ||
            (payload > 0 && !getVarint(a)) ||
            (payload > 1 && !getVarint(b)) ||
            (payload > 2 && !getVarint(c)) ||
            (payload > 3 && !getVarint(d)) || !getVarint(delta)) {
            return Rec::Stop;
        }
        // The record's bytes are consumed; everything below is value
        // validation. The vtime cursor advances regardless of the
        // verdict so later deltas still decode.
        lastVtime_ = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(lastVtime_) + unzigzag(delta));
        op.vtime = lastVtime_;

        auto soft = [this](const char *msg) {
            softFail(msg);
            return Rec::Soft;
        };
        if (taskRaw > 0xFFFFFFFFull)
            return soft("op task out of 32-bit range");
        std::uint32_t index =
            static_cast<std::uint32_t>(taskRaw >> 1);
        bool isEvent = taskRaw & 1;
        op.task = isEvent ? Task::event(index) : Task::thread(index);
        if (isEvent ? index >= events_ : index >= threads_)
            return soft("op task out of range");
        switch (kind) {
          case OpKind::ThreadBegin:
          case OpKind::ThreadEnd:
          case OpKind::EventEnd:
            break;
          case OpKind::EventBegin:
          case OpKind::Fork:
          case OpKind::Join:
            if (a >= threads_)
                return soft("op thread out of range");
            op.target = static_cast<std::uint32_t>(a);
            break;
          case OpKind::Signal:
          case OpKind::Wait:
            if (a >= handles_)
                return soft("op handle out of range");
            op.target = static_cast<std::uint32_t>(a);
            break;
          case OpKind::Read:
          case OpKind::Write:
            if (a >= vars_)
                return soft("op var out of range");
            op.target = static_cast<std::uint32_t>(a);
            if (b == 0) {
                op.site = kInvalidId;
            } else {
                if (b - 1 >= sites_)
                    return soft("op site out of range");
                op.site = static_cast<std::uint32_t>(b - 1);
            }
            break;
          case OpKind::Send:
            if (a >= queues_)
                return soft("op queue out of range");
            if (b >= events_)
                return soft("op event out of range");
            if (c > 5)
                return soft("bad send attrs");
            op.target = static_cast<std::uint32_t>(a);
            op.event = static_cast<std::uint32_t>(b);
            op.attrs.kind = static_cast<SendKind>(c >> 1);
            op.attrs.async = c & 1;
            op.attrs.time = d;
            break;
          case OpKind::RemoveEvent:
          case OpKind::TaskAwait:
          case OpKind::TaskCancel:
            if (a >= events_)
                return soft("op event out of range");
            op.event = static_cast<std::uint32_t>(a);
            break;
          case OpKind::TaskSpawn:
            if (a >= events_)
                return soft("op event out of range");
            if (b >= handles_)
                return soft("op scope out of range");
            op.event = static_cast<std::uint32_t>(a);
            op.target = static_cast<std::uint32_t>(b);
            break;
          case OpKind::ScopeEnd:
            if (a >= handles_)
                return soft("op scope out of range");
            op.target = static_cast<std::uint32_t>(a);
            break;
        }
        return Rec::Good;
    }

    std::istream &in_;
    SourceErrorPolicy policy_;
    Dialect dialect_ = Dialect::Looper;
    std::uint64_t threads_ = 0, queues_ = 0, events_ = 0;
    std::uint64_t vars_ = 0, handles_ = 0, sites_ = 0;
    std::uint64_t lastVtime_ = 0;
    std::uint64_t skipped_ = 0;
    bool ok_ = true;
    bool sawEnd_ = false;
    ErrCode errCode_ = ErrCode::Ok;
    std::uint64_t errOffset_ = kNoOffset;
    std::string error_;
    std::string softMsg_;
};

} // namespace

// ----- BinaryTraceWriter ----------------------------------------------

BinaryTraceWriter::BinaryTraceWriter(std::ostream &out, Dialect dialect)
    : out_(out), dialect_(dialect)
{
    out_.write(kBinaryMagic, 4);
    if (dialect_ == Dialect::Looper) {
        out_.put(static_cast<char>(kBinaryVersion));
    } else {
        out_.put(static_cast<char>(kBinaryVersionDialect));
        out_.put(static_cast<char>(dialect_));
    }
}

BinaryTraceWriter::~BinaryTraceWriter()
{
    finish();
}

void
BinaryTraceWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    out_.put(static_cast<char>(kTagEnd));
    out_.flush();
}

ThreadId
BinaryTraceWriter::declThread(ThreadKind kind, std::string name,
                              QueueId queue)
{
    out_.put(static_cast<char>(kTagThread));
    putVarint(out_, static_cast<std::uint64_t>(kind));
    putVarint(out_, queue == kInvalidId
                        ? 0
                        : static_cast<std::uint64_t>(queue) + 1);
    putString(out_, name);
    return threads_++;
}

QueueId
BinaryTraceWriter::declQueue(QueueKind kind, std::string name)
{
    out_.put(static_cast<char>(kTagQueue));
    putVarint(out_, static_cast<std::uint64_t>(kind));
    putString(out_, name);
    return queues_++;
}

void
BinaryTraceWriter::bindLooper(QueueId queue, ThreadId looper)
{
    out_.put(static_cast<char>(kTagBindLooper));
    putVarint(out_, queue);
    putVarint(out_, looper);
}

EventId
BinaryTraceWriter::declEvent()
{
    out_.put(static_cast<char>(kTagEvent));
    return events_++;
}

VarId
BinaryTraceWriter::declVar(std::string name, SeedLabel label)
{
    out_.put(static_cast<char>(kTagVar));
    putVarint(out_, static_cast<std::uint64_t>(label));
    putString(out_, name);
    return vars_++;
}

HandleId
BinaryTraceWriter::declHandle(std::string name)
{
    out_.put(static_cast<char>(kTagHandle));
    putString(out_, name);
    return handles_++;
}

SiteId
BinaryTraceWriter::declSite(std::string name, Frame frame,
                            std::uint32_t commGroup)
{
    out_.put(static_cast<char>(kTagSite));
    putVarint(out_, static_cast<std::uint64_t>(frame));
    putVarint(out_, commGroup == kInvalidId
                        ? 0
                        : static_cast<std::uint64_t>(commGroup) + 1);
    putString(out_, name);
    return sites_++;
}

void
BinaryTraceWriter::emit(const Operation &op)
{
    out_.put(static_cast<char>(op.kind));
    putVarint(out_, (static_cast<std::uint64_t>(op.task.index()) << 1) |
                        (op.task.isEvent() ? 1 : 0));
    switch (op.kind) {
      case OpKind::ThreadBegin:
      case OpKind::ThreadEnd:
      case OpKind::EventEnd:
        break;
      case OpKind::EventBegin:
      case OpKind::Fork:
      case OpKind::Join:
      case OpKind::Signal:
      case OpKind::Wait:
        putVarint(out_, op.target);
        break;
      case OpKind::Read:
      case OpKind::Write:
        putVarint(out_, op.target);
        putVarint(out_, op.site == kInvalidId
                            ? 0
                            : static_cast<std::uint64_t>(op.site) + 1);
        break;
      case OpKind::Send:
        putVarint(out_, op.target);
        putVarint(out_, op.event);
        putVarint(out_,
                  (static_cast<std::uint64_t>(op.attrs.kind) << 1) |
                      (op.attrs.async ? 1 : 0));
        putVarint(out_, op.attrs.time);
        break;
      case OpKind::RemoveEvent:
      case OpKind::TaskAwait:
      case OpKind::TaskCancel:
        putVarint(out_, op.event);
        break;
      case OpKind::TaskSpawn:
        putVarint(out_, op.event);
        putVarint(out_, op.target);
        break;
      case OpKind::ScopeEnd:
        putVarint(out_, op.target);
        break;
    }
    putVarint(out_, zigzag(static_cast<std::int64_t>(op.vtime) -
                           static_cast<std::int64_t>(lastVtime_)));
    lastVtime_ = op.vtime;
    ++ops_;
}

// ----- materializing writer/reader ------------------------------------

void
writeBinaryTrace(const Trace &tr, std::ostream &out)
{
    BinaryTraceWriter writer(out, tr.dialect());
    replayEntities(tr, writer);
    for (const Operation &op : tr.ops())
        writer.emit(op);
    writer.finish();
}

std::string
writeBinaryTraceToString(const Trace &tr)
{
    std::ostringstream ss;
    writeBinaryTrace(tr, ss);
    return ss.str();
}

bool
readBinaryTrace(std::istream &in, Trace &tr, std::string &error)
{
    tr = Trace();
    BinaryDecoder dec(in);
    if (!dec.readHeader()) {
        error = dec.error();
        return false;
    }
    tr.setDialect(dec.dialect());
    TraceBuildSink sink(tr);
    bool isOp = false;
    Operation op;
    while (dec.nextRecord(sink, isOp, op)) {
        if (isOp)
            tr.append(op);
    }
    if (!dec.ok()) {
        error = dec.error();
        tr = Trace();
        return false;
    }
    return true;
}

bool
readBinaryTraceFromString(const std::string &data, Trace &tr,
                          std::string &error)
{
    std::istringstream ss(data);
    return readBinaryTrace(ss, tr, error);
}

Status
trySaveBinaryTraceFile(const Trace &tr, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        return Status::error(ErrCode::IoError,
                             "cannot open " + path + " for writing");
    }
    writeBinaryTrace(tr, out);
    if (!out) {
        return Status::error(ErrCode::IoError,
                             "write to " + path + " failed");
    }
    return Status::ok();
}

void
saveBinaryTraceFile(const Trace &tr, const std::string &path)
{
    Status st = trySaveBinaryTraceFile(tr, path);
    if (!st)
        fatal(st.toString());
}

Expected<Trace>
tryLoadBinaryTraceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return Status::error(ErrCode::IoError, "cannot open " + path);
    Trace tr;
    std::string error;
    if (!readBinaryTrace(in, tr, error)) {
        return Status::error(ErrCode::ParseError,
                             "parsing " + path + ": " + error);
    }
    return tr;
}

Trace
loadBinaryTraceFile(const std::string &path)
{
    Expected<Trace> tr = tryLoadBinaryTraceFile(path);
    if (!tr)
        fatal(tr.status().toString());
    return tr.take();
}

// ----- StreamingBinarySource ------------------------------------------

struct StreamingBinarySource::Impl
{
    Impl(std::istream &in, SourceErrorPolicy policy)
        : dec(in, policy)
    {
    }
    BinaryDecoder dec;
};

StreamingBinarySource::StreamingBinarySource(std::istream &in,
                                             SourceErrorPolicy policy)
    : impl_(new Impl(in, policy))
{
    if (impl_->dec.readHeader())
        meta_.setDialect(impl_->dec.dialect());
}

StreamingBinarySource::~StreamingBinarySource() = default;

bool
StreamingBinarySource::next(Operation &op)
{
    bool isOp = false;
    while (impl_->dec.nextRecord(meta_, isOp, op)) {
        if (isOp) {
            if (op.kind == OpKind::Send)
                meta_.noteSend(op.event, op.target, op.attrs);
            return true;
        }
    }
    return false;
}

bool
StreamingBinarySource::ok() const
{
    return impl_->dec.ok();
}

const std::string &
StreamingBinarySource::error() const
{
    return impl_->dec.error();
}

Status
StreamingBinarySource::status() const
{
    return impl_->dec.status();
}

std::uint64_t
StreamingBinarySource::recordsSkipped() const
{
    return impl_->dec.skipped();
}

std::uint64_t
StreamingBinarySource::containerBytes() const
{
    // The decoder holds no per-op state; only fixed-size counters.
    return sizeof(Impl);
}

// ----- format-agnostic helpers ----------------------------------------

Expected<bool>
tryIsBinaryTraceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return Status::error(ErrCode::IoError, "cannot open " + path);
    char magic[4] = {};
    in.read(magic, 4);
    return in && std::memcmp(magic, kBinaryMagic, 4) == 0;
}

bool
isBinaryTraceFile(const std::string &path)
{
    Expected<bool> binary = tryIsBinaryTraceFile(path);
    if (!binary)
        fatal(binary.status().toString());
    return binary.value();
}

Expected<OpenedSource>
tryOpenTraceSource(const std::string &path, SourceErrorPolicy policy)
{
    Expected<bool> binary = tryIsBinaryTraceFile(path);
    if (!binary)
        return binary.status();
    auto stream = std::make_unique<std::ifstream>(
        path, binary.value() ? std::ios::binary : std::ios::in);
    if (!*stream)
        return Status::error(ErrCode::IoError, "cannot open " + path);
    std::unique_ptr<TraceSource> source;
    if (binary.value()) {
        source =
            std::make_unique<StreamingBinarySource>(*stream, policy);
    } else {
        source =
            std::make_unique<StreamingTextSource>(*stream, policy);
    }
    if (!source->ok()) {
        Status st = source->status();
        return Status::error(st.code(),
                             "parsing " + path + ": " + st.message(),
                             st.offset());
    }
    OpenedSource out;
    out.stream = std::move(stream);
    out.source = std::move(source);
    return out;
}

OpenedSource
openTraceSource(const std::string &path)
{
    Expected<OpenedSource> opened = tryOpenTraceSource(path);
    if (!opened)
        fatal(opened.status().toString());
    return opened.take();
}

} // namespace asyncclock::trace
