/**
 * @file
 * Streaming trace pipeline: sinks, the slim TraceMeta view, and the
 * TraceSource pull interface.
 *
 * The paper's analysis is single-pass (section 3): nothing in either
 * detector needs the whole operation sequence in memory. This module
 * decouples trace *storage* from trace *consumption* so million-op
 * traces never fully materialize:
 *
 *  - TraceSink / EntitySink: push interface a producer (the simulated
 *    runtime, a format writer) emits entity declarations and
 *    operations into.
 *  - TraceMeta: the entity tables alone — threads, queues, vars,
 *    handles, sites, and a per-event {queue, attrs} record filled in
 *    when the event's send streams past. This is all the metadata the
 *    detectors read; the O(n) operation vector stays out of it.
 *  - TraceSource: pull interface the detectors consume — entity
 *    tables via meta(), then next(Operation&) until exhausted.
 *    Implementations: MaterializedSource (wraps a whole-trace
 *    trace::Trace), StreamingTextSource and StreamingBinarySource
 *    (trace/trace_io.hh) which hold O(1) state in the op count.
 *
 * Entity tables may *grow* mid-stream (the runtime forks threads and
 * allocates events while executing); consumers size their per-entity
 * state lazily from meta() after each pull.
 */

#ifndef ASYNCCLOCK_TRACE_SOURCE_HH
#define ASYNCCLOCK_TRACE_SOURCE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.hh"
#include "trace/trace.hh"

namespace asyncclock::trace {

/**
 * Per-run error budget of a streaming source. A corrupt *operation*
 * record (bad ids, malformed payload) can be skipped and counted —
 * entity declarations cannot, because their ids are positional and a
 * skip would silently shift every later id (phantom races). Once more
 * than maxRecordErrors records have been skipped the source fails
 * with ErrCode::BudgetExceeded and a summary. The default budget of 0
 * keeps the pre-existing strict behaviour: first corrupt record fails
 * the stream.
 */
struct SourceErrorPolicy
{
    std::uint64_t maxRecordErrors = 0;
};

/** Push interface for entity declarations. Ids are allocated densely
 * per table, in declaration order. */
class EntitySink
{
  public:
    virtual ~EntitySink() = default;

    virtual ThreadId declThread(ThreadKind kind, std::string name,
                                QueueId queue) = 0;
    virtual QueueId declQueue(QueueKind kind, std::string name) = 0;
    virtual void bindLooper(QueueId queue, ThreadId looper) = 0;
    virtual EventId declEvent() = 0;
    virtual VarId declVar(std::string name, SeedLabel label) = 0;
    virtual HandleId declHandle(std::string name) = 0;
    virtual SiteId declSite(std::string name, Frame frame,
                            std::uint32_t commGroup) = 0;
};

/** Push interface for a full trace: entity declarations plus the
 * operation stream, with convenience emitters mirroring the Trace
 * appenders. */
class TraceSink : public EntitySink
{
  public:
    virtual void emit(const Operation &op) = 0;

    // ----- convenience emitters -------------------------------------
    void threadBegin(ThreadId t, std::uint64_t vtime);
    void threadEnd(ThreadId t, std::uint64_t vtime);
    void eventBegin(EventId e, ThreadId executor, std::uint64_t vtime);
    void eventEnd(EventId e, std::uint64_t vtime);
    void read(Task task, VarId var, SiteId site, std::uint64_t vtime);
    void write(Task task, VarId var, SiteId site, std::uint64_t vtime);
    void fork(Task task, ThreadId child, std::uint64_t vtime);
    void join(Task task, ThreadId child, std::uint64_t vtime);
    void signal(Task task, HandleId handle, std::uint64_t vtime);
    void wait(Task task, HandleId handle, std::uint64_t vtime);
    void send(Task task, QueueId queue, EventId event,
              const SendAttrs &attrs, std::uint64_t vtime);
    void removeEvent(Task task, EventId event, std::uint64_t vtime);

    // Async-dialect emitters (events stand in for tasks).
    void taskSpawn(Task task, EventId child, HandleId scope,
                   std::uint64_t vtime);
    void taskAwait(Task task, EventId child, std::uint64_t vtime);
    void scopeEnd(Task task, HandleId scope, std::uint64_t vtime);
    void taskCancel(Task task, EventId child, std::uint64_t vtime);
};

/** TraceSink adapter materializing into a trace::Trace. */
class TraceBuildSink : public TraceSink
{
  public:
    explicit TraceBuildSink(Trace &tr) : trace_(tr) {}

    ThreadId
    declThread(ThreadKind kind, std::string name, QueueId queue) override
    {
        return trace_.addThread(kind, std::move(name), queue);
    }
    QueueId
    declQueue(QueueKind kind, std::string name) override
    {
        return trace_.addQueue(kind, std::move(name));
    }
    void
    bindLooper(QueueId queue, ThreadId looper) override
    {
        trace_.bindLooper(queue, looper);
    }
    EventId declEvent() override { return trace_.addEvent(); }
    VarId
    declVar(std::string name, SeedLabel label) override
    {
        return trace_.addVar(std::move(name), label);
    }
    HandleId
    declHandle(std::string name) override
    {
        return trace_.addHandle(std::move(name));
    }
    SiteId
    declSite(std::string name, Frame frame,
             std::uint32_t commGroup) override
    {
        return trace_.addSite(std::move(name), frame, commGroup);
    }
    void emit(const Operation &op) override { trace_.append(op); }

  private:
    Trace &trace_;
};

/** Per-event record of a TraceMeta: the queueing facts the detectors
 * read, available from the event's send onward. */
struct MetaEvent
{
    QueueId queue = kInvalidId;
    SendAttrs attrs{};
};

/**
 * The slim trace view: entity tables without the operation vector.
 * Ground-truth seed labels ride along in the var table (they are
 * entity data, used only by report post-processing, never by the
 * detectors' hot path).
 */
class TraceMeta : public EntitySink
{
  public:
    // ----- EntitySink -----------------------------------------------
    ThreadId
    declThread(ThreadKind kind, std::string name, QueueId queue) override
    {
        threads_.push_back({kind, queue, std::move(name)});
        return static_cast<ThreadId>(threads_.size() - 1);
    }
    QueueId
    declQueue(QueueKind kind, std::string name) override
    {
        queues_.push_back({kind, kInvalidId, std::move(name)});
        return static_cast<QueueId>(queues_.size() - 1);
    }
    void
    bindLooper(QueueId queue, ThreadId looper) override
    {
        // Tolerate out-of-range ids from a malformed stream (the
        // binding is dropped; the op stream then fails validation
        // instead of indexing out of bounds).
        if (queue >= queues_.size() || looper >= threads_.size())
            return;
        queues_[queue].looper = looper;
        threads_[looper].queue = queue;
    }
    EventId
    declEvent() override
    {
        events_.push_back({});
        return static_cast<EventId>(events_.size() - 1);
    }
    VarId
    declVar(std::string name, SeedLabel label) override
    {
        vars_.push_back({std::move(name), label});
        return static_cast<VarId>(vars_.size() - 1);
    }
    HandleId
    declHandle(std::string name) override
    {
        handles_.push_back({std::move(name)});
        return static_cast<HandleId>(handles_.size() - 1);
    }
    SiteId
    declSite(std::string name, Frame frame,
             std::uint32_t commGroup) override
    {
        sites_.push_back({std::move(name), frame, commGroup});
        return static_cast<SiteId>(sites_.size() - 1);
    }

    /** Record an observed send: fills the event's queueing facts. */
    void
    noteSend(EventId event, QueueId queue, const SendAttrs &attrs)
    {
        MetaEvent &ev = events_[event];
        ev.queue = queue;
        ev.attrs = attrs;
    }

    // ----- access ---------------------------------------------------
    const std::vector<ThreadInfo> &threads() const { return threads_; }
    const std::vector<QueueInfo> &queues() const { return queues_; }
    const std::vector<MetaEvent> &events() const { return events_; }
    const std::vector<VarInfo> &vars() const { return vars_; }
    const std::vector<HandleInfo> &handles() const { return handles_; }
    const std::vector<SiteInfo> &sites() const { return sites_; }

    const ThreadInfo &thread(ThreadId id) const { return threads_[id]; }
    const QueueInfo &queue(QueueId id) const { return queues_[id]; }
    const MetaEvent &event(EventId id) const { return events_[id]; }
    const VarInfo &var(VarId id) const { return vars_[id]; }
    const HandleInfo &handle(HandleId id) const { return handles_[id]; }
    const SiteInfo &site(SiteId id) const { return sites_[id]; }

    /** Looper thread of the queue executing event @p e (kInvalidId for
     * binder events and events not yet sent). */
    ThreadId
    looperOf(EventId e) const
    {
        const MetaEvent &ev = events_[e];
        if (ev.queue == kInvalidId)
            return kInvalidId;
        const QueueInfo &q = queues_[ev.queue];
        return q.kind == QueueKind::Looper ? q.looper : kInvalidId;
    }

    /** Which op vocabulary the stream uses (set from the header by
     * the readers; default Looper). */
    Dialect dialect() const { return dialect_; }
    void setDialect(Dialect d) { dialect_ = d; }

    /** Build the slim view of a materialized trace (event queueing
     * facts pre-filled from its event table). */
    static TraceMeta fromTrace(const Trace &tr);

    /** Heap bytes of the tables, for memory accounting. */
    std::uint64_t byteSize() const;

  private:
    std::vector<ThreadInfo> threads_;
    std::vector<QueueInfo> queues_;
    std::vector<MetaEvent> events_;
    std::vector<VarInfo> vars_;
    std::vector<HandleInfo> handles_;
    std::vector<SiteInfo> sites_;
    Dialect dialect_ = Dialect::Looper;
};

/**
 * Pull interface the detectors consume. meta() is valid immediately
 * and may grow as records stream past; next() yields operations in
 * trace order. next() returning false means exhausted *or* failed —
 * check ok() to distinguish.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Entity tables seen so far (grows as the stream advances). */
    virtual const TraceMeta &meta() const = 0;

    /** Pull the next operation; false when exhausted or on error. */
    virtual bool next(Operation &op) = 0;

    /** False after a malformed stream; error() describes why. */
    virtual bool ok() const { return true; }
    virtual const std::string &error() const;

    /** Structured form of ok()/error(): the error category plus the
     * input offset of the failing record when known. */
    virtual Status
    status() const
    {
        return ok() ? Status::ok()
                    : Status::error(ErrCode::ParseError, error());
    }

    /** Corrupt records skipped under the error budget so far. */
    virtual std::uint64_t recordsSkipped() const { return 0; }

    /** Bytes held by the trace *container* this source reads from —
     * O(ops) for MaterializedSource, O(1) for the streaming sources.
     * This is the quantity the streaming pipeline removes from the
     * analysis' peak footprint; detector metadata is accounted
     * separately. */
    virtual std::uint64_t containerBytes() const = 0;
};

/** Replay @p tr's entity tables into @p sink. Each table is dense and
 * independent, so per-table declaration order reproduces the original
 * ids exactly. */
void replayEntities(const Trace &tr, EntitySink &sink);

/** TraceSource over a fully materialized trace::Trace. */
class MaterializedSource : public TraceSource
{
  public:
    /** @p tr must outlive the source. */
    explicit MaterializedSource(const Trace &tr)
        : trace_(tr), meta_(TraceMeta::fromTrace(tr))
    {
    }

    const TraceMeta &meta() const override { return meta_; }

    bool
    next(Operation &op) override
    {
        if (pos_ >= trace_.numOps())
            return false;
        op = trace_.op(pos_++);
        return true;
    }

    std::uint64_t
    containerBytes() const override
    {
        return trace_.ops().capacity() * sizeof(Operation);
    }

    /** Restart from the first operation (cheap for replays). */
    void rewind() { pos_ = 0; }

  private:
    const Trace &trace_;
    TraceMeta meta_;
    OpId pos_ = 0;
};

} // namespace asyncclock::trace

#endif // ASYNCCLOCK_TRACE_SOURCE_HH
