/**
 * @file
 * Trace operations and event send attributes (paper section 2.2), plus
 * the priority function of Table 1 (section 5.1).
 */

#ifndef ASYNCCLOCK_TRACE_OP_HH
#define ASYNCCLOCK_TRACE_OP_HH

#include <cstdint>

#include "trace/ids.hh"

namespace asyncclock::trace {

/**
 * Queueing policy of a sent event (section 5.1). Plain FIFO events are
 * Delayed events with zero delay, exactly as the paper treats them.
 */
enum class SendKind : std::uint8_t {
    Delayed,    ///< Dequeued after a delay (delay 0 == plain FIFO).
    AtTime,     ///< Dequeued at an absolute time.
    AtFront,    ///< Enqueued at the front of the queue.
};

/**
 * Send attributes: queueing policy, the async flag (Android
 * setAsynchronous(true) messages jump sync barriers), and the time
 * constraint Table 1 compares. For Delayed events `time` is the
 * *delay* (plain FIFO posts are Delayed with zero delay); for AtTime
 * it is the requested absolute dispatch time; AtFront ignores it.
 */
struct SendAttrs
{
    SendKind kind = SendKind::Delayed;
    bool async = false;
    std::uint64_t time = 0;

    bool operator==(const SendAttrs &other) const = default;
};

/**
 * Priority class index for the 6 rows/columns of Table 1:
 * 0 Delayed+Async, 1 Delayed+Sync, 2 AtTime+Async, 3 AtTime+Sync,
 * 4 AtFront+Async, 5 AtFront+Sync.
 */
constexpr unsigned kNumPriorityClasses = 6;

inline unsigned
priorityClass(const SendAttrs &attrs)
{
    unsigned base = attrs.kind == SendKind::Delayed ? 0
                  : attrs.kind == SendKind::AtTime ? 2 : 4;
    return base + (attrs.async ? 0 : 1);
}

/**
 * Table 1: does event E1 (attrs @p e1) causally precede event E2
 * (attrs @p e2) given their sends are causally ordered send(E1) <
 * send(E2)? This is the `priority` function of Rule PRIORITY.
 */
inline bool
priorityOrders(const SendAttrs &e1, const SendAttrs &e2)
{
    switch (e1.kind) {
      case SendKind::Delayed:
        if (e2.kind != SendKind::Delayed)
            return false;
        // Sync never precedes Async (async messages can jump a sync
        // barrier); otherwise the time constraints must be ordered.
        if (!e1.async && e2.async)
            return false;
        return e1.time <= e2.time;
      case SendKind::AtTime:
        if (e2.kind != SendKind::AtTime)
            return false;
        if (!e1.async && e2.async)
            return false;
        return e1.time <= e2.time;
      case SendKind::AtFront:
        if (e2.kind == SendKind::AtFront)
            return false;
        // AtFront+Async precedes everything else; AtFront+Sync only
        // precedes Sync events.
        return e1.async || !e2.async;
    }
    return false;
}

/**
 * Trace operation kinds. The first twelve are the looper dialect of
 * paper section 2.2; the last four belong to the async/await dialect
 * (spawn/await/finish-scope/cancellation over structured-concurrency
 * task graphs). A trace's Dialect says which vocabulary it uses; the
 * two never mix within one trace.
 */
enum class OpKind : std::uint8_t {
    ThreadBegin,    ///< begin(T)
    ThreadEnd,      ///< end(T)
    EventBegin,     ///< begin(E) — async dialect: task E starts running
    EventEnd,       ///< end(E) — async dialect: task E finishes
    Read,           ///< rd(S, x)
    Write,          ///< wr(S, x)
    Fork,           ///< fork(S, T)
    Join,           ///< join(S, T)
    Signal,         ///< signal(S, m)
    Wait,           ///< wait(S, m)
    Send,           ///< send(S, q, E)
    RemoveEvent,    ///< programmer removed E from its queue (sec. 5.3)
    // ----- async/await dialect only -------------------------------
    TaskSpawn,      ///< S spawns task E into scope h
    TaskAwait,      ///< S awaits finished/cancelled task E
    ScopeEnd,       ///< S closes scope h (all member tasks settled)
    TaskCancel,     ///< S cancels pending task E
};

/** Short mnemonic for an OpKind, used by the text serializer. */
const char *opKindName(OpKind kind);

/**
 * One trace operation. The meaning of the payload fields depends on
 * the kind:
 *  - ThreadBegin/ThreadEnd: task names the thread, payload unused.
 *  - EventBegin/EventEnd: task names the event, payload unused.
 *  - Read/Write: `target` is the VarId, `site` the source site.
 *  - Fork/Join: `target` is the child ThreadId.
 *  - Signal/Wait: `target` is the HandleId.
 *  - Send: `target` is the QueueId, `event` the sent EventId, `attrs`
 *    the queueing attributes.
 *  - RemoveEvent: `event` is the removed EventId.
 *  - TaskSpawn: `event` is the spawned child task, `target` the
 *    HandleId of the scope it belongs to.
 *  - TaskAwait/TaskCancel: `event` is the awaited/cancelled task.
 *  - ScopeEnd: `target` is the HandleId of the closed scope.
 */
struct Operation
{
    OpKind kind{};
    Task task{};
    std::uint32_t target = kInvalidId;
    EventId event = kInvalidId;
    SiteId site = kInvalidId;
    SendAttrs attrs{};
    /** Virtual timestamp (ms) — drives AtTime semantics and the
     * time-window approximation. Non-decreasing along the trace. */
    std::uint64_t vtime = 0;
};

} // namespace asyncclock::trace

#endif // ASYNCCLOCK_TRACE_OP_HH
