#include "trace/trace.hh"

#include <algorithm>
#include <map>

#include "support/format.hh"
#include "support/logging.hh"

namespace asyncclock::trace {

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::ThreadBegin: return "tbegin";
      case OpKind::ThreadEnd: return "tend";
      case OpKind::EventBegin: return "ebegin";
      case OpKind::EventEnd: return "eend";
      case OpKind::Read: return "rd";
      case OpKind::Write: return "wr";
      case OpKind::Fork: return "fork";
      case OpKind::Join: return "join";
      case OpKind::Signal: return "signal";
      case OpKind::Wait: return "wait";
      case OpKind::Send: return "send";
      case OpKind::RemoveEvent: return "remove";
      case OpKind::TaskSpawn: return "spawn";
      case OpKind::TaskAwait: return "await";
      case OpKind::ScopeEnd: return "scopeend";
      case OpKind::TaskCancel: return "cancel";
    }
    return "?";
}

const char *
dialectName(Dialect d)
{
    switch (d) {
      case Dialect::Looper: return "looper";
      case Dialect::Async: return "async";
    }
    return "?";
}

const char *
seedLabelName(SeedLabel label)
{
    switch (label) {
      case SeedLabel::None: return "none";
      case SeedLabel::Harmful: return "harmful";
      case SeedLabel::HarmlessTypeI: return "type-I";
      case SeedLabel::HarmlessTypeII: return "type-II";
      case SeedLabel::HarmlessCommutative: return "commutative";
      case SeedLabel::HarmlessOther: return "harmless-other";
    }
    return "?";
}

ThreadId
Trace::addThread(ThreadKind kind, std::string name, QueueId queue)
{
    threads_.push_back({kind, queue, std::move(name)});
    return static_cast<ThreadId>(threads_.size() - 1);
}

QueueId
Trace::addQueue(QueueKind kind, std::string name)
{
    queues_.push_back({kind, kInvalidId, std::move(name)});
    return static_cast<QueueId>(queues_.size() - 1);
}

EventId
Trace::addEvent()
{
    events_.push_back({});
    return static_cast<EventId>(events_.size() - 1);
}

VarId
Trace::addVar(std::string name, SeedLabel label)
{
    vars_.push_back({std::move(name), label});
    return static_cast<VarId>(vars_.size() - 1);
}

HandleId
Trace::addHandle(std::string name)
{
    handles_.push_back({std::move(name)});
    return static_cast<HandleId>(handles_.size() - 1);
}

SiteId
Trace::addSite(std::string name, Frame frame, std::uint32_t commGroup)
{
    sites_.push_back({std::move(name), frame, commGroup});
    return static_cast<SiteId>(sites_.size() - 1);
}

void
Trace::bindLooper(QueueId queue, ThreadId looper)
{
    queues_[queue].looper = looper;
    threads_[looper].queue = queue;
}

OpId
Trace::append(const Operation &op)
{
    OpId id = static_cast<OpId>(ops_.size());
    switch (op.kind) {
      case OpKind::Send:
        {
            EventInfo &ev = events_[op.event];
            ev.queue = op.target;
            ev.attrs = op.attrs;
            ev.sender = op.task;
            ev.sendOp = id;
        }
        break;
      case OpKind::EventBegin:
        {
            EventInfo &ev = events_[op.task.index()];
            ev.executor = op.target;
            ev.beginOp = id;
        }
        break;
      case OpKind::EventEnd:
        events_[op.task.index()].endOp = id;
        break;
      case OpKind::RemoveEvent:
        events_[op.event].removeOp = id;
        break;
      case OpKind::TaskSpawn:
        {
            EventInfo &ev = events_[op.event];
            ev.sender = op.task;
            ev.scope = op.target;
            ev.sendOp = id;
        }
        break;
      case OpKind::TaskCancel:
        events_[op.event].removeOp = id;
        break;
      default:
        break;
    }
    ops_.push_back(op);
    return id;
}

OpId
Trace::threadBegin(ThreadId t, std::uint64_t vtime)
{
    Operation op;
    op.kind = OpKind::ThreadBegin;
    op.task = Task::thread(t);
    op.vtime = vtime;
    return append(op);
}

OpId
Trace::threadEnd(ThreadId t, std::uint64_t vtime)
{
    Operation op;
    op.kind = OpKind::ThreadEnd;
    op.task = Task::thread(t);
    op.vtime = vtime;
    return append(op);
}

OpId
Trace::eventBegin(EventId e, ThreadId executor, std::uint64_t vtime)
{
    Operation op;
    op.kind = OpKind::EventBegin;
    op.task = Task::event(e);
    op.target = executor;
    op.vtime = vtime;
    return append(op);
}

OpId
Trace::eventEnd(EventId e, std::uint64_t vtime)
{
    Operation op;
    op.kind = OpKind::EventEnd;
    op.task = Task::event(e);
    op.vtime = vtime;
    return append(op);
}

OpId
Trace::read(Task task, VarId var, SiteId site, std::uint64_t vtime)
{
    Operation op;
    op.kind = OpKind::Read;
    op.task = task;
    op.target = var;
    op.site = site;
    op.vtime = vtime;
    return append(op);
}

OpId
Trace::write(Task task, VarId var, SiteId site, std::uint64_t vtime)
{
    Operation op;
    op.kind = OpKind::Write;
    op.task = task;
    op.target = var;
    op.site = site;
    op.vtime = vtime;
    return append(op);
}

OpId
Trace::fork(Task task, ThreadId child, std::uint64_t vtime)
{
    Operation op;
    op.kind = OpKind::Fork;
    op.task = task;
    op.target = child;
    op.vtime = vtime;
    return append(op);
}

OpId
Trace::join(Task task, ThreadId child, std::uint64_t vtime)
{
    Operation op;
    op.kind = OpKind::Join;
    op.task = task;
    op.target = child;
    op.vtime = vtime;
    return append(op);
}

OpId
Trace::signal(Task task, HandleId handle, std::uint64_t vtime)
{
    Operation op;
    op.kind = OpKind::Signal;
    op.task = task;
    op.target = handle;
    op.vtime = vtime;
    return append(op);
}

OpId
Trace::wait(Task task, HandleId handle, std::uint64_t vtime)
{
    Operation op;
    op.kind = OpKind::Wait;
    op.task = task;
    op.target = handle;
    op.vtime = vtime;
    return append(op);
}

OpId
Trace::send(Task task, QueueId queue, EventId event,
            const SendAttrs &attrs, std::uint64_t vtime)
{
    Operation op;
    op.kind = OpKind::Send;
    op.task = task;
    op.target = queue;
    op.event = event;
    op.attrs = attrs;
    op.vtime = vtime;
    return append(op);
}

OpId
Trace::removeEvent(Task task, EventId event, std::uint64_t vtime)
{
    Operation op;
    op.kind = OpKind::RemoveEvent;
    op.task = task;
    op.event = event;
    op.vtime = vtime;
    return append(op);
}

OpId
Trace::taskSpawn(Task task, EventId child, HandleId scope,
                 std::uint64_t vtime)
{
    Operation op;
    op.kind = OpKind::TaskSpawn;
    op.task = task;
    op.target = scope;
    op.event = child;
    op.vtime = vtime;
    return append(op);
}

OpId
Trace::taskAwait(Task task, EventId child, std::uint64_t vtime)
{
    Operation op;
    op.kind = OpKind::TaskAwait;
    op.task = task;
    op.event = child;
    op.vtime = vtime;
    return append(op);
}

OpId
Trace::scopeEnd(Task task, HandleId scope, std::uint64_t vtime)
{
    Operation op;
    op.kind = OpKind::ScopeEnd;
    op.task = task;
    op.target = scope;
    op.vtime = vtime;
    return append(op);
}

OpId
Trace::taskCancel(Task task, EventId child, std::uint64_t vtime)
{
    Operation op;
    op.kind = OpKind::TaskCancel;
    op.task = task;
    op.event = child;
    op.vtime = vtime;
    return append(op);
}

ThreadId
Trace::looperOf(EventId e) const
{
    const EventInfo &ev = events_[e];
    if (ev.queue == kInvalidId)
        return kInvalidId;
    const QueueInfo &q = queues_[ev.queue];
    return q.kind == QueueKind::Looper ? q.looper : kInvalidId;
}

TraceStats
Trace::stats() const
{
    TraceStats s;
    s.ops = ops_.size();
    for (const auto &op : ops_) {
        switch (op.kind) {
          case OpKind::Read:
          case OpKind::Write:
            ++s.memOps;
            break;
          case OpKind::Fork:
          case OpKind::Join:
          case OpKind::Signal:
          case OpKind::Wait:
          case OpKind::Send:
          case OpKind::TaskSpawn:
          case OpKind::TaskAwait:
          case OpKind::ScopeEnd:
          case OpKind::TaskCancel:
            ++s.syncOps;
            break;
          default:
            break;
        }
    }
    for (const auto &t : threads_) {
        switch (t.kind) {
          case ThreadKind::Worker: ++s.workerThreads; break;
          case ThreadKind::Looper: ++s.looperThreads; break;
          case ThreadKind::Binder: ++s.binderThreads; break;
        }
    }
    for (const auto &e : events_) {
        if (e.queue == kInvalidId)
            continue;
        if (e.removeOp != kInvalidId)
            ++s.removedEvents;
        else if (queues_[e.queue].kind == QueueKind::Looper)
            ++s.looperEvents;
        else
            ++s.binderEvents;
    }
    if (!ops_.empty())
        s.spanMs = ops_.back().vtime - ops_.front().vtime;
    return s;
}

std::string
TraceStats::summary() const
{
    return strf("ops=%llu (sync=%llu mem=%llu) threads(w/l/b)=%llu/%llu/"
                "%llu events(looper/binder/removed)=%llu/%llu/%llu "
                "span=%llums",
                (unsigned long long)ops, (unsigned long long)syncOps,
                (unsigned long long)memOps,
                (unsigned long long)workerThreads,
                (unsigned long long)looperThreads,
                (unsigned long long)binderThreads,
                (unsigned long long)looperEvents,
                (unsigned long long)binderEvents,
                (unsigned long long)removedEvents,
                (unsigned long long)spanMs);
}

namespace {

/** Task lifecycle states used by the validator. */
enum class LiveState { NotStarted, Running, Finished };

/**
 * Async-dialect well-formedness: the structured-concurrency rules the
 * AsyncTaskModel relies on. A task (event) is spawned exactly once
 * into a scope, begins only after its spawn, is cancelled only while
 * pending, is awaited only once settled (finished or cancelled), and
 * a scope closes only when every member task has settled.
 */
std::string
validateAsync(const Trace &tr)
{
    const auto &events = tr.events();
    const auto &threads = tr.threads();
    const auto &handles = tr.handles();
    std::vector<LiveState> threadState(threads.size(),
                                       LiveState::NotStarted);
    std::vector<LiveState> taskState(events.size(),
                                     LiveState::NotStarted);
    std::vector<bool> spawned(events.size(), false);
    std::vector<bool> cancelled(events.size(), false);
    std::vector<HandleId> scopeOf(events.size(), kInvalidId);
    std::vector<std::uint64_t> handleSignals(handles.size(), 0);
    std::vector<std::uint64_t> scopeOpen(handles.size(), 0);

    std::uint64_t lastVtime = 0;
    const auto &ops = tr.ops();
    for (OpId i = 0; i < ops.size(); ++i) {
        const Operation &op = ops[i];
        if (op.vtime < lastVtime)
            return strf("op %u: vtime decreases", i);
        lastVtime = op.vtime;

        if (op.task.isEvent()) {
            if (op.task.index() >= events.size())
                return strf("op %u: bad task id", i);
        } else {
            if (op.task.index() >= threads.size())
                return strf("op %u: bad thread id", i);
        }

        const bool isBegin = op.kind == OpKind::ThreadBegin ||
                             op.kind == OpKind::EventBegin;
        if (!isBegin) {
            if (op.task.isEvent()) {
                if (taskState[op.task.index()] != LiveState::Running)
                    return strf("op %u: task %u not running", i,
                                op.task.index());
            } else {
                if (threadState[op.task.index()] != LiveState::Running)
                    return strf("op %u: thread %u not running", i,
                                op.task.index());
            }
        }

        switch (op.kind) {
          case OpKind::ThreadBegin:
            if (threadState[op.task.index()] != LiveState::NotStarted)
                return strf("op %u: double thread begin", i);
            threadState[op.task.index()] = LiveState::Running;
            break;
          case OpKind::ThreadEnd:
            threadState[op.task.index()] = LiveState::Finished;
            break;
          case OpKind::EventBegin:
            {
                EventId e = op.task.index();
                if (taskState[e] != LiveState::NotStarted)
                    return strf("op %u: double task begin", i);
                if (!spawned[e])
                    return strf("op %u: task %u begins unspawned", i,
                                e);
                if (cancelled[e])
                    return strf("op %u: cancelled task %u begins", i,
                                e);
                taskState[e] = LiveState::Running;
                ThreadId exec = op.target;
                if (exec >= threads.size())
                    return strf("op %u: bad executor thread", i);
                if (threadState[exec] != LiveState::Running)
                    return strf("op %u: executor not running", i);
            }
            break;
          case OpKind::EventEnd:
            {
                EventId e = op.task.index();
                taskState[e] = LiveState::Finished;
                if (scopeOf[e] != kInvalidId)
                    --scopeOpen[scopeOf[e]];
            }
            break;
          case OpKind::Read:
          case OpKind::Write:
            if (op.target >= tr.vars().size())
                return strf("op %u: bad var id", i);
            if (op.site != kInvalidId && op.site >= tr.sites().size())
                return strf("op %u: bad site id", i);
            break;
          case OpKind::Fork:
            if (op.target >= threads.size())
                return strf("op %u: bad forked thread", i);
            if (threadState[op.target] != LiveState::NotStarted)
                return strf("op %u: forked thread already started", i);
            break;
          case OpKind::Join:
            if (op.target >= threads.size())
                return strf("op %u: bad joined thread", i);
            if (threadState[op.target] != LiveState::Finished)
                return strf("op %u: join before thread end", i);
            break;
          case OpKind::Signal:
            if (op.target >= handles.size())
                return strf("op %u: bad handle", i);
            ++handleSignals[op.target];
            break;
          case OpKind::Wait:
            if (op.target >= handles.size())
                return strf("op %u: bad handle", i);
            if (handleSignals[op.target] == 0)
                return strf("op %u: wait before any signal", i);
            break;
          case OpKind::TaskSpawn:
            {
                if (op.event >= events.size())
                    return strf("op %u: spawn of bad task", i);
                if (op.target >= handles.size())
                    return strf("op %u: spawn into bad scope", i);
                if (spawned[op.event])
                    return strf("op %u: task %u spawned twice", i,
                                op.event);
                spawned[op.event] = true;
                scopeOf[op.event] = op.target;
                ++scopeOpen[op.target];
            }
            break;
          case OpKind::TaskAwait:
            {
                if (op.event >= events.size())
                    return strf("op %u: await of bad task", i);
                if (!spawned[op.event])
                    return strf("op %u: await of unspawned task", i);
                if (taskState[op.event] != LiveState::Finished &&
                    !cancelled[op.event]) {
                    return strf("op %u: await before task %u settles",
                                i, op.event);
                }
            }
            break;
          case OpKind::ScopeEnd:
            if (op.target >= handles.size())
                return strf("op %u: close of bad scope", i);
            if (scopeOpen[op.target] != 0)
                return strf("op %u: scope %u closes with %llu open "
                            "task(s)",
                            i, op.target,
                            (unsigned long long)scopeOpen[op.target]);
            break;
          case OpKind::TaskCancel:
            {
                if (op.event >= events.size())
                    return strf("op %u: cancel of bad task", i);
                if (!spawned[op.event])
                    return strf("op %u: cancel of unspawned task", i);
                if (taskState[op.event] != LiveState::NotStarted)
                    return strf("op %u: cancel of started task", i);
                if (cancelled[op.event])
                    return strf("op %u: task %u cancelled twice", i,
                                op.event);
                cancelled[op.event] = true;
                --scopeOpen[scopeOf[op.event]];
            }
            break;
          case OpKind::Send:
          case OpKind::RemoveEvent:
            return strf("op %u: looper-dialect op in async trace", i);
        }
    }
    return "";
}

} // namespace

std::string
Trace::validate(bool full) const
{
    if (dialect_ == Dialect::Async)
        return validateAsync(*this);
    // --- id ranges, vtime monotonicity, lifecycle -------------------
    std::vector<LiveState> threadState(threads_.size(),
                                       LiveState::NotStarted);
    std::vector<LiveState> eventState(events_.size(),
                                      LiveState::NotStarted);
    std::vector<bool> eventSent(events_.size(), false);
    std::vector<bool> eventRemoved(events_.size(), false);
    std::vector<std::uint64_t> handleSignals(handles_.size(), 0);
    // Currently running event on each looper thread (atomicity check).
    std::vector<EventId> looperRunning(threads_.size(), kInvalidId);

    std::uint64_t lastVtime = 0;
    for (OpId i = 0; i < ops_.size(); ++i) {
        const Operation &op = ops_[i];
        if (op.vtime < lastVtime)
            return strf("op %u: vtime decreases", i);
        lastVtime = op.vtime;

        // Task id in range and alive for non-begin ops.
        if (op.task.isEvent()) {
            if (op.task.index() >= events_.size())
                return strf("op %u: bad event id", i);
        } else {
            if (op.task.index() >= threads_.size())
                return strf("op %u: bad thread id", i);
        }

        const bool isBegin = op.kind == OpKind::ThreadBegin ||
                             op.kind == OpKind::EventBegin;
        if (!isBegin) {
            if (op.task.isEvent()) {
                if (eventState[op.task.index()] != LiveState::Running)
                    return strf("op %u: event %u not running", i,
                                op.task.index());
            } else {
                if (threadState[op.task.index()] != LiveState::Running)
                    return strf("op %u: thread %u not running", i,
                                op.task.index());
            }
        }

        switch (op.kind) {
          case OpKind::ThreadBegin:
            if (threadState[op.task.index()] != LiveState::NotStarted)
                return strf("op %u: double thread begin", i);
            threadState[op.task.index()] = LiveState::Running;
            break;
          case OpKind::ThreadEnd:
            threadState[op.task.index()] = LiveState::Finished;
            break;
          case OpKind::EventBegin:
            {
                EventId e = op.task.index();
                if (eventState[e] != LiveState::NotStarted)
                    return strf("op %u: double event begin", i);
                if (!eventSent[e])
                    return strf("op %u: event %u begins unsent", i, e);
                if (eventRemoved[e])
                    return strf("op %u: removed event %u begins", i, e);
                eventState[e] = LiveState::Running;
                ThreadId exec = op.target;
                if (exec >= threads_.size())
                    return strf("op %u: bad executor thread", i);
                if (threadState[exec] != LiveState::Running)
                    return strf("op %u: executor not running", i);
                const QueueInfo &q = queues_[events_[e].queue];
                if (q.kind == QueueKind::Looper) {
                    if (q.looper != exec)
                        return strf("op %u: event %u on wrong looper",
                                    i, e);
                    if (looperRunning[exec] != kInvalidId)
                        return strf("op %u: looper %u events overlap",
                                    i, exec);
                    looperRunning[exec] = e;
                } else if (threads_[exec].kind != ThreadKind::Binder ||
                           threads_[exec].queue != events_[e].queue) {
                    return strf("op %u: binder event on wrong thread",
                                i);
                }
            }
            break;
          case OpKind::EventEnd:
            {
                EventId e = op.task.index();
                eventState[e] = LiveState::Finished;
                ThreadId exec = events_[e].executor;
                if (exec < threads_.size() && looperRunning[exec] == e)
                    looperRunning[exec] = kInvalidId;
            }
            break;
          case OpKind::Read:
          case OpKind::Write:
            if (op.target >= vars_.size())
                return strf("op %u: bad var id", i);
            if (op.site != kInvalidId && op.site >= sites_.size())
                return strf("op %u: bad site id", i);
            break;
          case OpKind::Fork:
            if (op.target >= threads_.size())
                return strf("op %u: bad forked thread", i);
            if (threadState[op.target] != LiveState::NotStarted)
                return strf("op %u: forked thread already started", i);
            break;
          case OpKind::Join:
            if (op.target >= threads_.size())
                return strf("op %u: bad joined thread", i);
            if (threadState[op.target] != LiveState::Finished)
                return strf("op %u: join before thread end", i);
            break;
          case OpKind::Signal:
            if (op.target >= handles_.size())
                return strf("op %u: bad handle", i);
            ++handleSignals[op.target];
            break;
          case OpKind::Wait:
            if (op.target >= handles_.size())
                return strf("op %u: bad handle", i);
            if (handleSignals[op.target] == 0)
                return strf("op %u: wait before any signal", i);
            break;
          case OpKind::Send:
            {
                if (op.target >= queues_.size())
                    return strf("op %u: send to bad queue", i);
                if (op.event >= events_.size())
                    return strf("op %u: send of bad event", i);
                if (eventSent[op.event])
                    return strf("op %u: event %u sent twice", i,
                                op.event);
                eventSent[op.event] = true;
            }
            break;
          case OpKind::RemoveEvent:
            {
                if (op.event >= events_.size())
                    return strf("op %u: remove of bad event", i);
                if (!eventSent[op.event])
                    return strf("op %u: remove of unsent event", i);
                if (eventState[op.event] != LiveState::NotStarted)
                    return strf("op %u: remove of started event", i);
                eventRemoved[op.event] = true;
            }
            break;
          case OpKind::TaskSpawn:
          case OpKind::TaskAwait:
          case OpKind::ScopeEnd:
          case OpKind::TaskCancel:
            return strf("op %u: async-dialect op in looper trace", i);
        }
    }

    if (!full)
        return "";

    // --- dispatch-order guarantees the causality model relies on ----
    // Group events per queue in send order.
    std::vector<std::vector<EventId>> byQueue(queues_.size());
    std::vector<std::pair<OpId, EventId>> sends;
    for (EventId e = 0; e < events_.size(); ++e) {
        if (events_[e].sendOp != kInvalidId)
            sends.emplace_back(events_[e].sendOp, e);
    }
    std::sort(sends.begin(), sends.end());
    for (auto &[opId, e] : sends)
        byQueue[events_[e].queue].push_back(e);

    for (QueueId q = 0; q < queues_.size(); ++q) {
        const auto &evs = byQueue[q];
        const bool looper = queues_[q].kind == QueueKind::Looper;
        for (size_t a = 0; a < evs.size(); ++a) {
            const EventInfo &e1 = events_[evs[a]];
            if (e1.removeOp != kInvalidId)
                continue;
            for (size_t b = a + 1; b < evs.size(); ++b) {
                const EventInfo &e2 = events_[evs[b]];
                if (e2.removeOp != kInvalidId)
                    continue;
                if (looper) {
                    // Rule PRIORITY's operational premise: send order
                    // (here trace order, implied by any causal order)
                    // plus the priority function means dispatch order.
                    if (priorityOrders(e1.attrs, e2.attrs) &&
                        e2.beginOp != kInvalidId &&
                        !(e1.endOp != kInvalidId &&
                          e1.endOp < e2.beginOp)) {
                        return strf("queue %u: events %u,%u dispatched "
                                    "against priority order", q,
                                    evs[a], evs[b]);
                    }
                } else {
                    // Binder queues dequeue FIFO: begins follow sends.
                    if (e1.beginOp != kInvalidId &&
                        e2.beginOp != kInvalidId &&
                        e1.beginOp > e2.beginOp) {
                        return strf("binder queue %u: events %u,%u "
                                    "begin out of order", q, evs[a],
                                    evs[b]);
                    }
                }
            }
        }
    }
    return "";
}

} // namespace asyncclock::trace
