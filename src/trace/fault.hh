/**
 * @file
 * Deterministic fault injection for the trace pipeline.
 *
 * Robustness claims are only as good as the faults they were tested
 * against, so every fault class the checking pipeline must survive is
 * injectable on demand, reproducibly from a seed:
 *
 *  - byte level (FaultyStreamBuf, wrapping any istream): truncation
 *    at a byte offset, per-byte bit flips, short reads, periodic
 *    stalls — the things a flaky filesystem or a crashed recorder
 *    produce;
 *  - operation level (FaultInjectingSource, wrapping any
 *    TraceSource): duplicated, reordered, and dropped operations —
 *    the things a buggy recorder produces, exercising the detector's
 *    protocol-violation gate;
 *  - shard level (report::ShardFaults in sharded.hh): worker stalls
 *    and poisoned batches, exercising the watchdog.
 *
 * The same FaultConfig drives tests and `trace_analyzer --inject`;
 * parseFaultSpec() turns the CLI's "flip=1e-4,seed=7" syntax into a
 * config. All randomness flows through support/rng.hh, so a (spec,
 * trace) pair replays bit-identically on any platform.
 */

#ifndef ASYNCCLOCK_TRACE_FAULT_HH
#define ASYNCCLOCK_TRACE_FAULT_HH

#include <cstdint>
#include <memory>
#include <streambuf>
#include <string>

#include "support/rng.hh"
#include "support/status.hh"
#include "trace/source.hh"

namespace asyncclock::trace {

/** Which faults to inject, and where. Defaults inject nothing. */
struct FaultConfig
{
    static constexpr unsigned kNoShard = ~0u;

    std::uint64_t seed = 1;

    // ----- byte level (FaultyStreamBuf) -----------------------------
    /** Report EOF after this many bytes (0 = off). */
    std::uint64_t truncateAfterBytes = 0;
    /** Per-byte probability of flipping one random bit. */
    double bitFlipRate = 0.0;
    /** Probability that a refill returns far fewer bytes than asked
     * (exercises resume-after-partial-read paths). */
    double shortReadRate = 0.0;
    /** Sleep stallMicros every stallEveryBytes bytes (0 = off). */
    std::uint64_t stallEveryBytes = 0;
    std::uint64_t stallMicros = 0;

    // ----- operation level (FaultInjectingSource) -------------------
    /** Probability of delivering an operation twice. */
    double dupRate = 0.0;
    /** Probability of swapping an operation with its successor. */
    double reorderRate = 0.0;
    /** Probability of dropping an operation. */
    double dropRate = 0.0;

    // ----- shard level (mapped into report::ShardFaults) ------------
    /** Worker of this shard sleeps shardStallMs per batch. */
    unsigned stallShard = kNoShard;
    std::uint64_t shardStallMs = 0;
    /** Worker of this shard dies on its first batch. */
    unsigned poisonShard = kNoShard;

    // ----- session level (daemon clients; see ci/daemon_soak.sh) ----
    /** Client drops the connection mid-body on this 1-based ingest
     * chunk (0 = off): the daemon must keep the session live with the
     * bytes it has and accept a retransmit from the spooled offset. */
    std::uint64_t sessDisconnectAtChunk = 0;
    /** Client re-sends the session create on this 1-based chunk
     * (0 = off): the daemon must answer 409 for a duplicate id
     * without disturbing the existing session. */
    std::uint64_t sessDupCreateAt = 0;
    /** Client switches trace dialect mid-stream on this 1-based chunk
     * (0 = off): bytes from the *other* dialect are interleaved into
     * the ingest, which must quarantine only this session. */
    std::uint64_t sessInterleaveAtChunk = 0;

    bool
    anyByteFaults() const
    {
        return truncateAfterBytes > 0 || bitFlipRate > 0 ||
               shortReadRate > 0 || stallEveryBytes > 0;
    }
    bool
    anyOpFaults() const
    {
        return dupRate > 0 || reorderRate > 0 || dropRate > 0;
    }
    bool
    anySessionFaults() const
    {
        return sessDisconnectAtChunk > 0 || sessDupCreateAt > 0 ||
               sessInterleaveAtChunk > 0;
    }
};

/**
 * Parse a fault spec: comma-separated key=value pairs.
 *   seed=N            RNG seed (default 1)
 *   truncate=N        EOF after N bytes
 *   flip=RATE         per-byte bit-flip probability
 *   shortread=RATE    short-read probability
 *   stall=US@BYTES    sleep US microseconds every BYTES bytes
 *   dup=RATE          duplicate-op probability
 *   reorder=RATE      swap-with-successor probability
 *   drop=RATE         drop-op probability
 *   shard-stall=S:MS  shard S's worker sleeps MS ms per batch
 *   poison=S          shard S's worker dies on its first batch
 *   sess-disconnect=N client disconnects mid-body on ingest chunk N
 *   sess-dup=N        client re-creates its session id on chunk N
 *   sess-interleave=N client mixes the other dialect in on chunk N
 */
Expected<FaultConfig> parseFaultSpec(const std::string &spec);

/** One-line-per-key usage text for parseFaultSpec (CLI help). */
const char *faultSpecHelp();

/**
 * A streambuf over an underlying istream that injects byte-level
 * faults on refill. Wrap it in an std::istream and hand that to any
 * trace reader; the reader sees truncation/corruption exactly as if
 * the file on disk were damaged.
 */
class FaultyStreamBuf : public std::streambuf
{
  public:
    FaultyStreamBuf(std::istream &under, const FaultConfig &cfg);

    /** Bytes delivered downstream so far. */
    std::uint64_t bytesDelivered() const { return pos_; }
    /** Bits flipped so far. */
    std::uint64_t bitsFlipped() const { return flips_; }

  protected:
    int_type underflow() override;
    /** tellg() support: the decoder's error offsets must point into
     * the *faulted* byte stream. Only the zero-offset current-position
     * query is answerable; real seeks fail. */
    pos_type seekoff(off_type off, std::ios_base::seekdir dir,
                     std::ios_base::openmode which) override;

  private:
    static constexpr std::size_t kBufSize = 4096;

    std::istream &under_;
    FaultConfig cfg_;
    Rng rng_;
    std::uint64_t pos_ = 0;
    std::uint64_t flips_ = 0;
    std::uint64_t nextStallAt_ = 0;
    char buf_[kBufSize];
};

/**
 * TraceSource wrapper injecting operation-level faults: duplicates,
 * adjacent reorders, drops. Entity metadata passes through untouched
 * (meta() forwards), so the injected stream is exactly a recorder
 * that emits the right tables but mangles the op sequence — the case
 * the detector's protocol gate must absorb.
 */
class FaultInjectingSource : public TraceSource
{
  public:
    /** @p inner must outlive this source. */
    FaultInjectingSource(TraceSource &inner, const FaultConfig &cfg);

    const TraceMeta &meta() const override { return inner_.meta(); }
    bool next(Operation &op) override;
    bool ok() const override { return inner_.ok(); }
    const std::string &error() const override
    {
        return inner_.error();
    }
    Status status() const override { return inner_.status(); }
    std::uint64_t recordsSkipped() const override
    {
        return inner_.recordsSkipped();
    }
    std::uint64_t containerBytes() const override
    {
        return inner_.containerBytes();
    }

    std::uint64_t opsDuplicated() const { return dups_; }
    std::uint64_t opsReordered() const { return reorders_; }
    std::uint64_t opsDropped() const { return drops_; }

  private:
    TraceSource &inner_;
    FaultConfig cfg_;
    Rng rng_;
    Operation held_{};    ///< reorder: op displaced by its successor
    bool haveHeld_ = false;
    Operation dupOp_{};   ///< duplicate queued for redelivery
    bool haveDup_ = false;
    std::uint64_t dups_ = 0;
    std::uint64_t reorders_ = 0;
    std::uint64_t drops_ = 0;
};

/**
 * Everything openFaultyTraceSource() allocates, kept alive together:
 * the file stream, the fault-injecting buffer layered over it, and
 * the source chain. `source` is what the detector consumes.
 */
struct FaultyOpenedSource
{
    std::unique_ptr<std::istream> file;
    std::unique_ptr<FaultyStreamBuf> faultBuf;
    std::unique_ptr<std::istream> faultStream;
    std::unique_ptr<TraceSource> inner;
    std::unique_ptr<TraceSource> source;
};

/**
 * Open @p path as a streaming source (format auto-detected from the
 * *un-faulted* file) with @p faults injected and @p policy as the
 * decoder's error budget.
 */
Expected<FaultyOpenedSource>
openFaultyTraceSource(const std::string &path,
                      const FaultConfig &faults,
                      SourceErrorPolicy policy = {});

} // namespace asyncclock::trace

#endif // ASYNCCLOCK_TRACE_FAULT_HH
