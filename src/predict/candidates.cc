#include "predict/candidates.hh"

namespace asyncclock::predict {

using report::Access;
using report::RaceReport;

void
CandidateWindow::onAccess(trace::VarId var, const Access &access,
                          const clock::VectorClock &vc)
{
    if (history_.size() <= var)
        history_.resize(var + 1);
    std::deque<Access> &hist = history_[var];
    for (const Access &prev : hist) {
        if (!prev.isWrite && !access.isWrite)
            continue;
        if (vc.knows(prev.epoch))
            continue;
        if (cfg_.maxCandidates != 0 &&
            candidates_.size() >= cfg_.maxCandidates) {
            ++capDrops_;
            continue;
        }
        candidates_.push_back({var, prev.op, access.op, prev.site,
                               access.site, prev.task, access.task,
                               prev.isWrite, access.isWrite});
    }
    hist.push_back(access);
    if (cfg_.window != 0 && hist.size() > cfg_.window) {
        hist.pop_front();
        ++windowDrops_;
    }
}

std::uint64_t
CandidateWindow::byteSize() const
{
    std::uint64_t total = candidates_.capacity() * sizeof(RaceReport);
    for (const auto &h : history_)
        total += h.size() * sizeof(Access);
    return total;
}

} // namespace asyncclock::predict
