/**
 * @file
 * runPrediction: the predictive race tier's soundness funnel
 * (DESIGN.md section 16).
 *
 * Pipeline: the ShbEngine enumerates weak-unordered conflicting pairs
 * into a bounded CandidateWindow; candidates the HB detector already
 * reported are set aside as *observed*; the rest are triaged into
 * classes (the same (var, site-pair) equivalence the verifier uses)
 * and every class representative is replay-verified before anything
 * reaches the report:
 *
 *  - *hidden* candidates (ordered under full HB, so invisible to the
 *    detector) replay against the weakened closure — the very
 *    ordering that says a different schedule could flip them. A
 *    queue-discipline pre-check rejects flips FIFO provably forbids
 *    (same looper queue, weak-ordered sends, Table-1-ordered
 *    priorities) as Infeasible without replaying, because the
 *    trace-level interpreter does not enforce dequeue order and would
 *    otherwise execute an impossible schedule.
 *  - *shadowed* candidates (unordered under full HB but missing from
 *    the detector's list — epoch-shadowing misses of the FastTrack
 *    state machine) replay against the full closure, exactly like
 *    --verify does for detected races.
 *
 * Only Confirmed classes count as predicted races; everything else is
 * reported with its verdict (zero unsound reports, by construction).
 *
 * Recall is scored against the weakened gold closure's race set — the
 * oracle of what *any* schedule of this trace could expose: observed
 * recall counts the detector's hits alone, combined recall adds
 * replay-confirmed predictions. Combined >= observed always; strictly
 * greater whenever prediction confirmed a pair the detector missed.
 */

#ifndef ASYNCCLOCK_PREDICT_PREDICT_HH
#define ASYNCCLOCK_PREDICT_PREDICT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.hh"
#include "predict/candidates.hh"
#include "report/triage.hh"
#include "trace/trace.hh"

namespace asyncclock::predict {

struct PredictConfig
{
    /** Candidate bounds (--predict-window /
     * --predict-max-candidates). */
    CandidateConfig bounds{};
    /** Verify at most this many predicted classes (--predict=N,
     * 0 = all); classes beyond the cap stay Unverified. */
    std::uint32_t maxClasses = 0;
    /** Refuse to build the (quadratic) closures above this many ops;
     * candidates are still enumerated but stay Unverified and recall
     * is not scored. Shares --verify-max-ops. */
    std::uint32_t maxOps = 50000;
    /** Metrics + spans (both optional). */
    obs::ObsContext obs{};
};

/** Aggregate outcome of one predictive pass. */
struct PredictSummary
{
    std::uint64_t candidates = 0;   ///< weak-unordered pairs proposed
    std::uint64_t observed = 0;     ///< already in the detector's list
    std::uint64_t hidden = 0;       ///< classes ordered under full HB
    std::uint64_t shadowed = 0;     ///< classes the detector missed
    std::uint64_t windowDrops = 0;
    std::uint64_t capDrops = 0;
    std::uint64_t malformedDropped = 0;
    std::uint64_t replays = 0;
    std::uint64_t confirmed = 0;
    std::uint64_t benign = 0;
    std::uint64_t infeasible = 0;
    std::uint64_t unverified = 0;

    /** Oracle race pairs of the weakened closure (the denominator). */
    std::uint64_t weakRaces = 0;
    std::uint64_t observedHits = 0;  ///< detected ∩ oracle
    std::uint64_t combinedHits = 0;  ///< + confirmed predicted pairs
    bool recallScored = false;
    double observedRecall = 0;
    double combinedRecall = 0;

    /** Non-empty when the pass was skipped or degraded. */
    std::vector<std::string> notes;
    /** Wall time (kept out of the verdict text so reports stay
     * byte-identical across runs and clock backends). */
    double wallSec = 0;

    /** "predict: N candidate(s) ..." one-liner (deterministic). */
    std::string summary() const;
    /** "predict recall: ..." one-liner; empty when !recallScored. */
    std::string recallLine() const;
};

/** Predicted classes (ranked, with verdicts) plus the tally. */
struct PredictResult
{
    report::TriageReport triage;
    PredictSummary summary;
};

/**
 * Run the predictive tier over the materialized trace @p tr.
 * @p detected is the HB detector's race list for the same trace (used
 * to subtract observed pairs and to score observed recall).
 */
PredictResult runPrediction(const trace::Trace &tr,
                            const std::vector<report::RaceReport> &detected,
                            const PredictConfig &cfg = {});

} // namespace asyncclock::predict

#endif // ASYNCCLOCK_PREDICT_PREDICT_HH
