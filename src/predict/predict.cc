#include "predict/predict.hh"

#include <algorithm>
#include <chrono>
#include <set>
#include <utility>

#include "core/model.hh"
#include "gold/closure.hh"
#include "predict/shb.hh"
#include "support/format.hh"
#include "verify/replay.hh"

namespace asyncclock::predict {

using report::RaceReport;
using report::ReplayVerdict;
using report::TriageClass;
using trace::EventId;
using trace::EventInfo;
using trace::kInvalidId;
using trace::Operation;
using trace::OpId;
using trace::OpKind;
using trace::QueueKind;

namespace {

/** Mirror of the verifier's substrate check: trust a candidate's op
 * ids only if every field it asserts holds in the trace we replay. */
bool
matchesSubstrate(const trace::Trace &tr, const RaceReport &r)
{
    if (r.prevOp >= tr.numOps() || r.curOp >= tr.numOps() ||
        r.prevOp >= r.curOp) {
        return false;
    }
    const Operation &prev = tr.op(r.prevOp);
    const Operation &cur = tr.op(r.curOp);
    auto accessOk = [&](const Operation &op, trace::SiteId site,
                        trace::Task task, bool isWrite) {
        return op.kind == (isWrite ? OpKind::Write : OpKind::Read) &&
               op.target == r.var && op.site == site && op.task == task;
    };
    return accessOk(prev, r.prevSite, r.prevTask, r.prevWrite) &&
           accessOk(cur, r.curSite, r.curTask, r.curWrite);
}

void
tally(PredictSummary &sum, ReplayVerdict verdict)
{
    switch (verdict) {
      case ReplayVerdict::Confirmed:  ++sum.confirmed; break;
      case ReplayVerdict::Benign:     ++sum.benign; break;
      case ReplayVerdict::Infeasible: ++sum.infeasible; break;
      case ReplayVerdict::Unverified: ++sum.unverified; break;
    }
}

/**
 * Queue-discipline pre-check for hidden candidates. The trace-level
 * interpreter does not model dequeue order, so a flip the FIFO
 * discipline forbids would happily "execute" and could confirm an
 * impossible schedule. When both accesses run in events of one
 * looper queue, the sends are ordered even under the weak relation
 * (i.e. in every execution), and Table 1 orders their dequeues, the
 * recorded order is forced — the candidate is Infeasible without
 * replaying.
 */
bool
fifoForced(const trace::Trace &tr, const gold::Closure &weak,
           const RaceReport &r, std::string &detail)
{
    const Operation &a = tr.op(r.prevOp);
    const Operation &b = tr.op(r.curOp);
    if (!a.task.isEvent() || !b.task.isEvent())
        return false;
    EventId ea = a.task.index(), eb = b.task.index();
    if (ea == eb)
        return false;
    const EventInfo &ia = tr.event(ea);
    const EventInfo &ib = tr.event(eb);
    if (ia.queue == kInvalidId || ia.queue != ib.queue)
        return false;
    if (tr.queue(ia.queue).kind != QueueKind::Looper)
        return false;
    if (ia.sendOp == kInvalidId || ib.sendOp == kInvalidId)
        return false;
    if (!weak.happensBefore(ia.sendOp, ib.sendOp))
        return false;
    if (!trace::priorityOrders(ia.attrs, ib.attrs))
        return false;
    detail = strf("queue discipline forces the recorded order: "
                  "send (op %u) precedes send (op %u) in every "
                  "schedule and Table 1 orders their dequeues",
                  ia.sendOp, ib.sendOp);
    return true;
}

} // namespace

std::string
PredictSummary::summary() const
{
    return strf("predict: %llu candidate(s) (%llu observed, "
                "%llu hidden, %llu shadowed): %llu confirmed, "
                "%llu unverified, %llu benign, %llu infeasible; "
                "drops: %llu window, %llu cap, %llu malformed",
                static_cast<unsigned long long>(candidates),
                static_cast<unsigned long long>(observed),
                static_cast<unsigned long long>(hidden),
                static_cast<unsigned long long>(shadowed),
                static_cast<unsigned long long>(confirmed),
                static_cast<unsigned long long>(unverified),
                static_cast<unsigned long long>(benign),
                static_cast<unsigned long long>(infeasible),
                static_cast<unsigned long long>(windowDrops),
                static_cast<unsigned long long>(capDrops),
                static_cast<unsigned long long>(malformedDropped));
}

std::string
PredictSummary::recallLine() const
{
    if (!recallScored)
        return {};
    return strf("predict recall: observed %llu/%llu (%.3f), "
                "predicted+observed %llu/%llu (%.3f), delta +%.3f",
                static_cast<unsigned long long>(observedHits),
                static_cast<unsigned long long>(weakRaces),
                observedRecall,
                static_cast<unsigned long long>(combinedHits),
                static_cast<unsigned long long>(weakRaces),
                combinedRecall, combinedRecall - observedRecall);
}

PredictResult
runPrediction(const trace::Trace &tr,
              const std::vector<RaceReport> &detected,
              const PredictConfig &cfg)
{
    const auto wallStart = std::chrono::steady_clock::now();
    PredictResult res;
    PredictSummary &sum = res.summary;
    obs::Tracer *tracer = cfg.obs.tracer;
    obs::MetricsRegistry *metrics = cfg.obs.metrics;

    auto finish = [&]() -> PredictResult & {
        report::rankTriage(res.triage);
        res.triage.recount();
        sum.wallSec =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wallStart)
                .count();
        if (metrics) {
            metrics->counter("predict.candidates").inc(sum.candidates);
            metrics->counter("predict.observed").inc(sum.observed);
            metrics->counter("predict.hidden").inc(sum.hidden);
            metrics->counter("predict.shadowed").inc(sum.shadowed);
            metrics->counter("predict.drops.window")
                .inc(sum.windowDrops);
            metrics->counter("predict.drops.cap").inc(sum.capDrops);
            metrics->counter("predict.drops.malformed")
                .inc(sum.malformedDropped);
            metrics->counter("predict.replays").inc(sum.replays);
            metrics->counter("predict.verdict.confirmed")
                .inc(sum.confirmed);
            metrics->counter("predict.verdict.benign").inc(sum.benign);
            metrics->counter("predict.verdict.infeasible")
                .inc(sum.infeasible);
            metrics->counter("predict.verdict.unverified")
                .inc(sum.unverified);
            metrics
                ->counter("predicted_candidates_total",
                          {{"verdict", "confirmed"}})
                .inc(sum.confirmed);
            metrics
                ->counter("predicted_candidates_total",
                          {{"verdict", "infeasible"}})
                .inc(sum.infeasible);
            metrics
                ->counter("predicted_candidates_total",
                          {{"verdict", "dropped"}})
                .inc(sum.windowDrops + sum.capDrops);
            metrics->gauge("predict.elapsed_us")
                .set(static_cast<std::int64_t>(sum.wallSec * 1e6));
        }
        return res;
    };

    // ----- weakened-ordering pass + bounded enumeration -------------
    const core::WeakOrderingSpec spec =
        core::weakOrderingFor(core::modelForDialect(tr.dialect()));
    CandidateWindow window(cfg.bounds);
    {
        obs::ScopedSpan span(tracer, obs::kMainTrack, "predict.shb");
        ShbEngine shb(tr, ShbConfig{spec});
        shb.run(window);
        sum.malformedDropped = shb.malformedDropped();
    }
    sum.windowDrops = window.windowDrops();
    sum.capDrops = window.capDrops();
    sum.candidates = window.races().size();
    if (!spec.weakerThanStrong()) {
        sum.notes.push_back(
            strf("%s model: every edge is programmatic, so the weak "
                 "ordering equals happens-before; prediction can only "
                 "surface detector misses",
                 core::modelName(core::modelForDialect(tr.dialect()))));
    }

    // ----- subtract the detector's own findings ---------------------
    std::set<std::pair<OpId, OpId>> detectedSet;
    for (const RaceReport &r : detected)
        detectedSet.emplace(r.prevOp, r.curOp);
    std::vector<RaceReport> predictedPairs;
    for (const RaceReport &r : window.races()) {
        if (detectedSet.count({r.prevOp, r.curOp}))
            ++sum.observed;
        else
            predictedPairs.push_back(r);
    }
    res.triage = report::buildTriage(predictedPairs);

    // ----- degradation: closures are quadratic ----------------------
    if (cfg.maxOps != 0 && tr.numOps() > cfg.maxOps) {
        std::string note =
            strf("trace has %u ops, above the verification cap of %u "
                 "(the closures are quadratic); all predicted classes "
                 "left UNVERIFIED and recall unscored",
                 tr.numOps(), cfg.maxOps);
        for (TriageClass &cls : res.triage.classes) {
            cls.verdict = ReplayVerdict::Unverified;
            cls.detail = "trace above --verify-max-ops cap";
            ++sum.unverified;
        }
        sum.notes.push_back(std::move(note));
        return finish();
    }

    // ----- soundness funnel -----------------------------------------
    gold::Closure strong = [&] {
        obs::ScopedSpan span(tracer, obs::kMainTrack,
                             "predict.closure.strong");
        return gold::Closure(tr);
    }();
    gold::Closure weak = [&] {
        obs::ScopedSpan span(tracer, obs::kMainTrack,
                             "predict.closure.weak");
        return gold::Closure(tr, weakGoldConfig(spec));
    }();
    verify::ReplayController strongReplay(tr, strong);
    verify::ReplayController weakReplay(tr, weak);

    std::uint32_t budget = cfg.maxClasses;
    for (TriageClass &cls : res.triage.classes) {
        if (cfg.maxClasses != 0 && budget == 0) {
            cls.verdict = ReplayVerdict::Unverified;
            cls.detail = "class budget exhausted (--predict=N)";
            tally(sum, cls.verdict);
            continue;
        }
        if (!matchesSubstrate(tr, cls.representative)) {
            cls.verdict = ReplayVerdict::Unverified;
            cls.detail = "candidate does not match the replay "
                         "substrate (stale or foreign op ids)";
            tally(sum, cls.verdict);
            continue;
        }
        if (cfg.maxClasses != 0)
            --budget;

        const RaceReport &rep = cls.representative;
        const bool hiddenClass =
            strong.happensBefore(rep.prevOp, rep.curOp) ||
            strong.happensBefore(rep.curOp, rep.prevOp);
        if (hiddenClass)
            ++sum.hidden;
        else
            ++sum.shadowed;

        std::string fifoDetail;
        if (hiddenClass && fifoForced(tr, weak, rep, fifoDetail)) {
            cls.verdict = ReplayVerdict::Infeasible;
            cls.detail = std::move(fifoDetail);
            tally(sum, cls.verdict);
            continue;
        }

        const auto t0 = std::chrono::steady_clock::now();
        verify::FlipOutcome out;
        {
            obs::ScopedSpan span(tracer, obs::kMainTrack,
                                 "predict.replay");
            // Hidden candidates flip against the weakened closure —
            // the full closure orders them, so it would refuse every
            // flip; shadowed candidates are ordinary detector-miss
            // pairs and flip against the full closure like --verify.
            const verify::ReplayController &controller =
                hiddenClass ? weakReplay : strongReplay;
            out = controller.verifyPair(rep.prevOp, rep.curOp);
        }
        ++sum.replays;
        cls.verdict = out.verdict;
        cls.detail = std::move(out.detail);
        tally(sum, cls.verdict);
        if (metrics) {
            const auto us =
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            metrics
                ->histogram("predict.replay_us",
                            {100, 1000, 10000, 100000, 1000000})
                .observe(static_cast<std::uint64_t>(us));
        }
    }

    // ----- recall vs the weakened oracle ----------------------------
    {
        obs::ScopedSpan span(tracer, obs::kMainTrack,
                             "predict.recall");
        std::vector<gold::GoldRace> weakRaces = weak.races();
        sum.weakRaces = weakRaces.size();
        std::set<std::pair<OpId, OpId>> oracle;
        for (const gold::GoldRace &r : weakRaces)
            oracle.emplace(r.first, r.second);
        for (const auto &p : detectedSet) {
            if (oracle.count(p))
                ++sum.observedHits;
        }
        // Per-pair verdict lookup through the class key, so every
        // pair of a Confirmed class counts, not just the replayed
        // representative.
        auto classVerdict = [&](const RaceReport &r) {
            for (const TriageClass &cls : res.triage.classes) {
                if (cls.var == r.var && cls.firstSite == r.prevSite &&
                    cls.secondSite == r.curSite) {
                    return cls.verdict;
                }
            }
            return ReplayVerdict::Unverified;
        };
        sum.combinedHits = sum.observedHits;
        for (const RaceReport &r : predictedPairs) {
            if (oracle.count({r.prevOp, r.curOp}) &&
                classVerdict(r) == ReplayVerdict::Confirmed) {
                ++sum.combinedHits;
            }
        }
        sum.recallScored = true;
        sum.observedRecall =
            sum.weakRaces == 0
                ? 1.0
                : static_cast<double>(sum.observedHits) /
                      static_cast<double>(sum.weakRaces);
        sum.combinedRecall =
            sum.weakRaces == 0
                ? 1.0
                : static_cast<double>(sum.combinedHits) /
                      static_cast<double>(sum.weakRaces);
    }

    return finish();
}

} // namespace asyncclock::predict
