/**
 * @file
 * ShbEngine: the weakened-ordering vector-clock pass of the
 * predictive tier (DESIGN.md section 16).
 *
 * The HB detector orders accesses by *every* rule the causality model
 * defines — including rules whose edges the observed schedule merely
 * happened to force (which event dequeued first, which signal
 * happened to release a latch). The predictive tier maintains a
 * second, weaker ordering that keeps only the *programmatic* edges —
 * those that hold in every execution of the program — and drops the
 * schedule-dependent ones named by the model's
 * core::WeakOrderingSpec:
 *
 *  - queue-order edges (PRIORITY/FIFO, ATFRONT, ATOMIC, binder
 *    begin-order): which racing send reaches the queue first is a
 *    property of the schedule, not the program;
 *  - non-releasing signal -> wait edges: a latch wait is ordered
 *    after *some* prior signal; any signal beyond the first could
 *    have been the releasing one under a different interleaving.
 *
 * Pairs unordered under the weak relation but ordered under full HB
 * are exactly the schedule-hidden candidates prediction proposes
 * (predict/candidates.hh) and replay then filters for soundness
 * (predict/predict.hh).
 *
 * The engine reuses the pluggable clock::Backend substrate — each
 * task carries one clock::VectorClock, so sparse/cow/tree all work —
 * and the report::AccessChecker sink interface, so the same
 * ExactChecker the oracle tests use can consume the weak ordering
 * (cross-validating the engine against gold::Closure with the
 * weakened GoldConfig).
 *
 * By design the engine is the linear-time mirror of the weakened
 * gold closure: for a well-formed trace, an ExactChecker driven by
 * run() reports exactly Closure(tr, weakened-config).races().
 * Malformed operations (entity ids outside the trace's tables —
 * decode-damaged streams in the fault-injection corpus) are skipped
 * and counted, never applied.
 */

#ifndef ASYNCCLOCK_PREDICT_SHB_HH
#define ASYNCCLOCK_PREDICT_SHB_HH

#include <cstdint>
#include <vector>

#include "clock/vector_clock.hh"
#include "core/model.hh"
#include "gold/closure.hh"
#include "report/checker.hh"
#include "trace/trace.hh"

namespace asyncclock::predict {

struct ShbConfig
{
    /** Which schedule-dependent edge families to drop. Default: the
     * spec of the model the trace's dialect calls for
     * (core::weakOrderingFor); pass explicitly for ablation. */
    core::WeakOrderingSpec spec{};
};

/**
 * One pass of weakened-ordering vector clocks over a materialized
 * trace. Construction binds the entity tables; run() (or repeated
 * step()) feeds every Read/Write to the sink with the access's weak
 * logical time, exactly as the detectors feed their checkers.
 */
class ShbEngine
{
  public:
    explicit ShbEngine(const trace::Trace &tr, ShbConfig cfg);

    /** Engine with the dialect's default weak-ordering spec. */
    explicit ShbEngine(const trace::Trace &tr);

    /** Apply one operation (@p id is its position in the trace).
     * Reads/writes reach @p sink; malformed ops are counted and
     * skipped. Ops must be stepped in trace order. */
    void step(const trace::Operation &op, trace::OpId id,
              report::AccessChecker &sink);

    /** step() every op of the bound trace. */
    void run(report::AccessChecker &sink);

    /** Ops skipped because they referenced entities outside the
     * trace's tables (fault-injected streams). */
    std::uint64_t malformedDropped() const { return malformed_; }

    /** Number of chains (= tasks) the pass created. */
    std::uint32_t numChains() const { return nextChain_; }

    /** Live clock bytes (diagnostics). */
    std::uint64_t byteSize() const;

  private:
    struct TaskState
    {
        clock::VectorClock clock;
        clock::ChainId chain = trace::kInvalidId;
        clock::Tick tick = 0;
        bool seen = false;
    };

    /** A recorded source-side clock for one deferred edge. */
    struct Snapshot
    {
        clock::VectorClock clock;
        bool set = false;
    };

    TaskState &stateFor(trace::Task task);
    bool validOp(const trace::Operation &op) const;

    const trace::Trace &tr_;
    ShbConfig cfg_;
    std::uint32_t nextChain_ = 0;
    std::uint64_t malformed_ = 0;

    std::vector<TaskState> threadState_;
    std::vector<TaskState> eventState_;

    /** fork op clock, keyed by forked thread (edge FORK). */
    std::vector<Snapshot> forkSnap_;
    /** thread-begin clock, keyed by thread (edge LOOPBEGIN). */
    std::vector<Snapshot> threadBeginSnap_;
    /** releasing signal clock (or all-signal accumulator when
     * extras are kept), keyed by handle (edge SIGNAL). */
    std::vector<Snapshot> signalSnap_;
    /** send/spawn clock, keyed by event (edge SEND / SPAWN). */
    std::vector<Snapshot> sendSnap_;
    /** settle clock (end or cancel), keyed by event (edge AWAIT). */
    std::vector<Snapshot> settleSnap_;
    /** accumulated event-end clocks, keyed by looper thread (edge
     * LOOPEND). */
    std::vector<Snapshot> looperEndAcc_;
    /** accumulated member settle clocks, keyed by scope handle (edge
     * SCOPE). */
    std::vector<Snapshot> scopeAcc_;
};

/** The weakened GoldConfig @p spec calls for — the oracle
 * counterpart of ShbEngine, used for replay feasibility and recall
 * scoring. */
gold::GoldConfig weakGoldConfig(const core::WeakOrderingSpec &spec);

} // namespace asyncclock::predict

#endif // ASYNCCLOCK_PREDICT_SHB_HH
