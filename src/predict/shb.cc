#include "predict/shb.hh"

namespace asyncclock::predict {

using trace::EventId;
using trace::EventInfo;
using trace::kInvalidId;
using trace::Operation;
using trace::OpId;
using trace::OpKind;
using trace::Task;
using trace::ThreadId;

gold::GoldConfig
weakGoldConfig(const core::WeakOrderingSpec &spec)
{
    gold::GoldConfig cfg;
    if (spec.dropQueueOrderEdges) {
        cfg.atomicRule = false;
        cfg.priorityRule = false;
        cfg.atFrontRule = false;
        cfg.binderRule = false;
        cfg.removedRelay = false;
    }
    if (spec.dropNonReleasingSignalEdges)
        cfg.extraSignalEdges = false;
    return cfg;
}

ShbEngine::ShbEngine(const trace::Trace &tr, ShbConfig cfg)
    : tr_(tr), cfg_(cfg)
{
    threadState_.resize(tr.threads().size());
    eventState_.resize(tr.events().size());
    forkSnap_.resize(tr.threads().size());
    threadBeginSnap_.resize(tr.threads().size());
    looperEndAcc_.resize(tr.threads().size());
    signalSnap_.resize(tr.handles().size());
    scopeAcc_.resize(tr.handles().size());
    sendSnap_.resize(tr.events().size());
    settleSnap_.resize(tr.events().size());
}

ShbEngine::ShbEngine(const trace::Trace &tr)
    : ShbEngine(tr, ShbConfig{core::weakOrderingFor(
                    core::modelForDialect(tr.dialect()))})
{
}

ShbEngine::TaskState &
ShbEngine::stateFor(Task task)
{
    TaskState &st = task.isEvent() ? eventState_[task.index()]
                                   : threadState_[task.index()];
    if (!st.seen) {
        st.seen = true;
        st.chain = nextChain_++;
    }
    return st;
}

bool
ShbEngine::validOp(const Operation &op) const
{
    // An op is applicable only if every entity it names is inside the
    // trace's tables; fault-injected streams can surface ids that
    // decode cleanly but point nowhere.
    std::uint32_t idx = op.task.index();
    if (op.task.isEvent() ? idx >= eventState_.size()
                          : idx >= threadState_.size()) {
        return false;
    }
    switch (op.kind) {
      case OpKind::ThreadBegin:
      case OpKind::ThreadEnd:
        return !op.task.isEvent();
      case OpKind::EventBegin:
      case OpKind::EventEnd:
        return op.task.isEvent();
      case OpKind::Read:
      case OpKind::Write:
        return op.target < tr_.vars().size() &&
               op.site < tr_.sites().size();
      case OpKind::Fork:
      case OpKind::Join:
        return op.target < threadState_.size();
      case OpKind::Signal:
      case OpKind::Wait:
      case OpKind::ScopeEnd:
        return op.target < signalSnap_.size();
      case OpKind::Send:
        return op.target < tr_.queues().size() &&
               op.event < eventState_.size();
      case OpKind::RemoveEvent:
      case OpKind::TaskAwait:
      case OpKind::TaskCancel:
        return op.event < eventState_.size();
      case OpKind::TaskSpawn:
        return op.event < eventState_.size() &&
               op.target < scopeAcc_.size();
    }
    return false;
}

void
ShbEngine::step(const Operation &op, OpId id,
                report::AccessChecker &sink)
{
    if (!validOp(op)) {
        ++malformed_;
        return;
    }
    TaskState &st = stateFor(op.task);

    // ----- joins: edges *into* this op ------------------------------
    switch (op.kind) {
      case OpKind::ThreadBegin: {
        // FORK: forker's clock at the fork op.
        Snapshot &f = forkSnap_[op.task.index()];
        if (f.set)
            st.clock.joinWith(f.clock);
        break;
      }
      case OpKind::ThreadEnd: {
        // LOOPEND: every executed event's end clock (looper threads;
        // the accumulator is empty for workers).
        Snapshot &acc = looperEndAcc_[op.task.index()];
        if (acc.set)
            st.clock.joinWith(acc.clock);
        break;
      }
      case OpKind::EventBegin: {
        EventId e = op.task.index();
        // SEND / SPAWN: sender's clock at the send op.
        if (sendSnap_[e].set)
            st.clock.joinWith(sendSnap_[e].clock);
        // LOOPBEGIN: the draining looper began before any of its
        // events (binder events have no single looper).
        ThreadId looper = tr_.looperOf(e);
        if (looper != kInvalidId && looper < threadBeginSnap_.size() &&
            threadBeginSnap_[looper].set) {
            st.clock.joinWith(threadBeginSnap_[looper].clock);
        }
        break;
      }
      case OpKind::Wait: {
        // SIGNAL: the releasing signal (or all prior signals when the
        // extra edges are kept — see ShbConfig::spec).
        Snapshot &s = signalSnap_[op.target];
        if (s.set)
            st.clock.joinWith(s.clock);
        break;
      }
      case OpKind::Join: {
        // JOIN: the joined thread has ended; its clock is final.
        TaskState &child = threadState_[op.target];
        if (child.seen)
            st.clock.joinWith(child.clock);
        break;
      }
      case OpKind::TaskAwait: {
        // AWAIT: settle (end or cancel) of the awaited task.
        Snapshot &s = settleSnap_[op.event];
        if (s.set)
            st.clock.joinWith(s.clock);
        break;
      }
      case OpKind::ScopeEnd: {
        // SCOPE: every member task settled before the scope closes.
        Snapshot &acc = scopeAcc_[op.target];
        if (acc.set)
            st.clock.joinWith(acc.clock);
        break;
      }
      default:
        break;
    }

    // ----- PO: this op is a fresh tick of the task's own chain ------
    st.clock.tick(st.chain, ++st.tick);

    // ----- accesses reach the sink with the weak logical time -------
    if (op.kind == OpKind::Read || op.kind == OpKind::Write) {
        report::Access access;
        access.op = id;
        access.epoch = clock::Epoch{st.chain, st.tick};
        access.site = op.site;
        access.task = op.task;
        access.isWrite = op.kind == OpKind::Write;
        sink.onAccess(op.target, access, st.clock);
    }

    // ----- snapshots: edges *out of* this op ------------------------
    switch (op.kind) {
      case OpKind::ThreadBegin:
        threadBeginSnap_[op.task.index()].clock = st.clock;
        threadBeginSnap_[op.task.index()].set = true;
        break;
      case OpKind::Fork:
        forkSnap_[op.target].clock = st.clock;
        forkSnap_[op.target].set = true;
        break;
      case OpKind::Signal: {
        Snapshot &s = signalSnap_[op.target];
        if (cfg_.spec.dropNonReleasingSignalEdges) {
            // Only the first (releasing) signal orders the wait; any
            // later signal is a schedule-dependent predecessor.
            if (!s.set) {
                s.clock = st.clock;
                s.set = true;
            }
        } else {
            s.clock.joinWith(st.clock);
            s.set = true;
        }
        break;
      }
      case OpKind::Send:
      case OpKind::TaskSpawn:
        sendSnap_[op.event].clock = st.clock;
        sendSnap_[op.event].set = true;
        break;
      case OpKind::EventEnd: {
        EventId e = op.task.index();
        ThreadId looper = tr_.looperOf(e);
        if (looper != kInvalidId && looper < looperEndAcc_.size()) {
            Snapshot &acc = looperEndAcc_[looper];
            acc.clock.joinWith(st.clock);
            acc.set = true;
        }
        if (tr_.dialect() == trace::Dialect::Async) {
            // A finished task settles with its own end clock (a
            // cancel never overrides an end — mirror the gold
            // oracle's settleOp preference).
            settleSnap_[e].clock = st.clock;
            settleSnap_[e].set = true;
            trace::HandleId scope =
                e < tr_.events().size() ? tr_.event(e).scope
                                        : kInvalidId;
            if (scope != kInvalidId && scope < scopeAcc_.size()) {
                scopeAcc_[scope].clock.joinWith(st.clock);
                scopeAcc_[scope].set = true;
            }
        }
        break;
      }
      case OpKind::TaskCancel: {
        Snapshot &s = settleSnap_[op.event];
        if (!s.set) {
            s.clock = st.clock;
            s.set = true;
            trace::HandleId scope = tr_.event(op.event).scope;
            if (scope != kInvalidId && scope < scopeAcc_.size()) {
                scopeAcc_[scope].clock.joinWith(st.clock);
                scopeAcc_[scope].set = true;
            }
        }
        break;
      }
      default:
        break;
    }
}

void
ShbEngine::run(report::AccessChecker &sink)
{
    for (OpId i = 0; i < tr_.numOps(); ++i)
        step(tr_.op(i), i, sink);
}

std::uint64_t
ShbEngine::byteSize() const
{
    std::uint64_t total = 0;
    auto add = [&](const clock::VectorClock &vc) {
        total += vc.byteSize();
    };
    for (const TaskState &st : threadState_)
        add(st.clock);
    for (const TaskState &st : eventState_)
        add(st.clock);
    for (const auto *snaps :
         {&forkSnap_, &threadBeginSnap_, &signalSnap_, &sendSnap_,
          &settleSnap_, &looperEndAcc_, &scopeAcc_}) {
        for (const Snapshot &s : *snaps)
            add(s.clock);
    }
    return total;
}

} // namespace asyncclock::predict
