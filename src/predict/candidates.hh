/**
 * @file
 * CandidateWindow: the bounded per-variable candidate enumerator of
 * the predictive tier (DESIGN.md section 16).
 *
 * Plugged behind the ShbEngine as an AccessChecker, it proposes every
 * conflicting access pair that is unordered under the *weak* relation
 * — a superset of what the HB detector reports, since the weak
 * relation has strictly fewer edges. The funnel downstream
 * (predict/predict.hh) subtracts the detector's own findings and
 * replay-filters the rest.
 *
 * Two explicit bounds keep the pass linear in practice, each with its
 * own drop counter so a capped run never silently reads as complete:
 *
 *  - window (--predict-window): per variable, only the most recent N
 *    accesses are candidate partners; evicting an access bumps
 *    windowDrops(). This is the classic bounded-history compromise —
 *    a race against an access older than the window is invisible.
 *  - maxCandidates (--predict-max-candidates): total candidate pairs
 *    kept, first-come in trace order (deterministic); pairs beyond
 *    the cap bump capDrops().
 */

#ifndef ASYNCCLOCK_PREDICT_CANDIDATES_HH
#define ASYNCCLOCK_PREDICT_CANDIDATES_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "report/checker.hh"

namespace asyncclock::predict {

struct CandidateConfig
{
    /** Per-variable access-history bound (0 = unbounded). */
    std::uint32_t window = 64;
    /** Total candidate-pair bound (0 = unbounded). */
    std::uint32_t maxCandidates = 256;
};

class CandidateWindow : public report::AccessChecker
{
  public:
    explicit CandidateWindow(CandidateConfig cfg = {}) : cfg_(cfg) {}

    void onAccess(trace::VarId var, const report::Access &access,
                  const clock::VectorClock &vc) override;

    /** The candidate pairs, in trace order of their second access. */
    const std::vector<report::RaceReport> &races() const override
    {
        return candidates_;
    }

    std::uint64_t byteSize() const override;

    /** Accesses evicted from a full per-variable window. */
    std::uint64_t windowDrops() const { return windowDrops_; }

    /** Candidate pairs discarded over the global cap. */
    std::uint64_t capDrops() const { return capDrops_; }

  private:
    CandidateConfig cfg_;
    std::vector<std::deque<report::Access>> history_;
    std::vector<report::RaceReport> candidates_;
    std::uint64_t windowDrops_ = 0;
    std::uint64_t capDrops_ = 0;
};

} // namespace asyncclock::predict

#endif // ASYNCCLOCK_PREDICT_CANDIDATES_HH
