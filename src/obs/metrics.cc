#include "obs/metrics.hh"

#include <algorithm>

#include "support/format.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/stats.hh"

namespace asyncclock::obs {

namespace {

/** Escape a label value for the canonical '{k="v"}' form. */
std::string
escapeLabelValue(const std::string &v)
{
    std::string out;
    out.reserve(v.size());
    for (char c : v) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

std::string
seriesName(const std::string &name, LabelSet labels)
{
    if (labels.empty())
        return name;
    std::sort(labels.begin(), labels.end());
    std::string out = name;
    out += '{';
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i)
            out += ',';
        out += labels[i].first;
        out += "=\"";
        out += escapeLabelValue(labels[i].second);
        out += '"';
    }
    out += '}';
    return out;
}

bool
splitSeries(const std::string &full, std::string &base,
            LabelSet &labels)
{
    std::size_t brace = full.find('{');
    if (brace == std::string::npos)
        return false;
    acAssert(full.back() == '}', "series name: unterminated labels");
    base = full.substr(0, brace);
    labels.clear();
    std::size_t i = brace + 1;
    while (i < full.size() && full[i] != '}') {
        std::size_t eq = full.find('=', i);
        acAssert(eq != std::string::npos && full[eq + 1] == '"',
                 "series name: malformed label");
        std::string key = full.substr(i, eq - i);
        std::string value;
        std::size_t j = eq + 2;
        for (; j < full.size() && full[j] != '"'; ++j) {
            if (full[j] == '\\' && j + 1 < full.size())
                ++j;
            value += full[j];
        }
        acAssert(j < full.size(), "series name: unterminated value");
        labels.emplace_back(std::move(key), std::move(value));
        i = j + 1;
        if (i < full.size() && full[i] == ',')
            ++i;
    }
    return true;
}

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1)
{
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
        acAssert(bounds_[i - 1] < bounds_[i],
                 "histogram bounds not strictly ascending");
    }
}

void
Histogram::observe(std::uint64_t v)
{
    auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    std::size_t i = static_cast<std::size_t>(it - bounds_.begin());
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v,
                                       std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v,
                                       std::memory_order_relaxed)) {
    }
}

std::uint64_t
Histogram::min() const
{
    std::uint64_t m = min_.load(std::memory_order_relaxed);
    return m == UINT64_MAX ? 0 : m;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<std::uint64_t> bounds)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>(std::move(bounds));
    return *slot;
}

Counter &
MetricsRegistry::counter(const std::string &name,
                         const LabelSet &labels)
{
    return counter(seriesName(name, labels));
}

Gauge &
MetricsRegistry::gauge(const std::string &name, const LabelSet &labels)
{
    return gauge(seriesName(name, labels));
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           const LabelSet &labels,
                           std::vector<std::uint64_t> bounds)
{
    return histogram(seriesName(name, labels), std::move(bounds));
}

void
MetricsRegistry::counterFn(const std::string &name,
                           std::function<std::uint64_t()> fn)
{
    std::lock_guard<std::mutex> lock(mu_);
    counterFns_[name] = std::move(fn);
}

void
MetricsRegistry::gaugeFn(const std::string &name,
                         std::function<std::int64_t()> fn)
{
    std::lock_guard<std::mutex> lock(mu_);
    gaugeFns_[name] = std::move(fn);
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    MetricsSnapshot out;
    // std::map iteration is name-sorted; merge owned and callback
    // metrics of each kind into one sorted list.
    for (const auto &[name, c] : counters_)
        out.counters.emplace_back(name, c->value());
    for (const auto &[name, fn] : counterFns_)
        out.counters.emplace_back(name, fn());
    std::sort(out.counters.begin(), out.counters.end());
    for (const auto &[name, g] : gauges_)
        out.gauges.emplace_back(name, g->value());
    for (const auto &[name, fn] : gaugeFns_)
        out.gauges.emplace_back(name, fn());
    std::sort(out.gauges.begin(), out.gauges.end());
    for (const auto &[name, h] : histograms_) {
        HistogramSnapshot hs;
        hs.name = name;
        hs.bounds = h->bounds();
        hs.counts.reserve(h->numBuckets());
        for (std::size_t i = 0; i < h->numBuckets(); ++i)
            hs.counts.push_back(h->bucketCount(i));
        hs.count = h->count();
        hs.sum = h->sum();
        hs.min = h->min();
        hs.max = h->max();
        out.histograms.push_back(std::move(hs));
    }
    return out;
}

bool
MetricsSnapshot::hasLabels() const
{
    auto labeled = [](const std::string &name) {
        return name.find('{') != std::string::npos;
    };
    for (const auto &[name, v] : counters)
        if (labeled(name))
            return true;
    for (const auto &[name, v] : gauges)
        if (labeled(name))
            return true;
    for (const HistogramSnapshot &h : histograms)
        if (labeled(h.name))
            return true;
    return false;
}

namespace {

void
writeLabels(JsonWriter &w, const LabelSet &labels)
{
    w.key("labels").beginObject();
    for (const auto &[k, v] : labels)
        w.field(k, v);
    w.endObject();
}

void
writeHistogramBody(JsonWriter &w, const HistogramSnapshot &h)
{
    w.key("bounds").beginArray();
    for (std::uint64_t b : h.bounds)
        w.value(b);
    w.endArray();
    w.key("counts").beginArray();
    for (std::uint64_t c : h.counts)
        w.value(c);
    w.endArray();
    w.field("count", h.count);
    w.field("sum", h.sum);
    w.field("min", h.min);
    w.field("max", h.max);
}

} // namespace

std::string
MetricsSnapshot::toJson() const
{
    // v1 stays byte-stable for label-free registries; labeled series
    // move to a "series" section so the flat sections keep holding
    // plain names only.
    const bool v2 = hasLabels();
    std::string base;
    LabelSet labels;
    JsonWriter w;
    w.beginObject();
    w.field("schema",
            v2 ? "asyncclock-metrics-v2" : "asyncclock-metrics-v1");
    w.key("counters").beginObject();
    for (const auto &[name, v] : counters)
        if (!splitSeries(name, base, labels))
            w.field(name, v);
    w.endObject();
    w.key("gauges").beginObject();
    for (const auto &[name, v] : gauges)
        if (!splitSeries(name, base, labels))
            w.field(name, v);
    w.endObject();
    w.key("histograms").beginObject();
    for (const HistogramSnapshot &h : histograms) {
        if (splitSeries(h.name, base, labels))
            continue;
        w.key(h.name).beginObject();
        writeHistogramBody(w, h);
        w.endObject();
    }
    w.endObject();
    if (v2) {
        w.key("series").beginObject();
        w.key("counters").beginArray();
        for (const auto &[name, v] : counters) {
            if (!splitSeries(name, base, labels))
                continue;
            w.beginObject();
            w.field("name", base);
            writeLabels(w, labels);
            w.field("value", v);
            w.endObject();
        }
        w.endArray();
        w.key("gauges").beginArray();
        for (const auto &[name, v] : gauges) {
            if (!splitSeries(name, base, labels))
                continue;
            w.beginObject();
            w.field("name", base);
            writeLabels(w, labels);
            w.field("value", v);
            w.endObject();
        }
        w.endArray();
        w.key("histograms").beginArray();
        for (const HistogramSnapshot &h : histograms) {
            if (!splitSeries(h.name, base, labels))
                continue;
            w.beginObject();
            w.field("name", base);
            writeLabels(w, labels);
            writeHistogramBody(w, h);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();
    return w.str();
}

namespace {

/** Prometheus metric name: "asyncclock_" + base with every character
 * outside [a-zA-Z0-9_:] replaced by '_'. */
std::string
promName(const std::string &base)
{
    std::string out = "asyncclock_";
    for (char c : base) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

/** Render '{k="v",...}' for exposition; @p extra appends one more
 * label (used for histogram `le`). Label values are escaped per the
 * 0.0.4 spec (backslash, double-quote, newline). */
std::string
promLabels(const LabelSet &labels, const std::string &extraKey = "",
           const std::string &extraValue = "")
{
    if (labels.empty() && extraKey.empty())
        return "";
    std::string out = "{";
    bool first = true;
    auto append = [&](const std::string &k, const std::string &v) {
        if (!first)
            out += ',';
        first = false;
        out += k;
        out += "=\"";
        for (char c : v) {
            if (c == '\\')
                out += "\\\\";
            else if (c == '"')
                out += "\\\"";
            else if (c == '\n')
                out += "\\n";
            else
                out += c;
        }
        out += '"';
    };
    for (const auto &[k, v] : labels)
        append(k, v);
    if (!extraKey.empty())
        append(extraKey, extraValue);
    out += '}';
    return out;
}

/** Emit "# TYPE name type" once per metric family. Series are sorted
 * by canonical name, so a family's members are adjacent. */
void
promTypeLine(std::string &out, std::string &lastFamily,
             const std::string &family, const char *type)
{
    if (family == lastFamily)
        return;
    lastFamily = family;
    out += "# TYPE ";
    out += family;
    out += ' ';
    out += type;
    out += '\n';
}

} // namespace

std::string
MetricsSnapshot::toPrometheus() const
{
    std::string out;
    std::string lastFamily;
    std::string base;
    LabelSet labels;
    auto split = [&](const std::string &full) {
        if (!splitSeries(full, base, labels)) {
            base = full;
            labels.clear();
        }
    };
    for (const auto &[name, v] : counters) {
        split(name);
        std::string family = promName(base);
        promTypeLine(out, lastFamily, family, "counter");
        out += family + promLabels(labels) + ' ' + std::to_string(v) +
               '\n';
    }
    for (const auto &[name, v] : gauges) {
        split(name);
        std::string family = promName(base);
        promTypeLine(out, lastFamily, family, "gauge");
        out += family + promLabels(labels) + ' ' + std::to_string(v) +
               '\n';
    }
    for (const HistogramSnapshot &h : histograms) {
        split(h.name);
        std::string family = promName(base);
        promTypeLine(out, lastFamily, family, "histogram");
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
            cum += h.counts[i];
            std::string le = i < h.bounds.size()
                                 ? std::to_string(h.bounds[i])
                                 : "+Inf";
            out += family + "_bucket" + promLabels(labels, "le", le) +
                   ' ' + std::to_string(cum) + '\n';
        }
        out += family + "_sum" + promLabels(labels) + ' ' +
               std::to_string(h.sum) + '\n';
        out += family + "_count" + promLabels(labels) + ' ' +
               std::to_string(h.count) + '\n';
    }
    return out;
}

std::string
MetricsSnapshot::summary() const
{
    std::string out;
    for (const auto &[name, v] : counters)
        out += strf("  %-40s %s\n", name.c_str(),
                    withCommas(v).c_str());
    for (const auto &[name, v] : gauges)
        out += strf("  %-40s %lld\n", name.c_str(),
                    static_cast<long long>(v));
    for (const HistogramSnapshot &h : histograms) {
        out += strf("  %-40s n=%s sum=%s min=%s max=%s\n",
                    h.name.c_str(), withCommas(h.count).c_str(),
                    withCommas(h.sum).c_str(),
                    withCommas(h.min).c_str(),
                    withCommas(h.max).c_str());
    }
    return out;
}

void
registerMemStats(MetricsRegistry &reg, const MemStats &stats)
{
    constexpr unsigned numCats =
        static_cast<unsigned>(MemCat::NumCategories);
    for (unsigned i = 0; i < numCats; ++i) {
        MemCat cat = static_cast<MemCat>(i);
        std::string name = memCatName(cat);
        reg.gaugeFn("mem.live." + name, [&stats, cat] {
            return static_cast<std::int64_t>(stats.live(cat));
        });
        reg.gaugeFn("mem.peak." + name, [&stats, cat] {
            return static_cast<std::int64_t>(stats.peak(cat));
        });
    }
    reg.gaugeFn("mem.live.total", [&stats] {
        return static_cast<std::int64_t>(stats.liveTotal());
    });
    reg.gaugeFn("mem.peak.total", [&stats] {
        return static_cast<std::int64_t>(stats.peakTotal());
    });
}

} // namespace asyncclock::obs
