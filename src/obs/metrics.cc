#include "obs/metrics.hh"

#include <algorithm>

#include "support/format.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/stats.hh"

namespace asyncclock::obs {

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1)
{
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
        acAssert(bounds_[i - 1] < bounds_[i],
                 "histogram bounds not strictly ascending");
    }
}

void
Histogram::observe(std::uint64_t v)
{
    auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    std::size_t i = static_cast<std::size_t>(it - bounds_.begin());
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v,
                                       std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v,
                                       std::memory_order_relaxed)) {
    }
}

std::uint64_t
Histogram::min() const
{
    std::uint64_t m = min_.load(std::memory_order_relaxed);
    return m == UINT64_MAX ? 0 : m;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<std::uint64_t> bounds)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>(std::move(bounds));
    return *slot;
}

void
MetricsRegistry::counterFn(const std::string &name,
                           std::function<std::uint64_t()> fn)
{
    std::lock_guard<std::mutex> lock(mu_);
    counterFns_[name] = std::move(fn);
}

void
MetricsRegistry::gaugeFn(const std::string &name,
                         std::function<std::int64_t()> fn)
{
    std::lock_guard<std::mutex> lock(mu_);
    gaugeFns_[name] = std::move(fn);
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    MetricsSnapshot out;
    // std::map iteration is name-sorted; merge owned and callback
    // metrics of each kind into one sorted list.
    for (const auto &[name, c] : counters_)
        out.counters.emplace_back(name, c->value());
    for (const auto &[name, fn] : counterFns_)
        out.counters.emplace_back(name, fn());
    std::sort(out.counters.begin(), out.counters.end());
    for (const auto &[name, g] : gauges_)
        out.gauges.emplace_back(name, g->value());
    for (const auto &[name, fn] : gaugeFns_)
        out.gauges.emplace_back(name, fn());
    std::sort(out.gauges.begin(), out.gauges.end());
    for (const auto &[name, h] : histograms_) {
        HistogramSnapshot hs;
        hs.name = name;
        hs.bounds = h->bounds();
        hs.counts.reserve(h->numBuckets());
        for (std::size_t i = 0; i < h->numBuckets(); ++i)
            hs.counts.push_back(h->bucketCount(i));
        hs.count = h->count();
        hs.sum = h->sum();
        hs.min = h->min();
        hs.max = h->max();
        out.histograms.push_back(std::move(hs));
    }
    return out;
}

std::string
MetricsSnapshot::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.field("schema", "asyncclock-metrics-v1");
    w.key("counters").beginObject();
    for (const auto &[name, v] : counters)
        w.field(name, v);
    w.endObject();
    w.key("gauges").beginObject();
    for (const auto &[name, v] : gauges)
        w.field(name, v);
    w.endObject();
    w.key("histograms").beginObject();
    for (const HistogramSnapshot &h : histograms) {
        w.key(h.name).beginObject();
        w.key("bounds").beginArray();
        for (std::uint64_t b : h.bounds)
            w.value(b);
        w.endArray();
        w.key("counts").beginArray();
        for (std::uint64_t c : h.counts)
            w.value(c);
        w.endArray();
        w.field("count", h.count);
        w.field("sum", h.sum);
        w.field("min", h.min);
        w.field("max", h.max);
        w.endObject();
    }
    w.endObject();
    w.endObject();
    return w.str();
}

std::string
MetricsSnapshot::summary() const
{
    std::string out;
    for (const auto &[name, v] : counters)
        out += strf("  %-40s %s\n", name.c_str(),
                    withCommas(v).c_str());
    for (const auto &[name, v] : gauges)
        out += strf("  %-40s %lld\n", name.c_str(),
                    static_cast<long long>(v));
    for (const HistogramSnapshot &h : histograms) {
        out += strf("  %-40s n=%s sum=%s min=%s max=%s\n",
                    h.name.c_str(), withCommas(h.count).c_str(),
                    withCommas(h.sum).c_str(),
                    withCommas(h.min).c_str(),
                    withCommas(h.max).c_str());
    }
    return out;
}

void
registerMemStats(MetricsRegistry &reg, const MemStats &stats)
{
    constexpr unsigned numCats =
        static_cast<unsigned>(MemCat::NumCategories);
    for (unsigned i = 0; i < numCats; ++i) {
        MemCat cat = static_cast<MemCat>(i);
        std::string name = memCatName(cat);
        reg.gaugeFn("mem.live." + name, [&stats, cat] {
            return static_cast<std::int64_t>(stats.live(cat));
        });
        reg.gaugeFn("mem.peak." + name, [&stats, cat] {
            return static_cast<std::int64_t>(stats.peak(cat));
        });
    }
    reg.gaugeFn("mem.live.total", [&stats] {
        return static_cast<std::int64_t>(stats.liveTotal());
    });
    reg.gaugeFn("mem.peak.total", [&stats] {
        return static_cast<std::int64_t>(stats.peakTotal());
    });
}

} // namespace asyncclock::obs
