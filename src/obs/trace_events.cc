#include "obs/trace_events.hh"

#include <fstream>

#include "support/json.hh"
#include "support/logging.hh"

namespace asyncclock::obs {

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now())
{
    registerTrack("main");
}

int
Tracer::registerTrack(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    int tid = nextTid_++;
    Event meta;
    meta.name = "thread_name";
    meta.ph = 'M';
    meta.tid = tid;
    JsonWriter args;
    args.beginObject().field("name", name).endObject();
    meta.args = args.str();
    events_.push_back(std::move(meta));
    return tid;
}

std::uint64_t
Tracer::nowUs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

void
Tracer::span(int tid, std::string name, std::uint64_t startUs,
             std::uint64_t endUs, std::string args)
{
    Event ev;
    ev.name = std::move(name);
    ev.ph = 'X';
    ev.ts = startUs;
    ev.dur = endUs > startUs ? endUs - startUs : 0;
    ev.tid = tid;
    ev.args = std::move(args);
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(std::move(ev));
}

std::string
Tracer::toJson() const
{
    std::vector<Event> evs = events();
    JsonWriter w;
    w.beginObject();
    w.field("displayTimeUnit", "ms");
    w.key("traceEvents").beginArray();
    for (const Event &ev : evs) {
        w.beginObject();
        w.field("name", ev.name);
        w.field("ph", std::string(1, ev.ph));
        w.field("pid", std::uint64_t(1));
        w.field("tid", static_cast<std::uint64_t>(ev.tid));
        w.field("ts", ev.ts);
        if (ev.ph == 'X')
            w.field("dur", ev.dur);
        if (!ev.args.empty())
            w.key("args").raw(ev.args);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

void
Tracer::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open " + path + " for writing");
    out << toJson();
    if (!out)
        fatal("write to " + path + " failed");
}

std::vector<Tracer::Event>
Tracer::events() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
}

} // namespace asyncclock::obs
