#include "obs/event_log.hh"

#include "obs/metrics.hh"
#include "support/json.hh"
#include "support/logging.hh"

namespace asyncclock::obs {

std::unique_ptr<EventLog>
EventLog::open(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return nullptr;
    return std::unique_ptr<EventLog>(new EventLog(f, true));
}

EventLog::EventLog(std::FILE *out) : EventLog(out, false) {}

EventLog::EventLog(std::FILE *out, bool owns)
    : out_(out), owns_(owns), start_(std::chrono::steady_clock::now())
{
}

EventLog::~EventLog()
{
    if (owns_)
        std::fclose(out_);
}

void
EventLog::log(Severity sev, const std::string &kind,
              const std::string &msg, std::uint64_t op)
{
    const char *sevName = sev == Severity::Info    ? "info"
                          : sev == Severity::Warn ? "warn"
                                                  : "error";
    auto now = std::chrono::steady_clock::now();
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  now - start_)
                  .count();
    JsonWriter w;
    std::lock_guard<std::mutex> lock(mu_);
    w.beginObject();
    w.field("seq", seq_++);
    w.field("ts_us", static_cast<std::uint64_t>(us));
    w.field("sev", sevName);
    w.field("kind", kind);
    w.field("op", op);
    w.field("msg", msg);
    w.endObject();
    std::fprintf(out_, "%s\n", w.str().c_str());
    std::fflush(out_);
}

std::uint64_t
EventLog::eventsLogged() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return seq_;
}

WarnTap::WarnTap(MetricsRegistry &reg, EventLog *events)
{
    Counter *total = &reg.counter("log.warnings_total");
    Counter *suppressed = &reg.counter("log.warnings_suppressed");
    setWarnListener([total, suppressed, events](
                        const std::string &key, const std::string &msg,
                        bool wasSuppressed) {
        total->inc();
        if (wasSuppressed) {
            suppressed->inc();
            return;  // counted, not logged — that's the whole point
        }
        if (events) {
            events->log(EventLog::Severity::Warn,
                        key.empty() ? "log.warn" : "log." + key, msg);
        }
    });
}

WarnTap::~WarnTap()
{
    setWarnListener(nullptr);
}

} // namespace asyncclock::obs
