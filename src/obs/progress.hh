/**
 * @file
 * Live progress heartbeat for long analysis runs.
 *
 * A multi-million-op run should not be a black box between launch and
 * final report: the ProgressMeter prints a periodic one-line
 * heartbeat — ops/sec since the last beat, live/peak metadata bytes,
 * shard queue depths, races found so far — every N processed ops.
 * Off by default (everyOps == 0 never fires); the due()/report()
 * split keeps the caller's loop cost to one integer compare per op
 * and lets the caller gather the (possibly expensive) sample only
 * when a beat is actually due.
 */

#ifndef ASYNCCLOCK_OBS_PROGRESS_HH
#define ASYNCCLOCK_OBS_PROGRESS_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace asyncclock::obs {

/** What one heartbeat line reports; the caller fills it on demand. */
struct ProgressSample
{
    std::uint64_t ops = 0;
    std::uint64_t liveBytes = 0;
    std::uint64_t peakBytes = 0;
    std::uint64_t races = 0;
    /** Per-shard queue depths; empty for sequential checking. */
    std::vector<std::size_t> queueDepths;
};

class ProgressMeter
{
  public:
    /** Heartbeat every @p everyOps processed ops; 0 disables. */
    explicit ProgressMeter(std::uint64_t everyOps,
                           std::FILE *out = stderr);

    bool enabled() const { return everyOps_ > 0; }

    /** True when @p opsDone crossed the next heartbeat boundary. */
    bool
    due(std::uint64_t opsDone) const
    {
        return everyOps_ > 0 && opsDone >= next_;
    }

    /** Print one heartbeat line and schedule the next. */
    void report(const ProgressSample &sample);

    /** The heartbeat line for @p sample (report() minus the I/O;
     * deterministic given a fixed interval clock is not, so tests use
     * this for the layout only). */
    std::string format(const ProgressSample &sample,
                       double opsPerSec) const;

  private:
    std::uint64_t everyOps_;
    std::uint64_t next_;
    std::FILE *out_;
    std::chrono::steady_clock::time_point lastTime_;
    std::uint64_t lastOps_ = 0;
};

} // namespace asyncclock::obs

#endif // ASYNCCLOCK_OBS_PROGRESS_HH
