/**
 * @file
 * Structured JSONL event log: machine-readable lifecycle records.
 *
 * Long runs emit a small number of *load-bearing* events — a
 * checkpoint was written or resumed, the memory-pressure ladder took
 * a step, a shard watchdog fired, the protocol-violation budget ran
 * out, a corrupt record was skipped. Today those are fire-and-forget
 * stderr warnings; the EventLog turns each into one JSON object per
 * line:
 *
 *   {"seq":3,"ts_us":18231,"sev":"warn","kind":"pressure.shrink",
 *    "op":51200,"msg":"window halved to 60000 ms"}
 *
 * with a monotonic sequence number (total order even when shard
 * threads log concurrently), microseconds since the log was opened,
 * the op offset the producer was at, and a severity. Records are
 * flushed per line — the log must survive the crash it is
 * describing.
 *
 * Producers reach the log through ObsContext::events (null = off,
 * the usual one-branch guard). WarnTap additionally routes the
 * warn()/warnRateLimited() firehose into counters and events so
 * rate-limited warnings can't silently vanish from a run's record.
 */

#ifndef ASYNCCLOCK_OBS_EVENT_LOG_HH
#define ASYNCCLOCK_OBS_EVENT_LOG_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

namespace asyncclock::obs {

class MetricsRegistry;

class EventLog
{
  public:
    enum class Severity : std::uint8_t { Info, Warn, Error };

    /** Open @p path for writing (truncates). Null on failure. */
    static std::unique_ptr<EventLog> open(const std::string &path);

    /** Log to @p out; the log never closes it (test/stderr use). */
    explicit EventLog(std::FILE *out);
    ~EventLog();

    EventLog(const EventLog &) = delete;
    EventLog &operator=(const EventLog &) = delete;

    /**
     * Append one record. @p kind is a dotted lowercase taxonomy tag
     * ("checkpoint.saved", "shard.watchdog", ...); @p op is the
     * producer's op offset (0 when not meaningful). Thread-safe;
     * flushes the line before returning.
     */
    void log(Severity sev, const std::string &kind,
             const std::string &msg, std::uint64_t op = 0);

    std::uint64_t eventsLogged() const;

  private:
    EventLog(std::FILE *out, bool owns);

    mutable std::mutex mu_;
    std::FILE *out_;
    bool owns_;
    std::uint64_t seq_ = 0;
    std::chrono::steady_clock::time_point start_;
};

/**
 * RAII tap on the warn()/warnRateLimited() stream (support/logging).
 * While alive, every warn-family call bumps `log.warnings_total` on
 * @p reg (and `log.warnings_suppressed` for calls the rate limiter
 * swallowed), and non-suppressed calls append a "log.<key>" event to
 * @p events when present. One tap at a time per process (the
 * listener slot is global); construction replaces any previous
 * listener, destruction clears it.
 */
class WarnTap
{
  public:
    WarnTap(MetricsRegistry &reg, EventLog *events);
    ~WarnTap();

    WarnTap(const WarnTap &) = delete;
    WarnTap &operator=(const WarnTap &) = delete;
};

} // namespace asyncclock::obs

#endif // ASYNCCLOCK_OBS_EVENT_LOG_HH
