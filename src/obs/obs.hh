/**
 * @file
 * The observability context handed through the pipeline.
 *
 * One run owns at most one MetricsRegistry and one Tracer; producers
 * (the detector, the sharded checker, the CLI harness) receive both
 * as nullable pointers bundled in an ObsContext. Null members mean
 * "off": every instrumentation site guards on the pointer, so a
 * default-constructed context is the compile-time-cheap null sink —
 * no clock reads, no atomics, one predictable branch.
 */

#ifndef ASYNCCLOCK_OBS_OBS_HH
#define ASYNCCLOCK_OBS_OBS_HH

#include "obs/event_log.hh"
#include "obs/metrics.hh"
#include "obs/trace_events.hh"

namespace asyncclock::obs {

struct ObsContext
{
    MetricsRegistry *metrics = nullptr;
    Tracer *tracer = nullptr;
    /** Structured lifecycle event log (event_log.hh), or null. */
    EventLog *events = nullptr;

    explicit operator bool() const
    {
        return metrics || tracer || events;
    }
};

} // namespace asyncclock::obs

#endif // ASYNCCLOCK_OBS_OBS_HH
