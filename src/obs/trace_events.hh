/**
 * @file
 * Span/phase tracing in Chrome trace-event format.
 *
 * A Tracer collects completed spans ("X" phase events) on named
 * tracks — one track per logical thread of the pipeline (the
 * detector/main thread, each ShardedChecker worker) — and serializes
 * them as a Chrome trace-event JSON object loadable in Perfetto or
 * chrome://tracing. Timestamps are microseconds since the tracer's
 * construction, taken from the steady clock.
 *
 * Overhead discipline: producers hold a `Tracer *` that is null when
 * tracing is off, so every instrumentation site costs one predictable
 * branch when disabled and two clock reads plus one mutex-guarded
 * push_back per *span* (not per operation) when enabled. Spans are
 * emitted at coarse granularity — per GC sweep, per shard batch, per
 * block of pumped ops — never per trace operation.
 */

#ifndef ASYNCCLOCK_OBS_TRACE_EVENTS_HH
#define ASYNCCLOCK_OBS_TRACE_EVENTS_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace asyncclock::obs {

/** The detector/main thread's pre-registered track. */
constexpr int kMainTrack = 0;

class Tracer
{
  public:
    /** One trace event: a completed span ("X") or track-name
     * metadata ("M"). */
    struct Event
    {
        std::string name;
        char ph = 'X';
        std::uint64_t ts = 0;   ///< start, us since tracer creation
        std::uint64_t dur = 0;  ///< span length, us ("X" only)
        int tid = 0;
        std::string args;  ///< pre-rendered JSON object, or empty
    };

    /** Track 0 ("main") is pre-registered. */
    Tracer();

    /** Add a named track; returns its tid. Thread-safe. */
    int registerTrack(const std::string &name);

    /** Microseconds since tracer construction (steady clock). */
    std::uint64_t nowUs() const;

    /** Record a completed span on @p tid. @p args, when non-empty,
     * must be a rendered JSON object (e.g. "{\"ops\":512}"). */
    void span(int tid, std::string name, std::uint64_t startUs,
              std::uint64_t endUs, std::string args = "");

    /** The full trace as a Chrome trace-event JSON object. */
    std::string toJson() const;

    /** Write toJson() to @p path; fatal() on I/O failure. */
    void writeFile(const std::string &path) const;

    /** Copy of the recorded events (tests, post-processing). */
    std::vector<Event> events() const;

  private:
    std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex mu_;
    std::vector<Event> events_;
    int nextTid_ = 0;
};

/**
 * RAII span: times its scope and records it on destruction. A null
 * tracer makes construction and destruction near-free, which is what
 * keeps always-compiled instrumentation sites cheap when tracing is
 * off.
 */
class ScopedSpan
{
  public:
    ScopedSpan(Tracer *tracer, int tid, const char *name)
        : tracer_(tracer), tid_(tid), name_(name),
          start_(tracer ? tracer->nowUs() : 0)
    {
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    ~ScopedSpan()
    {
        if (tracer_)
            tracer_->span(tid_, name_, start_, tracer_->nowUs());
    }

  private:
    Tracer *tracer_;
    int tid_;
    const char *name_;
    std::uint64_t start_;
};

} // namespace asyncclock::obs

#endif // ASYNCCLOCK_OBS_TRACE_EVENTS_HH
