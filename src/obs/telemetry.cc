#include "obs/telemetry.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/format.hh"
#include "support/json.hh"
#include "support/logging.hh"

namespace asyncclock::obs {

// ---------------------------------------------------------------------
// TelemetrySnapshot rendering

std::string
TelemetrySnapshot::toJson() const
{
    // Splice the metrics document (itself a complete object) and the
    // publisher's additions into one top-level object.
    std::string inner = metrics.toJson();
    acAssert(inner.size() >= 2 && inner.front() == '{' &&
                 inner.back() == '}',
             "metrics JSON is not an object");
    JsonWriter w;
    w.beginObject();
    w.field("seq", seq);
    w.field("uptime_sec", uptimeSec);
    w.key("rates").beginObject();
    for (const auto &[name, r] : rates)
        w.field(name, r);
    w.endObject();
    w.endObject();
    std::string extras = w.str();
    // {extras...} + {inner...} -> {extras...,inner...}
    if (inner.size() == 2)
        return extras;
    extras.back() = ',';
    return extras + inner.substr(1);
}

std::string
TelemetrySnapshot::progressJson() const
{
    double opsPerSec = 0;
    for (const auto &[name, r] : rates) {
        if (name == "detector.ops_processed") {
            opsPerSec = r;
            break;
        }
    }
    JsonWriter w;
    w.beginObject();
    w.field("seq", seq);
    w.field("uptime_sec", uptimeSec);
    w.field("ops", progress.ops);
    w.field("ops_per_sec", opsPerSec);
    w.field("live_bytes", progress.liveBytes);
    w.field("peak_bytes", progress.peakBytes);
    w.field("races", progress.races);
    w.key("queue_depths").beginArray();
    for (std::size_t d : progress.queueDepths)
        w.value(static_cast<std::uint64_t>(d));
    w.endArray();
    w.endObject();
    return w.str();
}

// ---------------------------------------------------------------------
// SnapshotPublisher

SnapshotPublisher::SnapshotPublisher(MetricsRegistry &reg,
                                     std::uint64_t intervalMs)
    : reg_(reg), interval_(intervalMs),
      start_(std::chrono::steady_clock::now()),
      lastPublish_(start_ - interval_)  // first publishIfDue fires
{
}

bool
SnapshotPublisher::due() const
{
    return std::chrono::steady_clock::now() - lastPublish_ >=
           interval_;
}

void
SnapshotPublisher::publish(const ProgressSample &progress)
{
    auto now = std::chrono::steady_clock::now();
    double dt = std::chrono::duration<double>(now - lastPublish_)
                    .count();
    auto snap = std::make_shared<TelemetrySnapshot>();
    snap->metrics = reg_.snapshot();
    snap->progress = progress;
    snap->seq = ++seq_;
    snap->uptimeSec =
        std::chrono::duration<double>(now - start_).count();
    // Rates: both counter lists are sorted by canonical name, so a
    // single merge walk pairs current values with previous ones.
    if (seq_ > 1 && dt > 0) {
        std::size_t j = 0;
        for (const auto &[name, v] : snap->metrics.counters) {
            while (j < prevCounters_.size() &&
                   prevCounters_[j].first < name)
                ++j;
            std::uint64_t prev =
                (j < prevCounters_.size() &&
                 prevCounters_[j].first == name)
                    ? prevCounters_[j].second
                    : 0;
            if (v > prev)
                snap->rates.emplace_back(
                    name, static_cast<double>(v - prev) / dt);
        }
    }
    prevCounters_ = snap->metrics.counters;
    lastPublish_ = now;
    std::lock_guard<std::mutex> lock(mu_);
    latest_ = std::move(snap);
}

std::shared_ptr<const TelemetrySnapshot>
SnapshotPublisher::latest() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return latest_;
}

// ---------------------------------------------------------------------
// TelemetryServer

TelemetryServer::TelemetryServer(SnapshotPublisher &pub) : pub_(pub) {}

TelemetryServer::~TelemetryServer()
{
    stop();
}

bool
TelemetryServer::start(std::uint16_t port)
{
    acAssert(listenFd_ < 0, "TelemetryServer started twice");
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        warn(strf("telemetry: socket() failed: %s",
                  std::strerror(errno)));
        return false;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(fd, 16) < 0) {
        warn(strf("telemetry: cannot listen on 127.0.0.1:%u: %s",
                  unsigned(port), std::strerror(errno)));
        ::close(fd);
        return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) ==
        0)
        port_ = ntohs(addr.sin_port);
    listenFd_ = fd;
    stop_.store(false, std::memory_order_relaxed);
    thread_ = std::thread([this] { serveLoop(); });
    return true;
}

void
TelemetryServer::stop()
{
    if (listenFd_ < 0)
        return;
    stop_.store(true, std::memory_order_relaxed);
    if (thread_.joinable())
        thread_.join();
    ::close(listenFd_);
    listenFd_ = -1;
}

void
TelemetryServer::serveLoop()
{
    // Poll with a short timeout instead of blocking in accept(): on
    // stop() the loop notices the flag within one timeout and exits,
    // so shutdown never depends on a final connection arriving.
    while (!stop_.load(std::memory_order_relaxed)) {
        pollfd pfd{listenFd_, POLLIN, 0};
        int rc = ::poll(&pfd, 1, 100);
        if (rc <= 0 || !(pfd.revents & POLLIN))
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        handleConnection(fd);
        ::close(fd);
    }
}

namespace {

/** Read until the request headers end, a 4 KiB cap, or a 2 s stall.
 * Returns the request bytes read (possibly truncated). */
std::string
readRequest(int fd)
{
    std::string req;
    char buf[1024];
    while (req.size() < 4096 &&
           req.find("\r\n\r\n") == std::string::npos) {
        pollfd pfd{fd, POLLIN, 0};
        if (::poll(&pfd, 1, 2000) <= 0)
            break;
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        req.append(buf, static_cast<std::size_t>(n));
    }
    return req;
}

void
sendResponse(int fd, const char *status, const char *contentType,
             const std::string &body)
{
    std::string head = strf(
        "HTTP/1.1 %s\r\n"
        "Content-Type: %s\r\n"
        "Content-Length: %zu\r\n"
        "Connection: close\r\n"
        "\r\n",
        status, contentType, body.size());
    std::string all = head + body;
    std::size_t off = 0;
    while (off < all.size()) {
        ssize_t n = ::send(fd, all.data() + off, all.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0)
            break;
        off += static_cast<std::size_t>(n);
    }
}

} // namespace

void
TelemetryServer::handleConnection(int fd)
{
    std::string req = readRequest(fd);
    requests_.fetch_add(1, std::memory_order_relaxed);
    // "GET <path> HTTP/1.x" — anything else is a 400/405.
    if (req.rfind("GET ", 0) != 0) {
        sendResponse(fd, "405 Method Not Allowed", "text/plain",
                     "only GET is supported\n");
        return;
    }
    std::size_t sp = req.find(' ', 4);
    std::string path = req.substr(4, sp == std::string::npos
                                         ? std::string::npos
                                         : sp - 4);
    std::shared_ptr<const TelemetrySnapshot> snap = pub_.latest();
    if (path == "/healthz") {
        JsonWriter w;
        w.beginObject();
        w.field("status", "ok");
        w.field("snapshots", snap ? snap->seq : std::uint64_t(0));
        w.endObject();
        sendResponse(fd, "200 OK", "application/json", w.str());
        return;
    }
    if (!snap) {
        // Live but nothing published yet: say so instead of serving
        // an empty document a scraper would ingest as "all zero".
        sendResponse(fd, "503 Service Unavailable", "text/plain",
                     "no snapshot published yet\n");
        return;
    }
    if (path == "/metrics") {
        sendResponse(fd, "200 OK",
                     "text/plain; version=0.0.4; charset=utf-8",
                     snap->metrics.toPrometheus());
    } else if (path == "/metrics.json") {
        sendResponse(fd, "200 OK", "application/json",
                     snap->toJson());
    } else if (path == "/progress") {
        sendResponse(fd, "200 OK", "application/json",
                     snap->progressJson());
    } else {
        sendResponse(fd, "404 Not Found", "text/plain",
                     "unknown path; try /metrics /metrics.json "
                     "/healthz /progress\n");
    }
}

} // namespace asyncclock::obs
