#include "obs/telemetry.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/format.hh"
#include "support/json.hh"
#include "support/logging.hh"

namespace asyncclock::obs {

// ---------------------------------------------------------------------
// TelemetrySnapshot rendering

std::string
TelemetrySnapshot::toJson() const
{
    // Splice the metrics document (itself a complete object) and the
    // publisher's additions into one top-level object.
    std::string inner = metrics.toJson();
    acAssert(inner.size() >= 2 && inner.front() == '{' &&
                 inner.back() == '}',
             "metrics JSON is not an object");
    JsonWriter w;
    w.beginObject();
    w.field("seq", seq);
    w.field("uptime_sec", uptimeSec);
    w.key("rates").beginObject();
    for (const auto &[name, r] : rates)
        w.field(name, r);
    w.endObject();
    w.endObject();
    std::string extras = w.str();
    // {extras...} + {inner...} -> {extras...,inner...}
    if (inner.size() == 2)
        return extras;
    extras.back() = ',';
    return extras + inner.substr(1);
}

std::string
TelemetrySnapshot::progressJson() const
{
    double opsPerSec = 0;
    for (const auto &[name, r] : rates) {
        if (name == "detector.ops_processed") {
            opsPerSec = r;
            break;
        }
    }
    JsonWriter w;
    w.beginObject();
    w.field("seq", seq);
    w.field("uptime_sec", uptimeSec);
    w.field("ops", progress.ops);
    w.field("ops_per_sec", opsPerSec);
    w.field("live_bytes", progress.liveBytes);
    w.field("peak_bytes", progress.peakBytes);
    w.field("races", progress.races);
    w.key("queue_depths").beginArray();
    for (std::size_t d : progress.queueDepths)
        w.value(static_cast<std::uint64_t>(d));
    w.endArray();
    w.endObject();
    return w.str();
}

// ---------------------------------------------------------------------
// SnapshotPublisher

SnapshotPublisher::SnapshotPublisher(MetricsRegistry &reg,
                                     std::uint64_t intervalMs)
    : reg_(reg), interval_(intervalMs),
      start_(std::chrono::steady_clock::now()),
      lastPublish_(start_ - interval_)  // first publishIfDue fires
{
}

bool
SnapshotPublisher::due() const
{
    return std::chrono::steady_clock::now() - lastPublish_ >=
           interval_;
}

void
SnapshotPublisher::publish(const ProgressSample &progress)
{
    auto now = std::chrono::steady_clock::now();
    double dt = std::chrono::duration<double>(now - lastPublish_)
                    .count();
    auto snap = std::make_shared<TelemetrySnapshot>();
    snap->metrics = reg_.snapshot();
    snap->progress = progress;
    snap->seq = ++seq_;
    snap->uptimeSec =
        std::chrono::duration<double>(now - start_).count();
    // Rates: both counter lists are sorted by canonical name, so a
    // single merge walk pairs current values with previous ones.
    if (seq_ > 1 && dt > 0) {
        std::size_t j = 0;
        for (const auto &[name, v] : snap->metrics.counters) {
            while (j < prevCounters_.size() &&
                   prevCounters_[j].first < name)
                ++j;
            std::uint64_t prev =
                (j < prevCounters_.size() &&
                 prevCounters_[j].first == name)
                    ? prevCounters_[j].second
                    : 0;
            if (v > prev)
                snap->rates.emplace_back(
                    name, static_cast<double>(v - prev) / dt);
        }
    }
    prevCounters_ = snap->metrics.counters;
    lastPublish_ = now;
    std::lock_guard<std::mutex> lock(mu_);
    latest_ = std::move(snap);
}

std::shared_ptr<const TelemetrySnapshot>
SnapshotPublisher::latest() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return latest_;
}

// ---------------------------------------------------------------------
// HttpListener

namespace {

/** Reason phrase for the status codes this codebase emits. */
const char *
statusText(int status)
{
    switch (status) {
      case 200: return "OK";
      case 201: return "Created";
      case 202: return "Accepted";
      case 204: return "No Content";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 409: return "Conflict";
      case 410: return "Gone";
      case 413: return "Payload Too Large";
      case 429: return "Too Many Requests";
      case 500: return "Internal Server Error";
      case 503: return "Service Unavailable";
      default: return "Status";
    }
}

/** Append whatever is readable within a 2 s stall budget; false on
 * peer close/stall. */
bool
recvSome(int fd, std::string &buf)
{
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 2000) <= 0)
        return false;
    char tmp[4096];
    ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
    if (n <= 0)
        return false;
    buf.append(tmp, static_cast<std::size_t>(n));
    return true;
}

void
sendAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0)
            break;
        off += static_cast<std::size_t>(n);
    }
}

void
sendResponse(int fd, const HttpResponse &resp)
{
    std::string head = strf("HTTP/1.1 %d %s\r\n"
                            "Content-Type: %s\r\n"
                            "Content-Length: %zu\r\n"
                            "Connection: close\r\n",
                            resp.status, statusText(resp.status),
                            resp.contentType.c_str(),
                            resp.body.size());
    for (const auto &[k, v] : resp.headers)
        head += k + ": " + v + "\r\n";
    head += "\r\n";
    sendAll(fd, head + resp.body);
}

/** Case-insensitive header lookup in the raw header block; false
 * when absent. */
bool
findHeader(const std::string &headers, const char *name,
           std::string &value)
{
    std::string lower;
    lower.reserve(headers.size());
    for (char c : headers)
        lower += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    std::string needle = std::string("\r\n") + name + ":";
    for (char &c : needle)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    std::size_t p = lower.find(needle);
    if (p == std::string::npos)
        return false;
    std::size_t vstart = p + needle.size();
    std::size_t vend = headers.find("\r\n", vstart);
    value = headers.substr(vstart, vend - vstart);
    while (!value.empty() && value.front() == ' ')
        value.erase(value.begin());
    while (!value.empty() &&
           (value.back() == ' ' || value.back() == '\r'))
        value.pop_back();
    return true;
}

} // namespace

std::string
HttpRequest::queryParam(const std::string &key) const
{
    std::size_t pos = 0;
    while (pos < query.size()) {
        std::size_t amp = query.find('&', pos);
        if (amp == std::string::npos)
            amp = query.size();
        std::size_t eq = query.find('=', pos);
        if (eq != std::string::npos && eq < amp &&
            query.compare(pos, eq - pos, key) == 0)
            return query.substr(eq + 1, amp - eq - 1);
        pos = amp + 1;
    }
    return "";
}

HttpListener::HttpListener(Handler handler, unsigned handlerThreads,
                           std::size_t maxBodyBytes)
    : handler_(std::move(handler)),
      handlerThreads_(handlerThreads == 0 ? 1 : handlerThreads),
      maxBodyBytes_(maxBodyBytes)
{
}

HttpListener::~HttpListener()
{
    stop();
}

bool
HttpListener::start(std::uint16_t port)
{
    acAssert(listenFd_ < 0, "HttpListener started twice");
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        warn(strf("telemetry: socket() failed: %s",
                  std::strerror(errno)));
        return false;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(fd, 64) < 0) {
        warn(strf("telemetry: cannot listen on 127.0.0.1:%u: %s",
                  unsigned(port), std::strerror(errno)));
        ::close(fd);
        return false;
    }
    if (::pipe(wakeFds_) != 0) {
        warn(strf("telemetry: pipe() failed: %s",
                  std::strerror(errno)));
        ::close(fd);
        return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) ==
        0)
        port_ = ntohs(addr.sin_port);
    listenFd_ = fd;
    stop_.store(false, std::memory_order_relaxed);
    conns_ = std::make_unique<support::BoundedQueue<int>>(64);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    for (unsigned i = 0; i < handlerThreads_; ++i)
        workers_.emplace_back([this] { handlerLoop(); });
    return true;
}

void
HttpListener::stop()
{
    if (listenFd_ < 0)
        return;
    stop_.store(true, std::memory_order_relaxed);
    // Signal-driven shutdown: one byte on the self-pipe wakes the
    // accept poll immediately — no timeout lap, no sacrificial
    // connection.
    char b = 1;
    [[maybe_unused]] ssize_t n = ::write(wakeFds_[1], &b, 1);
    if (acceptThread_.joinable())
        acceptThread_.join();
    // Closing the queue wakes handler threads; queued connections
    // are drained (answered) before the pop loop exits.
    conns_->close();
    for (std::thread &t : workers_)
        if (t.joinable())
            t.join();
    workers_.clear();
    ::close(listenFd_);
    listenFd_ = -1;
    ::close(wakeFds_[0]);
    ::close(wakeFds_[1]);
    wakeFds_[0] = wakeFds_[1] = -1;
}

void
HttpListener::acceptLoop()
{
    while (!stop_.load(std::memory_order_relaxed)) {
        pollfd pfds[2] = {{listenFd_, POLLIN, 0},
                          {wakeFds_[0], POLLIN, 0}};
        int rc = ::poll(pfds, 2, -1);
        if (rc <= 0)
            continue;
        if (pfds[1].revents & POLLIN)
            break;  // stop() wrote the wake byte
        if (!(pfds[0].revents & POLLIN))
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        if (!conns_->push(fd))
            ::close(fd);
    }
}

void
HttpListener::handlerLoop()
{
    int fd = -1;
    while (conns_->pop(fd)) {
        handleConnection(fd);
        ::close(fd);
    }
}

void
HttpListener::handleConnection(int fd)
{
    // Read the request head (request line + headers).
    std::string raw;
    std::size_t headEnd;
    while ((headEnd = raw.find("\r\n\r\n")) == std::string::npos) {
        if (raw.size() > 64 * 1024 || !recvSome(fd, raw)) {
            requests_.fetch_add(1, std::memory_order_relaxed);
            sendResponse(fd, HttpResponse::text(
                                 400, "malformed request head\n"));
            return;
        }
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    std::string headers = raw.substr(0, headEnd + 2);

    HttpRequest req;
    std::size_t sp1 = headers.find(' ');
    std::size_t sp2 = sp1 == std::string::npos
                          ? std::string::npos
                          : headers.find(' ', sp1 + 1);
    std::size_t eol = headers.find("\r\n");
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        sp2 > eol) {
        sendResponse(fd,
                     HttpResponse::text(400, "bad request line\n"));
        return;
    }
    req.method = headers.substr(0, sp1);
    std::string target = headers.substr(sp1 + 1, sp2 - sp1 - 1);
    std::size_t qmark = target.find('?');
    req.path = target.substr(0, qmark);
    if (qmark != std::string::npos)
        req.query = target.substr(qmark + 1);

    // Body, when declared. curl sends "Expect: 100-continue" for
    // non-trivial uploads and stalls ~1 s without the interim
    // response, so answer it before reading.
    std::string value;
    std::uint64_t contentLength = 0;
    if (findHeader(headers, "Content-Length", value))
        contentLength = std::strtoull(value.c_str(), nullptr, 10);
    if (contentLength > maxBodyBytes_) {
        sendResponse(fd,
                     HttpResponse::text(413, "body too large\n"));
        return;
    }
    if (findHeader(headers, "Expect", value) &&
        value.find("100-continue") != std::string::npos)
        sendAll(fd, "HTTP/1.1 100 Continue\r\n\r\n");
    req.body = raw.substr(headEnd + 4);
    while (req.body.size() < contentLength) {
        std::string more;
        if (!recvSome(fd, more)) {
            // Mid-stream disconnect: the declared body never fully
            // arrived. No response target left — just drop it.
            return;
        }
        req.body += more;
    }
    req.body.resize(contentLength);

    sendResponse(fd, handler_(req));
}

// ---------------------------------------------------------------------
// TelemetryServer

TelemetryServer::TelemetryServer(SnapshotPublisher &pub)
    : pub_(pub),
      listener_([this](const HttpRequest &req) {
          return route(pub_, req);
      })
{
}

TelemetryServer::~TelemetryServer()
{
    stop();
}

bool
TelemetryServer::start(std::uint16_t port)
{
    return listener_.start(port);
}

void
TelemetryServer::stop()
{
    listener_.stop();
}

HttpResponse
TelemetryServer::route(SnapshotPublisher &pub, const HttpRequest &req)
{
    if (req.method != "GET")
        return HttpResponse::text(405, "only GET is supported\n");
    std::shared_ptr<const TelemetrySnapshot> snap = pub.latest();
    if (req.path == "/healthz") {
        JsonWriter w;
        w.beginObject();
        w.field("status", "ok");
        w.field("snapshots", snap ? snap->seq : std::uint64_t(0));
        w.endObject();
        return HttpResponse::json(200, w.str());
    }
    if (!snap) {
        // Live but nothing published yet: say so instead of serving
        // an empty document a scraper would ingest as "all zero".
        return HttpResponse::text(503, "no snapshot published yet\n");
    }
    if (req.path == "/metrics") {
        HttpResponse r;
        r.contentType = "text/plain; version=0.0.4; charset=utf-8";
        r.body = snap->metrics.toPrometheus();
        return r;
    }
    if (req.path == "/metrics.json")
        return HttpResponse::json(200, snap->toJson());
    if (req.path == "/progress")
        return HttpResponse::json(200, snap->progressJson());
    return HttpResponse::text(404,
                              "unknown path; try /metrics "
                              "/metrics.json /healthz /progress\n");
}

} // namespace asyncclock::obs
