/**
 * @file
 * Run-wide metrics registry: named counters, gauges, and fixed-bucket
 * histograms with O(1) hot-path updates.
 *
 * The registry is the one place a run's quantitative state lives.
 * Producers obtain a metric once (create-or-get by name, under a
 * lock) and then update it lock-free: every update is a single
 * relaxed atomic RMW, so the same metric types serve the
 * single-threaded detector hot path and the sharded checker's worker
 * threads. Consumers call snapshot() at any time and get a
 * consistent-enough view (each value is read atomically; there is no
 * cross-metric barrier, by design — observability must not serialize
 * the pipeline).
 *
 * Besides owned metrics, the registry accepts *callback* metrics:
 * a name bound to a function evaluated at snapshot time. This is how
 * the pre-existing poll-only structs (core::DetectorCounters,
 * MemStats) migrate onto the registry without touching their hot
 * paths — the detector keeps bumping plain struct fields, and the
 * registry reads them when somebody asks.
 *
 * Snapshots serialize to a stable JSON schema
 * ("asyncclock-metrics-v1", names sorted) so end-of-run reports are
 * diffable and machine-readable.
 *
 * Metrics may carry *labels* (name{model="async",backend="tree"}) so
 * per-model / per-backend / per-shard series coexist in one registry.
 * A labeled series is addressed by its canonical series name — base
 * name plus a '{k="v",...}' block with keys sorted — built by
 * seriesName(). Registries that never use labels keep emitting the
 * byte-stable v1 JSON; the moment one labeled series exists the
 * snapshot switches to the "asyncclock-metrics-v2" schema, which
 * keeps the v1 sections for unlabeled names and adds a "series"
 * section carrying the parsed label sets. toPrometheus() renders any
 * snapshot in Prometheus text exposition format 0.0.4 for live
 * scraping (see obs/telemetry.hh).
 */

#ifndef ASYNCCLOCK_OBS_METRICS_HH
#define ASYNCCLOCK_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace asyncclock::obs {

/** One metric dimension set: (key, value) pairs. Order on input is
 * irrelevant — seriesName() sorts by key. */
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/**
 * Canonical series name for @p name under @p labels:
 * `name{k1="v1",k2="v2"}` with keys sorted and '"'/'\\' in values
 * backslash-escaped. Empty @p labels yields @p name unchanged. The
 * canonical form is the registry key, so the same (name, labels) pair
 * always resolves to the same metric object.
 */
std::string seriesName(const std::string &name, LabelSet labels);

/** Split a canonical series name into base name and labels. Returns
 * false (outputs untouched) when @p full carries no label block;
 * panics on a malformed block (registry keys are always built by
 * seriesName, so damage means a bug). */
bool splitSeries(const std::string &full, std::string &base,
                 LabelSet &labels);

/** Monotonically increasing event count. */
class Counter
{
  public:
    void
    inc(std::uint64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/** Point-in-time signed level (queue depth, live bytes, ...). */
class Gauge
{
  public:
    void
    set(std::int64_t v)
    {
        v_.store(v, std::memory_order_relaxed);
    }

    void
    add(std::int64_t d)
    {
        v_.fetch_add(d, std::memory_order_relaxed);
    }

    std::int64_t value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> v_{0};
};

/**
 * Fixed-bucket histogram: cumulative-style upper bounds fixed at
 * creation (ascending; an implicit +inf overflow bucket is appended),
 * plus count/sum/min/max. observe() is a handful of relaxed atomics —
 * safe from any thread.
 */
class Histogram
{
  public:
    /** @p bounds are inclusive upper bounds, strictly ascending. */
    explicit Histogram(std::vector<std::uint64_t> bounds);

    void observe(std::uint64_t v);

    const std::vector<std::uint64_t> &bounds() const { return bounds_; }
    /** bounds().size() + 1 buckets; the last is overflow. */
    std::uint64_t
    bucketCount(std::size_t i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    std::uint64_t sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }
    /** 0 when count() == 0. */
    std::uint64_t min() const;
    std::uint64_t max() const
    {
        return max_.load(std::memory_order_relaxed);
    }

  private:
    std::vector<std::uint64_t> bounds_;
    std::vector<std::atomic<std::uint64_t>> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> min_{UINT64_MAX};
    std::atomic<std::uint64_t> max_{0};
};

/** Point-in-time copy of one histogram. */
struct HistogramSnapshot
{
    std::string name;
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
};

/** Point-in-time copy of a whole registry, canonical series names
 * sorted. Labeled series appear under their canonical name
 * (`name{k="v"}`). */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<HistogramSnapshot> histograms;

    /** True when any series carries labels (selects the v2 JSON
     * schema). */
    bool hasLabels() const;

    /** Stable machine-readable report. Schema
     * "asyncclock-metrics-v1" (byte-stable with pre-label registries)
     * when no series is labeled; "asyncclock-metrics-v2" — v1's
     * sections for unlabeled names plus a "series" section with
     * parsed label sets — as soon as one is. */
    std::string toJson() const;

    /** Prometheus text exposition format 0.0.4: metric names
     * sanitized ('.' -> '_') under an "asyncclock_" namespace, one
     * TYPE comment per family, histograms as cumulative _bucket/
     * _sum/_count series with `le` merged into the label set. */
    std::string toPrometheus() const;

    /** Multi-line human-readable dump (counters and gauges only). */
    std::string summary() const;
};

/**
 * The registry. Creation (counter()/gauge()/histogram()/...Fn()) is
 * mutex-guarded; returned references stay valid for the registry's
 * lifetime, so hot paths look metrics up once and update through the
 * reference. Callback metrics must outlive the last snapshot() —
 * detach a producer before destroying it, or stop snapshotting.
 */
class MetricsRegistry
{
  public:
    /** Create-or-get; the same name always yields the same object. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /** @p bounds are ignored when the histogram already exists. */
    Histogram &histogram(const std::string &name,
                         std::vector<std::uint64_t> bounds);

    /** Labeled variants: create-or-get the series
     * `name{labels...}`. The same (name, labels) pair — in any label
     * order — yields the same object. */
    Counter &counter(const std::string &name, const LabelSet &labels);
    Gauge &gauge(const std::string &name, const LabelSet &labels);
    Histogram &histogram(const std::string &name,
                         const LabelSet &labels,
                         std::vector<std::uint64_t> bounds);

    /** Register a counter evaluated at snapshot time. */
    void counterFn(const std::string &name,
                   std::function<std::uint64_t()> fn);
    /** Register a gauge evaluated at snapshot time. */
    void gaugeFn(const std::string &name,
                 std::function<std::int64_t()> fn);

    MetricsSnapshot snapshot() const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
    std::map<std::string, std::function<std::uint64_t()>> counterFns_;
    std::map<std::string, std::function<std::int64_t()>> gaugeFns_;
};

} // namespace asyncclock::obs

namespace asyncclock {
class MemStats;

namespace obs {

/** Publish @p stats as "mem.live.<cat>" / "mem.peak.<cat>" (plus
 * ".total") callback gauges. @p stats must outlive the registry's
 * last snapshot(). */
void registerMemStats(MetricsRegistry &reg, const MemStats &stats);

} // namespace obs
} // namespace asyncclock

#endif // ASYNCCLOCK_OBS_METRICS_HH
