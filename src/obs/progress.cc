#include "obs/progress.hh"

#include "support/format.hh"

namespace asyncclock::obs {

ProgressMeter::ProgressMeter(std::uint64_t everyOps, std::FILE *out)
    : everyOps_(everyOps), next_(everyOps), out_(out),
      lastTime_(std::chrono::steady_clock::now())
{
}

std::string
ProgressMeter::format(const ProgressSample &sample,
                      double opsPerSec) const
{
    std::string line = strf(
        "[progress] %s ops  %8.0f ops/s  live %s (peak %s)  races %s",
        withCommas(sample.ops).c_str(), opsPerSec,
        humanBytes(sample.liveBytes).c_str(),
        humanBytes(sample.peakBytes).c_str(),
        withCommas(sample.races).c_str());
    if (!sample.queueDepths.empty()) {
        line += "  queues [";
        for (std::size_t i = 0; i < sample.queueDepths.size(); ++i) {
            if (i)
                line += ' ';
            line += strf("%zu", sample.queueDepths[i]);
        }
        line += ']';
    }
    return line;
}

void
ProgressMeter::report(const ProgressSample &sample)
{
    auto now = std::chrono::steady_clock::now();
    double secs =
        std::chrono::duration<double>(now - lastTime_).count();
    double opsPerSec =
        secs > 0 ? double(sample.ops - lastOps_) / secs : 0;
    std::fprintf(out_, "%s\n", format(sample, opsPerSec).c_str());
    std::fflush(out_);
    lastTime_ = now;
    lastOps_ = sample.ops;
    next_ = sample.ops + everyOps_;
}

} // namespace asyncclock::obs
