/**
 * @file
 * Live telemetry plane: periodic snapshot publishing plus an
 * in-process HTTP scrape endpoint — and the dependency-free HTTP
 * plumbing (HttpListener) the daemon builds its session API on.
 *
 * The metrics registry's callback metrics read plain fields owned by
 * the detector thread, so a scraper must never touch the registry
 * directly — that would race the hot path (and show up under TSan).
 * The split here keeps scraping safe by construction:
 *
 *  - SnapshotPublisher runs on the *pipeline* thread: the analysis
 *    loop calls publishIfDue() on its own cadence; when the publish
 *    interval has elapsed the publisher snapshots the registry (safe:
 *    same thread that owns the callback-read fields), computes
 *    per-counter rates against the previous snapshot, and swaps an
 *    immutable TelemetrySnapshot behind a mutex.
 *  - TelemetryServer is a thin routing layer over HttpListener. It
 *    serves whatever snapshot is latest — scrapes read frozen data,
 *    never the live registry:
 *      /metrics       Prometheus text exposition format 0.0.4
 *      /metrics.json  the snapshot JSON (v1/v2 schema) + rates
 *      /healthz       liveness: {"status":"ok",...}
 *      /progress      the latest ProgressSample as JSON
 *
 * HttpListener is a blocking-socket HTTP/1.1 server: an accept
 * thread feeds accepted connections through a BoundedQueue to a
 * small pool of handler threads, each serving one request per
 * connection (request line + headers + optional Content-Length body,
 * then close). Shutdown is signal-driven, not poll-based: the accept
 * loop polls {listen fd, wake pipe} with no timeout, and stop()
 * writes one byte to the pipe — the listener exits within one
 * scheduling quantum regardless of traffic, which is what the
 * SIGTERM drain path (trace_analyzer --serve / --daemon) requires.
 */

#ifndef ASYNCCLOCK_OBS_TELEMETRY_HH
#define ASYNCCLOCK_OBS_TELEMETRY_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "obs/progress.hh"
#include "support/bounded_queue.hh"

namespace asyncclock::obs {

// ---------------------------------------------------------------------
// Dependency-free HTTP plumbing

/** One parsed HTTP request. */
struct HttpRequest
{
    std::string method;  ///< "GET", "POST", "DELETE", ...
    std::string path;    ///< target up to '?' (e.g. "/v1/sessions")
    std::string query;   ///< raw query string after '?' ("" if none)
    std::string body;    ///< Content-Length bytes ("" if none)

    /** Value of @p key in the query string, "" when absent.
     * (Values are used verbatim; the daemon's ids/params need no
     * percent-decoding.) */
    std::string queryParam(const std::string &key) const;
};

/** One HTTP response; the listener renders status line + headers. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "text/plain";
    std::string body;
    /** Extra headers (e.g. {"Retry-After", "1"}). */
    std::vector<std::pair<std::string, std::string>> headers;

    static HttpResponse
    json(int status, std::string body)
    {
        HttpResponse r;
        r.status = status;
        r.contentType = "application/json";
        r.body = std::move(body);
        return r;
    }
    static HttpResponse
    text(int status, std::string body)
    {
        HttpResponse r;
        r.status = status;
        r.body = std::move(body);
        return r;
    }
};

/**
 * Blocking-socket HTTP/1.1 listener on 127.0.0.1. The handler runs
 * on the listener's handler threads — it must be thread-safe when
 * `handlerThreads > 1` and must not block unboundedly (a stuck
 * handler occupies one thread; the admission timeouts the daemon
 * uses bound every wait). Requests with bodies are read up to
 * maxBodyBytes (413 beyond that); `Expect: 100-continue` is honored
 * so curl uploads don't stall.
 */
class HttpListener
{
  public:
    using Handler = std::function<HttpResponse(const HttpRequest &)>;

    explicit HttpListener(Handler handler,
                          unsigned handlerThreads = 1,
                          std::size_t maxBodyBytes = 8u << 20);
    ~HttpListener();

    HttpListener(const HttpListener &) = delete;
    HttpListener &operator=(const HttpListener &) = delete;

    /** Bind 127.0.0.1:@p port (0 = kernel-assigned) and start the
     * accept + handler threads. False (with a warn) when the bind
     * fails. */
    bool start(std::uint16_t port);

    /** The bound port (valid after a successful start()). */
    std::uint16_t port() const { return port_; }

    /** Requests served so far (any status). */
    std::uint64_t requestsServed() const
    {
        return requests_.load(std::memory_order_relaxed);
    }

    /** Stop accepting, drain in-flight handlers, join all threads.
     * Signal-driven (self-pipe wakeup): returns promptly even when
     * no connection ever arrives. Idempotent; the destructor calls
     * it. */
    void stop();

  private:
    void acceptLoop();
    void handlerLoop();
    void handleConnection(int fd);

    Handler handler_;
    unsigned handlerThreads_;
    std::size_t maxBodyBytes_;
    int listenFd_ = -1;
    int wakeFds_[2] = {-1, -1};  ///< self-pipe: [read, write]
    std::uint16_t port_ = 0;
    std::thread acceptThread_;
    std::vector<std::thread> workers_;
    /** Accepted connections awaiting a handler thread; recreated on
     * every start() (close() is terminal for a BoundedQueue). */
    std::unique_ptr<support::BoundedQueue<int>> conns_;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> requests_{0};
};

/** One published, immutable view of a run's telemetry. */
struct TelemetrySnapshot
{
    MetricsSnapshot metrics;
    /** Per-second rate of every counter that moved since the
     * previous publish, keyed by canonical series name. */
    std::vector<std::pair<std::string, double>> rates;
    ProgressSample progress;
    /** Publish sequence number (1 = first). */
    std::uint64_t seq = 0;
    /** Seconds since the publisher was created. */
    double uptimeSec = 0;

    /** /metrics.json body: metrics JSON with "rates", "seq", and
     * "uptime_sec" spliced into the top-level object. */
    std::string toJson() const;

    /** /progress body. */
    std::string progressJson() const;
};

class SnapshotPublisher
{
  public:
    /** Snapshots @p reg at most every @p intervalMs (when asked).
     * @p reg must outlive the publisher. */
    explicit SnapshotPublisher(MetricsRegistry &reg,
                               std::uint64_t intervalMs = 250);

    /** Cheap time check: has the publish interval elapsed? Call from
     * the pipeline loop on a coarse op cadence. */
    bool due() const;

    /** Unconditionally snapshot, compute rates, and swap the
     * published snapshot. Must be called from the thread that owns
     * the registry's callback-read state. */
    void publish(const ProgressSample &progress);

    /** publish() iff due(). True when a publish happened. */
    bool
    publishIfDue(const ProgressSample &progress)
    {
        if (!due())
            return false;
        publish(progress);
        return true;
    }

    /** Latest published snapshot; null before the first publish.
     * Immutable and safe to read from any thread. */
    std::shared_ptr<const TelemetrySnapshot> latest() const;

  private:
    MetricsRegistry &reg_;
    std::chrono::milliseconds interval_;
    std::chrono::steady_clock::time_point start_;
    std::chrono::steady_clock::time_point lastPublish_;
    /** Counter values at the previous publish (for rates). */
    std::vector<std::pair<std::string, std::uint64_t>> prevCounters_;
    std::uint64_t seq_ = 0;

    mutable std::mutex mu_;
    std::shared_ptr<const TelemetrySnapshot> latest_;
};

class TelemetryServer
{
  public:
    /** Serves @p pub's latest snapshot. @p pub must outlive the
     * server. */
    explicit TelemetryServer(SnapshotPublisher &pub);
    ~TelemetryServer();

    TelemetryServer(const TelemetryServer &) = delete;
    TelemetryServer &operator=(const TelemetryServer &) = delete;

    /**
     * Bind 127.0.0.1:@p port (0 = kernel-assigned), start the
     * listener. False (with a warn) when the bind fails — the run
     * proceeds unobservable rather than dying.
     */
    bool start(std::uint16_t port);

    /** The bound port (valid after a successful start()). */
    std::uint16_t port() const { return listener_.port(); }

    /** Requests served so far (any status). */
    std::uint64_t requestsServed() const
    {
        return listener_.requestsServed();
    }

    /** Stop the listener and join its threads. Signal-driven and
     * prompt (see HttpListener::stop). Idempotent; the destructor
     * calls it. */
    void stop();

    /** Route one telemetry request ("/metrics", "/healthz", ...)
     * against @p pub — shared with the daemon, whose endpoint mixes
     * these paths into its session API. */
    static HttpResponse route(SnapshotPublisher &pub,
                              const HttpRequest &req);

  private:
    SnapshotPublisher &pub_;
    HttpListener listener_;
};

} // namespace asyncclock::obs

#endif // ASYNCCLOCK_OBS_TELEMETRY_HH
