/**
 * @file
 * Live telemetry plane: periodic snapshot publishing plus an
 * in-process HTTP scrape endpoint.
 *
 * The metrics registry's callback metrics read plain fields owned by
 * the detector thread, so a scraper must never touch the registry
 * directly — that would race the hot path (and show up under TSan).
 * The split here keeps scraping safe by construction:
 *
 *  - SnapshotPublisher runs on the *pipeline* thread: the analysis
 *    loop calls publishIfDue() on its own cadence; when the publish
 *    interval has elapsed the publisher snapshots the registry (safe:
 *    same thread that owns the callback-read fields), computes
 *    per-counter rates against the previous snapshot, and swaps an
 *    immutable TelemetrySnapshot behind a mutex.
 *  - TelemetryServer is a small dependency-free blocking-socket HTTP
 *    listener on a dedicated thread. It serves whatever snapshot is
 *    latest — scrapes read frozen data, never the live registry:
 *      /metrics       Prometheus text exposition format 0.0.4
 *      /metrics.json  the snapshot JSON (v1/v2 schema) + rates
 *      /healthz       liveness: {"status":"ok",...}
 *      /progress      the latest ProgressSample as JSON
 *
 * The listener handles one request per connection (read request
 * line, write response, close) and polls its accept socket with a
 * short timeout so stop() never hangs on a blocking accept. This is
 * the obs layer "exported as a live endpoint instead of one-shot
 * JSON" that the daemon-mode roadmap item requires.
 */

#ifndef ASYNCCLOCK_OBS_TELEMETRY_HH
#define ASYNCCLOCK_OBS_TELEMETRY_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "obs/progress.hh"

namespace asyncclock::obs {

/** One published, immutable view of a run's telemetry. */
struct TelemetrySnapshot
{
    MetricsSnapshot metrics;
    /** Per-second rate of every counter that moved since the
     * previous publish, keyed by canonical series name. */
    std::vector<std::pair<std::string, double>> rates;
    ProgressSample progress;
    /** Publish sequence number (1 = first). */
    std::uint64_t seq = 0;
    /** Seconds since the publisher was created. */
    double uptimeSec = 0;

    /** /metrics.json body: metrics JSON with "rates", "seq", and
     * "uptime_sec" spliced into the top-level object. */
    std::string toJson() const;

    /** /progress body. */
    std::string progressJson() const;
};

class SnapshotPublisher
{
  public:
    /** Snapshots @p reg at most every @p intervalMs (when asked).
     * @p reg must outlive the publisher. */
    explicit SnapshotPublisher(MetricsRegistry &reg,
                               std::uint64_t intervalMs = 250);

    /** Cheap time check: has the publish interval elapsed? Call from
     * the pipeline loop on a coarse op cadence. */
    bool due() const;

    /** Unconditionally snapshot, compute rates, and swap the
     * published snapshot. Must be called from the thread that owns
     * the registry's callback-read state. */
    void publish(const ProgressSample &progress);

    /** publish() iff due(). True when a publish happened. */
    bool
    publishIfDue(const ProgressSample &progress)
    {
        if (!due())
            return false;
        publish(progress);
        return true;
    }

    /** Latest published snapshot; null before the first publish.
     * Immutable and safe to read from any thread. */
    std::shared_ptr<const TelemetrySnapshot> latest() const;

  private:
    MetricsRegistry &reg_;
    std::chrono::milliseconds interval_;
    std::chrono::steady_clock::time_point start_;
    std::chrono::steady_clock::time_point lastPublish_;
    /** Counter values at the previous publish (for rates). */
    std::vector<std::pair<std::string, std::uint64_t>> prevCounters_;
    std::uint64_t seq_ = 0;

    mutable std::mutex mu_;
    std::shared_ptr<const TelemetrySnapshot> latest_;
};

class TelemetryServer
{
  public:
    /** Serves @p pub's latest snapshot. @p pub must outlive the
     * server. */
    explicit TelemetryServer(SnapshotPublisher &pub);
    ~TelemetryServer();

    TelemetryServer(const TelemetryServer &) = delete;
    TelemetryServer &operator=(const TelemetryServer &) = delete;

    /**
     * Bind 127.0.0.1:@p port (0 = kernel-assigned), start the
     * listener thread. False (with a warn) when the bind fails — the
     * run proceeds unobservable rather than dying.
     */
    bool start(std::uint16_t port);

    /** The bound port (valid after a successful start()). */
    std::uint16_t port() const { return port_; }

    /** Requests served so far (any status). */
    std::uint64_t requestsServed() const
    {
        return requests_.load(std::memory_order_relaxed);
    }

    /** Stop the listener and join its thread. Idempotent; the
     * destructor calls it. */
    void stop();

  private:
    void serveLoop();
    void handleConnection(int fd);

    SnapshotPublisher &pub_;
    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::thread thread_;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> requests_{0};
};

} // namespace asyncclock::obs

#endif // ASYNCCLOCK_OBS_TELEMETRY_HH
