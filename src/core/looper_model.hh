/**
 * @file
 * The looper causality model (paper sections 3-5), plugged into the
 * model-agnostic DetectorEngine.
 *
 * Single-pass, non-graph-based happens-before inference for the
 * extended Android causality model. Per chain it maintains a vector
 * clock, one AsyncClock per queue (latest causally-preceding send per
 * chain), generalized AsyncClocks for Rule ATOMIC, and async-before
 * send lists for the non-total Table 1 priority function. An event's
 * logical time is resolved at its begin by joining the end times of
 * the predecessors named by the AsyncClock at its send (section 3.2),
 * walking the async-before lists with the paper's early-stopping
 * rules for tagged events (section 5.3).
 *
 * Scalability (section 4): event metadata is reference-counted and
 * reclaimed when heirless; multi-path reduction fires at event end;
 * the time-window approximation ages out old events into a per-queue
 * time-window clock (TC), invalidates their metadata, and retires
 * idle chains for reuse; periodic GC sweeps drop dead AsyncClock
 * entries and trims the lists. Sparse representations throughout.
 *
 * Deviations from the paper, made for soundness under the *extended*
 * model and documented in DESIGN.md:
 *  - the begin-time AC reduction ("remove all causal predecessors of
 *    E from AC_q") only drops an entry when the async-before walk
 *    verified that everything at or below it is causally inherited —
 *    unconditional dropping is only sound for the base FIFO model;
 *  - async-before list records hold counted references; records
 *    dominated within their priority class (same kind+flag, equal
 *    time constraint — every plain FIFO post) are dropped eagerly,
 *    which is what keeps FIFO events reclaimable by refcount.
 */

#ifndef ASYNCCLOCK_CORE_LOOPER_MODEL_HH
#define ASYNCCLOCK_CORE_LOOPER_MODEL_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "core/config.hh"
#include "core/engine.hh"
#include "core/meta.hh"
#include "core/model.hh"
#include "trace/source.hh"
#include "trace/trace.hh"

namespace asyncclock::core {

class LooperModel : public CausalityModel
{
  public:
    explicit LooperModel(DetectorEngine &engine);
    ~LooperModel() override;

    ModelKind kind() const override { return ModelKind::Looper; }
    void syncEntities() override;
    bool admitOp(const trace::Operation &op) override;
    void applyOp(const trace::Operation &op, trace::OpId id) override;
    void ageWindow(std::uint64_t now) override;
    void gcSweep() override;
    void relieveMemoryPressure(std::uint64_t now) override;
    void syncDerivedCounters() override;
    std::uint32_t numChains() const override
    {
        return static_cast<std::uint32_t>(chains_.size());
    }
    std::uint64_t modelBytes() const override;
    void sampleMemory(MemStats &stats) const override;
    void registerModelMetrics(obs::MetricsRegistry &reg) override;

  private:
    using VectorClock = clock::VectorClock;
    using ChainId = clock::ChainId;
    using Epoch = clock::Epoch;

    /** One record of an async-before list: an event sent from this
     * chain to this queue. */
    struct SendRec
    {
        EventRef ev;
        clock::Tick sendTick = 0;
        trace::SendAttrs attrs{};
        bool dead = false;  ///< dominance-dropped; skip and GC
        /** Early-stopping case 2 (section 5.3): every earlier record
         * of the same class has time <= ours, so once we match a
         * target, everything deeper in our class is covered. */
        bool prefixMax = false;
    };

    /** Async-before list: sends from one chain to one queue, in send
     * order (sorted by sendTick). */
    struct SendList
    {
        std::vector<SendRec> recs;
        std::uint32_t deadCount = 0;
        /** Live records per priority class (drives the "fully
         * covered" determination of the begin-time AC reduction and
         * the per-class walk skip). */
        std::uint32_t liveCount[trace::kNumPriorityClasses] = {};
        /** Index+1 of the newest live rec per priority class, and its
         * time constraint; drives dominance-dropping. */
        std::uint32_t lastIdx[trace::kNumPriorityClasses] = {};
        /** Largest time constraint seen per class (prefixMax). */
        std::uint64_t maxTime[trace::kNumPriorityClasses] = {};

        std::uint64_t
        byteSize() const
        {
            return sizeof(SendList) +
                   recs.capacity() * sizeof(SendRec);
        }
    };

    struct ChainState
    {
        clock::Tick tick = 0;
        VectorClock vc;
        ACSet acs;
        AtomicSet atomic;
        FlatMap<SendList> sendLists;  ///< queue -> list
        EventRef lastEvent;
        bool lastEnded = true;
        bool isBinder = false;
        bool retired = false;
        /** 0 = thread chain, 1..3 = FIFO chain level, 255 = greedy. */
        std::uint8_t level = 255;
        /** FIFO chain decomposition: queue -> child FIFO chain for
         * plain-FIFO events sent from this chain. */
        FlatMap<clock::ChainId> fifoChild;
        /** Back-reference for retirement cleanup: the (parent chain,
         * queue) this FIFO chain serves. */
        clock::ChainId fifoParent = trace::kInvalidId;
        trace::QueueId fifoQueue = trace::kInvalidId;

        std::uint64_t byteSize() const;
    };

    /** Snapshot passed across fork/signal edges. */
    struct Snapshot
    {
        VectorClock vc;
        ACSet acs;
        AtomicSet atomic;

        std::uint64_t
        byteSize() const
        {
            return vc.byteSize() + acSetBytes(acs) +
                   atomicSetBytes(atomic);
        }
    };

    /** Time-window clock: causal successor of every aged-out event
     * of a queue, inherited by every new event on it (section 4.1).
     * Stamped with a version epoch on a dedicated marker chain so a
     * begin whose clock already (transitively) includes the current
     * version skips the O(|TC|) join — after the first inheritor,
     * FIFO successors carry it for free. */
    struct WindowClock : Snapshot
    {
        ChainId marker = trace::kInvalidId;
        clock::Tick version = 0;
    };

    /** Entity tables seen so far by the engine's source. */
    const trace::TraceMeta &meta() const { return engine_.meta(); }

    // ----- robustness -----------------------------------------------
    /** Entity life cycles enforced by the admission gate. Decode-level
     * skip-and-count can hand the detector protocol-invalid sequences
     * (an EventBegin whose Send was skipped); the gate drops them at
     * the door — with a budget — so the resolution machinery only ever
     * sees ops consistent with its invariants. */
    enum class ThreadPhase : std::uint8_t { Unstarted, Running, Ended };
    enum class EventPhase : std::uint8_t { Unsent, Pending, Running, Done };

    /** Count a tolerated causality-invariant violation; charges the
     * same budget as dropped ops. */
    void noteAnomaly(const char *what);
    /** Rung 1: compact every async-before list (tombstones out,
     * capacity returned) and run a full sweep. */
    void aggressiveSweep();

    // ----- op handlers ----------------------------------------------
    void onThreadBegin(const trace::Operation &op);
    void onThreadEnd(const trace::Operation &op);
    void onSend(const trace::Operation &op);
    void onRemove(const trace::Operation &op);
    void onEventBegin(const trace::Operation &op, trace::OpId id);
    void onEventEnd(const trace::Operation &op);

    // ----- resolution helpers ---------------------------------------
    /** Scratch result of one begin resolution. */
    struct Resolution
    {
        VectorClock vc;
        ACSet acs;
        AtomicSet atomic;
        /** Walk starts: the AsyncClock at send(E) for E's own queue,
         * snapshotted before any non-send-ordered state is merged.
         * The entry's event is processed directly (its async-before
         * record may have been dominance-dropped); records strictly
         * below its tick are walked. */
        std::vector<std::pair<clock::ChainId, ACEntry>> starts;
        /** Immediate predecessor events (greedy chain candidates). */
        std::vector<EventRef> preds;
        /** Per chain: walk reached the bottom with everything
         * inherited (enables the begin-time AC reduction). */
        FlatMap<std::uint8_t> fullyCovered;
        FlatMap<clock::Tick> walkedTick;
    };

    /** Inherit a predecessor's end state into @p r, re-materializing
     * the predecessor's own slot in its queue's AsyncClock (stripped
     * from its end snapshot to avoid a self-reference cycle). */
    void inheritEnd(Resolution &r, const EventRef &pred);
    /** Walk async-before lists for a looper-queue event. */
    void priorityResolve(EventMeta *m, Resolution &r);
    /** Inherit begin states of binder predecessors. */
    void binderResolve(EventMeta *m, Resolution &r);
    /** Sent-at-front fixpoint step; true if anything was joined. */
    bool atFrontFold(EventMeta *m, Resolution &r);
    /** ATOMIC fold for an op of an event on @p looper; true if
     * anything was joined. Clears folded entries. */
    bool atomicFold(trace::ThreadId looper, const EventMeta *self,
                    VectorClock &vc, ACSet &acs, AtomicSet &atomic);
    /** Lazily resolve a removed event's logical time (section 5.3). */
    void resolveRemoved(EventMeta *m);

    ChainId newChain();
    ChainId chooseChain(EventMeta *m, const Resolution &r);
    /** The chain executing @p task right now. */
    ChainId chainOf(trace::Task task) const;

    Epoch tickChain(ChainId c);
    void joinIntoChain(ChainId c, const Snapshot &snap);
    /** Fold ATOMIC entries if @p task is an event on a looper. */
    void maybeAtomicFold(trace::Task task);

    // ----- scalability ----------------------------------------------
    /** Drop heirless refcount-1 predecessors from @p m's end clock
     * (multi-path reduction, section 4.1). When @p deferred is given,
     * the dropped references are moved there instead of destroyed
     * inline — required while walking the meta registry, where an
     * inline destruction cascade could free the meta under iteration
     * (metadata reference cycles are legal). */
    void multiPathReduce(EventMeta *m,
                         std::vector<EventRef> *deferred = nullptr);
    /** Fold the oldest ended event into its queue's window clock. */
    void ageOneEnded();
    /** Rung 3: age out every ended event regardless of window age. */
    void drainEndedWindow();
    void retireChain(ChainId c);
    /** Begin-time dominance drop of the record adjacent below event
     * @p m's own async-before record (see definition for the safety
     * argument). */
    void dominanceDrop(EventMeta *m);

    DetectorEngine &engine_;
    /** Engine-owned services, bound once (the moved resolution code
     * reads these under their pre-split member names). */
    report::AccessChecker &checker_;
    DetectorConfig &cfg_;
    DetectorCounters &counters_;

    std::vector<ChainState> chains_;
    std::vector<ChainId> threadChain_;       ///< per thread
    std::vector<ChainId> eventChain_;        ///< per event (resolved)
    std::vector<Snapshot> forkSnap_;         ///< pending fork state
    std::vector<bool> forkSnapValid_;
    std::vector<Snapshot> threadEndState_;   ///< per ended thread
    std::vector<Epoch> threadEndEpoch_;
    std::vector<Snapshot> handleState_;      ///< per handle
    std::vector<Snapshot> looperBegin_;      ///< per looper thread
    /** Epoch of each looper's ThreadBegin: lets event begins skip the
     * LOOPBEGIN join when already inherited transitively. */
    std::vector<Epoch> looperBeginEpoch_;
    std::vector<VectorClock> looperEndAccum_;

    /** Active metadata handles: send->begin (pending) and
     * begin->end (running). Dropped at end so reference counting can
     * reclaim heirless events. */
    std::vector<FlatMap<EventRef>> pending_;  ///< per queue
    FlatMap<EventRef> running_;               ///< event id -> ref

    std::vector<WindowClock> windowClock_;    ///< per queue
    /** Ended events in end-time order, for aging. Weak so reference
     * counting can still reclaim heirless events inside the window. */
    std::deque<std::pair<std::uint64_t, WeakPtr<EventMeta>>>
        endedQueue_;

    /** Retired chains available for reuse, per queue (the new event
     * joined that queue's window clock, which orders it after the
     * retired chain's last event). */
    std::vector<std::vector<ChainId>> freeByQueue_;
    std::vector<ChainId> binderChains_;

    /** With reclaimHeirless off ("no reclaiming" in Fig 9a), every
     * event's metadata is pinned for the whole analysis. */
    std::vector<EventRef> pinned_;

    MetaRegistry registry_;

    std::vector<std::uint8_t> threadPhase_;   ///< per thread
    std::vector<std::uint8_t> eventPhase_;    ///< per event
};

} // namespace asyncclock::core

#endif // ASYNCCLOCK_CORE_LOOPER_MODEL_HH
