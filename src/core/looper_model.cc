#include "core/looper_model.hh"

#include <algorithm>

#include "support/format.hh"
#include "support/logging.hh"

namespace asyncclock::core {

using clock::Epoch;
using trace::EventId;
using trace::kInvalidId;
using trace::OpId;
using trace::OpKind;
using trace::Operation;
using trace::QueueKind;
using trace::SendKind;
using trace::Task;
using trace::ThreadId;

namespace {

/** Is this a plain FIFO post (untagged Handler.post)? */
bool
plainFifo(const trace::SendAttrs &attrs)
{
    return attrs.kind == SendKind::Delayed && attrs.time == 0 &&
           !attrs.async;
}

/** Bitmask of predecessor classes that can order before a target of
 * class @p targetCls (the non-false rows of that Table 1 column). */
unsigned
relevantClasses(unsigned targetCls)
{
    switch (targetCls) {
      case 0: return 0b010001;  // Delayed+Async: DA, FA
      case 1: return 0b110011;  // Delayed+Sync: DA, DS, FA, FS
      case 2: return 0b010100;  // AtTime+Async: TA, FA
      case 3: return 0b111100;  // AtTime+Sync: TA, TS, FA, FS
      default: return 0;        // AtFront: nothing precedes it
    }
}

/**
 * Early-stopping "case 1" (section 5.3): once the walk meets a send
 * with the target's kind, sync, and an equal time constraint, every
 * deeper matching send is causally before it, so the walk may stop.
 */
bool
stopsWalk(const trace::SendAttrs &found, const trace::SendAttrs &target)
{
    return !found.async && found.kind == target.kind &&
           found.time == target.time &&
           (found.kind == SendKind::Delayed ||
            found.kind == SendKind::AtTime);
}

} // namespace

std::uint64_t
LooperModel::ChainState::byteSize() const
{
    std::uint64_t total = sizeof(ChainState) + vc.byteSize() +
                          acSetBytes(acs) + atomicSetBytes(atomic) +
                          sendLists.byteSize() + fifoChild.byteSize();
    sendLists.forEach([&total](std::uint32_t, const SendList &list) {
        total += list.byteSize();
    });
    return total;
}

LooperModel::LooperModel(DetectorEngine &engine)
    : engine_(engine), checker_(engine.checker()), cfg_(engine.cfg()),
      counters_(engine.countersMut())
{
}

void
LooperModel::syncEntities()
{
    const trace::TraceMeta &m = meta();
    std::size_t nt = m.threads().size();
    if (threadChain_.size() < nt) {
        threadChain_.resize(nt, kInvalidId);
        forkSnap_.resize(nt);
        forkSnapValid_.resize(nt, false);
        threadEndState_.resize(nt);
        threadEndEpoch_.resize(nt);
        looperBegin_.resize(nt);
        looperBeginEpoch_.resize(nt);
        looperEndAccum_.resize(nt);
    }
    if (threadPhase_.size() < nt)
        threadPhase_.resize(
            nt, static_cast<std::uint8_t>(ThreadPhase::Unstarted));
    std::size_t ne = m.events().size();
    if (eventChain_.size() < ne)
        eventChain_.resize(ne, kInvalidId);
    if (eventPhase_.size() < ne)
        eventPhase_.resize(
            ne, static_cast<std::uint8_t>(EventPhase::Unsent));
    std::size_t nq = m.queues().size();
    if (pending_.size() < nq) {
        pending_.resize(nq);
        windowClock_.resize(nq);
        freeByQueue_.resize(nq);
    }
    std::size_t nh = m.handles().size();
    if (handleState_.size() < nh)
        handleState_.resize(nh);
}

LooperModel::~LooperModel()
{
    // Event metadata may form reference cycles (mutual AsyncClock
    // entries), which plain member destruction would leak. Drain
    // every meta's outgoing references into one vector first — moving
    // them frees nothing and keeps the registry stable — then let the
    // vector's destruction cascade; with no cycles left, the
    // remaining references die with the model's members.
    std::vector<EventRef> drained;
    auto drainACs = [&drained](ACSet &acs) {
        acs.forEach([&drained](std::uint32_t, AsyncClock &ac) {
            ac.eraseIf([&drained](ChainId, ACEntry &entry) {
                if (entry.ev.hasRef())
                    drained.push_back(std::move(entry.ev));
                return true;
            });
        });
    };
    auto drainAtomic = [&drained](AtomicSet &ats) {
        ats.forEach([&drained](std::uint32_t, AtomicClock &ac) {
            ac.eraseIf([&drained](ChainId, AtomicEntry &entry) {
                if (entry.ev.hasRef())
                    drained.push_back(std::move(entry.ev));
                return true;
            });
        });
    };
    for (EventMeta *m = registry_.head; m; m = m->next) {
        drainACs(m->sendACs);
        drainACs(m->endACs);
        drainACs(m->beginACs);
        drainAtomic(m->sendAtomic);
        drainAtomic(m->endAtomic);
        drainAtomic(m->beginAtomic);
        for (EventRef &ref : m->sentAtFront)
            drained.push_back(std::move(ref));
        m->sentAtFront.clear();
    }
}

clock::ChainId
LooperModel::newChain()
{
    chains_.emplace_back();
    ++counters_.chainsCreated;
    return static_cast<ChainId>(chains_.size() - 1);
}

clock::ChainId
LooperModel::chainOf(Task task) const
{
    return task.isEvent() ? eventChain_[task.index()]
                          : threadChain_[task.index()];
}

Epoch
LooperModel::tickChain(ChainId c)
{
    ChainState &ch = chains_[c];
    clock::Tick t = ++ch.tick;
    ch.vc.tick(c, t);
    ++counters_.clockTicks;
    return {c, t};
}

void
LooperModel::joinIntoChain(ChainId c, const Snapshot &snap)
{
    ChainState &ch = chains_[c];
    ch.vc.joinWith(snap.vc);
    ++counters_.clockJoins;
    joinACSet(ch.acs, snap.acs);
    joinAtomicSet(ch.atomic, snap.atomic);
}

bool
LooperModel::admitOp(const Operation &op)
{
    const char *why = nullptr;
    if (op.task.isEvent()) {
        auto ph = static_cast<EventPhase>(eventPhase_[op.task.index()]);
        if (op.kind == OpKind::EventBegin) {
            if (ph != EventPhase::Pending)
                why = "event begin without a pending send";
        } else if (ph != EventPhase::Running) {
            why = op.kind == OpKind::EventEnd
                      ? "event end without a begin"
                      : "op from an event that is not running";
        }
    } else {
        auto ph = static_cast<ThreadPhase>(threadPhase_[op.task.index()]);
        if (op.kind == OpKind::ThreadBegin) {
            if (ph != ThreadPhase::Unstarted)
                why = "duplicate thread begin";
        } else if (ph != ThreadPhase::Running) {
            why = ph == ThreadPhase::Unstarted
                      ? "op from a thread before its begin"
                      : "op from a thread after its end";
        }
    }
    if (!why && op.kind == OpKind::Send &&
        static_cast<EventPhase>(eventPhase_[op.event]) !=
            EventPhase::Unsent) {
        why = "duplicate send of an event";
    }
    if (!why && op.kind == OpKind::RemoveEvent &&
        static_cast<EventPhase>(eventPhase_[op.event]) !=
            EventPhase::Pending) {
        why = "remove of an event that is not pending";
    }
    if (!why && (op.kind == OpKind::TaskSpawn ||
                 op.kind == OpKind::TaskAwait ||
                 op.kind == OpKind::ScopeEnd ||
                 op.kind == OpKind::TaskCancel)) {
        why = "async-dialect op under the looper model";
    }
    if (why) {
        ++counters_.invalidOpsDropped;
        warnRateLimited(
            "detector.invalid_op",
            strf("dropping protocol-invalid op at index %llu: %s",
                 static_cast<unsigned long long>(
                     engine_.opsProcessed()),
                 why));
        if (counters_.invalidOpsDropped > cfg_.maxInvalidOps) {
            engine_.failRun(Status::error(
                ErrCode::BudgetExceeded,
                strf("invalid-op budget exhausted after %llu dropped "
                     "operations; last: %s",
                     static_cast<unsigned long long>(
                         counters_.invalidOpsDropped),
                     why),
                engine_.opsProcessed()));
        }
        return false;
    }
    switch (op.kind) {
      case OpKind::ThreadBegin:
        threadPhase_[op.task.index()] =
            static_cast<std::uint8_t>(ThreadPhase::Running);
        break;
      case OpKind::ThreadEnd:
        threadPhase_[op.task.index()] =
            static_cast<std::uint8_t>(ThreadPhase::Ended);
        break;
      case OpKind::Send:
        eventPhase_[op.event] =
            static_cast<std::uint8_t>(EventPhase::Pending);
        break;
      case OpKind::RemoveEvent:
        eventPhase_[op.event] =
            static_cast<std::uint8_t>(EventPhase::Done);
        break;
      case OpKind::EventBegin:
        eventPhase_[op.task.index()] =
            static_cast<std::uint8_t>(EventPhase::Running);
        break;
      case OpKind::EventEnd:
        eventPhase_[op.task.index()] =
            static_cast<std::uint8_t>(EventPhase::Done);
        break;
      default:
        break;
    }
    return true;
}

void
LooperModel::noteAnomaly(const char *what)
{
    ++counters_.causalAnomalies;
    warnRateLimited("detector.causal_anomaly",
                    strf("tolerating causality anomaly: %s", what));
    // Anomalies are downstream echoes of dropped/reordered ops;
    // charge them to the same budget so a thoroughly scrambled trace
    // fails fast instead of producing a confident garbage report.
    if (counters_.causalAnomalies + counters_.invalidOpsDropped >
            cfg_.maxInvalidOps &&
        engine_.runStatus().isOk()) {
        engine_.failRun(Status::error(
            ErrCode::BudgetExceeded,
            strf("anomaly budget exhausted (%llu anomalies, %llu "
                 "dropped ops); last: %s",
                 static_cast<unsigned long long>(
                     counters_.causalAnomalies),
                 static_cast<unsigned long long>(
                     counters_.invalidOpsDropped),
                 what),
            engine_.opsProcessed()));
    }
}

void
LooperModel::applyOp(const Operation &op, OpId id)
{
    switch (op.kind) {
      case OpKind::ThreadBegin:
        onThreadBegin(op);
        break;
      case OpKind::ThreadEnd:
        onThreadEnd(op);
        break;
      case OpKind::Fork:
        {
            ChainId c = chainOf(op.task);
            tickChain(c);
            ChainState &ch = chains_[c];
            Snapshot &snap = forkSnap_[op.target];
            snap.vc = ch.vc;
            snap.acs = ch.acs;
            snap.atomic = ch.atomic;
            forkSnapValid_[op.target] = true;
        }
        break;
      case OpKind::Join:
        {
            ChainId c = chainOf(op.task);
            joinIntoChain(c, threadEndState_[op.target]);
            tickChain(c);
            maybeAtomicFold(op.task);
        }
        break;
      case OpKind::Signal:
        {
            ChainId c = chainOf(op.task);
            tickChain(c);
            ChainState &ch = chains_[c];
            Snapshot &h = handleState_[op.target];
            h.vc.joinWith(ch.vc);
            ++counters_.clockJoins;
            joinACSet(h.acs, ch.acs);
            joinAtomicSet(h.atomic, ch.atomic);
        }
        break;
      case OpKind::Wait:
        {
            ChainId c = chainOf(op.task);
            joinIntoChain(c, handleState_[op.target]);
            tickChain(c);
            maybeAtomicFold(op.task);
        }
        break;
      case OpKind::Read:
      case OpKind::Write:
        {
            ChainId c = chainOf(op.task);
            report::Access acc;
            acc.op = id;
            acc.epoch = tickChain(c);
            acc.site = op.site;
            acc.task = op.task;
            acc.isWrite = op.kind == OpKind::Write;
            PhaseScope timed(engine_, Phase::RaceCheck);
            checker_.onAccess(op.target, acc, chains_[c].vc);
        }
        break;
      case OpKind::Send:
        onSend(op);
        break;
      case OpKind::RemoveEvent:
        onRemove(op);
        break;
      case OpKind::EventBegin:
        {
            // Event-begin clock resolution is the join-dominated
            // phase of the looper model (window/LOOPBEGIN/multi-path
            // joins all happen here).
            PhaseScope timed(engine_, Phase::ClockJoin);
            onEventBegin(op, id);
        }
        break;
      case OpKind::EventEnd:
        onEventEnd(op);
        break;
      default:
        break;  // async-dialect ops are rejected by admitOp
    }
}

void
LooperModel::syncDerivedCounters()
{
    counters_.eventsLive = registry_.live;
    counters_.eventsLivePeak = registry_.livePeak;
    counters_.reclaimedRefcount =
        registry_.destroyed - counters_.invalidatedByWindow;
}

void
LooperModel::registerModelMetrics(obs::MetricsRegistry &reg)
{
    // The looper model predates the model seam; its state is fully
    // described by the engine's detector.* metrics, and adding
    // model.* aliases would churn every existing metrics consumer.
    (void)reg;
}

void
LooperModel::onThreadBegin(const Operation &op)
{
    ThreadId t = op.task.index();
    ChainId c = newChain();
    chains_[c].level = 0;  // thread chains are FIFO level 0
    threadChain_[t] = c;
    if (forkSnapValid_[t]) {
        joinIntoChain(c, forkSnap_[t]);
        forkSnap_[t] = Snapshot();
        forkSnapValid_[t] = false;
    }
    Epoch beginEpoch = tickChain(c);
    if (meta().thread(t).kind == trace::ThreadKind::Looper) {
        ChainState &ch = chains_[c];
        Snapshot &lb = looperBegin_[t];
        lb.vc = ch.vc;
        lb.acs = ch.acs;
        lb.atomic = ch.atomic;
        looperBeginEpoch_[t] = beginEpoch;
    }
}

void
LooperModel::onThreadEnd(const Operation &op)
{
    ThreadId t = op.task.index();
    ChainId c = threadChain_[t];
    ChainState &ch = chains_[c];
    // Rule LOOPEND: the looper's end inherits its events' ends.
    ch.vc.joinWith(looperEndAccum_[t]);
    ++counters_.clockJoins;
    threadEndEpoch_[t] = tickChain(c);
    Snapshot &end = threadEndState_[t];
    end.vc = ch.vc;
    end.acs = std::move(ch.acs);
    end.atomic = std::move(ch.atomic);
    ch.acs.clear();
    ch.atomic.clear();
}

void
LooperModel::dominanceDrop(EventMeta *m)
{
    // Drop the async-before record *immediately below* event m's own
    // record when it has m's class and time constraint: every future
    // target it can order before, m also can, and it is causally
    // before m (same class, equal time, sends ordered). Runs at m's
    // *begin* — at send time m could still be removed, and a removed
    // event's relay does not cover the dropped record's end. Never
    // applies to AtFront classes (two AtFront events are mutually
    // unordered per Table 1). Adjacency is required so no AsyncClock
    // entry can point between the two records.
    unsigned cls = trace::priorityClass(m->attrs);
    if (cls >= 4)
        return;
    ChainState &sender = chains_[m->sendEpoch.chain];
    SendList *list = sender.sendLists.find(m->queue);
    if (!list)
        return;
    auto it = std::lower_bound(
        list->recs.begin(), list->recs.end(), m->sendEpoch.tick,
        [](const SendRec &rec, clock::Tick t) {
            return rec.sendTick < t;
        });
    if (it == list->recs.end() || it == list->recs.begin() ||
        it->sendTick != m->sendEpoch.tick) {
        return;  // own record trimmed (aged) or not found
    }
    SendRec &below = *(it - 1);
    EventMeta *x = below.ev.get();
    if (!below.dead && x && !x->removed &&
        below.attrs.time == m->attrs.time &&
        trace::priorityClass(below.attrs) == cls) {
        below.dead = true;
        below.ev.reset();
        ++list->deadCount;
        --list->liveCount[cls];
    }
}

void
LooperModel::onSend(const Operation &op)
{
    ChainId c = chainOf(op.task);
    Epoch sendEpoch = tickChain(c);
    ChainState &ch = chains_[c];

    EventRef meta = EventRef::make(registry_);
    EventMeta *m = meta.get();
    m->id = op.event;
    m->queue = op.target;
    m->attrs = op.attrs;
    m->sendEpoch = sendEpoch;
    m->sendVC = ch.vc;
    m->sendACs = ch.acs;      // deep copy (entries share refs)
    m->sendAtomic = ch.atomic;
    ++counters_.eventsSeen;

    // Async-before list record (section 5.3).
    SendList &list = ch.sendLists[op.target];
    unsigned cls = trace::priorityClass(op.attrs);
    bool prefixMax = op.attrs.time >= list.maxTime[cls];
    list.maxTime[cls] = std::max(list.maxTime[cls], op.attrs.time);
    list.recs.push_back(
        {meta, sendEpoch.tick, op.attrs, false, prefixMax});
    list.lastIdx[cls] = static_cast<std::uint32_t>(list.recs.size());
    ++list.liveCount[cls];

    // Update the sender's own slot (displacing the previous send and
    // dropping its reference). The paper's full identity reduction
    // (clear everything else too, section 3.3) is sound only for the
    // base FIFO model: under Table 1 a cleared foreign-chain entry
    // can hide a predecessor behind a non-matching send (e.g. an
    // AtTime event between two FIFO ones). Other entries are slimmed
    // by the guarded begin-time reduction and GC instead.
    ch.acs[op.target].update(c, meta, sendEpoch.tick);

    if (!cfg_.reclaimHeirless)
        pinned_.push_back(meta);
    pending_[op.target][op.event] = std::move(meta);
}

void
LooperModel::onRemove(const Operation &op)
{
    ChainId c = chainOf(op.task);
    tickChain(c);
    const trace::MetaEvent &info = meta().event(op.event);
    EventRef *ref = pending_[info.queue].find(op.event);
    acAssert(ref != nullptr && ref->get() != nullptr,
             "remove of unknown event");
    ref->get()->removed = true;
    // Resolution is lazy (resolveRemoved); drop the pending handle so
    // the event is reclaimable once it leaves every AsyncClock.
    pending_[info.queue].erase(op.event);
}

void
LooperModel::resolveRemoved(EventMeta *m)
{
    if (m->resolvedRemoved)
        return;
    m->resolvedRemoved = true;
    // A removed event relays exactly its send-time state: successors
    // inherit send(E) (Table 1's priority function is transitive, so
    // the removed event's own predecessors reach successors through
    // the direct PRIORITY rule).
    m->endVC = std::move(m->sendVC);
    m->endACs = std::move(m->sendACs);
    m->endAtomic = std::move(m->sendAtomic);
    m->sendVC.clear();
}

void
LooperModel::inheritEnd(Resolution &r, const EventRef &predRef)
{
    EventMeta *pred = predRef.get();
    r.vc.joinWith(pred->endVC);
    ++counters_.clockJoins;
    joinACSet(r.acs, pred->endACs);
    joinAtomicSet(r.atomic, pred->endAtomic);
    // The predecessor is itself the latest send from its sender chain
    // as far as its inheritors know; its end snapshot cannot carry
    // that slot (self-reference), so restore it here with our own
    // counted reference.
    r.acs[pred->queue].update(pred->sendEpoch.chain, predRef,
                              pred->sendEpoch.tick);
}

void
LooperModel::priorityResolve(EventMeta *m, Resolution &r)
{
    const trace::SendAttrs &target = m->attrs;
    // Walk starts come from the AsyncClock at send(E) only — entries
    // merged later (looper begin, window clock, predecessors' ends)
    // are not causally before send(E).
    for (auto &[chain, start] : r.starts) {
        ChainState &src = chains_[chain];
        SendList *list = src.sendLists.find(m->queue);
        r.walkedTick[chain] = start.sendTick;
        bool covered = true;
        bool stopped = false;

        // The AC entry's own event first: its async-before record may
        // have been dominance-dropped by a later same-class send, but
        // it is still this event's immediate predecessor candidate.
        EventMeta *entryEv = start.ev.get();
        if (!entryEv) {
            // The entry's own event aged out: its end is folded into
            // the window clock we joined. Records below it can still
            // be live (pending delayed events end later than aged
            // neighbours) and must be walked like any others.
            r.fullyCovered[chain] = 1;
        }
        auto inheritRec = [&](EventMeta *x, const EventRef &ref) {
            if (x->removed) {
                resolveRemoved(x);
                r.vc.joinWith(x->endVC);
                ++counters_.clockJoins;
                joinACSet(r.acs, x->endACs);
                joinAtomicSet(r.atomic, x->endAtomic);
            } else {
                if (!x->ended) {
                    // Only reachable on protocol-damaged traces (a
                    // dropped EventEnd upstream); inherit nothing.
                    noteAnomaly("priority predecessor has not ended");
                    covered = false;
                    return;
                }
                // Skip the join when this end is already known
                // transitively (dominating record joined first, or
                // the window-clock floor): saves most of the walk's
                // join traffic.
                if (!r.vc.knows(x->endEpoch))
                    inheritEnd(r, ref);
                r.preds.push_back(ref);
            }
        };
        unsigned entryCls =
            entryEv ? trace::priorityClass(entryEv->attrs) : 0;
        if (entryEv &&
            trace::priorityOrders(entryEv->attrs, target)) {
            inheritRec(entryEv, start.ev);
            // A removed event's resolved time is only its send clock;
            // it covers nothing deeper, so it can never stop a walk.
            if (cfg_.earlyStopping && !entryEv->removed &&
                stopsWalk(entryEv->attrs, target)) {
                ++counters_.walkEarlyStops;
                stopped = true;
                // Covered despite stopping if the whole list only
                // ever held this class (pure-FIFO streams).
                covered = true;
                if (list) {
                    for (unsigned cl = 0;
                         cl < trace::kNumPriorityClasses; ++cl) {
                        if (cl != entryCls && list->liveCount[cl])
                            covered = false;
                    }
                }
                r.fullyCovered[chain] = covered ? 1 : 0;
                continue;
            }
        } else if (entryEv && !(entryEv->ended &&
                                r.vc.knows(entryEv->endEpoch))) {
            covered = false;
        }

        if (!list) {
            r.fullyCovered[chain] = covered ? 1 : 0;
            continue;
        }
        // Per-class walk state. A class is "done" when it cannot
        // contribute further predecessors: it never could (not in the
        // Table 1 column for our class), it has no live records, or a
        // prefix-max record of it was already inherited (early
        // stopping case 2 — everything deeper in the class is
        // causally before that record).
        const unsigned relevant =
            relevantClasses(trace::priorityClass(target));
        bool done[trace::kNumPriorityClasses];
        unsigned active = 0;
        for (unsigned cl = 0; cl < trace::kNumPriorityClasses; ++cl) {
            done[cl] = ((relevant >> cl) & 1u) == 0 ||
                       list->liveCount[cl] == 0;
            if (!done[cl])
                ++active;
            // Irrelevant classes with live records block the
            // begin-time AC reduction (a future event of another
            // class may still need them through this entry).
            if (((relevant >> cl) & 1u) == 0 &&
                list->liveCount[cl] != 0) {
                covered = false;
            }
        }
        unsigned entryCls2 = trace::priorityClass(entryEv->attrs);
        (void)entryCls2;

        // Records strictly below the entry's send.
        auto it = std::lower_bound(
            list->recs.begin(), list->recs.end(), start.sendTick,
            [](const SendRec &rec, clock::Tick t) {
                return rec.sendTick < t;
            });
        std::size_t idx =
            static_cast<std::size_t>(it - list->recs.begin());
        bool reachedBottom = true;
        while (idx-- > 0) {
            if (active == 0) {
                ++counters_.walkEarlyStops;
                reachedBottom = false;
                break;
            }
            SendRec &rec = list->recs[idx];
            if (rec.dead)
                continue;
            EventMeta *x = rec.ev.get();
            if (!x) {
                // Aged out: ordered before us via the window clock.
                continue;
            }
            if (x == entryEv)
                continue;  // already handled above
            unsigned cls = trace::priorityClass(rec.attrs);
            if (done[cls])
                continue;
            ++counters_.walkSteps;
            if (trace::priorityOrders(rec.attrs, target)) {
                inheritRec(x, rec.ev);
                if (cfg_.earlyStopping && !x->removed &&
                    stopsWalk(rec.attrs, target)) {
                    ++counters_.walkEarlyStops;
                    stopped = true;
                    break;
                }
                // Case 2 never applies to AtFront classes: deeper
                // AtFront sends are independent predecessors, not
                // causally before this one.
                if (cfg_.earlyStopping && rec.prefixMax &&
                    !x->removed && cls < 4) {
                    done[cls] = true;
                    --active;
                }
            } else if (!x->removed &&
                       !(x->ended && r.vc.knows(x->endEpoch))) {
                // A non-inherited record below the start: the
                // begin-time AC reduction must keep this chain.
                covered = false;
            } else if (x->removed) {
                covered = false;
            }
        }
        r.fullyCovered[chain] =
            (covered && !stopped && reachedBottom) ? 1 : 0;
    }
}

void
LooperModel::binderResolve(EventMeta *m, Resolution &r)
{
    // Binder rule: begins follow sends; inherit the *begin* state of
    // the latest non-removed send per chain.
    for (auto &[chain, start] : r.starts) {
        auto inheritBegin = [&](EventMeta *x, const EventRef &ref) {
            if (!x->begun) {
                noteAnomaly("binder FIFO dispatch violated");
                return;
            }
            if (r.vc.knows(x->beginEpoch))
                return;  // already inherited transitively
            r.vc.joinWith(x->beginVC);
            ++counters_.clockJoins;
            joinACSet(r.acs, x->beginACs);
            joinAtomicSet(r.atomic, x->beginAtomic);
            r.acs[x->queue].update(x->sendEpoch.chain, ref,
                                   x->sendEpoch.tick);
        };
        EventMeta *entryEv = start.ev.get();
        if (entryEv && !entryEv->removed) {
            inheritBegin(entryEv, start.ev);
            continue;  // latest begin dominates all deeper ones
        }
        if (!entryEv)
            continue;  // aged: window clock covers it
        ChainState &src = chains_[chain];
        SendList *list = src.sendLists.find(m->queue);
        if (!list)
            continue;
        auto it = std::lower_bound(
            list->recs.begin(), list->recs.end(), start.sendTick,
            [](const SendRec &rec, clock::Tick t) {
                return rec.sendTick < t;
            });
        std::size_t idx =
            static_cast<std::size_t>(it - list->recs.begin());
        while (idx-- > 0) {
            SendRec &rec = list->recs[idx];
            if (rec.dead)
                continue;
            EventMeta *x = rec.ev.get();
            if (!x)
                break;  // aged: window clock covers everything older
            ++counters_.walkSteps;
            if (x->removed)
                continue;  // keep searching deeper
            inheritBegin(x, rec.ev);
            break;
        }
    }
}

bool
LooperModel::atFrontFold(EventMeta *m, Resolution &r)
{
    bool changed = false;
    for (EventRef &ref : m->sentAtFront) {
        EventMeta *f = ref.get();
        if (!f)
            continue;
        if (f->ended && r.vc.knows(f->endEpoch))
            continue;  // already inherited
        // Premise (checked at registration: send(E) hb send(F)):
        // send(F) hb begin(E).
        if (r.vc.knows(f->sendEpoch)) {
            if (!f->ended) {
                noteAnomaly("at-front predecessor has not ended");
                continue;
            }
            inheritEnd(r, ref);
            r.preds.push_back(ref);
            changed = true;
        }
    }
    return changed;
}

bool
LooperModel::atomicFold(ThreadId looper, const EventMeta *self,
                        VectorClock &vc, ACSet &acs, AtomicSet &atomic)
{
    AtomicClock *ac = atomic.find(looper);
    if (!ac || ac->empty())
        return false;
    // Snapshot first: the joins below may insert into `atomic`
    // (including the clock being folded), which would invalidate an
    // in-place iteration.
    std::vector<EventRef> entries;
    ac->forEach([&entries](ChainId, AtomicEntry &entry) {
        entries.push_back(entry.ev);
    });
    bool changed = false;
    for (EventRef &er : entries) {
        EventMeta *x = er.get();
        if (!x || x == self || !x->ended)
            continue;
        if (!vc.knows(x->endEpoch)) {
            // Rule ATOMIC: begin(X) hb here (AsyncClock invariant), X
            // runs on our looper, so end(X) hb here too.
            vc.joinWith(x->endVC);
            ++counters_.clockJoins;
            joinACSet(acs, x->endACs);
            joinAtomicSet(atomic, x->endAtomic);
            acs[x->queue].update(x->sendEpoch.chain, er,
                                 x->sendEpoch.tick);
            changed = true;
        }
    }
    // Folded (or dead) entries are no longer needed on this path.
    ac = atomic.find(looper);
    if (ac) {
        ac->eraseIf([&](ChainId, AtomicEntry &entry) {
            EventMeta *x = entry.ev.get();
            if (!x)
                return true;
            if (x == self || !x->ended)
                return false;
            return vc.knows(x->endEpoch);
        });
    }
    return changed;
}

void
LooperModel::maybeAtomicFold(Task task)
{
    if (!task.isEvent())
        return;
    EventId e = task.index();
    ThreadId looper = meta().looperOf(e);
    if (looper == kInvalidId)
        return;
    EventRef *ref = running_.find(e);
    acAssert(ref != nullptr, "op from event that is not running");
    ChainState &ch = chains_[eventChain_[e]];
    while (atomicFold(looper, ref->get(), ch.vc, ch.acs, ch.atomic)) {
    }
}

clock::ChainId
LooperModel::chooseChain(EventMeta *m, const Resolution &r)
{
    const bool binder =
        meta().queue(m->queue).kind == QueueKind::Binder;
    if (binder) {
        for (ChainId c : binderChains_) {
            ChainState &ch = chains_[c];
            if (ch.retired) {
                // Retired by the window: end(last) hb TC hb us.
                ch.retired = false;
                ++counters_.chainsReused;
                return c;
            }
            EventMeta *last = ch.lastEvent.get();
            if (ch.lastEnded && last && last->ended &&
                r.vc.knows(last->endEpoch)) {
                ++counters_.chainsReused;
                return c;
            }
        }
        ChainId c = newChain();
        chains_[c].isBinder = true;
        binderChains_.push_back(c);
        return c;
    }

    // FIFO chain decomposition (section 4.2).
    if (cfg_.chainMode == ChainMode::Fifo && plainFifo(m->attrs)) {
        ChainId sender = m->sendEpoch.chain;
        std::uint8_t lvl = chains_[sender].level;
        if (lvl <= 2) {
            if (ChainId *child =
                    chains_[sender].fifoChild.find(m->queue)) {
                ++counters_.fifoLevel[lvl + 1];
                return *child;
            }
            ChainId c;
            if (!freeByQueue_[m->queue].empty()) {
                c = freeByQueue_[m->queue].back();
                freeByQueue_[m->queue].pop_back();
                chains_[c].retired = false;
                ++counters_.chainsReused;
            } else {
                c = newChain();
            }
            ChainState &ch = chains_[c];
            ch.level = static_cast<std::uint8_t>(lvl + 1);
            ch.fifoParent = sender;
            ch.fifoQueue = m->queue;
            chains_[sender].fifoChild[m->queue] = c;
            ++counters_.fifoLevel[lvl + 1];
            return c;
        }
    }

    // Greedy [17]: a chain whose last event is an immediate
    // predecessor.
    for (const EventRef &pref : r.preds) {
        EventMeta *x = pref.get();
        if (!x || !x->begun)
            continue;
        ChainId c = x->beginEpoch.chain;
        ChainState &ch = chains_[c];
        if (!ch.retired && ch.lastEnded && ch.lastEvent.get() == x &&
            ch.level == 255) {
            ++counters_.fifoLevel[0];
            return c;
        }
    }
    ChainId c;
    if (!freeByQueue_[m->queue].empty()) {
        c = freeByQueue_[m->queue].back();
        freeByQueue_[m->queue].pop_back();
        chains_[c].retired = false;
        chains_[c].level = 255;
        chains_[c].fifoParent = kInvalidId;
        chains_[c].fifoQueue = kInvalidId;
        ++counters_.chainsReused;
    } else {
        c = newChain();
    }
    ++counters_.fifoLevel[0];
    return c;
}

void
LooperModel::onEventBegin(const Operation &op, OpId id)
{
    (void)id;
    EventId e = op.task.index();
    const trace::MetaEvent &info = meta().event(e);
    EventRef *pref = pending_[info.queue].find(e);
    acAssert(pref != nullptr && pref->get() != nullptr,
             "begin of unknown event");
    EventRef ref = *pref;
    pending_[info.queue].erase(e);
    EventMeta *m = ref.get();
    const bool binder =
        meta().queue(info.queue).kind == QueueKind::Binder;

    Resolution r;
    r.vc = m->sendVC;
    r.acs = std::move(m->sendACs);
    r.atomic = std::move(m->sendAtomic);
    m->sendACs.clear();
    m->sendAtomic.clear();

    // Snapshot the walk starts (the AsyncClock at send(E)) before
    // merging anything that is not causally before the send.
    if (const AsyncClock *ac = r.acs.find(m->queue)) {
        ac->forEach([&r](ChainId c, const ACEntry &entry) {
            r.starts.emplace_back(c, entry);
        });
    }

    // Time-window clock (section 4.1) and Rule LOOPBEGIN. Both joins
    // are skipped when the send clock already transitively covers
    // them (the common case: any FIFO predecessor carried them).
    if (cfg_.windowMs > 0) {
        const WindowClock &tc = windowClock_[m->queue];
        if (tc.version > 0 &&
            r.vc.get(tc.marker) < tc.version) {
            r.vc.joinWith(tc.vc);
            ++counters_.clockJoins;
            joinACSet(r.acs, tc.acs);
            joinAtomicSet(r.atomic, tc.atomic);
        }
    }
    ThreadId looper = meta().looperOf(e);
    if (looper != kInvalidId &&
        !r.vc.knows(looperBeginEpoch_[looper])) {
        const Snapshot &lb = looperBegin_[looper];
        r.vc.joinWith(lb.vc);
        ++counters_.clockJoins;
        joinACSet(r.acs, lb.acs);
        joinAtomicSet(r.atomic, lb.atomic);
    }

    if (binder) {
        binderResolve(m, r);
    } else if (m->attrs.kind != SendKind::AtFront) {
        priorityResolve(m, r);
    }

    // ATFRONT and ATOMIC can enable each other: iterate to fixpoint.
    bool changed = true;
    while (changed) {
        changed = atFrontFold(m, r);
        if (looper != kInvalidId) {
            changed |= atomicFold(looper, m, r.vc, r.acs, r.atomic);
        }
    }
    m->sentAtFront.clear();
    m->sentAtFront.shrink_to_fit();

    // The AsyncClock invariant at begin(E): the latest send to E's
    // queue from E's sender chain that happens-before begin(E) is
    // send(E) itself. Without this slot, entries inherited from the
    // send-time snapshot go stale and future walks miss predecessors
    // (and greedy chaining falls apart).
    r.acs[m->queue].update(m->sendEpoch.chain, ref,
                           m->sendEpoch.tick);

    ChainId c = chooseChain(m, r);
    eventChain_[e] = c;
    ChainState &ch = chains_[c];
    clock::Tick beginTick = ++ch.tick;
    m->beginEpoch = {c, beginTick};
    // r.vc becomes chain c's clock on the next line, so this is an
    // owner tick (joins into r.vc are all behind us).
    r.vc.tick(c, beginTick);
    m->begun = true;

    ch.vc = std::move(r.vc);
    ch.acs = std::move(r.acs);
    ch.atomic = std::move(r.atomic);

    // Begin-time AC reduction (section 3.3), restricted to chains the
    // walk verified as fully inherited (see looper_model.hh header
    // note).
    if (AsyncClock *ownAc = ch.acs.find(m->queue)) {
        const VectorClock &vc = ch.vc;
        ownAc->eraseIf([&](ChainId i, ACEntry &entry) {
            const std::uint8_t *cov = r.fullyCovered.find(i);
            const clock::Tick *walked = r.walkedTick.find(i);
            if (!cov || !*cov || !walked ||
                entry.sendTick > *walked) {
                return false;
            }
            EventMeta *x = entry.ev.get();
            return x && x->ended && vc.knows(x->endEpoch);
        });
    }

    if (looper != kInvalidId) {
        AtomicEntry &slot = ch.atomic[looper][c];
        slot.ev = ref;
        slot.beginTick = beginTick;
    }
    ch.lastEvent = ref;
    ch.lastEnded = false;

    if (binder) {
        m->beginVC = ch.vc;
        m->beginACs = ch.acs;
        m->beginAtomic = ch.atomic;
        // Strip the self slot (refcount cycle); inheritors restore it
        // with their own reference (binderResolve::inheritBegin).
        if (AsyncClock *own = m->beginACs.find(m->queue)) {
            own->eraseIf([m](ChainId, ACEntry &entry) {
                return entry.ev.get() == m;
            });
        }
    }

    // Now that this event provably began (it was not removed), its
    // async-before record dominates the equal-class/equal-time record
    // adjacent below it.
    dominanceDrop(m);

    // Feed sent-at-front lists: premise send(E2) hb send(this).
    if (!binder && m->attrs.kind == SendKind::AtFront) {
        pending_[info.queue].forEach(
            [&](EventId, EventRef &other) {
                EventMeta *o = other.get();
                if (o && m->sendVC.knows(o->sendEpoch))
                    o->sentAtFront.push_back(ref);
            });
    }

    running_[e] = std::move(ref);
}

void
LooperModel::onEventEnd(const Operation &op)
{
    EventId e = op.task.index();
    EventRef *rref = running_.find(e);
    acAssert(rref != nullptr && rref->get() != nullptr,
             "end of event that is not running");
    EventRef ref = *rref;
    running_.erase(e);
    EventMeta *m = ref.get();

    ChainId c = eventChain_[e];
    ChainState &ch = chains_[c];
    m->endEpoch = tickChain(c);
    // Move — not copy — the chain state into the end snapshot: the
    // chain is idle until its next event's begin replaces everything,
    // and keeping a second live copy would defeat the reference-count
    // test of multi-path reduction (Fig 6b).
    m->endVC = ch.vc;
    m->endACs = std::move(ch.acs);
    m->endAtomic = std::move(ch.atomic);
    ch.acs.clear();
    ch.atomic.clear();
    // Drop the self-entries minted at our own begin (the atomic slot
    // and the own-queue AsyncClock slot): a self-reference would keep
    // the refcount above zero forever. Inheritors of this end restore
    // the AsyncClock slot with their own reference (inheritEnd).
    if (AtomicClock *own = m->endAtomic.find(meta().looperOf(e))) {
        own->eraseIf([m](ChainId, AtomicEntry &entry) {
            return entry.ev.get() == m;
        });
    }
    if (AsyncClock *own = m->endACs.find(m->queue)) {
        own->eraseIf([m](ChainId, ACEntry &entry) {
            return entry.ev.get() == m;
        });
    }
    m->ended = true;
    m->endVtime = op.vtime;
    ch.lastEnded = true;

    ThreadId looper = meta().looperOf(e);
    if (looper != kInvalidId) {
        looperEndAccum_[looper].joinWith(m->endVC);
        ++counters_.clockJoins;
    }

    // Multi-path reduction (section 4.1): a predecessor held only by
    // this end clock, with send(X) hb send(this), is heirless. Also
    // re-checked during GC sweeps — the sender's own AsyncClock may
    // still hold the predecessor at this moment (Fig 6b) and release
    // it at its next send. sendVC is retained for those re-checks.
    if (cfg_.multiPathReduction && cfg_.reclaimHeirless)
        multiPathReduce(m);

    if (cfg_.windowMs > 0)
        endedQueue_.emplace_back(op.vtime, WeakPtr<EventMeta>(ref));
}

void
LooperModel::multiPathReduce(EventMeta *m,
                             std::vector<EventRef> *deferred)
{
    m->endACs.forEach([&](std::uint32_t, AsyncClock &ac) {
        ac.eraseIf([&](ChainId, ACEntry &entry) {
            EventMeta *x = entry.ev.get();
            if (!x || x == m || entry.ev.refCount() != 1)
                return false;
            if (!m->sendVC.knows(x->sendEpoch))
                return false;
            ++counters_.reclaimedMultiPath;
            if (deferred)
                deferred->push_back(std::move(entry.ev));
            return true;
        });
    });
}

void
LooperModel::retireChain(ChainId c)
{
    ChainState &ch = chains_[c];
    if (ch.retired)
        return;
    ch.retired = true;
    ch.lastEvent.reset();
    ch.acs.clear();
    ch.atomic.clear();
    if (ch.fifoParent != kInvalidId) {
        chains_[ch.fifoParent].fifoChild.erase(ch.fifoQueue);
        ch.fifoParent = kInvalidId;
        ch.fifoQueue = kInvalidId;
        ch.level = 255;
    }
}

void
LooperModel::ageWindow(std::uint64_t now)
{
    while (!endedQueue_.empty() &&
           endedQueue_.front().first + cfg_.windowMs < now) {
        ageOneEnded();
    }
}

void
LooperModel::drainEndedWindow()
{
    while (!endedQueue_.empty())
        ageOneEnded();
}

void
LooperModel::ageOneEnded()
{
    WeakPtr<EventMeta> weak = std::move(endedQueue_.front().second);
    endedQueue_.pop_front();
    // Pin the event: the TC joins below can displace the last
    // counted reference to it (e.g. its own slot in the TC) and
    // must not free it while its end state is being read.
    EventRef pin = weak.lock();
    EventMeta *x = pin.get();
    if (!x)
        return;  // already reclaimed as heirless
    WindowClock &tc = windowClock_[x->queue];
    if (tc.marker == kInvalidId)
        tc.marker = newChain();
    tc.vc.joinWith(x->endVC);
    ++counters_.clockJoins;
    joinACSet(tc.acs, x->endACs);
    joinAtomicSet(tc.atomic, x->endAtomic);
    tc.vc.tick(tc.marker, ++tc.version);
    ChainId c = x->beginEpoch.chain;
    ChainState &ch = chains_[c];
    if (!ch.retired && ch.lastEnded && ch.lastEvent.get() == x &&
        !ch.isBinder) {
        trace::QueueId q = x->queue;
        retireChain(c);
        freeByQueue_[q].push_back(c);
    } else if (ch.isBinder && ch.lastEnded &&
               ch.lastEvent.get() == x) {
        retireChain(c);  // stays in binderChains_ for reuse
    }
    ++counters_.invalidatedByWindow;
    weak.invalidate();
}

void
LooperModel::gcSweep()
{
    ++counters_.gcSweeps;
    auto cleanseAC = [](ACSet &acs) {
        acs.forEach([](std::uint32_t, AsyncClock &ac) {
            ac.eraseIf([](ChainId, ACEntry &entry) {
                return entry.ev.hasRef() && !entry.ev.get();
            });
        });
    };
    auto cleanseAtomic = [](AtomicSet &ats) {
        ats.forEach([](std::uint32_t, AtomicClock &ac) {
            ac.eraseIf([](ChainId, AtomicEntry &entry) {
                return entry.ev.hasRef() && !entry.ev.get();
            });
        });
    };

    for (ChainState &ch : chains_) {
        cleanseAC(ch.acs);
        cleanseAtomic(ch.atomic);
        ch.sendLists.forEach([](std::uint32_t, SendList &list) {
            auto &recs = list.recs;
            // Trim dead/aged prefix.
            std::size_t cut = 0;
            while (cut < recs.size() &&
                   (recs[cut].dead || (recs[cut].ev.hasRef() &&
                                       !recs[cut].ev.get()))) {
                ++cut;
            }
            bool mutated = false;
            if (cut > 0) {
                recs.erase(recs.begin(),
                           recs.begin() +
                               static_cast<std::ptrdiff_t>(cut));
                mutated = true;
            }
            // Compact interior tombstones when they dominate.
            if (list.deadCount > recs.size() / 2) {
                recs.erase(
                    std::remove_if(recs.begin(), recs.end(),
                                   [](const SendRec &rec) {
                                       return rec.dead ||
                                              (rec.ev.hasRef() &&
                                               !rec.ev.get());
                                   }),
                    recs.end());
                list.deadCount = 0;
                mutated = true;
            }
            if (mutated) {
                for (unsigned i = 0; i < trace::kNumPriorityClasses;
                     ++i) {
                    list.lastIdx[i] = 0;
                    list.liveCount[i] = 0;
                }
                for (const SendRec &rec : recs) {
                    if (!rec.dead &&
                        !(rec.ev.hasRef() && !rec.ev.get())) {
                        ++list.liveCount[trace::priorityClass(
                            rec.attrs)];
                    }
                }
            }
        });
    }
    for (Snapshot &h : handleState_) {
        cleanseAC(h.acs);
        cleanseAtomic(h.atomic);
    }
    for (WindowClock &tc : windowClock_) {
        // Entries whose events' ends the TC floor already covers are
        // redundant for inheritors: keep the window clock slim (it is
        // joined into event begins).
        tc.acs.forEach([&tc](std::uint32_t, AsyncClock &ac) {
            ac.eraseIf([&tc](clock::ChainId, ACEntry &entry) {
                EventMeta *x = entry.ev.get();
                return !x || (x->ended && tc.vc.knows(x->endEpoch));
            });
        });
        tc.atomic.forEach([&tc](std::uint32_t, AtomicClock &ac) {
            ac.eraseIf([&tc](clock::ChainId, AtomicEntry &entry) {
                EventMeta *x = entry.ev.get();
                return !x || (x->ended && tc.vc.knows(x->endEpoch));
            });
        });
    }
    // Registry walk. Destructive drops are deferred: destroying a
    // meta inline can cascade through metadata reference cycles and
    // free the meta (or its successor) under iteration. The cleanses
    // above only release references to already-dead payloads, which
    // cannot cascade.
    std::vector<EventRef> deferred;
    for (EventMeta *m = registry_.head; m; m = m->next) {
        cleanseAC(m->endACs);
        cleanseAtomic(m->endAtomic);
        cleanseAC(m->beginACs);
        cleanseAtomic(m->beginAtomic);
        if (cfg_.multiPathReduction && cfg_.reclaimHeirless &&
            m->ended) {
            multiPathReduce(m, &deferred);
        }
    }
    deferred.clear();  // destruction cascades run here, walk is over
}

void
LooperModel::aggressiveSweep()
{
    // The scheduled sweep trades compaction for speed (tombstones are
    // only removed when they dominate, capacity is never returned).
    // Under pressure the trade flips: purge every dead/aged record
    // and shrink the vectors to fit.
    for (ChainState &ch : chains_) {
        ch.sendLists.forEach([](std::uint32_t, SendList &list) {
            auto &recs = list.recs;
            recs.erase(std::remove_if(recs.begin(), recs.end(),
                                      [](const SendRec &rec) {
                                          return rec.dead ||
                                                 (rec.ev.hasRef() &&
                                                  !rec.ev.get());
                                      }),
                       recs.end());
            recs.shrink_to_fit();
            list.deadCount = 0;
            for (unsigned i = 0; i < trace::kNumPriorityClasses; ++i) {
                list.lastIdx[i] = 0;
                list.liveCount[i] = 0;
            }
            for (const SendRec &rec : recs)
                ++list.liveCount[trace::priorityClass(rec.attrs)];
        });
    }
    gcSweep();
}

void
LooperModel::relieveMemoryPressure(std::uint64_t now)
{
    // Checker bytes are deliberately excluded (see the config doc):
    // the ladder must fire identically when a checkpointed run is
    // replayed against a restored checker.
    if (modelBytes() <= cfg_.memBudgetBytes)
        return;

    obs::EventLog *events = engine_.events();

    // Rung 1: aggressive sweep — reclaim everything reclaimable
    // without any recall impact.
    aggressiveSweep();
    ++counters_.pressureGcSweeps;
    if (events)
        events->log(obs::EventLog::Severity::Info, "pressure.sweep",
                    strf("aggressive sweep; %llu bytes live",
                         static_cast<unsigned long long>(
                             modelBytes())),
                    engine_.opsProcessed());
    if (modelBytes() <= cfg_.memBudgetBytes)
        return;

    // Rung 2: halve the time window (down to the floor) and age the
    // excess out immediately. Equivalent to having configured the
    // smaller window: recall degrades only for races separated by
    // more than the new window.
    while (cfg_.windowMs > cfg_.minWindowMs) {
        cfg_.windowMs = std::max(cfg_.windowMs / 2, cfg_.minWindowMs);
        ageWindow(now);
        gcSweep();
        ++counters_.pressureWindowShrinks;
        if (events)
            events->log(obs::EventLog::Severity::Warn,
                        "pressure.shrink",
                        strf("window halved to %llu ms",
                             static_cast<unsigned long long>(
                                 cfg_.windowMs)),
                        engine_.opsProcessed());
        if (modelBytes() <= cfg_.memBudgetBytes)
            return;
    }

    // Rung 3: invalidate every ended event into the window clocks —
    // the window collapses to "currently live events only" for this
    // moment. New metadata keeps accruing afterwards, so the ladder
    // may fire again at the next GC check.
    if (cfg_.windowMs > 0 && !endedQueue_.empty()) {
        drainEndedWindow();
        gcSweep();
        ++counters_.pressureInvalidations;
        if (events)
            events->log(obs::EventLog::Severity::Warn,
                        "pressure.invalidate",
                        "every ended event invalidated into the "
                        "window clock",
                        engine_.opsProcessed());
    }
}

std::uint64_t
LooperModel::modelBytes() const
{
    std::uint64_t total = 0;
    for (const ChainState &ch : chains_)
        total += ch.byteSize();
    for (const EventMeta *m = registry_.head; m; m = m->next)
        total += m->byteSize();
    for (const Snapshot &s : handleState_)
        total += s.byteSize();
    for (const Snapshot &s : looperBegin_)
        total += s.byteSize();
    for (const Snapshot &s : threadEndState_)
        total += s.byteSize();
    for (const Snapshot &s : forkSnap_)
        total += s.byteSize();
    for (const VectorClock &vc : looperEndAccum_)
        total += vc.byteSize();
    for (const WindowClock &tc : windowClock_)
        total += tc.byteSize();
    for (const auto &p : pending_)
        total += p.byteSize();
    total += running_.byteSize();
    total += endedQueue_.size() * sizeof(endedQueue_.front());
    return total;
}

void
LooperModel::sampleMemory(MemStats &stats) const
{
    std::uint64_t metaBytes = 0;
    for (const EventMeta *m = registry_.head; m; m = m->next)
        metaBytes += m->byteSize();
    std::uint64_t chainBytes = 0;
    for (const ChainState &ch : chains_)
        chainBytes += ch.byteSize();
    stats.sample(MemCat::EventMeta, metaBytes);
    stats.sample(MemCat::AsyncClock, chainBytes);
    stats.sample(MemCat::VarState, checker_.byteSize());
    stats.sample(MemCat::Other, modelBytes() - metaBytes - chainBytes);
}

} // namespace asyncclock::core
