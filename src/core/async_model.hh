/**
 * @file
 * The async/await task-graph causality model.
 *
 * Happens-before rules for structured-concurrency task graphs (the
 * async trace dialect, trace/trace.hh):
 *
 *  - SPAWN:  spawn(P, C) hb start(C) — a task starts causally after
 *    the spawning operation (the spawner's clock is snapshotted at the
 *    spawn and becomes the child's initial clock).
 *  - AWAIT:  finish(C) hb await(S, C) — awaiting a settled task joins
 *    its settle-time clock into the awaiter.
 *  - CANCEL: a cancelled task never runs; its settle time is the
 *    cancelling operation itself, so `await` of a cancelled task joins
 *    the canceller's clock (cancellation is a synchronization edge).
 *  - SCOPE:  every member task settles before its scope closes;
 *    close(h) joins the accumulated settle clocks of all members
 *    (structured concurrency's implicit join).
 *
 * Plus the thread-model edges shared with the looper dialect
 * (fork/join, signal/wait). There are no queues, no dispatch order,
 * and no Table 1 priorities: sibling tasks are unordered unless an
 * await/scope edge intervenes, which is exactly where the seeded
 * races of the async workload live.
 *
 * Scalability mirrors the looper model in miniature: settled tasks
 * older than the time window fold into a single window clock (version
 * epoch on a marker chain, so repeat joins are skipped), their chains
 * are recycled, and the memory-pressure ladder reuses the engine's
 * GC cadence.
 */

#ifndef ASYNCCLOCK_CORE_ASYNC_MODEL_HH
#define ASYNCCLOCK_CORE_ASYNC_MODEL_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "core/config.hh"
#include "core/engine.hh"
#include "core/model.hh"
#include "trace/source.hh"
#include "trace/trace.hh"

namespace asyncclock::core {

class AsyncTaskModel : public CausalityModel
{
  public:
    explicit AsyncTaskModel(DetectorEngine &engine);

    ModelKind kind() const override { return ModelKind::Async; }
    void syncEntities() override;
    bool admitOp(const trace::Operation &op) override;
    void applyOp(const trace::Operation &op, trace::OpId id) override;
    void ageWindow(std::uint64_t now) override;
    void gcSweep() override;
    void relieveMemoryPressure(std::uint64_t now) override;
    void syncDerivedCounters() override;
    std::uint32_t numChains() const override
    {
        return static_cast<std::uint32_t>(chains_.size());
    }
    std::uint64_t modelBytes() const override;
    void sampleMemory(MemStats &stats) const override;
    void registerModelMetrics(obs::MetricsRegistry &reg) override;

  private:
    using VectorClock = clock::VectorClock;
    using ChainId = clock::ChainId;
    using Epoch = clock::Epoch;

    /** One task/thread chain: a tick counter and a vector clock.
     * Task chains are recycled once their last task's settle time is
     * known to a successor (lastEnd). */
    struct Chain
    {
        clock::Tick tick = 0;
        VectorClock vc;
        Epoch lastEnd{};

        std::uint64_t
        byteSize() const
        {
            return sizeof(Chain) + vc.byteSize();
        }
    };

    /** The window clock all aged settle times fold into. One per run
     * (tasks have no queues); versioned on a marker chain so a clock
     * that already saw the current version skips the join. */
    struct WindowClock
    {
        VectorClock vc;
        ChainId marker = trace::kInvalidId;
        clock::Tick version = 0;
    };

    enum class ThreadPhase : std::uint8_t { Unstarted, Running, Ended };
    enum class TaskPhase : std::uint8_t {
        Unspawned,
        Pending,   ///< spawned, not yet started
        Running,
        Settled,   ///< finished or cancelled
    };

    const trace::TraceMeta &meta() const { return engine_.meta(); }

    ChainId newChain();
    ChainId chainOf(trace::Task task) const;
    Epoch tickChain(ChainId c);
    /** Join @p vc into @p c's clock (counted). */
    void joinInto(ChainId c, const VectorClock &vc);
    /** Join the window clock into @p vc if it does not already carry
     * the current window version. */
    void joinWindowFloor(VectorClock &vc);

    void onTaskStart(const trace::Operation &op);
    void onTaskFinish(const trace::Operation &op);
    /** Settle bookkeeping shared by finish and cancel: record the
     * settle clock, close the scope slot, queue for window aging. */
    void settleTask(trace::EventId task, trace::HandleId scope,
                    const VectorClock &vc, Epoch settleEpoch,
                    std::uint64_t vtime);
    /** Fold the oldest settled task into the window clock. */
    void ageOneSettled();
    void drainSettledWindow();

    DetectorEngine &engine_;
    /** Engine-owned services (see looper_model.hh). */
    report::AccessChecker &checker_;
    DetectorConfig &cfg_;
    DetectorCounters &counters_;

    std::vector<Chain> chains_;
    std::vector<ChainId> threadChain_;  ///< per thread
    std::vector<ChainId> taskChain_;    ///< per task (filled at start)
    /** Chains whose last task settled, available for reuse by a task
     * whose start clock covers lastEnd. */
    std::vector<ChainId> freeChains_;

    // Per-task clocks. spawnVC is live Pending->start; settleVC is
    // live Settled->aged (awaits and scope closes read it).
    std::vector<VectorClock> spawnVC_;
    std::vector<VectorClock> settleVC_;
    std::vector<Epoch> settleEpoch_;
    std::vector<std::uint8_t> aged_;  ///< settle folded into window
    std::vector<std::uint64_t> startVtime_;  ///< for task spans
    /** Scope each task was spawned into (recorded at the spawn op, so
     * streaming sources need no entity-table support). */
    std::vector<trace::HandleId> taskScope_;

    // Thread-model edges (same semantics as the looper dialect).
    std::vector<VectorClock> forkVC_;       ///< per thread
    std::vector<std::uint8_t> forkValid_;
    std::vector<VectorClock> threadEndVC_;  ///< per thread
    std::vector<VectorClock> handleVC_;     ///< per handle (signal)

    // Scopes (indexed by handle id).
    std::vector<VectorClock> scopeJoin_;    ///< settled members' join
    std::vector<std::uint32_t> scopeOpen_;  ///< unsettled member count

    WindowClock window_;
    /** Settled tasks in settle order, for window aging. */
    std::deque<std::pair<std::uint64_t, trace::EventId>> settled_;

    std::vector<std::uint8_t> threadPhase_;
    std::vector<std::uint8_t> taskPhase_;

    // model.* metrics (registered in registerModelMetrics).
    std::uint64_t tasksSpawned_ = 0;
    std::uint64_t tasksAwaited_ = 0;
    std::uint64_t tasksCancelled_ = 0;
    std::uint64_t scopesClosed_ = 0;
    std::uint64_t windowFolds_ = 0;
    std::uint64_t tasksLive_ = 0;  ///< spawned, not yet settled
    std::uint64_t tasksLivePeak_ = 0;

    /** Tracer track for per-task spans; registered on first use. */
    int taskTrack_ = -1;
};

} // namespace asyncclock::core

#endif // ASYNCCLOCK_CORE_ASYNC_MODEL_HH
