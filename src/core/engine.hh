/**
 * @file
 * The model-agnostic detection engine.
 *
 * DetectorEngine is the mechanism half of the model/mechanism split
 * (see core/model.hh): it owns the trace source, the access checker
 * reference, the run configuration and status, the op cursor, the
 * shared DetectorCounters, the GC/memory-pressure cadence, and the
 * observability plumbing (pump spans, detector.* metrics). All
 * happens-before semantics live in the plugged-in CausalityModel.
 *
 * AsyncClockDetector (core/detector.hh) is the backwards-compatible
 * facade: a DetectorEngine constructed with ModelKind::Looper.
 */

#ifndef ASYNCCLOCK_CORE_ENGINE_HH
#define ASYNCCLOCK_CORE_ENGINE_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/model.hh"
#include "obs/obs.hh"
#include "report/checker.hh"
#include "report/detector.hh"
#include "support/status.hh"
#include "trace/source.hh"
#include "trace/trace.hh"

namespace asyncclock::core {

/**
 * Latency-attribution phases (DetectorConfig::phaseTiming). Each
 * processed op's wall time is carved into these buckets: Decode and
 * GcSweep are measured directly by the engine, ClockJoin and
 * RaceCheck by PhaseScope sites inside the model, and ModelApply is
 * the residual (total resolve time minus the nested phases), so the
 * five buckets sum to the measured per-op wall time.
 */
enum class Phase : std::uint8_t {
    Decode = 0,   ///< pulling + decoding the next op from the source
    ModelApply,   ///< model state updates (residual, see above)
    ClockJoin,    ///< vector-clock resolution and joins
    RaceCheck,    ///< access-checker queries
    GcSweep,      ///< GC sweeps and memory-pressure relief
};
constexpr std::size_t kNumPhases = 5;

/** Lower-case phase label ("decode", "model_apply", ...). */
const char *phaseName(Phase p);

/**
 * Append the standard completeness caveats to a report's notes:
 * corrupt records skipped during decode, protocol-invalid ops
 * dropped / causal anomalies tolerated, and degradation-ladder rungs
 * fired. @p counters may be null (non-AsyncClock detectors have no
 * counters; only the skip note applies). Shared by trace_analyzer and
 * the daemon so both render byte-identical degraded-run reports.
 */
void appendRunNotes(std::vector<std::string> &notes,
                    std::uint64_t recordsSkipped,
                    const DetectorCounters *counters);

class DetectorEngine : public report::Detector
{
  public:
    /** Stream operations from @p src under causality model @p model.
     * @p src and @p checker must outlive the engine. */
    DetectorEngine(ModelKind model, trace::TraceSource &src,
                   report::AccessChecker &checker,
                   DetectorConfig cfg = {});

    /** Convenience over a materialized trace (owns a
     * MaterializedSource internally). @p tr and @p checker must
     * outlive the engine. */
    DetectorEngine(ModelKind model, const trace::Trace &tr,
                   report::AccessChecker &checker,
                   DetectorConfig cfg = {});
    ~DetectorEngine() override;

    bool processNext() override;
    std::uint64_t opsProcessed() const override { return cursor_; }
    std::uint64_t metadataBytes() const override;
    void sampleMemory(MemStats &stats) const override;

    /**
     * Attach an observability context. With metrics: every
     * DetectorCounters field plus ops/chain gauges become callback
     * metrics (the hot path keeps bumping the plain struct; the
     * registry reads it at snapshot time, so the registry must not be
     * snapshotted after this engine dies), and the model registers
     * its model.* metrics. With a tracer: "pump" spans on the main
     * track covering blocks of processed ops (with decode/resolve
     * cost split in args) and a span per GC sweep. Call before the
     * first processNext().
     */
    void attachObs(const obs::ObsContext &ctx);

    /**
     * Structured health of the run. Ok while healthy; BudgetExceeded
     * once maxInvalidOps protocol-invalid operations were dropped
     * (processNext() then returns false). A non-ok status means the
     * race report is best-effort, not authoritative.
     */
    const Status &runStatus() const { return runStatus_; }

    const DetectorCounters &counters() const { return counters_; }
    /** Number of chains ever created (clock dimension). */
    std::uint32_t numChains() const { return model_->numChains(); }

    /** The causality model this engine hosts. */
    ModelKind modelKind() const { return model_->kind(); }

    // ----- services for the plugged-in model ------------------------
    /** Entity tables seen so far by the source. */
    const trace::TraceMeta &meta() const { return source_->meta(); }
    report::AccessChecker &checker() { return checker_; }
    /** Mutable: the pressure ladder shrinks cfg().windowMs. */
    DetectorConfig &cfg() { return cfg_; }
    DetectorCounters &countersMut() { return counters_; }
    /** Fail the run with a structured status (budget exhaustion);
     * logged to the attached event log, if any. */
    void failRun(Status st);
    /** Attached tracer, or null (for model-specific spans). */
    obs::Tracer *tracer() const { return obs_.tracer; }
    /** Attached structured event log, or null. */
    obs::EventLog *events() const { return obs_.events; }

    // ----- per-phase latency attribution ----------------------------
    /** True when cfg().phaseTiming is set; PhaseScope sites check
     * this one bool, so disabled runs pay a single predicted branch
     * per site. */
    bool phaseTimingOn() const { return timing_; }
    /** Attribute @p ns to @p p within the current op (PhaseScope). */
    void
    addPhaseNs(Phase p, std::uint64_t ns)
    {
        opPhaseNs_[static_cast<std::size_t>(p)] += ns;
    }
    /** Cumulative ns attributed per phase (index by Phase), for
     * end-of-run reporting. All zero unless phaseTiming is on. */
    const std::uint64_t *phaseTotalsNs() const { return totalPhaseNs_; }

  private:
    void processOp(const trace::Operation &op, trace::OpId id);

    // ----- observability (inactive until attachObs) -----------------
    /** processNext() with per-block span timing; kept out of line so
     * the untraced hot path stays small. */
    bool processNextTraced();
    /** processNext() with per-phase latency carving (takes precedence
     * over tracing when both are enabled). */
    bool processNextTimed();
    /** Emit the accumulated pump span, if any ops are pending. */
    void flushPumpSpan();

    std::unique_ptr<trace::TraceSource> owned_;
    trace::TraceSource *source_;
    report::AccessChecker &checker_;
    DetectorConfig cfg_;
    std::uint64_t cursor_ = 0;

    DetectorCounters counters_;
    std::uint64_t opsSinceGc_ = 0;
    /** Effective sweep cadence: gcIntervalOps, tightened to ≤512 when
     * a memory budget is set (computed once — hot-path constant). */
    std::uint64_t gcIntervalEff_ = 0;
    Status runStatus_ = Status::ok();

    /** The model; declared after every service it borrows so it is
     * destroyed first. */
    std::unique_ptr<CausalityModel> model_;

    obs::ObsContext obs_{};
    /** Ops per "pump" span when tracing: coarse enough that a
     * million-op run yields a loadable trace, fine enough to see
     * throughput phases. */
    static constexpr std::uint64_t kPumpSpanOps = 8192;
    std::uint64_t pumpOps_ = 0;
    std::uint64_t pumpStartUs_ = 0;
    std::uint64_t pumpDecodeUs_ = 0;
    std::uint64_t pumpResolveUs_ = 0;

    // ----- phase timing (inactive unless cfg.phaseTiming) -----------
    bool timing_ = false;
    /** ns attributed per phase within the op in flight. */
    std::uint64_t opPhaseNs_[kNumPhases] = {};
    /** Cumulative ns per phase across the run. */
    std::uint64_t totalPhaseNs_[kNumPhases] = {};
    /** detector.phase_ns{phase,model,backend} histograms, or null
     * when metrics are not attached. */
    obs::Histogram *phaseHist_[kNumPhases] = {};
};

/**
 * RAII timer attributing the enclosed scope's wall time to one
 * phase. A no-op (one predicted branch, no clock reads) unless the
 * engine's phaseTiming config is on — cheap enough for model hot
 * paths like the per-access checker call.
 */
class PhaseScope
{
  public:
    PhaseScope(DetectorEngine &engine, Phase p)
        : engine_(engine), phase_(p), on_(engine.phaseTimingOn())
    {
        if (on_) [[unlikely]]
            start_ = std::chrono::steady_clock::now();
    }

    ~PhaseScope()
    {
        if (on_) [[unlikely]] {
            auto ns = std::chrono::duration_cast<
                          std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
            engine_.addPhaseNs(phase_,
                               static_cast<std::uint64_t>(ns));
        }
    }

    PhaseScope(const PhaseScope &) = delete;
    PhaseScope &operator=(const PhaseScope &) = delete;

  private:
    DetectorEngine &engine_;
    Phase phase_;
    bool on_;
    std::chrono::steady_clock::time_point start_{};
};

} // namespace asyncclock::core

#endif // ASYNCCLOCK_CORE_ENGINE_HH
