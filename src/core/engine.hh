/**
 * @file
 * The model-agnostic detection engine.
 *
 * DetectorEngine is the mechanism half of the model/mechanism split
 * (see core/model.hh): it owns the trace source, the access checker
 * reference, the run configuration and status, the op cursor, the
 * shared DetectorCounters, the GC/memory-pressure cadence, and the
 * observability plumbing (pump spans, detector.* metrics). All
 * happens-before semantics live in the plugged-in CausalityModel.
 *
 * AsyncClockDetector (core/detector.hh) is the backwards-compatible
 * facade: a DetectorEngine constructed with ModelKind::Looper.
 */

#ifndef ASYNCCLOCK_CORE_ENGINE_HH
#define ASYNCCLOCK_CORE_ENGINE_HH

#include <cstdint>
#include <memory>

#include "core/config.hh"
#include "core/model.hh"
#include "obs/obs.hh"
#include "report/checker.hh"
#include "report/detector.hh"
#include "support/status.hh"
#include "trace/source.hh"
#include "trace/trace.hh"

namespace asyncclock::core {

class DetectorEngine : public report::Detector
{
  public:
    /** Stream operations from @p src under causality model @p model.
     * @p src and @p checker must outlive the engine. */
    DetectorEngine(ModelKind model, trace::TraceSource &src,
                   report::AccessChecker &checker,
                   DetectorConfig cfg = {});

    /** Convenience over a materialized trace (owns a
     * MaterializedSource internally). @p tr and @p checker must
     * outlive the engine. */
    DetectorEngine(ModelKind model, const trace::Trace &tr,
                   report::AccessChecker &checker,
                   DetectorConfig cfg = {});
    ~DetectorEngine() override;

    bool processNext() override;
    std::uint64_t opsProcessed() const override { return cursor_; }
    std::uint64_t metadataBytes() const override;
    void sampleMemory(MemStats &stats) const override;

    /**
     * Attach an observability context. With metrics: every
     * DetectorCounters field plus ops/chain gauges become callback
     * metrics (the hot path keeps bumping the plain struct; the
     * registry reads it at snapshot time, so the registry must not be
     * snapshotted after this engine dies), and the model registers
     * its model.* metrics. With a tracer: "pump" spans on the main
     * track covering blocks of processed ops (with decode/resolve
     * cost split in args) and a span per GC sweep. Call before the
     * first processNext().
     */
    void attachObs(const obs::ObsContext &ctx);

    /**
     * Structured health of the run. Ok while healthy; BudgetExceeded
     * once maxInvalidOps protocol-invalid operations were dropped
     * (processNext() then returns false). A non-ok status means the
     * race report is best-effort, not authoritative.
     */
    const Status &runStatus() const { return runStatus_; }

    const DetectorCounters &counters() const { return counters_; }
    /** Number of chains ever created (clock dimension). */
    std::uint32_t numChains() const { return model_->numChains(); }

    /** The causality model this engine hosts. */
    ModelKind modelKind() const { return model_->kind(); }

    // ----- services for the plugged-in model ------------------------
    /** Entity tables seen so far by the source. */
    const trace::TraceMeta &meta() const { return source_->meta(); }
    report::AccessChecker &checker() { return checker_; }
    /** Mutable: the pressure ladder shrinks cfg().windowMs. */
    DetectorConfig &cfg() { return cfg_; }
    DetectorCounters &countersMut() { return counters_; }
    /** Fail the run with a structured status (budget exhaustion). */
    void failRun(Status st) { runStatus_ = std::move(st); }
    /** Attached tracer, or null (for model-specific spans). */
    obs::Tracer *tracer() const { return obs_.tracer; }

  private:
    void processOp(const trace::Operation &op, trace::OpId id);

    // ----- observability (inactive until attachObs) -----------------
    /** processNext() with per-block span timing; kept out of line so
     * the untraced hot path stays small. */
    bool processNextTraced();
    /** Emit the accumulated pump span, if any ops are pending. */
    void flushPumpSpan();

    std::unique_ptr<trace::TraceSource> owned_;
    trace::TraceSource *source_;
    report::AccessChecker &checker_;
    DetectorConfig cfg_;
    std::uint64_t cursor_ = 0;

    DetectorCounters counters_;
    std::uint64_t opsSinceGc_ = 0;
    /** Effective sweep cadence: gcIntervalOps, tightened to ≤512 when
     * a memory budget is set (computed once — hot-path constant). */
    std::uint64_t gcIntervalEff_ = 0;
    Status runStatus_ = Status::ok();

    /** The model; declared after every service it borrows so it is
     * destroyed first. */
    std::unique_ptr<CausalityModel> model_;

    obs::ObsContext obs_{};
    /** Ops per "pump" span when tracing: coarse enough that a
     * million-op run yields a loadable trace, fine enough to see
     * throughput phases. */
    static constexpr std::uint64_t kPumpSpanOps = 8192;
    std::uint64_t pumpOps_ = 0;
    std::uint64_t pumpStartUs_ = 0;
    std::uint64_t pumpDecodeUs_ = 0;
    std::uint64_t pumpResolveUs_ = 0;
};

} // namespace asyncclock::core

#endif // ASYNCCLOCK_CORE_ENGINE_HH
