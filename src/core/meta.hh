/**
 * @file
 * The ASYNCCLOCK primitive (paper section 3) and per-event metadata.
 *
 * An AsyncClock for a queue q is a sparse vector over chains: entry i
 * names the event posted to q by the *latest* causally preceding send
 * operation in chain i. Because both sends of any two entries for the
 * same chain lie on that chain, the join needs only an integer
 * comparison of their send ticks (section 3.3).
 *
 * Events are referenced from AsyncClocks (and the async-before lists,
 * pending queues, sent-at-front lists, ...) through InvPtr: when the
 * last reference drops, the metadata is reclaimed (reference-counting
 * heirless detection, section 4.1); when the time window ages an
 * event out, invalidate() frees it eagerly and surviving references
 * observe null.
 */

#ifndef ASYNCCLOCK_CORE_META_HH
#define ASYNCCLOCK_CORE_META_HH

#include <cstdint>
#include <vector>

#include "clock/vector_clock.hh"
#include "support/flat_map.hh"
#include "support/inv_ptr.hh"
#include "trace/trace.hh"

namespace asyncclock::core {

struct EventMeta;
using EventRef = InvPtr<EventMeta>;

/** One AsyncClock slot: the latest event sent to the clock's queue
 * from one chain, stamped with the send's tick on that chain. */
struct ACEntry
{
    EventRef ev;
    clock::Tick sendTick = 0;
};

/**
 * The AsyncClock primitive: chain -> ACEntry, with the paper's join
 * (pointwise "latest send wins") and identity reduction.
 */
class AsyncClock
{
  public:
    bool empty() const { return map_.empty(); }
    std::uint32_t size() const { return map_.size(); }

    const ACEntry *find(clock::ChainId chain) const
    {
        return map_.find(chain);
    }

    /** Install (chain -> ev@tick) if newer than the current entry. */
    void
    update(clock::ChainId chain, const EventRef &ev,
           clock::Tick sendTick)
    {
        ACEntry &slot = map_[chain];
        if (slot.sendTick < sendTick || !slot.ev.hasRef()) {
            slot.ev = ev;
            slot.sendTick = sendTick;
        }
    }

    /** The paper's join: per chain, keep the later send. */
    void
    joinWith(const AsyncClock &other)
    {
        other.map_.forEach(
            [this](clock::ChainId c, const ACEntry &e) {
                update(c, e.ev, e.sendTick);
            });
    }

    /** I_AC(E): collapse to a single entry (section 3.3 "Event
     * Creation" reduction after a send). */
    void
    reduceToIdentity(clock::ChainId chain, const EventRef &ev,
                     clock::Tick sendTick)
    {
        map_.clear();
        ACEntry &slot = map_[chain];
        slot.ev = ev;
        slot.sendTick = sendTick;
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        map_.forEach(fn);
    }

    template <typename Pred>
    void
    eraseIf(Pred &&pred)
    {
        map_.eraseIf(pred);
    }

    void clear() { map_.clear(); }

    std::uint64_t byteSize() const { return map_.byteSize(); }

  private:
    FlatMap<ACEntry> map_;
};

/** Per-queue AsyncClocks (sparse: only queues ever sent to). */
using ACSet = FlatMap<AsyncClock>;

/** Generalized AsyncClock entry for Rule ATOMIC: the latest begin of
 * an event on some looper, per chain (section 5.2/5.3). */
struct AtomicEntry
{
    EventRef ev;
    clock::Tick beginTick = 0;
};

/** chain -> AtomicEntry, for one looper. */
using AtomicClock = FlatMap<AtomicEntry>;
/** looper thread id -> AtomicClock. */
using AtomicSet = FlatMap<AtomicClock>;

/** Join an ACSet (per-queue AsyncClocks) pointwise. */
inline void
joinACSet(ACSet &dst, const ACSet &src)
{
    src.forEach([&dst](std::uint32_t q, const AsyncClock &ac) {
        dst[q].joinWith(ac);
    });
}

/** Join an AtomicSet pointwise (later begin per chain wins). */
inline void
joinAtomicSet(AtomicSet &dst, const AtomicSet &src)
{
    src.forEach([&dst](std::uint32_t looper, const AtomicClock &ac) {
        AtomicClock &d = dst[looper];
        ac.forEach([&d](clock::ChainId c, const AtomicEntry &e) {
            AtomicEntry &slot = d[c];
            if (slot.beginTick < e.beginTick || !slot.ev.hasRef()) {
                slot.ev = e.ev;
                slot.beginTick = e.beginTick;
            }
        });
    });
}

/** Byte footprint of an ACSet. */
inline std::uint64_t
acSetBytes(const ACSet &acs)
{
    std::uint64_t total = acs.byteSize();
    acs.forEach([&total](std::uint32_t, const AsyncClock &ac) {
        total += ac.byteSize();
    });
    return total;
}

inline std::uint64_t
atomicSetBytes(const AtomicSet &ats)
{
    std::uint64_t total = ats.byteSize();
    ats.forEach([&total](std::uint32_t, const AtomicClock &ac) {
        total += ac.byteSize();
    });
    return total;
}

/** Intrusive registry of live metas (for byte polling), plus the
 * shared drain queue that turns chained metadata destruction into a
 * loop — a causal chain thousands of events long must not unwind as
 * destructor recursion (stack overflow). */
struct MetaRegistry
{
    EventMeta *head = nullptr;
    std::uint64_t live = 0;
    std::uint64_t livePeak = 0;
    std::uint64_t destroyed = 0;
    bool draining = false;
    std::vector<EventRef> drainQueue;
};

/** Move every counted reference out of @p acs into @p out. */
inline void
drainACSet(ACSet &acs, std::vector<EventRef> &out)
{
    acs.forEach([&out](std::uint32_t, AsyncClock &ac) {
        ac.eraseIf([&out](clock::ChainId, ACEntry &entry) {
            if (entry.ev.hasRef())
                out.push_back(std::move(entry.ev));
            return true;
        });
    });
}

inline void
drainAtomicSet(AtomicSet &ats, std::vector<EventRef> &out)
{
    ats.forEach([&out](std::uint32_t, AtomicClock &ac) {
        ac.eraseIf([&out](clock::ChainId, AtomicEntry &entry) {
            if (entry.ev.hasRef())
                out.push_back(std::move(entry.ev));
            return true;
        });
    });
}

/**
 * Per-event analysis metadata. Lifecycle:
 *  - created at send with the sender's clock/AsyncClock snapshots;
 *  - at begin, sendACs are consumed (moved into the chain state) and
 *    the begin epoch is minted; sendVC survives until end (multi-path
 *    reduction needs the send-before-send test);
 *  - at end, the end clock/ACs are snapshotted — this is what future
 *    immediate successors inherit;
 *  - destroyed by the last reference drop (heirless) or invalidate()
 *    (time window).
 */
struct EventMeta
{
    trace::EventId id = trace::kInvalidId;
    trace::QueueId queue = trace::kInvalidId;
    trace::SendAttrs attrs{};

    // --- send-time state -------------------------------------------
    clock::Epoch sendEpoch{};       ///< (sender chain, send tick)
    clock::VectorClock sendVC;
    ACSet sendACs;
    AtomicSet sendAtomic;

    // --- resolved state ---------------------------------------------
    bool begun = false;
    bool ended = false;
    bool removed = false;
    bool resolvedRemoved = false;   ///< lazy removed-event resolution
    clock::Epoch beginEpoch{};
    clock::Epoch endEpoch{};
    clock::VectorClock endVC;       ///< also holds a removed event's
                                    ///< resolved clock
    ACSet endACs;
    AtomicSet endAtomic;
    /** Begin-time clock/ACs, kept only for binder events (their
     * successors inherit begins, not ends). */
    clock::VectorClock beginVC;
    ACSet beginACs;
    AtomicSet beginAtomic;

    std::uint64_t endVtime = 0;     ///< for time-window aging

    /** AtFront events executed while this event was queued, already
     * filtered by premise send(this) hb send(front). */
    std::vector<EventRef> sentAtFront;

    // --- intrusive registry ----------------------------------------
    MetaRegistry *registry = nullptr;
    EventMeta *prev = nullptr;
    EventMeta *next = nullptr;

    explicit EventMeta(MetaRegistry &reg) : registry(&reg)
    {
        next = reg.head;
        if (next)
            next->prev = this;
        reg.head = this;
        ++reg.live;
        if (reg.live > reg.livePeak)
            reg.livePeak = reg.live;
    }

    EventMeta(const EventMeta &) = delete;
    EventMeta &operator=(const EventMeta &) = delete;

    ~EventMeta()
    {
        if (prev)
            prev->next = next;
        else
            registry->head = next;
        if (next)
            next->prev = prev;
        --registry->live;
        ++registry->destroyed;

        // Hand outgoing references to the registry's drain queue and,
        // if no drain is already running above us on the stack, run
        // it: destruction of long causal chains becomes a loop
        // instead of recursion.
        MetaRegistry &reg = *registry;
        drainACSet(sendACs, reg.drainQueue);
        drainACSet(endACs, reg.drainQueue);
        drainACSet(beginACs, reg.drainQueue);
        drainAtomicSet(sendAtomic, reg.drainQueue);
        drainAtomicSet(endAtomic, reg.drainQueue);
        drainAtomicSet(beginAtomic, reg.drainQueue);
        for (EventRef &ref : sentAtFront)
            reg.drainQueue.push_back(std::move(ref));
        sentAtFront.clear();
        if (!reg.draining) {
            reg.draining = true;
            while (!reg.drainQueue.empty()) {
                EventRef ref = std::move(reg.drainQueue.back());
                reg.drainQueue.pop_back();
                ref.reset();
            }
            reg.draining = false;
        }
    }

    std::uint64_t
    byteSize() const
    {
        return sizeof(EventMeta) + sendVC.byteSize() +
               acSetBytes(sendACs) + atomicSetBytes(sendAtomic) +
               endVC.byteSize() + acSetBytes(endACs) +
               atomicSetBytes(endAtomic) + beginVC.byteSize() +
               acSetBytes(beginACs) + atomicSetBytes(beginAtomic) +
               sentAtFront.capacity() * sizeof(EventRef);
    }
};

} // namespace asyncclock::core

#endif // ASYNCCLOCK_CORE_META_HH
