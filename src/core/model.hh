/**
 * @file
 * The causality-model seam: what varies between event-loop dialects.
 *
 * The detection *mechanism* — pulling operations from a TraceSource,
 * admission budgeting, GC/memory-pressure cadence, race emission
 * through an AccessChecker, observability — is the same whatever
 * concurrency model produced the trace. What varies is the *model*:
 * which operations exist, which happens-before edges they induce, and
 * what per-entity metadata must be kept to resolve them. This
 * interface captures exactly that variable part, so the engine
 * (core/engine.hh) can host either
 *
 *  - LooperModel (core/looper_model.hh): the paper's extended Android
 *    model — message queues, Table 1 priorities, chains, AsyncClocks,
 *    async-before lists; or
 *  - AsyncTaskModel (core/async_model.hh): structured-concurrency
 *    async/await task graphs — spawn/await/cancel edges and
 *    scope-close joins over the async trace dialect.
 *
 * A model is a per-run object owned by its engine; it reaches shared
 * services (checker, config, counters, trace metadata) back through
 * the engine reference handed to makeModel().
 */

#ifndef ASYNCCLOCK_CORE_MODEL_HH
#define ASYNCCLOCK_CORE_MODEL_HH

#include <cstdint>
#include <memory>
#include <string>

#include "obs/metrics.hh"
#include "support/stats.hh"
#include "trace/trace.hh"

namespace asyncclock::core {

class DetectorEngine;

/** The causality models an engine can host. */
enum class ModelKind : std::uint8_t {
    Looper,  ///< extended Android looper/binder model (paper)
    Async,   ///< structured-concurrency async/await task graphs
};

/** Human-readable model name ("looper" / "async"). */
const char *modelName(ModelKind kind);

/** Parse a model name; false (out untouched) if unknown. */
bool parseModelName(const std::string &name, ModelKind &out);

/** The model a trace dialect calls for (Looper dialect -> Looper
 * model, Async dialect -> Async model). */
ModelKind modelForDialect(trace::Dialect d);

/**
 * Which happens-before edges a model treats as *schedule-dependent* —
 * orderings the observed execution forced but a different feasible
 * schedule could flip. The predictive tier (src/predict/) builds its
 * weakened ordering by dropping exactly these from the model's rule
 * set; everything else is programmatic (fork/join, post -> begin,
 * structured await/scope) and holds in every execution.
 */
struct WeakOrderingSpec
{
    /** Drop the queue-derived rules (PRIORITY/FIFO, ATFRONT, ATOMIC,
     * binder): which event dequeues first depends on the schedule of
     * the racing sends. */
    bool dropQueueOrderEdges = false;
    /** Drop signal -> wait edges beyond the first (releasing) signal
     * per handle: latch semantics only require *some* prior signal,
     * so later signals are schedule-dependent predecessors. */
    bool dropNonReleasingSignalEdges = false;

    /** True when the weakened ordering differs from the model's full
     * happens-before (i.e. prediction can surface candidates). */
    bool
    weakerThanStrong() const
    {
        return dropQueueOrderEdges || dropNonReleasingSignalEdges;
    }
};

/** The weakened-ordering spec for @p kind. The looper model drops
 * queue-order and non-releasing signal edges; the async model's edges
 * are all programmatic, so its weak ordering equals its strong one
 * (prediction still runs, but can only surface detector misses, not
 * schedule-hidden pairs). */
WeakOrderingSpec weakOrderingFor(ModelKind kind);

/**
 * One causality model plugged into a DetectorEngine.
 *
 * Call protocol (driven by the engine, in this order per operation):
 * syncEntities() after each source pull (entity tables may grow
 * mid-stream), admitOp() as the protocol gate (false = dropped, with
 * the engine's shared budget), applyOp() for the happens-before work
 * and access emission, then ageWindow()/gcSweep()/
 * relieveMemoryPressure() on the engine's cadence, and
 * syncDerivedCounters() to publish model-derived counter values.
 */
class CausalityModel
{
  public:
    virtual ~CausalityModel() = default;

    virtual ModelKind kind() const = 0;

    /** Grow per-entity state to match the source's meta(). */
    virtual void syncEntities() = 0;

    /** True if @p op is admissible under the model's entity life
     * cycles; commits its phase transition. False = dropped (counted;
     * may fail the run via the engine's invalid-op budget). */
    virtual bool admitOp(const trace::Operation &op) = 0;

    /** Apply one admitted operation: maintain clocks and metadata,
     * emit Read/Write accesses into the engine's checker. */
    virtual void applyOp(const trace::Operation &op,
                         trace::OpId id) = 0;

    /** Age out metadata older than the configured time window. */
    virtual void ageWindow(std::uint64_t now) = 0;

    /** Periodic garbage-collection sweep. */
    virtual void gcSweep() = 0;

    /** Degradation ladder while over the memory budget (see
     * DetectorConfig::memBudgetBytes). */
    virtual void relieveMemoryPressure(std::uint64_t now) = 0;

    /** Publish counters derived from model-internal state (live
     * metadata gauges etc.) into the engine's DetectorCounters. */
    virtual void syncDerivedCounters() = 0;

    /** Number of chains ever created (clock dimension). */
    virtual std::uint32_t numChains() const = 0;

    /** Live model-metadata bytes, excluding the checker (the
     * pressure ladder keys off this — see checkpoint.hh for why the
     * checker is excluded). */
    virtual std::uint64_t modelBytes() const = 0;

    /** Record current per-category live bytes (including the
     * checker's, under MemCat::VarState). */
    virtual void sampleMemory(MemStats &stats) const = 0;

    /** Register model-specific ("model.*") metrics. Called once from
     * DetectorEngine::attachObs when a registry is present. */
    virtual void registerModelMetrics(obs::MetricsRegistry &reg) = 0;
};

/** Construct the model implementation for @p kind, bound to
 * @p engine (which must outlive it). */
std::unique_ptr<CausalityModel> makeModel(ModelKind kind,
                                          DetectorEngine &engine);

} // namespace asyncclock::core

#endif // ASYNCCLOCK_CORE_MODEL_HH
