#include "core/engine.hh"

#include "support/format.hh"

namespace asyncclock::core {

using trace::OpId;
using trace::Operation;

const char *
phaseName(Phase p)
{
    switch (p) {
    case Phase::Decode: return "decode";
    case Phase::ModelApply: return "model_apply";
    case Phase::ClockJoin: return "clock_join";
    case Phase::RaceCheck: return "race_check";
    case Phase::GcSweep: return "gc_sweep";
    }
    return "unknown";
}

DetectorEngine::DetectorEngine(ModelKind model, trace::TraceSource &src,
                               report::AccessChecker &checker,
                               DetectorConfig cfg)
    : source_(&src), checker_(checker), cfg_(cfg)
{
    clock::setDefaultBackend(cfg_.clockBackend);
    gcIntervalEff_ = (cfg_.memBudgetBytes > 0 && cfg_.gcIntervalOps > 512)
                         ? 512
                         : cfg_.gcIntervalOps;
    timing_ = cfg_.phaseTiming;
    model_ = makeModel(model, *this);
    model_->syncEntities();
}

DetectorEngine::DetectorEngine(ModelKind model, const trace::Trace &tr,
                               report::AccessChecker &checker,
                               DetectorConfig cfg)
    : owned_(std::make_unique<trace::MaterializedSource>(tr)),
      source_(owned_.get()), checker_(checker), cfg_(cfg)
{
    clock::setDefaultBackend(cfg_.clockBackend);
    gcIntervalEff_ = (cfg_.memBudgetBytes > 0 && cfg_.gcIntervalOps > 512)
                         ? 512
                         : cfg_.gcIntervalOps;
    timing_ = cfg_.phaseTiming;
    model_ = makeModel(model, *this);
    model_->syncEntities();
}

DetectorEngine::~DetectorEngine() = default;

void
DetectorEngine::flushPumpSpan()
{
    if (pumpOps_ == 0)
        return;
    obs_.tracer->span(
        obs::kMainTrack, "pump", pumpStartUs_, obs_.tracer->nowUs(),
        strf("{\"ops\":%llu,\"decode_us\":%llu,\"resolve_us\":%llu}",
             static_cast<unsigned long long>(pumpOps_),
             static_cast<unsigned long long>(pumpDecodeUs_),
             static_cast<unsigned long long>(pumpResolveUs_)));
    pumpOps_ = 0;
    pumpDecodeUs_ = 0;
    pumpResolveUs_ = 0;
}

bool
DetectorEngine::processNext()
{
    if (!runStatus_.isOk()) [[unlikely]]
        return false;
    if (timing_) [[unlikely]]
        return processNextTimed();
    if (obs_.tracer) [[unlikely]]
        return processNextTraced();
    Operation op;
    if (!source_->next(op))
        return false;
    model_->syncEntities();
    processOp(op, static_cast<OpId>(cursor_));
    ++cursor_;
    return true;
}

bool
DetectorEngine::processNextTraced()
{
    // Traced pump: split the per-op cost into decode (pulling from
    // the source) and resolve (the causality machinery), aggregated
    // into one span per kPumpSpanOps block.
    if (!runStatus_.isOk()) [[unlikely]]
        return false;
    Operation op;
    std::uint64_t t0 = obs_.tracer->nowUs();
    if (pumpOps_ == 0)
        pumpStartUs_ = t0;
    bool got = source_->next(op);
    std::uint64_t t1 = obs_.tracer->nowUs();
    pumpDecodeUs_ += t1 - t0;
    if (!got) {
        flushPumpSpan();
        return false;
    }
    model_->syncEntities();
    processOp(op, static_cast<OpId>(cursor_));
    ++cursor_;
    pumpResolveUs_ += obs_.tracer->nowUs() - t1;
    if (++pumpOps_ >= kPumpSpanOps)
        flushPumpSpan();
    return true;
}

bool
DetectorEngine::processNextTimed()
{
    // Timed pump: Decode is measured here, ClockJoin/RaceCheck by
    // PhaseScope sites inside the model, GcSweep by processOp, and
    // ModelApply is the residual — so the buckets sum to the
    // measured per-op wall time.
    using SteadyClock = std::chrono::steady_clock;
    auto nsBetween = [](SteadyClock::time_point a,
                        SteadyClock::time_point b) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
                .count());
    };
    Operation op;
    auto t0 = SteadyClock::now();
    bool got = source_->next(op);
    auto t1 = SteadyClock::now();
    if (!got)
        return false;
    for (std::size_t i = 0; i < kNumPhases; ++i)
        opPhaseNs_[i] = 0;
    opPhaseNs_[static_cast<std::size_t>(Phase::Decode)] =
        nsBetween(t0, t1);
    model_->syncEntities();
    processOp(op, static_cast<OpId>(cursor_));
    ++cursor_;
    auto t2 = SteadyClock::now();
    std::uint64_t resolveNs = nsBetween(t1, t2);
    std::uint64_t nested =
        opPhaseNs_[static_cast<std::size_t>(Phase::ClockJoin)] +
        opPhaseNs_[static_cast<std::size_t>(Phase::RaceCheck)] +
        opPhaseNs_[static_cast<std::size_t>(Phase::GcSweep)];
    opPhaseNs_[static_cast<std::size_t>(Phase::ModelApply)] =
        resolveNs > nested ? resolveNs - nested : 0;
    for (std::size_t i = 0; i < kNumPhases; ++i) {
        totalPhaseNs_[i] += opPhaseNs_[i];
        // Decode and ModelApply happen every op; the nested phases
        // are recorded only when they ran, so their histogram counts
        // mean "ops where the phase fired".
        bool everyOp = i <= static_cast<std::size_t>(Phase::ModelApply);
        if (phaseHist_[i] && (everyOp || opPhaseNs_[i] > 0))
            phaseHist_[i]->observe(opPhaseNs_[i]);
    }
    return true;
}

void
DetectorEngine::processOp(const Operation &op, OpId id)
{
    if (!model_->admitOp(op)) [[unlikely]]
        return;
    model_->applyOp(op, id);

    if (cfg_.windowMs > 0)
        model_->ageWindow(op.vtime);
    if (++opsSinceGc_ >= gcIntervalEff_) {
        opsSinceGc_ = 0;
        PhaseScope timed(*this, Phase::GcSweep);
        {
            obs::ScopedSpan span(obs_.tracer, obs::kMainTrack,
                                 "gc_sweep");
            model_->gcSweep();
        }
        // Memory-pressure check rides the GC cadence: modelBytes()
        // walks all live metadata, far too costly per op.
        if (cfg_.memBudgetBytes > 0)
            model_->relieveMemoryPressure(op.vtime);
    }
    model_->syncDerivedCounters();
}

void
DetectorEngine::failRun(Status st)
{
    if (obs_.events && runStatus_.isOk() && !st.isOk())
        obs_.events->log(obs::EventLog::Severity::Error,
                         "protocol.budget_exhausted", st.message(),
                         cursor_);
    runStatus_ = std::move(st);
}

std::uint64_t
DetectorEngine::metadataBytes() const
{
    return model_->modelBytes() + checker_.byteSize();
}

void
DetectorEngine::sampleMemory(MemStats &stats) const
{
    model_->sampleMemory(stats);
}

void
DetectorEngine::attachObs(const obs::ObsContext &ctx)
{
    obs_ = ctx;
    if (!obs_.metrics)
        return;
    obs::MetricsRegistry &reg = *obs_.metrics;
    const DetectorCounters *c = &counters_;
    reg.counterFn("detector.ops_processed",
                  [this] { return cursor_; });
    reg.counterFn("detector.events_seen",
                  [c] { return c->eventsSeen; });
    reg.counterFn("detector.reclaimed_refcount",
                  [c] { return c->reclaimedRefcount; });
    reg.counterFn("detector.reclaimed_multipath",
                  [c] { return c->reclaimedMultiPath; });
    reg.counterFn("detector.invalidated_by_window",
                  [c] { return c->invalidatedByWindow; });
    reg.counterFn("detector.chains_created",
                  [c] { return c->chainsCreated; });
    reg.counterFn("detector.chains_reused",
                  [c] { return c->chainsReused; });
    reg.counterFn("detector.gc_sweeps", [c] { return c->gcSweeps; });
    reg.counterFn("detector.walk_steps",
                  [c] { return c->walkSteps; });
    reg.counterFn("detector.walk_early_stops",
                  [c] { return c->walkEarlyStops; });
    reg.counterFn("detector.clock_ticks",
                  [c] { return c->clockTicks; });
    reg.counterFn("detector.clock_joins",
                  [c] { return c->clockJoins; });
    reg.counterFn("detector.invalid_ops_dropped",
                  [c] { return c->invalidOpsDropped; });
    reg.counterFn("detector.causal_anomalies",
                  [c] { return c->causalAnomalies; });
    reg.counterFn("detector.pressure_gc_sweeps",
                  [c] { return c->pressureGcSweeps; });
    reg.counterFn("detector.pressure_window_shrinks",
                  [c] { return c->pressureWindowShrinks; });
    reg.counterFn("detector.pressure_invalidations",
                  [c] { return c->pressureInvalidations; });
    for (unsigned lvl = 0; lvl < 4; ++lvl) {
        reg.counterFn(strf("detector.fifo_level_%u", lvl),
                      [c, lvl] { return c->fifoLevel[lvl]; });
    }
    reg.gaugeFn("detector.events_live", [c] {
        return static_cast<std::int64_t>(c->eventsLive);
    });
    reg.gaugeFn("detector.events_live_peak", [c] {
        return static_cast<std::int64_t>(c->eventsLivePeak);
    });
    reg.gaugeFn("detector.chains", [this] {
        return static_cast<std::int64_t>(model_->numChains());
    });
    // Run identity as a labeled constant-1 gauge (the Prometheus
    // "info" idiom): lets dashboards join per-run series on model
    // and clock backend without parsing names.
    reg.gauge("run.info",
              {{"model", modelName(model_->kind())},
               {"backend", clock::backendName(cfg_.clockBackend)}})
        .set(1);
    if (cfg_.phaseTiming) {
        // Per-op ns: sub-µs decode/check up to ms-scale GC sweeps.
        const std::vector<std::uint64_t> bounds = {
            100,     250,     500,      1000,    2500,
            5000,    10000,   25000,    50000,   100000,
            250000,  1000000, 10000000,
        };
        for (std::size_t i = 0; i < kNumPhases; ++i) {
            phaseHist_[i] = &reg.histogram(
                "detector.phase_ns",
                {{"phase", phaseName(static_cast<Phase>(i))},
                 {"model", modelName(model_->kind())},
                 {"backend", clock::backendName(cfg_.clockBackend)}},
                bounds);
        }
    }
    model_->registerModelMetrics(reg);
}

void
appendRunNotes(std::vector<std::string> &notes,
               std::uint64_t recordsSkipped,
               const DetectorCounters *counters)
{
    if (recordsSkipped > 0)
        notes.push_back(
            strf("%llu corrupt record(s) skipped during decode",
                 (unsigned long long)recordsSkipped));
    if (!counters)
        return;
    const DetectorCounters &dc = *counters;
    if (dc.invalidOpsDropped > 0 || dc.causalAnomalies > 0)
        notes.push_back(strf(
            "%llu protocol-invalid op(s) dropped, %llu causal "
            "anomal(ies) tolerated",
            (unsigned long long)dc.invalidOpsDropped,
            (unsigned long long)dc.causalAnomalies));
    if (dc.pressureGcSweeps > 0 || dc.pressureWindowShrinks > 0 ||
        dc.pressureInvalidations > 0)
        notes.push_back(strf(
            "memory-pressure ladder fired: %llu aggressive "
            "sweep(s), %llu window shrink(s), %llu "
            "invalidation(s); recall may be reduced",
            (unsigned long long)dc.pressureGcSweeps,
            (unsigned long long)dc.pressureWindowShrinks,
            (unsigned long long)dc.pressureInvalidations));
}

} // namespace asyncclock::core
