#include "core/async_model.hh"

#include <algorithm>

#include "support/format.hh"
#include "support/logging.hh"

namespace asyncclock::core {

using clock::Epoch;
using trace::EventId;
using trace::HandleId;
using trace::kInvalidId;
using trace::OpId;
using trace::OpKind;
using trace::Operation;
using trace::Task;
using trace::ThreadId;

AsyncTaskModel::AsyncTaskModel(DetectorEngine &engine)
    : engine_(engine), checker_(engine.checker()), cfg_(engine.cfg()),
      counters_(engine.countersMut())
{
}

void
AsyncTaskModel::syncEntities()
{
    const trace::TraceMeta &m = meta();
    std::size_t nt = m.threads().size();
    if (threadChain_.size() < nt) {
        threadChain_.resize(nt, kInvalidId);
        forkVC_.resize(nt);
        forkValid_.resize(nt, 0);
        threadEndVC_.resize(nt);
    }
    if (threadPhase_.size() < nt)
        threadPhase_.resize(
            nt, static_cast<std::uint8_t>(ThreadPhase::Unstarted));
    std::size_t ne = m.events().size();
    if (taskChain_.size() < ne) {
        taskChain_.resize(ne, kInvalidId);
        spawnVC_.resize(ne);
        settleVC_.resize(ne);
        settleEpoch_.resize(ne);
        aged_.resize(ne, 0);
        startVtime_.resize(ne, 0);
        taskScope_.resize(ne, kInvalidId);
    }
    if (taskPhase_.size() < ne)
        taskPhase_.resize(
            ne, static_cast<std::uint8_t>(TaskPhase::Unspawned));
    std::size_t nh = m.handles().size();
    if (handleVC_.size() < nh) {
        handleVC_.resize(nh);
        scopeJoin_.resize(nh);
        scopeOpen_.resize(nh, 0);
    }
}

clock::ChainId
AsyncTaskModel::newChain()
{
    chains_.emplace_back();
    ++counters_.chainsCreated;
    return static_cast<ChainId>(chains_.size() - 1);
}

clock::ChainId
AsyncTaskModel::chainOf(Task task) const
{
    return task.isEvent() ? taskChain_[task.index()]
                          : threadChain_[task.index()];
}

Epoch
AsyncTaskModel::tickChain(ChainId c)
{
    Chain &ch = chains_[c];
    clock::Tick t = ++ch.tick;
    ch.vc.tick(c, t);
    ++counters_.clockTicks;
    return {c, t};
}

void
AsyncTaskModel::joinInto(ChainId c, const VectorClock &vc)
{
    chains_[c].vc.joinWith(vc);
    ++counters_.clockJoins;
}

void
AsyncTaskModel::joinWindowFloor(VectorClock &vc)
{
    if (window_.version > 0 &&
        vc.get(window_.marker) < window_.version) {
        vc.joinWith(window_.vc);
        ++counters_.clockJoins;
    }
}

bool
AsyncTaskModel::admitOp(const Operation &op)
{
    const char *why = nullptr;
    if (op.task.isEvent()) {
        auto ph = static_cast<TaskPhase>(taskPhase_[op.task.index()]);
        if (op.kind == OpKind::EventBegin) {
            if (ph != TaskPhase::Pending)
                why = "task start without a spawn";
        } else if (ph != TaskPhase::Running) {
            why = op.kind == OpKind::EventEnd
                      ? "task finish without a start"
                      : "op from a task that is not running";
        }
    } else {
        auto ph = static_cast<ThreadPhase>(threadPhase_[op.task.index()]);
        if (op.kind == OpKind::ThreadBegin) {
            if (ph != ThreadPhase::Unstarted)
                why = "duplicate thread begin";
        } else if (ph != ThreadPhase::Running) {
            why = ph == ThreadPhase::Unstarted
                      ? "op from a thread before its begin"
                      : "op from a thread after its end";
        }
    }
    if (!why && op.kind == OpKind::TaskSpawn &&
        static_cast<TaskPhase>(taskPhase_[op.event]) !=
            TaskPhase::Unspawned) {
        why = "duplicate spawn of a task";
    }
    if (!why && op.kind == OpKind::TaskAwait &&
        static_cast<TaskPhase>(taskPhase_[op.event]) !=
            TaskPhase::Settled) {
        why = "await of a task that has not settled";
    }
    if (!why && op.kind == OpKind::TaskCancel &&
        static_cast<TaskPhase>(taskPhase_[op.event]) !=
            TaskPhase::Pending) {
        why = "cancel of a task that is not pending";
    }
    if (!why && op.kind == OpKind::ScopeEnd &&
        scopeOpen_[op.target] != 0) {
        why = "scope end with open tasks";
    }
    if (!why && (op.kind == OpKind::Send ||
                 op.kind == OpKind::RemoveEvent)) {
        why = "looper-dialect op in an async trace";
    }
    if (why) {
        ++counters_.invalidOpsDropped;
        warnRateLimited(
            "detector.invalid_op",
            strf("dropping protocol-invalid op at index %llu: %s",
                 static_cast<unsigned long long>(
                     engine_.opsProcessed()),
                 why));
        if (counters_.invalidOpsDropped > cfg_.maxInvalidOps) {
            engine_.failRun(Status::error(
                ErrCode::BudgetExceeded,
                strf("invalid-op budget exhausted after %llu dropped "
                     "operations; last: %s",
                     static_cast<unsigned long long>(
                         counters_.invalidOpsDropped),
                     why),
                engine_.opsProcessed()));
        }
        return false;
    }
    switch (op.kind) {
      case OpKind::ThreadBegin:
        threadPhase_[op.task.index()] =
            static_cast<std::uint8_t>(ThreadPhase::Running);
        break;
      case OpKind::ThreadEnd:
        threadPhase_[op.task.index()] =
            static_cast<std::uint8_t>(ThreadPhase::Ended);
        break;
      case OpKind::TaskSpawn:
        taskPhase_[op.event] =
            static_cast<std::uint8_t>(TaskPhase::Pending);
        break;
      case OpKind::TaskCancel:
        taskPhase_[op.event] =
            static_cast<std::uint8_t>(TaskPhase::Settled);
        break;
      case OpKind::EventBegin:
        taskPhase_[op.task.index()] =
            static_cast<std::uint8_t>(TaskPhase::Running);
        break;
      case OpKind::EventEnd:
        taskPhase_[op.task.index()] =
            static_cast<std::uint8_t>(TaskPhase::Settled);
        break;
      default:
        break;
    }
    return true;
}

void
AsyncTaskModel::applyOp(const Operation &op, OpId id)
{
    switch (op.kind) {
      case OpKind::ThreadBegin:
        {
            ThreadId t = op.task.index();
            ChainId c = newChain();
            threadChain_[t] = c;
            if (forkValid_[t]) {
                joinInto(c, forkVC_[t]);
                forkVC_[t].clear();
                forkValid_[t] = 0;
            }
            tickChain(c);
        }
        break;
      case OpKind::ThreadEnd:
        {
            ThreadId t = op.task.index();
            ChainId c = threadChain_[t];
            tickChain(c);
            threadEndVC_[t] = chains_[c].vc;
        }
        break;
      case OpKind::Fork:
        {
            ChainId c = chainOf(op.task);
            tickChain(c);
            forkVC_[op.target] = chains_[c].vc;
            forkValid_[op.target] = 1;
        }
        break;
      case OpKind::Join:
        {
            ChainId c = chainOf(op.task);
            joinInto(c, threadEndVC_[op.target]);
            tickChain(c);
        }
        break;
      case OpKind::Signal:
        {
            ChainId c = chainOf(op.task);
            tickChain(c);
            handleVC_[op.target].joinWith(chains_[c].vc);
            ++counters_.clockJoins;
        }
        break;
      case OpKind::Wait:
        {
            ChainId c = chainOf(op.task);
            joinInto(c, handleVC_[op.target]);
            tickChain(c);
        }
        break;
      case OpKind::Read:
      case OpKind::Write:
        {
            ChainId c = chainOf(op.task);
            report::Access acc;
            acc.op = id;
            acc.epoch = tickChain(c);
            acc.site = op.site;
            acc.task = op.task;
            acc.isWrite = op.kind == OpKind::Write;
            PhaseScope timed(engine_, Phase::RaceCheck);
            checker_.onAccess(op.target, acc, chains_[c].vc);
        }
        break;
      case OpKind::TaskSpawn:
        {
            // Rule SPAWN: the child's initial clock is the spawner's
            // clock at the spawn tick.
            ChainId c = chainOf(op.task);
            tickChain(c);
            spawnVC_[op.event] = chains_[c].vc;
            taskScope_[op.event] = op.target;
            ++scopeOpen_[op.target];
            ++counters_.eventsSeen;
            ++tasksSpawned_;
            ++tasksLive_;
            tasksLivePeak_ = std::max(tasksLivePeak_, tasksLive_);
        }
        break;
      case OpKind::TaskAwait:
        {
            // Rule AWAIT: settle(C) hb await(C). An aged child's
            // settle time is covered by the window clock. Awaits and
            // scope closes are the join-dominated phase of this
            // model.
            PhaseScope timed(engine_, Phase::ClockJoin);
            ChainId c = chainOf(op.task);
            Chain &ch = chains_[c];
            if (aged_[op.event]) {
                joinWindowFloor(ch.vc);
            } else if (!ch.vc.knows(settleEpoch_[op.event])) {
                joinInto(c, settleVC_[op.event]);
            }
            tickChain(c);
            ++tasksAwaited_;
        }
        break;
      case OpKind::TaskCancel:
        {
            // A cancelled task never runs; the cancel op is its
            // settle point, so awaiters/scope closes synchronize with
            // the canceller.
            ChainId c = chainOf(op.task);
            Epoch e = tickChain(c);
            spawnVC_[op.event].clear();
            settleTask(op.event, taskScope_[op.event],
                       chains_[c].vc, e, op.vtime);
            ++tasksCancelled_;
        }
        break;
      case OpKind::ScopeEnd:
        {
            // Structured concurrency's implicit join: every member
            // task settled before the scope closes.
            PhaseScope timed(engine_, Phase::ClockJoin);
            ChainId c = chainOf(op.task);
            joinInto(c, scopeJoin_[op.target]);
            tickChain(c);
            scopeJoin_[op.target].clear();
            ++scopesClosed_;
        }
        break;
      case OpKind::EventBegin:
        onTaskStart(op);
        break;
      case OpKind::EventEnd:
        onTaskFinish(op);
        break;
      default:
        break;  // looper-dialect ops are rejected by admitOp
    }
}

void
AsyncTaskModel::onTaskStart(const Operation &op)
{
    EventId e = op.task.index();
    VectorClock vc = std::move(spawnVC_[e]);
    spawnVC_[e].clear();
    joinWindowFloor(vc);

    // Reuse a freed chain only when this task's start clock covers
    // the chain's last settle epoch — otherwise stale ticks of the
    // previous tenant would leak into our clock and hide races.
    ChainId c = kInvalidId;
    for (std::size_t i = 0; i < freeChains_.size(); ++i) {
        ChainId cand = freeChains_[i];
        if (vc.knows(chains_[cand].lastEnd)) {
            c = cand;
            freeChains_[i] = freeChains_.back();
            freeChains_.pop_back();
            ++counters_.chainsReused;
            break;
        }
    }
    if (c == kInvalidId)
        c = newChain();
    taskChain_[e] = c;
    Chain &ch = chains_[c];
    vc.tick(c, ++ch.tick);
    ++counters_.clockTicks;
    ch.vc = std::move(vc);
    startVtime_[e] = op.vtime;
}

void
AsyncTaskModel::onTaskFinish(const Operation &op)
{
    EventId e = op.task.index();
    ChainId c = taskChain_[e];
    Epoch end = tickChain(c);
    Chain &ch = chains_[c];
    settleTask(e, taskScope_[e], ch.vc, end, op.vtime);
    ch.lastEnd = end;
    freeChains_.push_back(c);

    if (obs::Tracer *tracer = engine_.tracer()) {
        if (taskTrack_ < 0)
            taskTrack_ = tracer->registerTrack("tasks");
        // Task spans live on the trace's vtime timeline (ms -> us).
        tracer->span(taskTrack_, strf("task %u", e),
                     startVtime_[e] * 1000, op.vtime * 1000,
                     strf("{\"task\":%u,\"scope\":%u}", e,
                          taskScope_[e]));
    }
}

void
AsyncTaskModel::settleTask(EventId task, HandleId scope,
                           const VectorClock &vc, Epoch settleEpoch,
                           std::uint64_t vtime)
{
    settleVC_[task] = vc;
    settleEpoch_[task] = settleEpoch;
    if (scope != kInvalidId) {
        scopeJoin_[scope].joinWith(vc);
        ++counters_.clockJoins;
        --scopeOpen_[scope];
    }
    --tasksLive_;
    if (cfg_.windowMs > 0)
        settled_.emplace_back(vtime, task);
}

void
AsyncTaskModel::ageWindow(std::uint64_t now)
{
    while (!settled_.empty() &&
           settled_.front().first + cfg_.windowMs < now) {
        ageOneSettled();
    }
}

void
AsyncTaskModel::drainSettledWindow()
{
    while (!settled_.empty())
        ageOneSettled();
}

void
AsyncTaskModel::ageOneSettled()
{
    EventId e = settled_.front().second;
    settled_.pop_front();
    if (aged_[e])
        return;
    if (window_.marker == kInvalidId)
        window_.marker = newChain();
    window_.vc.joinWith(settleVC_[e]);
    ++counters_.clockJoins;
    window_.vc.tick(window_.marker, ++window_.version);
    settleVC_[e].clear();
    aged_[e] = 1;
    ++windowFolds_;
    ++counters_.invalidatedByWindow;
}

void
AsyncTaskModel::gcSweep()
{
    ++counters_.gcSweeps;
    // Unlike the looper model there is no refcounted metadata to
    // cleanse: per-task clocks are released eagerly (spawn clocks at
    // start, settle clocks when aged). The sweep only compacts the
    // free-chain list when retired clocks dominate it.
    if (freeChains_.size() > 64) {
        for (ChainId c : freeChains_) {
            if (window_.version > 0 &&
                window_.vc.knows(chains_[c].lastEnd)) {
                // Any future tenant joins the window floor first, so
                // the stored clock is redundant.
                chains_[c].vc.clear();
            }
        }
    }
}

void
AsyncTaskModel::relieveMemoryPressure(std::uint64_t now)
{
    if (modelBytes() <= cfg_.memBudgetBytes)
        return;

    obs::EventLog *events = engine_.events();

    gcSweep();
    ++counters_.pressureGcSweeps;
    if (events)
        events->log(obs::EventLog::Severity::Info, "pressure.sweep",
                    strf("aggressive sweep; %llu bytes live",
                         static_cast<unsigned long long>(
                             modelBytes())),
                    engine_.opsProcessed());
    if (modelBytes() <= cfg_.memBudgetBytes)
        return;

    while (cfg_.windowMs > cfg_.minWindowMs) {
        cfg_.windowMs = std::max(cfg_.windowMs / 2, cfg_.minWindowMs);
        ageWindow(now);
        ++counters_.pressureWindowShrinks;
        if (events)
            events->log(obs::EventLog::Severity::Warn,
                        "pressure.shrink",
                        strf("window halved to %llu ms",
                             static_cast<unsigned long long>(
                                 cfg_.windowMs)),
                        engine_.opsProcessed());
        if (modelBytes() <= cfg_.memBudgetBytes)
            return;
    }

    if (cfg_.windowMs > 0 && !settled_.empty()) {
        drainSettledWindow();
        gcSweep();
        ++counters_.pressureInvalidations;
        if (events)
            events->log(obs::EventLog::Severity::Warn,
                        "pressure.invalidate",
                        "every settled task invalidated into the "
                        "window clock",
                        engine_.opsProcessed());
    }
}

void
AsyncTaskModel::syncDerivedCounters()
{
    counters_.eventsLive = tasksLive_;
    counters_.eventsLivePeak = tasksLivePeak_;
}

void
AsyncTaskModel::registerModelMetrics(obs::MetricsRegistry &reg)
{
    reg.counterFn("model.tasks_spawned",
                  [this] { return tasksSpawned_; });
    reg.counterFn("model.tasks_awaited",
                  [this] { return tasksAwaited_; });
    reg.counterFn("model.tasks_cancelled",
                  [this] { return tasksCancelled_; });
    reg.counterFn("model.scopes_closed",
                  [this] { return scopesClosed_; });
    reg.counterFn("model.window_folds",
                  [this] { return windowFolds_; });
    reg.gaugeFn("model.tasks_live", [this] {
        return static_cast<std::int64_t>(tasksLive_);
    });
}

std::uint64_t
AsyncTaskModel::modelBytes() const
{
    std::uint64_t total = 0;
    for (const Chain &ch : chains_)
        total += ch.byteSize();
    for (const VectorClock &vc : spawnVC_)
        total += vc.byteSize();
    for (const VectorClock &vc : settleVC_)
        total += vc.byteSize();
    for (const VectorClock &vc : forkVC_)
        total += vc.byteSize();
    for (const VectorClock &vc : threadEndVC_)
        total += vc.byteSize();
    for (const VectorClock &vc : handleVC_)
        total += vc.byteSize();
    for (const VectorClock &vc : scopeJoin_)
        total += vc.byteSize();
    total += window_.vc.byteSize();
    total += settled_.size() * sizeof(settled_.front());
    return total;
}

void
AsyncTaskModel::sampleMemory(MemStats &stats) const
{
    std::uint64_t taskBytes = 0;
    for (const VectorClock &vc : spawnVC_)
        taskBytes += vc.byteSize();
    for (const VectorClock &vc : settleVC_)
        taskBytes += vc.byteSize();
    std::uint64_t chainBytes = 0;
    for (const Chain &ch : chains_)
        chainBytes += ch.byteSize();
    stats.sample(MemCat::EventMeta, taskBytes);
    stats.sample(MemCat::AsyncClock, chainBytes);
    stats.sample(MemCat::VarState, checker_.byteSize());
    stats.sample(MemCat::Other,
                 modelBytes() - taskBytes - chainBytes);
}

} // namespace asyncclock::core
