#include "core/model.hh"

#include "core/async_model.hh"
#include "core/looper_model.hh"
#include "support/logging.hh"

namespace asyncclock::core {

const char *
modelName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::Looper: return "looper";
      case ModelKind::Async: return "async";
    }
    return "?";
}

bool
parseModelName(const std::string &name, ModelKind &out)
{
    if (name == "looper") {
        out = ModelKind::Looper;
        return true;
    }
    if (name == "async") {
        out = ModelKind::Async;
        return true;
    }
    return false;
}

ModelKind
modelForDialect(trace::Dialect d)
{
    return d == trace::Dialect::Async ? ModelKind::Async
                                      : ModelKind::Looper;
}

WeakOrderingSpec
weakOrderingFor(ModelKind kind)
{
    WeakOrderingSpec spec;
    if (kind == ModelKind::Looper) {
        spec.dropQueueOrderEdges = true;
        spec.dropNonReleasingSignalEdges = true;
    }
    return spec;
}

std::unique_ptr<CausalityModel>
makeModel(ModelKind kind, DetectorEngine &engine)
{
    switch (kind) {
      case ModelKind::Looper:
        return std::make_unique<LooperModel>(engine);
      case ModelKind::Async:
        return std::make_unique<AsyncTaskModel>(engine);
    }
    panic("makeModel: unknown ModelKind");
}

} // namespace asyncclock::core
