/**
 * @file
 * AsyncClockDetector: the looper-model detector.
 *
 * Historically this class held both the detection mechanism and the
 * looper happens-before semantics; those now live in DetectorEngine
 * (core/engine.hh) and LooperModel (core/looper_model.hh). The name
 * survives as the facade every looper-model client constructs — a
 * DetectorEngine fixed to ModelKind::Looper.
 */

#ifndef ASYNCCLOCK_CORE_DETECTOR_HH
#define ASYNCCLOCK_CORE_DETECTOR_HH

#include "core/config.hh"
#include "core/engine.hh"

namespace asyncclock::core {

class AsyncClockDetector : public DetectorEngine
{
  public:
    /** Stream operations from @p src (single pass; entity tables may
     * grow mid-stream). @p src and @p checker must outlive the
     * detector. */
    AsyncClockDetector(trace::TraceSource &src,
                       report::AccessChecker &checker,
                       DetectorConfig cfg = {})
        : DetectorEngine(ModelKind::Looper, src, checker, cfg)
    {
    }

    /** Convenience over a materialized trace. @p tr and @p checker
     * must outlive the detector. */
    AsyncClockDetector(const trace::Trace &tr,
                       report::AccessChecker &checker,
                       DetectorConfig cfg = {})
        : DetectorEngine(ModelKind::Looper, tr, checker, cfg)
    {
    }
};

} // namespace asyncclock::core

#endif // ASYNCCLOCK_CORE_DETECTOR_HH
