/**
 * @file
 * Configuration of the AsyncClock detector.
 */

#ifndef ASYNCCLOCK_CORE_CONFIG_HH
#define ASYNCCLOCK_CORE_CONFIG_HH

#include <cstdint>

#include "clock/policy.hh"

namespace asyncclock::core {

/** Chain decomposition strategy (sections 3.4 and 4.2). */
enum class ChainMode : std::uint8_t {
    Greedy,     ///< online greedy decomposition [17]
    Fifo,       ///< FIFO chain decomposition (level-1/2/3), falling
                ///< back to greedy for other events
};

/**
 * Detector knobs. The defaults correspond to the configuration the
 * paper evaluates end-to-end: all reclamation optimizations on, a
 * 2-minute time window, FIFO chain decomposition.
 */
struct DetectorConfig
{
    /** Reclaim heirless events by reference counting (section 4.1).
     * Off = keep every event's metadata forever (the "no reclaiming"
     * curve of Fig 9a). */
    bool reclaimHeirless = true;

    /** Multi-path reduction at event end (section 4.1). */
    bool multiPathReduction = true;

    /** Time-window approximation: events older than this (virtual ms)
     * are assumed ordered before new events and their metadata is
     * invalidated. 0 disables the window. Default: the paper's
     * 2-minute window. */
    std::uint64_t windowMs = 120000;

    /** Run a garbage-collection sweep (drop dead/aged AsyncClock
     * entries, trim async-before lists) every this many operations. */
    std::uint64_t gcIntervalOps = 4096;

    ChainMode chainMode = ChainMode::Fifo;

    /**
     * Soft cap on detector metadata bytes (0 = uncapped). Checked at
     * GC cadence; while over budget the detector climbs a degradation
     * ladder — aggressive sweep, then window halving (never below
     * minWindowMs), then full invalidation of every ended event.
     * Later rungs trade recall for memory exactly like a smaller
     * configured window would; counters record each rung so the
     * report can state the recall impact. Checker bytes are excluded
     * from the measure: they are access-history driven and (sharded)
     * asynchronously published, and the ladder must make the same
     * decisions when a checkpointed run is replayed.
     */
    std::uint64_t memBudgetBytes = 0;

    /** Floor for ladder window shrinking. */
    std::uint64_t minWindowMs = 1000;

    /**
     * Protocol-violation budget: operations that contradict the
     * entity life cycles (begin without send, op from an ended
     * thread, ...) are dropped and counted, up to this many; one more
     * fails the run with a structured status instead of corrupting
     * detector state. Decode-level skips make such sequences
     * reachable from plain corrupt files, so they must not abort.
     */
    std::uint64_t maxInvalidOps = 64;

    /**
     * Per-phase latency attribution: carve each op's cost into
     * decode / model-apply / clock-join / race-check / gc-sweep
     * buckets (engine.hh). Costs a handful of steady_clock reads per
     * op when on; when off the only residue is one predicted branch
     * per instrumentation site, keeping the disabled-overhead budget
     * (<2%) intact.
     */
    bool phaseTiming = false;

    /**
     * Vector-clock representation (see clock/policy.hh): sparse (the
     * default), copy-on-write interned, tree clock, or the cow-tree
     * hybrid. Captured from
     * the process-wide default at config construction; constructing a
     * detector applies it process-wide (checkers and graphs build
     * clocks of the same representation), since clocks of one run are
     * joined across subsystems. All backends produce byte-identical
     * reports.
     */
    clock::Backend clockBackend = clock::defaultBackend();

    /** Async-before walk early stopping (section 5.3 cases 1 and 2).
     * On in the paper's tool; off only for ablation studies — without
     * it, predecessor walks on tagged-event chains degenerate to the
     * same super-linear behaviour as EventRacer's traversal. */
    bool earlyStopping = true;
};

/** Observability counters (benches and tests read these). */
struct DetectorCounters
{
    std::uint64_t eventsSeen = 0;
    std::uint64_t eventsLive = 0;       ///< metadata records alive
    std::uint64_t eventsLivePeak = 0;
    std::uint64_t reclaimedRefcount = 0;
    std::uint64_t reclaimedMultiPath = 0;
    std::uint64_t invalidatedByWindow = 0;
    std::uint64_t chainsCreated = 0;
    std::uint64_t chainsReused = 0;
    std::uint64_t gcSweeps = 0;
    std::uint64_t walkSteps = 0;        ///< async-before list visits
    std::uint64_t walkEarlyStops = 0;
    std::uint64_t clockTicks = 0;       ///< chain clock increments
    std::uint64_t clockJoins = 0;       ///< vector-clock joins
    /** Events placed in FIFO chains by level (index 1..3); index 0
     * counts greedy-placed events. */
    std::uint64_t fifoLevel[4] = {0, 0, 0, 0};

    // ----- robustness -----------------------------------------------
    /** Protocol-invalid operations dropped by the admission gate. */
    std::uint64_t invalidOpsDropped = 0;
    /** Causality-invariant violations tolerated mid-resolution (a
     * consequence of dropped/reordered ops upstream). */
    std::uint64_t causalAnomalies = 0;
    /** Degradation-ladder rungs fired (see memBudgetBytes). */
    std::uint64_t pressureGcSweeps = 0;
    std::uint64_t pressureWindowShrinks = 0;
    std::uint64_t pressureInvalidations = 0;
};

} // namespace asyncclock::core

#endif // ASYNCCLOCK_CORE_CONFIG_HH
