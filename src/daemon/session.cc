#include "daemon/session.hh"

#include <cstdio>
#include <utility>

#include <sys/stat.h>

#include "core/model.hh"
#include "support/format.hh"
#include "support/logging.hh"
#include "trace/trace_io.hh"

namespace asyncclock::daemon {

namespace {

std::uint64_t
nowMonoUs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

std::uint64_t
fileSize(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return 0;
    return static_cast<std::uint64_t>(st.st_size);
}

/** Write @p data to @p path via `<path>.tmp` + rename, so a kill
 * mid-write never leaves a torn file. */
Status
writeFileAtomic(const std::string &path, const std::string &data)
{
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return Status::error(ErrCode::IoError,
                                 "cannot open " + tmp);
        out.write(data.data(),
                  static_cast<std::streamsize>(data.size()));
        out.flush();
        if (!out)
            return Status::error(ErrCode::IoError,
                                 "short write to " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        return Status::error(ErrCode::IoError,
                             "cannot rename " + tmp);
    return Status::ok();
}

/** Strip newlines so a value stays one meta-file line. */
std::string
oneLine(std::string s)
{
    for (char &c : s)
        if (c == '\n' || c == '\r')
            c = ' ';
    return s;
}

} // namespace

const char *
sessionStateName(SessionState s)
{
    switch (s) {
      case SessionState::Live: return "live";
      case SessionState::Evicted: return "evicted";
      case SessionState::Quarantined: return "quarantined";
      case SessionState::Finished: return "finished";
    }
    return "?";
}

bool
validSessionId(const std::string &id)
{
    if (id.empty() || id.size() > 64 || id.front() == '.')
        return false;
    for (char c : id) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                  c == '-';
        if (!ok)
            return false;
    }
    return true;
}

Session::Session(std::string id, const SessionConfig &cfg)
    : id_(std::move(id)), cfg_(cfg), ingest_(cfg.queueChunks)
{
    touch();
}

Session::~Session() = default;

std::string
Session::spoolPath() const
{
    return cfg_.stateDir + "/" + id_ + ".spool";
}

std::string
Session::metaPath() const
{
    return cfg_.stateDir + "/" + id_ + ".meta";
}

std::string
Session::ckptPath() const
{
    return cfg_.stateDir + "/" + id_ + ".ckpt";
}

std::string
Session::reportPath() const
{
    return cfg_.stateDir + "/" + id_ + ".report";
}

Status
Session::create()
{
    std::lock_guard<std::mutex> lock(mu_);
    spoolOut_.open(spoolPath(),
                   std::ios::binary | std::ios::trunc);
    if (!spoolOut_)
        return Status::error(ErrCode::IoError,
                             "cannot create spool " + spoolPath());
    state_ = SessionState::Live;
    writeMetaLocked();
    logEvent(obs::EventLog::Severity::Info, "session.created", id_);
    bumpMetric("daemon.sessions_created_total");
    touch();
    return Status::ok();
}

Status
Session::recover()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!fileExists(spoolPath()))
        return Status::error(ErrCode::IoError,
                             "no spool for session " + id_);
    spooled_ = fileSize(spoolPath());

    // Parse the meta record; a missing/partial one (killed between
    // spool create and meta write) degrades to "cold, unfinished".
    std::string stateName = "evicted";
    std::ifstream meta(metaPath());
    std::string line;
    while (std::getline(meta, line)) {
        std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            continue;
        std::string key = line.substr(0, eq);
        std::string val = line.substr(eq + 1);
        if (key == "state")
            stateName = val;
        else if (key == "finished")
            finished_ = (val == "1");
        else if (key == "error")
            error_ = val;
    }
    finishedFlag_.store(finished_, std::memory_order_release);

    if (stateName == "quarantined") {
        state_ = SessionState::Quarantined;
        ingest_.close();
    } else if (stateName == "finished" && fileExists(reportPath())) {
        state_ = SessionState::Finished;
    } else {
        // "live" from the previous process means the engine died with
        // it; rebuild from spool (+ checkpoint, if one was written).
        state_ = SessionState::Evicted;
        error_.clear();
    }
    logEvent(obs::EventLog::Severity::Info, "session.recovered",
             strf("%s: %s, %llu byte(s) spooled", id_.c_str(),
                  sessionStateName(state_),
                  (unsigned long long)spooled_));
    touch();
    return Status::ok();
}

support::PushResult
Session::offerChunk(IngestChunk chunk)
{
    return ingest_.tryPushFor(chunk, cfg_.admissionTimeout);
}

Status
Session::finishIngest()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == SessionState::Quarantined)
        return Status::error(ErrCode::Corrupt, error_);
    finished_ = true;
    finishedFlag_.store(true, std::memory_order_release);
    if (state_ != SessionState::Finished)
        writeMetaLocked();
    touch();
    return Status::ok();
}

SessionInfo
Session::info()
{
    std::lock_guard<std::mutex> lock(mu_);
    SessionInfo out;
    out.state = state_;
    out.finished = finished_;
    out.spooledBytes = spooled_;
    out.opsProcessed = engine_ ? engine_->opsProcessed() : lastOps_;
    out.racesFound = checker_ ? checker_->racesFound() : lastRaces_;
    out.queuedChunks = ingest_.size();
    out.evictions = evictions_;
    out.resumes = resumes_;
    out.error = error_;
    out.ingestError = ingestError_;
    return out;
}

Session::ReportStatus
Session::report(std::string &out)
{
    std::lock_guard<std::mutex> lock(mu_);
    touch();
    if (state_ == SessionState::Quarantined) {
        out = error_;
        return ReportStatus::Quarantined;
    }
    if (state_ == SessionState::Finished) {
        std::ifstream in(reportPath(), std::ios::binary);
        if (in) {
            out.assign(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
            return ReportStatus::Ready;
        }
        // Report file vanished (manual cleanup?): fall back to cold
        // and let the next work() re-analyze from the spool.
        state_ = SessionState::Evicted;
        writeMetaLocked();
        return ReportStatus::Pending;
    }
    if (!finished_)
        return ReportStatus::NotFinished;
    return ReportStatus::Pending;
}

bool
Session::work(std::uint64_t opBudget)
{
    std::unique_lock<std::mutex> lock(mu_);
    workStartUs_.store(nowMonoUs(), std::memory_order_release);
    IngestChunk chunk;
    while (ingest_.size() > 0 && ingest_.pop(chunk))
        appendChunkLocked(chunk);
    if (finished_ && spooled_ == 0 &&
        state_ != SessionState::Quarantined &&
        state_ != SessionState::Finished) {
        quarantineLocked(Status::error(
            ErrCode::Truncated, "session finished with no trace bytes"));
    }
    bool more = false;
    if (state_ == SessionState::Live ||
        state_ == SessionState::Evicted)
        more = pumpLocked(opBudget);
    workStartUs_.store(0, std::memory_order_release);
    touch();
    if (state_ == SessionState::Quarantined ||
        state_ == SessionState::Finished)
        return false;
    return more || ingest_.size() > 0;
}

void
Session::appendChunkLocked(const IngestChunk &chunk)
{
    if (state_ == SessionState::Quarantined ||
        state_ == SessionState::Finished)
        return;  // discard: nothing to append to anymore
    std::uint64_t off = chunk.offset < 0
                            ? spooled_
                            : static_cast<std::uint64_t>(chunk.offset);
    if (off > spooled_) {
        // A gap would silently corrupt the spool; drop the chunk and
        // record it. The client resyncs from info().spooledBytes.
        ingestError_ =
            strf("chunk at offset %llu leaves a gap (spooled %llu); "
                 "dropped",
                 (unsigned long long)off, (unsigned long long)spooled_);
        logEvent(obs::EventLog::Severity::Warn, "session.ingest_gap",
                 ingestError_);
        bumpMetric("daemon.ingest_gaps_total");
        return;
    }
    std::uint64_t skip = spooled_ - off;
    if (skip >= chunk.data.size())
        return;  // pure retransmit of bytes already spooled
    if (!spoolOut_.is_open()) {
        spoolOut_.open(spoolPath(),
                       std::ios::binary | std::ios::app);
        if (!spoolOut_) {
            quarantineLocked(Status::error(
                ErrCode::IoError, "cannot reopen spool " + spoolPath()));
            return;
        }
    }
    const std::size_t n = chunk.data.size() -
                          static_cast<std::size_t>(skip);
    spoolOut_.write(chunk.data.data() + skip,
                    static_cast<std::streamsize>(n));
    // Flush through to the kernel: bytes in the page cache survive a
    // SIGKILL; bytes in this process's stream buffer do not.
    spoolOut_.flush();
    if (!spoolOut_) {
        quarantineLocked(Status::error(ErrCode::IoError,
                                       "spool write failed"));
        return;
    }
    spooled_ += n;
    bumpMetric("daemon.ingest_bytes_total", n);
}

std::uint64_t
Session::consumedBytesLocked()
{
    if (!spoolIn_)
        return 0;
    auto pos = spoolIn_->tellg();
    if (pos < 0)
        return spooled_;
    return static_cast<std::uint64_t>(pos);
}

bool
Session::workAvailableLocked()
{
    if (state_ != SessionState::Live &&
        state_ != SessionState::Evicted)
        return false;
    if (!engine_)
        return (finished_ && spooled_ > 0) ||
               (spooled_ >= margin_ && spooled_ >= resumeAtBytes_);
    return finished_ ||
           spooled_ >= consumedBytesLocked() + margin_;
}

bool
Session::pumpLocked(std::uint64_t opBudget)
{
    if (!workAvailableLocked())
        return false;
    if (!engine_) {
        Status st = ensureHotLocked();
        if (!st) {
            retryOrQuarantineLocked(st);
            return state_ == SessionState::Live;
        }
    }
    std::uint64_t n = 0;
    while (n < opBudget) {
        if (poisoned_.load(std::memory_order_acquire)) {
            quarantineLocked(Status::error(
                ErrCode::Stalled,
                "watchdog: session stalled mid-analysis"));
            return false;
        }
        // Live-edge gate, rechecked on a cadence cheap enough to not
        // matter and tight enough that the bytes consumable between
        // checks stay far under margin_.
        if (!finished_ && (n & 63) == 0 &&
            spooled_ < consumedBytesLocked() + margin_)
            return false;
        if (!engine_->processNext()) {
            handleEndLocked();
            return (state_ == SessionState::Live ||
                    state_ == SessionState::Evicted) &&
                   workAvailableLocked();
        }
        ++n;
    }
    return true;  // budget exhausted with the engine still running
}

Status
Session::ensureHotLocked()
{
    teardownEngineLocked();
    Expected<bool> binary = trace::tryIsBinaryTraceFile(spoolPath());
    if (!binary)
        return binary.status();
    spoolIn_ = std::make_unique<std::ifstream>(spoolPath(),
                                               std::ios::binary);
    if (!*spoolIn_)
        return Status::error(ErrCode::IoError,
                             "cannot open spool " + spoolPath());
    trace::SourceErrorPolicy policy;  // defaults match single-shot
    if (binary.value())
        source_ = std::make_unique<trace::StreamingBinarySource>(
            *spoolIn_, policy);
    else
        source_ = std::make_unique<trace::StreamingTextSource>(
            *spoolIn_, policy);
    if (!source_->ok()) {
        Status st = source_->status();
        teardownEngineLocked();
        return st;
    }
    const core::ModelKind model =
        core::modelForDialect(source_->meta().dialect());
    const std::uint8_t myTag = model == core::ModelKind::Async
                                   ? report::kModelTagAsync
                                   : report::kModelTagLooper;

    checker_ = std::make_unique<report::FastTrackChecker>();
    std::uint64_t skip = 0;
    if (fileExists(ckptPath())) {
        Expected<report::CheckpointMeta> loaded =
            report::loadCheckpoint(ckptPath(), *checker_);
        if (loaded && loaded.value().modelTag == myTag) {
            skip = loaded.value().accessesChecked;
        } else {
            // Damaged or stale checkpoint: a full replay from the
            // spool reproduces the same state, just slower.
            logEvent(obs::EventLog::Severity::Warn,
                     "session.ckpt_discarded",
                     loaded ? "model tag mismatch"
                            : loaded.status().toString());
            checker_ = std::make_unique<report::FastTrackChecker>();
            std::remove(ckptPath().c_str());
        }
    }
    filter_ =
        std::make_unique<report::ResumeFilter>(*checker_, skip);
    engine_ = std::make_unique<core::DetectorEngine>(
        model, *source_, *filter_, cfg_.detector);
    obs::ObsContext octx;
    octx.events = cfg_.events;
    engine_->attachObs(octx);
    if (state_ == SessionState::Evicted) {
        ++resumes_;
        bumpMetric("daemon.resumes_total");
        logEvent(obs::EventLog::Severity::Info, "session.resumed",
                 strf("%s: skipping %llu checked access(es)",
                      id_.c_str(), (unsigned long long)skip));
    }
    state_ = SessionState::Live;
    writeMetaLocked();
    return Status::ok();
}

void
Session::teardownEngineLocked()
{
    // Borrow order: engine -> (source, filter) -> checker -> stream.
    engine_.reset();
    filter_.reset();
    checker_.reset();
    source_.reset();
    spoolIn_.reset();
}

void
Session::handleEndLocked()
{
    if (!engine_->runStatus().isOk()) {
        // Structural damage. Before finish this could still be a torn
        // record misparsing into a protocol-invalid op, so the verdict
        // is deferred like any other pre-finish failure; after finish
        // the replay is deterministic and the quarantine is final.
        retryOrQuarantineLocked(engine_->runStatus());
        return;
    }
    if (!source_->ok()) {
        retryOrQuarantineLocked(source_->status());
        return;
    }
    if (finished_) {
        finalizeLocked();
        return;
    }
    // Clean end-of-stream before finish: a record run overran the
    // live-edge margin into the incomplete tail.
    retryOrQuarantineLocked(Status::error(
        ErrCode::Truncated,
        "decoder reached the spool's live edge before finish"));
}

void
Session::retryOrQuarantineLocked(Status why)
{
    if (!finished_) {
        // Before finish, outrunning the writer is expected: a single
        // decoder step may consume an unbounded run of declaration
        // records straight through the margin, and a chunk boundary
        // can tear any record. Tear down and wait for the spool to
        // grow geometrically past the overrun point before
        // rebuilding; a genuinely damaged stream keeps failing and is
        // quarantined on the post-finish replay, when every byte is
        // in and the verdict is deterministic.
        margin_ = std::min(margin_ * 2, kMaxMargin);
        resumeAtBytes_ =
            std::max(spooled_ + margin_, spooled_ + spooled_ / 2);
        lastOps_ = engine_ ? engine_->opsProcessed() : lastOps_;
        teardownEngineLocked();
        logEvent(obs::EventLog::Severity::Warn, "session.retry",
                 strf("%s; will rebuild at %llu spooled byte(s)",
                      why.toString().c_str(),
                      (unsigned long long)resumeAtBytes_));
        bumpMetric("daemon.session_retries_total");
        return;
    }
    quarantineLocked(std::move(why));
}

void
Session::finalizeLocked()
{
    report::RaceAnalyzer analyzer(engine_->meta());
    report::ReportSummary summary =
        analyzer.analyze(checker_->races(), cfg_.filters);
    core::appendRunNotes(summary.notes, source_->recordsSkipped(),
                         &engine_->counters());
    std::string text = report::renderReportText(analyzer, summary);
    if (Status st = writeFileAtomic(reportPath(), text); !st) {
        quarantineLocked(st);
        return;
    }
    lastOps_ = engine_->opsProcessed();
    lastRaces_ = checker_->racesFound();
    teardownEngineLocked();
    std::remove(ckptPath().c_str());
    state_ = SessionState::Finished;
    writeMetaLocked();
    logEvent(obs::EventLog::Severity::Info, "session.finished",
             strf("%s: %llu op(s), %llu race(s)", id_.c_str(),
                  (unsigned long long)lastOps_,
                  (unsigned long long)lastRaces_));
    bumpMetric("daemon.reports_total");
}

void
Session::quarantineLocked(Status why)
{
    error_ = oneLine(why.toString());
    lastOps_ = engine_ ? engine_->opsProcessed() : lastOps_;
    lastRaces_ = checker_ ? checker_->racesFound() : lastRaces_;
    teardownEngineLocked();
    state_ = SessionState::Quarantined;
    // Wake any producer blocked in offerChunk right now; further
    // offers fail fast with Closed.
    ingest_.close();
    writeMetaLocked();
    warn(strf("daemon: session %s quarantined: %s", id_.c_str(),
              error_.c_str()));
    logEvent(obs::EventLog::Severity::Error, "session.quarantined",
             id_ + ": " + error_);
    bumpMetric("daemon.quarantines_total");
}

std::uint64_t
Session::memoryBytes()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!engine_)
        return 0;
    return engine_->metadataBytes() + checker_->byteSize();
}

std::uint64_t
Session::workingForUs() const
{
    std::uint64_t start = workStartUs_.load(std::memory_order_acquire);
    if (start == 0)
        return 0;
    std::uint64_t now = nowMonoUs();
    return now > start ? now - start : 0;
}

bool
Session::tryEvict()
{
    std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
    if (!lock.owns_lock())
        return false;  // a worker is inside; never disturb it
    // Scheduled-but-queued sessions (and finished ones still pumping
    // toward their report) are fair game: they are idle right now,
    // their memory is real, and the next work() call transparently
    // resumes from the checkpoint.
    return evictLocked();
}

bool
Session::evictLocked()
{
    if (state_ != SessionState::Live || !engine_)
        return false;
    if (filter_->replaying())
        return false;  // restored state covers skip, not seen
    report::CheckpointMeta meta;
    meta.opsProcessed = engine_->opsProcessed();
    meta.accessesChecked = filter_->accessesSeen();
    meta.traceBytes = spooled_;
    meta.traceHash = 0;  // spool identity is daemon-owned
    meta.clockBackend = cfg_.detector.clockBackend;
    meta.modelTag = engine_->modelKind() == core::ModelKind::Async
                        ? report::kModelTagAsync
                        : report::kModelTagLooper;
    if (Status st = report::saveCheckpoint(ckptPath(), meta,
                                           *checker_);
        !st) {
        warn(strf("daemon: cannot checkpoint session %s: %s",
                  id_.c_str(), st.toString().c_str()));
        return false;  // stay hot rather than lose state
    }
    lastOps_ = engine_->opsProcessed();
    lastRaces_ = checker_->racesFound();
    teardownEngineLocked();
    state_ = SessionState::Evicted;
    ++evictions_;
    writeMetaLocked();
    logEvent(obs::EventLog::Severity::Info, "session.evicted",
             strf("%s: checkpointed at %llu op(s)", id_.c_str(),
                  (unsigned long long)lastOps_));
    bumpMetric("daemon.evictions_total");
    return true;
}

void
Session::closeIngest()
{
    ingest_.close();
}

void
Session::drainFlush()
{
    std::lock_guard<std::mutex> lock(mu_);
    IngestChunk chunk;
    while (ingest_.size() > 0 && ingest_.pop(chunk))
        appendChunkLocked(chunk);
    if (state_ == SessionState::Quarantined ||
        state_ == SessionState::Finished)
        return;
    if (finished_) {
        if (spooled_ == 0) {
            quarantineLocked(Status::error(
                ErrCode::Truncated,
                "session finished with no trace bytes"));
            return;
        }
        // Run to the report; bounded by the spool plus the retry
        // budget, both finite.
        while ((state_ == SessionState::Live ||
                state_ == SessionState::Evicted) &&
               workAvailableLocked())
            pumpLocked(std::uint64_t(1) << 20);
        return;
    }
    if (engine_)
        evictLocked();
    else
        writeMetaLocked();
}

Status
Session::removeFiles()
{
    std::remove(spoolPath().c_str());
    std::remove(metaPath().c_str());
    std::remove(ckptPath().c_str());
    std::remove(reportPath().c_str());
    return Status::ok();
}

void
Session::writeMetaLocked()
{
    std::string data = strf("state=%s\nfinished=%d\n",
                            sessionStateName(state_),
                            finished_ ? 1 : 0);
    if (!error_.empty())
        data += "error=" + oneLine(error_) + "\n";
    if (Status st = writeFileAtomic(metaPath(), data); !st)
        warn(strf("daemon: cannot write meta for %s: %s",
                  id_.c_str(), st.toString().c_str()));
}

void
Session::touch()
{
    lastActiveNs_.store(
        std::chrono::steady_clock::now().time_since_epoch().count(),
        std::memory_order_relaxed);
}

void
Session::logEvent(obs::EventLog::Severity sev,
                  const std::string &kind, const std::string &msg,
                  std::uint64_t op)
{
    if (cfg_.events)
        cfg_.events->log(sev, kind, msg, op);
}

void
Session::bumpMetric(const char *name, std::uint64_t n)
{
    if (cfg_.metrics)
        cfg_.metrics->counter(name).inc(n);
}

} // namespace asyncclock::daemon
