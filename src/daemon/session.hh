/**
 * @file
 * One trace-analysis session inside the always-on daemon.
 *
 * A session is a long-lived analysis of one trace that arrives over
 * the wire in chunks. Its durable form is a set of files under the
 * daemon's state directory:
 *
 *   <id>.spool   append-only raw trace bytes, exactly as ingested
 *   <id>.meta    key=value state record (state, finished, error)
 *   <id>.ckpt    ACCP v3 checkpoint of the checker (evicted sessions)
 *   <id>.report  the final race report text (finished sessions)
 *
 * and its hot form is the familiar streaming pipeline — an ifstream
 * over the spool, a Streaming*Source, a FastTrackChecker behind a
 * ResumeFilter, and a DetectorEngine — built lazily and torn down
 * freely. Because the detector is a deterministic function of the
 * spool bytes and the checkpoint is a logical snapshot (see
 * report/checkpoint.hh), a session can be evicted to disk and resumed
 * any number of times, or the whole process can be SIGKILLed and
 * restarted, and the final report stays byte-identical to a
 * single-shot `trace_analyzer analyze --streaming` over the same
 * bytes.
 *
 * Live-edge discipline: streaming decoders treat EOF as truncation,
 * so the pump never decodes within `margin_` bytes of the spool's
 * live end until the client calls finish. A decode run that still
 * overruns the margin (a single decoder step may consume an
 * unbounded run of declaration records) is not damage — the decoder
 * merely outran the writer — so the engine is torn down and not
 * rebuilt until the spool has grown geometrically past the overrun
 * point, keeping total replay work linear in spool bytes. Only
 * damage observed after finish, when every byte is in, quarantines
 * the session.
 *
 * Threading: offerChunk() is called by HTTP handler threads and only
 * touches the bounded ingest queue (admission control lives in its
 * tryPushFor). Everything else serializes on mu_; the daemon's
 * scheduled-flag dedupe additionally guarantees at most one worker
 * runs work() at a time.
 */

#ifndef ASYNCCLOCK_DAEMON_SESSION_HH
#define ASYNCCLOCK_DAEMON_SESSION_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>

#include "core/config.hh"
#include "core/engine.hh"
#include "obs/event_log.hh"
#include "obs/metrics.hh"
#include "report/checkpoint.hh"
#include "report/fasttrack.hh"
#include "report/races.hh"
#include "support/bounded_queue.hh"
#include "support/status.hh"
#include "trace/source.hh"

namespace asyncclock::daemon {

enum class SessionState : std::uint8_t {
    Live,         ///< engine hot in memory (or about to be)
    Evicted,      ///< cold: state lives in spool + checkpoint files
    Quarantined,  ///< poisoned: isolated, serves only its error
    Finished,     ///< report written; spool + report remain
};

const char *sessionStateName(SessionState s);

/** Knobs a session inherits from the daemon. */
struct SessionConfig
{
    std::string stateDir = ".";
    /** Ingest queue capacity, in chunks (admission backpressure). */
    std::size_t queueChunks = 8;
    /** How long offerChunk() waits for queue space before 429. */
    std::chrono::milliseconds admissionTimeout{250};
    core::DetectorConfig detector;
    report::FilterConfig filters;
    obs::EventLog *events = nullptr;     ///< may be null
    obs::MetricsRegistry *metrics = nullptr;  ///< may be null
};

/** One ingested chunk. offset < 0 means "append at the current end";
 * otherwise it is the client's byte offset, used to absorb
 * retransmits after a disconnect (overlap is skipped, a gap is
 * rejected and recorded). */
struct IngestChunk
{
    std::string data;
    std::int64_t offset = -1;
};

/** Point-in-time public view (the GET /v1/sessions/<id> body). */
struct SessionInfo
{
    SessionState state = SessionState::Evicted;
    bool finished = false;
    std::uint64_t spooledBytes = 0;
    std::uint64_t opsProcessed = 0;
    std::uint64_t racesFound = 0;
    std::uint64_t queuedChunks = 0;
    std::uint64_t evictions = 0;
    std::uint64_t resumes = 0;
    std::string error;       ///< quarantine reason ("" if healthy)
    std::string ingestError; ///< last rejected-chunk note ("")
};

class Session
{
  public:
    /** Outcome of a report() request. */
    enum class ReportStatus {
        Ready,        ///< out = the report text
        Pending,      ///< ingest finished, analysis still running
        NotFinished,  ///< client has not called finish yet
        Quarantined,  ///< out = the quarantine reason
    };

    Session(std::string id, const SessionConfig &cfg);
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** Create the on-disk form of a brand-new session (fresh spool +
     * meta). Fails if the spool cannot be created. */
    Status create();

    /** Adopt the on-disk form left by a previous process (after a
     * restart — including one that was SIGKILLed). The session comes
     * back cold; analysis state rebuilds from spool + checkpoint on
     * first touch. */
    Status recover();

    const std::string &id() const { return id_; }

    // ----- HTTP-facing (any thread) ---------------------------------
    /** Admission-controlled ingest: wait at most the admission
     * timeout for queue space. Timeout → the daemon answers 429;
     * Closed (quarantined or draining) → 410/503. */
    support::PushResult offerChunk(IngestChunk chunk);

    /** No more bytes will arrive; analysis may run to the true end
     * of the spool. Idempotent. */
    Status finishIngest();

    bool ingestFinished() const
    {
        return finishedFlag_.load(std::memory_order_acquire);
    }

    SessionInfo info();

    /** Fetch the final report (reads <id>.report). */
    ReportStatus report(std::string &out);

    // ----- worker-facing (one worker at a time) ---------------------
    /** Drain queued chunks into the spool, then pump the engine for
     * at most @p opBudget ops. Returns true when more work remains
     * (reschedule me). */
    bool work(std::uint64_t opBudget);

    /** Scheduled-flag dedupe: true = caller must enqueue me. */
    bool trySchedule() { return !scheduled_.exchange(true); }
    void clearScheduled() { scheduled_.store(false); }
    bool isScheduled() const { return scheduled_.load(); }

    // ----- housekeeper-facing ---------------------------------------
    /** Detector + checker bytes currently resident (0 when cold). */
    std::uint64_t memoryBytes();

    std::chrono::steady_clock::time_point lastActive() const
    {
        return std::chrono::steady_clock::time_point(
            std::chrono::steady_clock::duration(
                lastActiveNs_.load(std::memory_order_relaxed)));
    }

    /** Microseconds the current work() call has been running, or 0
     * when idle (the watchdog's stall signal). */
    std::uint64_t workingForUs() const;

    /** Watchdog verdict: the pump loop checks this flag and
     * quarantines the session at the next op boundary. */
    void poison() { poisoned_.store(true, std::memory_order_release); }

    /**
     * Checkpoint the checker to <id>.ckpt and free the hot pipeline.
     * Refuses (returns false) when the session is not hot, is
     * mid-replay (a snapshot there would rewind the skip point), or
     * is actively being worked — eviction must never disturb a
     * running pump. A session merely waiting in the run queue IS
     * evictable: it is idle, its memory is real, and the next work()
     * call resumes it from the checkpoint transparently.
     */
    bool tryEvict();

    // ----- drain / teardown -----------------------------------------
    /** Stop admitting chunks NOW: closes the ingest queue, waking
     * every producer blocked in offerChunk immediately (the
     * BoundedQueue close-while-pushing contract). */
    void closeIngest();

    /** Drain-time flush: a finished session is pumped to its report;
     * an unfinished hot one is checkpointed; cold/terminal states are
     * already durable. Called with workers stopped. */
    void drainFlush();

    /** Delete every on-disk artifact of this session. */
    Status removeFiles();

    std::string spoolPath() const;
    std::string metaPath() const;
    std::string ckptPath() const;
    std::string reportPath() const;

  private:
    // All *Locked methods require mu_ held.
    void appendChunkLocked(const IngestChunk &chunk);
    bool pumpLocked(std::uint64_t opBudget);
    Status ensureHotLocked();
    void teardownEngineLocked();
    bool evictLocked();
    void finalizeLocked();
    void quarantineLocked(Status why);
    /** Live-edge overrun vs real damage: retry with a doubled margin
     * while budget remains and ingest is unfinished; else quarantine. */
    void retryOrQuarantineLocked(Status why);
    void handleEndLocked();
    std::uint64_t consumedBytesLocked();
    bool workAvailableLocked();
    void writeMetaLocked();
    void touch();
    void logEvent(obs::EventLog::Severity sev, const std::string &kind,
                  const std::string &msg, std::uint64_t op = 0);
    void bumpMetric(const char *name, std::uint64_t n = 1);

    const std::string id_;
    SessionConfig cfg_;

    support::BoundedQueue<IngestChunk> ingest_;
    std::atomic<bool> scheduled_{false};
    std::atomic<bool> poisoned_{false};
    std::atomic<bool> finishedFlag_{false};
    std::atomic<std::int64_t> lastActiveNs_{0};
    std::atomic<std::uint64_t> workStartUs_{0};

    mutable std::mutex mu_;
    SessionState state_ = SessionState::Evicted;
    bool finished_ = false;
    std::string error_;
    std::string ingestError_;
    std::uint64_t spooled_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t resumes_ = 0;
    /** Ops/races at last teardown, so info() stays meaningful cold. */
    std::uint64_t lastOps_ = 0;
    std::uint64_t lastRaces_ = 0;

    /** Live-edge margin: never decode closer than this to the spool
     * end before finish. Doubles on overrun retries. */
    std::uint64_t margin_ = kDefaultMargin;
    /** After a live-edge overrun, do not rebuild the engine until the
     * spool reaches this size (geometric in spooled_, so rebuild
     * count is O(log bytes) and replay work is O(bytes)). */
    std::uint64_t resumeAtBytes_ = 0;

    std::ofstream spoolOut_;

    // Hot pipeline (all null when cold). Teardown order matters:
    // engine first (borrows source + filter), then filter (borrows
    // checker), then source (borrows stream).
    std::unique_ptr<std::ifstream> spoolIn_;
    std::unique_ptr<trace::TraceSource> source_;
    std::unique_ptr<report::FastTrackChecker> checker_;
    std::unique_ptr<report::ResumeFilter> filter_;
    std::unique_ptr<core::DetectorEngine> engine_;

    static constexpr std::uint64_t kDefaultMargin = 64 * 1024;
    static constexpr std::uint64_t kMaxMargin = 8 * 1024 * 1024;
};

/** Is @p id safe as a session id (and thus a filename stem)?
 * [A-Za-z0-9._-]+, no leading dot, at most 64 chars. */
bool validSessionId(const std::string &id);

} // namespace asyncclock::daemon

#endif // ASYNCCLOCK_DAEMON_SESSION_HH
