#include "daemon/daemon.hh"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "support/format.hh"
#include "support/json.hh"
#include "support/logging.hh"

namespace asyncclock::daemon {

using obs::HttpRequest;
using obs::HttpResponse;

namespace {

SessionConfig
makeSessionConfig(const DaemonConfig &cfg, obs::MetricsRegistry *reg)
{
    SessionConfig out;
    out.stateDir = cfg.stateDir;
    out.queueChunks = cfg.queueChunks;
    out.admissionTimeout =
        std::chrono::milliseconds(cfg.admissionTimeoutMs);
    out.detector = cfg.detector;
    out.filters = cfg.filters;
    out.events = cfg.events;
    out.metrics = reg;
    return out;
}

HttpResponse
retryLater(int status, const std::string &why,
           const char *retryAfter)
{
    HttpResponse r = HttpResponse::text(status, why);
    r.headers.push_back({"Retry-After", retryAfter});
    return r;
}

} // namespace

Daemon::Daemon(DaemonConfig cfg)
    : cfg_(std::move(cfg)),
      sessionCfg_(makeSessionConfig(cfg_, &reg_)),
      runq_(std::make_unique<
            support::BoundedQueue<std::shared_ptr<Session>>>(
          cfg_.maxSessions + cfg_.workers + 4)),
      pub_(reg_),
      listener_([this](const HttpRequest &req) { return handle(req); },
                cfg_.httpThreads)
{
}

Daemon::~Daemon()
{
    drain();
}

Status
Daemon::init()
{
    // Pre-register the predictive-tier counters at zero so the
    // /metrics scrape always exports the full verdict family, even
    // though daemon sessions cannot run --predict themselves yet
    // (dashboards alert on absent series; a future in-daemon predict
    // pass will increment these).
    for (const char *verdict : {"confirmed", "infeasible", "dropped"})
        reg_.counter("predicted_candidates_total",
                     {{"verdict", verdict}});
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(cfg_.stateDir, ec);
    if (ec)
        return Status::error(ErrCode::IoError,
                             "cannot create state dir " + cfg_.stateDir +
                                 ": " + ec.message());
    // Adopt whatever a previous process — graceful or SIGKILLed —
    // left behind: every <id>.spool is a session.
    for (const fs::directory_entry &entry :
         fs::directory_iterator(cfg_.stateDir, ec)) {
        if (ec)
            break;
        if (!entry.is_regular_file())
            continue;
        const fs::path &p = entry.path();
        if (p.extension() != ".spool")
            continue;
        std::string id = p.stem().string();
        if (!validSessionId(id))
            continue;
        auto s = std::make_shared<Session>(id, sessionCfg_);
        if (Status st = s->recover(); !st) {
            warn(strf("daemon: cannot recover session %s: %s",
                      id.c_str(), st.toString().c_str()));
            continue;
        }
        std::lock_guard<std::mutex> lock(smu_);
        sessions_[id] = s;
        // A session whose client already finished needs no further
        // input: put it straight back to work toward its report.
        if (s->ingestFinished())
            schedule(s);
    }
    if (cfg_.events)
        cfg_.events->log(obs::EventLog::Severity::Info, "daemon.init",
                         strf("%zu session(s) recovered",
                              sessionCount()));
    return Status::ok();
}

bool
Daemon::start(std::uint16_t port)
{
    for (unsigned i = 0; i < cfg_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    housekeeper_ = std::thread([this] { housekeeperLoop(); });
    return listener_.start(port);
}

std::size_t
Daemon::sessionCount()
{
    std::lock_guard<std::mutex> lock(smu_);
    return sessions_.size();
}

std::shared_ptr<Session>
Daemon::findSession(const std::string &id)
{
    std::lock_guard<std::mutex> lock(smu_);
    auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second;
}

void
Daemon::schedule(const std::shared_ptr<Session> &s)
{
    if (!s->trySchedule())
        return;  // already queued or being worked
    if (cfg_.workers == 0) {
        // No worker pool (test mode): pumpAllForTest() drives every
        // session directly, so queue entries would only pile up.
        s->clearScheduled();
        return;
    }
    if (!runq_->push(s))
        s->clearScheduled();  // draining: flushed explicitly instead
}

void
Daemon::workerLoop()
{
    std::shared_ptr<Session> s;
    while (runq_->pop(s)) {
        s->clearScheduled();
        if (s->work(cfg_.opSliceOps))
            schedule(s);
        s.reset();
    }
}

void
Daemon::pumpAllForTest()
{
    for (;;) {
        std::vector<std::shared_ptr<Session>> all;
        {
            std::lock_guard<std::mutex> lock(smu_);
            for (auto &[id, s] : sessions_)
                all.push_back(s);
        }
        bool any = false;
        for (auto &s : all) {
            s->clearScheduled();
            if (s->work(cfg_.opSliceOps))
                any = true;
        }
        if (!any)
            return;
    }
}

void
Daemon::housekeeperLoop()
{
    std::unique_lock<std::mutex> lock(hkMu_);
    while (!hkStop_) {
        hkCv_.wait_for(lock, std::chrono::milliseconds(50));
        if (hkStop_)
            return;
        lock.unlock();
        housekeepOnce();
        lock.lock();
    }
}

void
Daemon::housekeepOnce()
{
    std::vector<std::shared_ptr<Session>> all;
    {
        std::lock_guard<std::mutex> lock(smu_);
        for (auto &[id, s] : sessions_)
            all.push_back(s);
    }

    const auto now = std::chrono::steady_clock::now();
    std::uint64_t counts[4] = {};
    std::uint64_t mem = 0;
    std::uint64_t totalOps = 0, totalRaces = 0;
    // (session, resident bytes) of hot sessions, for the ladder.
    std::vector<std::pair<std::shared_ptr<Session>, std::uint64_t>>
        hot;
    for (auto &s : all) {
        SessionInfo info = s->info();
        ++counts[static_cast<std::size_t>(info.state)];
        totalOps += info.opsProcessed;
        totalRaces += info.racesFound;
        std::uint64_t bytes = s->memoryBytes();
        mem += bytes;
        if (bytes > 0)
            hot.push_back({s, bytes});

        // Watchdog: one overlong work() call means this session's
        // pump is wedged (poisoned trace, pathological input). Poison
        // it; the pump quarantines at its next op boundary, isolating
        // the stall from every other session.
        if (cfg_.watchdogMs > 0 &&
            s->workingForUs() > cfg_.watchdogMs * 1000) {
            s->poison();
            reg_.counter("daemon.watchdog_fires_total").inc();
            if (cfg_.events)
                cfg_.events->log(obs::EventLog::Severity::Warn,
                                 "daemon.watchdog",
                                 s->id() + ": work slice over budget");
        }

        // Idle ladder: a client that went quiet should not pin hot
        // detector state forever.
        if (cfg_.idleTimeoutMs > 0 && bytes > 0 &&
            now - s->lastActive() >
                std::chrono::milliseconds(cfg_.idleTimeoutMs)) {
            if (s->tryEvict())
                reg_.counter("daemon.idle_evictions_total").inc();
        }
    }

    // Memory ladder: evict coldest-first until under budget. tryEvict
    // refuses scheduled/active/finished sessions, so the ladder only
    // ever takes truly idle state.
    if (cfg_.memBudgetBytes > 0 && mem > cfg_.memBudgetBytes) {
        std::sort(hot.begin(), hot.end(),
                  [](const auto &a, const auto &b) {
                      return a.first->lastActive() <
                             b.first->lastActive();
                  });
        for (auto &[s, bytes] : hot) {
            if (mem <= cfg_.memBudgetBytes)
                break;
            if (s->tryEvict())
                mem -= std::min(bytes, mem);
        }
    }

    static const char *kStates[4] = {"live", "evicted", "quarantined",
                                     "finished"};
    for (std::size_t i = 0; i < 4; ++i)
        reg_.gauge("daemon.sessions", {{"state", kStates[i]}})
            .set(static_cast<std::int64_t>(counts[i]));
    reg_.gauge("daemon.resident_bytes")
        .set(static_cast<std::int64_t>(mem));
    reg_.gauge("daemon.run_queue_depth")
        .set(static_cast<std::int64_t>(runq_->size()));

    obs::ProgressSample sample;
    sample.ops = totalOps;
    sample.races = totalRaces;
    sample.liveBytes = mem;
    sample.peakBytes = mem;
    pub_.publishIfDue(sample);
}

// ----- HTTP API ------------------------------------------------------

HttpResponse
Daemon::sessionInfoJson(Session &s)
{
    SessionInfo info = s.info();
    JsonWriter w;
    w.beginObject()
        .field("id", s.id())
        .field("state", sessionStateName(info.state))
        .field("finished", info.finished)
        .field("spooled_bytes", info.spooledBytes)
        .field("ops_processed", info.opsProcessed)
        .field("races_found", info.racesFound)
        .field("queued_chunks", info.queuedChunks)
        .field("evictions", info.evictions)
        .field("resumes", info.resumes);
    if (!info.error.empty())
        w.field("error", info.error);
    if (!info.ingestError.empty())
        w.field("ingest_error", info.ingestError);
    w.endObject();
    return HttpResponse::json(200, w.str() + "\n");
}

HttpResponse
Daemon::handleCreate(const HttpRequest &req)
{
    if (draining_.load(std::memory_order_acquire))
        return HttpResponse::text(503, "daemon is draining\n");
    std::string id = req.queryParam("id");
    if (!validSessionId(id))
        return HttpResponse::text(
            400, "missing or invalid session id "
                 "([A-Za-z0-9._-]+, max 64, no leading dot)\n");
    std::string clockName = req.queryParam("clock");
    if (!clockName.empty()) {
        clock::Backend backend;
        if (!clock::parseBackend(clockName.c_str(), backend))
            return HttpResponse::text(
                400, "unknown clock backend '" + clockName +
                         "' (want " + clock::backendNames() + ")\n");
        // The clock backend is process-wide (the engine constructor
        // pins it); admitting a mismatched session would poison every
        // neighbor's clocks.
        if (backend != cfg_.detector.clockBackend)
            return HttpResponse::text(
                409, strf("daemon runs clock backend '%s'; recreate "
                          "the daemon to change it\n",
                          clock::backendName(
                              cfg_.detector.clockBackend)));
    }

    std::lock_guard<std::mutex> lock(smu_);
    if (sessions_.count(id)) {
        reg_.counter("daemon.admission_rejects_total",
                     {{"reason", "duplicate"}})
            .inc();
        return HttpResponse::text(
            409, "session '" + id + "' already exists\n");
    }
    if (sessions_.size() >= cfg_.maxSessions) {
        reg_.counter("daemon.admission_rejects_total",
                     {{"reason", "capacity"}})
            .inc();
        return retryLater(429, "session capacity reached\n", "5");
    }
    auto s = std::make_shared<Session>(id, sessionCfg_);
    if (Status st = s->create(); !st)
        return HttpResponse::text(500, st.toString() + "\n");
    sessions_[id] = s;
    JsonWriter w;
    w.beginObject().field("id", id).field("state", "live").endObject();
    return HttpResponse::json(201, w.str() + "\n");
}

HttpResponse
Daemon::handleSessions(const HttpRequest &req)
{
    // Split "/v1/sessions/<id>[/<action>]".
    static const std::string kPrefix = "/v1/sessions/";
    std::string rest = req.path.substr(kPrefix.size());
    std::string id = rest, action;
    if (std::size_t slash = rest.find('/');
        slash != std::string::npos) {
        id = rest.substr(0, slash);
        action = rest.substr(slash + 1);
    }
    std::shared_ptr<Session> s = findSession(id);
    if (!s)
        return HttpResponse::text(404,
                                  "no session '" + id + "'\n");

    if (action.empty()) {
        if (req.method == "GET")
            return sessionInfoJson(*s);
        if (req.method == "DELETE") {
            {
                std::lock_guard<std::mutex> lock(smu_);
                sessions_.erase(id);
            }
            s->closeIngest();
            s->removeFiles();
            return HttpResponse::json(200, "{\"deleted\":true}\n");
        }
        return HttpResponse::text(405, "method not allowed\n");
    }

    if (action == "trace") {
        if (req.method != "POST")
            return HttpResponse::text(405, "method not allowed\n");
        if (draining_.load(std::memory_order_acquire))
            return HttpResponse::text(503, "daemon is draining\n");
        if (SessionInfo si = s->info();
            si.state == SessionState::Quarantined)
            return HttpResponse::text(
                410, "session quarantined: " + si.error + "\n");
        if (s->ingestFinished())
            return HttpResponse::text(
                409, "session already finished ingest\n");
        IngestChunk chunk;
        chunk.data = req.body;
        std::string off = req.queryParam("offset");
        if (!off.empty())
            chunk.offset = std::strtoll(off.c_str(), nullptr, 10);
        switch (s->offerChunk(std::move(chunk))) {
          case support::PushResult::Pushed:
            schedule(s);
            return HttpResponse::json(200, "{\"queued\":true}\n");
          case support::PushResult::Timeout:
            // Admission control: the analysis is not keeping up with
            // this client; shed the chunk instead of buffering
            // unboundedly.
            reg_.counter("daemon.admission_rejects_total",
                         {{"reason", "backpressure"}})
                .inc();
            return retryLater(
                429, "ingest queue full; retry this chunk\n", "1");
          case support::PushResult::Closed:
            break;
        }
        if (draining_.load(std::memory_order_acquire))
            return HttpResponse::text(503, "daemon is draining\n");
        return HttpResponse::text(
            410, "session quarantined: " + s->info().error + "\n");
    }

    if (action == "finish") {
        if (req.method != "POST")
            return HttpResponse::text(405, "method not allowed\n");
        if (Status st = s->finishIngest(); !st)
            return HttpResponse::text(
                410, "session quarantined: " + st.message() + "\n");
        schedule(s);
        return HttpResponse::json(200, "{\"finished\":true}\n");
    }

    if (action == "report") {
        if (req.method != "GET")
            return HttpResponse::text(405, "method not allowed\n");
        std::string text;
        switch (s->report(text)) {
          case Session::ReportStatus::Ready:
            return HttpResponse::text(200, text);
          case Session::ReportStatus::Pending:
            schedule(s);
            return retryLater(202, "analysis in progress\n", "1");
          case Session::ReportStatus::NotFinished:
            return HttpResponse::text(
                409, "ingest not finished; POST .../finish first\n");
          case Session::ReportStatus::Quarantined:
            return HttpResponse::text(
                410, "session quarantined: " + text + "\n");
        }
    }

    return HttpResponse::text(404, "unknown session action\n");
}

HttpResponse
Daemon::handle(const HttpRequest &req)
{
    const std::string &p = req.path;
    if (p == "/healthz") {
        JsonWriter w;
        w.beginObject()
            .field("status", "ok")
            .field("sessions",
                   static_cast<std::uint64_t>(sessionCount()))
            .field("draining",
                   draining_.load(std::memory_order_acquire))
            .endObject();
        return HttpResponse::json(200, w.str() + "\n");
    }
    if (p == "/metrics" || p == "/metrics.json" || p == "/progress")
        return obs::TelemetryServer::route(pub_, req);

    if (p == "/v1/sessions") {
        if (req.method == "POST")
            return handleCreate(req);
        if (req.method == "GET") {
            JsonWriter w;
            w.beginArray();
            std::vector<std::shared_ptr<Session>> all;
            {
                std::lock_guard<std::mutex> lock(smu_);
                for (auto &[id, s] : sessions_)
                    all.push_back(s);
            }
            for (auto &s : all) {
                SessionInfo info = s->info();
                w.beginObject()
                    .field("id", s->id())
                    .field("state", sessionStateName(info.state))
                    .endObject();
            }
            w.endArray();
            return HttpResponse::json(200, w.str() + "\n");
        }
        return HttpResponse::text(405, "method not allowed\n");
    }
    if (p.rfind("/v1/sessions/", 0) == 0)
        return handleSessions(req);

    return HttpResponse::text(
        404, "unknown path; try /v1/sessions /healthz /metrics\n");
}

// ----- lifecycle -----------------------------------------------------

void
Daemon::stopThreads()
{
    runq_->close();
    for (std::thread &w : workers_)
        w.join();
    workers_.clear();
    {
        std::lock_guard<std::mutex> lock(hkMu_);
        hkStop_ = true;
    }
    hkCv_.notify_all();
    if (housekeeper_.joinable())
        housekeeper_.join();
}

void
Daemon::drain()
{
    std::lock_guard<std::mutex> lifecycle(lifecycleMu_);
    if (stopped_)
        return;
    draining_.store(true, std::memory_order_release);
    if (cfg_.events)
        cfg_.events->log(obs::EventLog::Severity::Info,
                         "daemon.drain.begin",
                         strf("%zu session(s)", sessionCount()));

    std::vector<std::shared_ptr<Session>> all;
    {
        std::lock_guard<std::mutex> lock(smu_);
        for (auto &[id, s] : sessions_)
            all.push_back(s);
    }
    // Wake every admission-blocked producer immediately (the
    // BoundedQueue close-while-pushing contract) before joining the
    // workers, so no HTTP handler sits out a full admission timeout.
    for (auto &s : all)
        s->closeIngest();
    stopThreads();
    // Flush with workers gone: finished sessions run to their final
    // report, unfinished hot ones checkpoint, terminal states are
    // already durable.
    for (auto &s : all)
        s->drainFlush();

    housekeepOnce();
    listener_.stop();
    if (cfg_.events)
        cfg_.events->log(obs::EventLog::Severity::Info,
                         "daemon.drain.done", "");
    stopped_ = true;
}

void
Daemon::crashStop()
{
    std::lock_guard<std::mutex> lifecycle(lifecycleMu_);
    if (stopped_)
        return;
    draining_.store(true, std::memory_order_release);
    listener_.stop();
    stopThreads();
    // Deliberately no flush: hot state dies here, exactly as under
    // SIGKILL. Spools, checkpoints, and meta files stay as last
    // written; recovery must rebuild from them alone.
    {
        std::lock_guard<std::mutex> lock(smu_);
        sessions_.clear();
    }
    stopped_ = true;
}

} // namespace asyncclock::daemon
