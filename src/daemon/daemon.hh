/**
 * @file
 * The always-on analysis daemon (`asyncclockd`, exposed as
 * `trace_analyzer daemon` / `--daemon=PORT`).
 *
 * One process multiplexes many concurrent trace sessions, each an
 * independent streaming analysis (see daemon/session.hh), behind an
 * HTTP API served by the obs layer's HttpListener:
 *
 *   POST   /v1/sessions?id=ID[&clock=B]   create (201; 409 dup/clock,
 *                                         429 capacity, 400 bad id)
 *   POST   /v1/sessions/ID/trace[?offset=N]  ingest one chunk
 *                                         (200; 429 + Retry-After on
 *                                         backpressure, 410 poisoned)
 *   POST   /v1/sessions/ID/finish         no more bytes (200)
 *   GET    /v1/sessions/ID/report         200 report / 202 pending /
 *                                         409 unfinished / 410 + why
 *   GET    /v1/sessions/ID                info JSON
 *   DELETE /v1/sessions/ID                forget + delete files
 *   GET    /v1/sessions                   list
 *   GET    /healthz /metrics /metrics.json /progress
 *
 * Scheduling: HTTP handlers never analyze. They append chunks to the
 * session's bounded ingest queue (admission control: the queue's
 * tryPushFor timeout is the 429 boundary) and flip the session's
 * scheduled flag into a run queue; a small worker pool pops sessions
 * and pumps each for a bounded op slice, rescheduling while work
 * remains. The scheduled-flag dedupe guarantees a session is worked
 * by at most one worker at a time, so Session::work needs no
 * cross-worker coordination beyond its own mutex.
 *
 * The housekeeper thread owns the control loops the workers must not
 * block on: the LRU eviction ladder (while resident detector+checker
 * bytes exceed --mem-budget, checkpoint the coldest evictable session
 * to disk), idle-session eviction, the per-session watchdog (a work()
 * call exceeding the stall budget poisons the session; the pump
 * quarantines it at the next op boundary), gauge refresh, and
 * telemetry snapshot publishing (the registry holds only real
 * atomic metrics, so the housekeeper may snapshot it from its own
 * thread).
 *
 * Fault isolation is per session by construction: every failure mode
 * (decoder damage, protocol budget, watchdog stall, spool I/O error)
 * lands in Session::quarantineLocked, which isolates exactly one
 * session and answers its clients with 410 + the reason while every
 * other session proceeds untouched.
 *
 * Clock backend is process-wide (DetectorEngine's constructor calls
 * clock::setDefaultBackend), so the daemon pins one backend at
 * startup; a create naming a different one is refused with 409
 * rather than silently poisoning neighbors' clocks.
 *
 * Drain (SIGTERM/SIGINT): stop admitting (503), close every ingest
 * queue (waking blocked producers immediately), stop the workers,
 * then flush each session — finished ones are pumped to their final
 * report, unfinished hot ones are checkpointed — and exit 0. A
 * SIGKILLed daemon skips all of that and still loses nothing but hot
 * detector state: restart rebuilds every session from its spool (+
 * checkpoint when one was written), and reports stay byte-identical.
 */

#ifndef ASYNCCLOCK_DAEMON_DAEMON_HH
#define ASYNCCLOCK_DAEMON_DAEMON_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "daemon/session.hh"
#include "obs/telemetry.hh"

namespace asyncclock::daemon {

struct DaemonConfig
{
    std::string stateDir = ".";
    /** Analysis worker threads. 0 = none: tests drive the pump
     * deterministically via pumpAllForTest(). */
    unsigned workers = 2;
    unsigned httpThreads = 4;
    std::size_t maxSessions = 64;
    /** Global budget on resident detector+checker bytes across all
     * sessions; 0 = unlimited. The eviction ladder keeps the sum
     * under it. */
    std::uint64_t memBudgetBytes = 0;
    /** Evict sessions idle longer than this (0 = never). */
    std::uint64_t idleTimeoutMs = 0;
    /** A single work() call running longer than this poisons the
     * session (0 = no watchdog). */
    std::uint64_t watchdogMs = 30000;
    /** Per-session ingest queue capacity, in chunks. */
    std::size_t queueChunks = 8;
    /** How long ingest waits for queue space before 429. */
    std::uint64_t admissionTimeoutMs = 250;
    /** Ops per worker pump slice (fairness quantum). */
    std::uint64_t opSliceOps = 50000;
    core::DetectorConfig detector;
    report::FilterConfig filters;
    obs::EventLog *events = nullptr;  ///< may be null
};

class Daemon
{
  public:
    explicit Daemon(DaemonConfig cfg);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /** Create the state directory and adopt every session a previous
     * process (possibly SIGKILLed) left there. */
    Status init();

    /** Start HTTP on 127.0.0.1:@p port (0 = kernel-assigned) plus the
     * worker pool and housekeeper. False when the bind fails. */
    bool start(std::uint16_t port);

    std::uint16_t port() const { return listener_.port(); }

    /**
     * Route one request. Public so tests exercise the full API
     * in-process without sockets; the HTTP listener calls exactly
     * this.
     */
    obs::HttpResponse handle(const obs::HttpRequest &req);

    /**
     * Graceful drain: refuse new admissions, close every ingest
     * queue, stop the workers, flush every session (finished -> final
     * report, unfinished hot -> checkpoint), publish a last snapshot,
     * stop HTTP. Idempotent.
     */
    void drain();

    /** Tear down without flushing anything — the SIGKILL stand-in for
     * crash-recovery tests. Stops threads and drops hot state; spools
     * and checkpoints stay as they were. */
    void crashStop();

    std::size_t sessionCount();

    /** The daemon's metric registry (real metrics only — safe to
     * snapshot from any thread). */
    obs::MetricsRegistry &registry() { return reg_; }

    // ----- deterministic test hooks ---------------------------------
    /** Run every session's pump on the calling thread until no
     * session reports more work (workers = 0 mode). */
    void pumpAllForTest();

    /** One housekeeper pass (eviction ladder, watchdog, gauges) on
     * the calling thread. */
    void housekeepForTest() { housekeepOnce(); }

    std::shared_ptr<Session> findSession(const std::string &id);

  private:
    obs::HttpResponse handleSessions(const obs::HttpRequest &req);
    obs::HttpResponse handleCreate(const obs::HttpRequest &req);
    obs::HttpResponse sessionInfoJson(Session &s);
    void schedule(const std::shared_ptr<Session> &s);
    void workerLoop();
    void housekeeperLoop();
    void housekeepOnce();
    void stopThreads();

    DaemonConfig cfg_;
    SessionConfig sessionCfg_;

    std::mutex smu_;
    std::map<std::string, std::shared_ptr<Session>> sessions_;

    /** Sessions with pending work. Capacity maxSessions + workers so
     * a schedule() can never block: the scheduled-flag dedupe admits
     * at most one entry per session plus one per worker re-push. */
    std::unique_ptr<support::BoundedQueue<std::shared_ptr<Session>>>
        runq_;

    obs::MetricsRegistry reg_;
    obs::SnapshotPublisher pub_;
    obs::HttpListener listener_;

    std::vector<std::thread> workers_;
    std::thread housekeeper_;
    std::mutex hkMu_;
    std::condition_variable hkCv_;
    bool hkStop_ = false;

    std::atomic<bool> draining_{false};
    bool stopped_ = false;
    std::mutex lifecycleMu_;
};

} // namespace asyncclock::daemon

#endif // ASYNCCLOCK_DAEMON_DAEMON_HH
