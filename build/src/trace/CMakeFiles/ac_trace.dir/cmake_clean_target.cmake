file(REMOVE_RECURSE
  "libac_trace.a"
)
