file(REMOVE_RECURSE
  "CMakeFiles/ac_trace.dir/trace.cc.o"
  "CMakeFiles/ac_trace.dir/trace.cc.o.d"
  "CMakeFiles/ac_trace.dir/trace_io.cc.o"
  "CMakeFiles/ac_trace.dir/trace_io.cc.o.d"
  "libac_trace.a"
  "libac_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ac_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
