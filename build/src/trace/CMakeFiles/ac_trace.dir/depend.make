# Empty dependencies file for ac_trace.
# This may be replaced when dependencies are built.
