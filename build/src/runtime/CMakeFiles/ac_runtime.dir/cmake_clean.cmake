file(REMOVE_RECURSE
  "CMakeFiles/ac_runtime.dir/runtime.cc.o"
  "CMakeFiles/ac_runtime.dir/runtime.cc.o.d"
  "libac_runtime.a"
  "libac_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ac_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
