# Empty compiler generated dependencies file for ac_runtime.
# This may be replaced when dependencies are built.
