file(REMOVE_RECURSE
  "libac_runtime.a"
)
