# Empty compiler generated dependencies file for ac_workload.
# This may be replaced when dependencies are built.
