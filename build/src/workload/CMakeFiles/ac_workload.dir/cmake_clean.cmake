file(REMOVE_RECURSE
  "CMakeFiles/ac_workload.dir/workload.cc.o"
  "CMakeFiles/ac_workload.dir/workload.cc.o.d"
  "libac_workload.a"
  "libac_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ac_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
