file(REMOVE_RECURSE
  "libac_workload.a"
)
