# Empty dependencies file for ac_clock.
# This may be replaced when dependencies are built.
