file(REMOVE_RECURSE
  "libac_clock.a"
)
