file(REMOVE_RECURSE
  "CMakeFiles/ac_clock.dir/vector_clock.cc.o"
  "CMakeFiles/ac_clock.dir/vector_clock.cc.o.d"
  "libac_clock.a"
  "libac_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ac_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
