file(REMOVE_RECURSE
  "CMakeFiles/ac_gold.dir/closure.cc.o"
  "CMakeFiles/ac_gold.dir/closure.cc.o.d"
  "libac_gold.a"
  "libac_gold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ac_gold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
