# Empty compiler generated dependencies file for ac_gold.
# This may be replaced when dependencies are built.
