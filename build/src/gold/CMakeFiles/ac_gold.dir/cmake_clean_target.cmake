file(REMOVE_RECURSE
  "libac_gold.a"
)
