file(REMOVE_RECURSE
  "CMakeFiles/ac_support.dir/format.cc.o"
  "CMakeFiles/ac_support.dir/format.cc.o.d"
  "CMakeFiles/ac_support.dir/logging.cc.o"
  "CMakeFiles/ac_support.dir/logging.cc.o.d"
  "CMakeFiles/ac_support.dir/stats.cc.o"
  "CMakeFiles/ac_support.dir/stats.cc.o.d"
  "libac_support.a"
  "libac_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ac_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
