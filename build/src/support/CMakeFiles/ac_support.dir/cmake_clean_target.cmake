file(REMOVE_RECURSE
  "libac_support.a"
)
