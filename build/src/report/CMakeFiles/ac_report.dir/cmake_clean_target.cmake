file(REMOVE_RECURSE
  "libac_report.a"
)
