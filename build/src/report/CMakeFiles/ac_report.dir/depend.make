# Empty dependencies file for ac_report.
# This may be replaced when dependencies are built.
