file(REMOVE_RECURSE
  "CMakeFiles/ac_report.dir/export.cc.o"
  "CMakeFiles/ac_report.dir/export.cc.o.d"
  "CMakeFiles/ac_report.dir/fasttrack.cc.o"
  "CMakeFiles/ac_report.dir/fasttrack.cc.o.d"
  "CMakeFiles/ac_report.dir/races.cc.o"
  "CMakeFiles/ac_report.dir/races.cc.o.d"
  "libac_report.a"
  "libac_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ac_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
