file(REMOVE_RECURSE
  "CMakeFiles/ac_core.dir/detector.cc.o"
  "CMakeFiles/ac_core.dir/detector.cc.o.d"
  "libac_core.a"
  "libac_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ac_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
