# Empty dependencies file for ac_core.
# This may be replaced when dependencies are built.
