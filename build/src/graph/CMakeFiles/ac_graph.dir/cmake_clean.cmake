file(REMOVE_RECURSE
  "CMakeFiles/ac_graph.dir/eventracer.cc.o"
  "CMakeFiles/ac_graph.dir/eventracer.cc.o.d"
  "libac_graph.a"
  "libac_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ac_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
