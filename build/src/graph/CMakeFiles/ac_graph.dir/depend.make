# Empty dependencies file for ac_graph.
# This may be replaced when dependencies are built.
