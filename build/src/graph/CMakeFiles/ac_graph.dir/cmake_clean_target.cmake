file(REMOVE_RECURSE
  "libac_graph.a"
)
