# Empty compiler generated dependencies file for eventracer_test.
# This may be replaced when dependencies are built.
