file(REMOVE_RECURSE
  "CMakeFiles/eventracer_test.dir/eventracer_test.cc.o"
  "CMakeFiles/eventracer_test.dir/eventracer_test.cc.o.d"
  "eventracer_test"
  "eventracer_test.pdb"
  "eventracer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eventracer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
