file(REMOVE_RECURSE
  "CMakeFiles/gold_test.dir/gold_test.cc.o"
  "CMakeFiles/gold_test.dir/gold_test.cc.o.d"
  "gold_test"
  "gold_test.pdb"
  "gold_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gold_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
