# Empty compiler generated dependencies file for asyncclock_test.
# This may be replaced when dependencies are built.
