file(REMOVE_RECURSE
  "CMakeFiles/asyncclock_test.dir/asyncclock_test.cc.o"
  "CMakeFiles/asyncclock_test.dir/asyncclock_test.cc.o.d"
  "asyncclock_test"
  "asyncclock_test.pdb"
  "asyncclock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncclock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
