# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/clock_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/gold_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/eventracer_test[1]_include.cmake")
include("/root/repo/build/tests/asyncclock_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/meta_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/export_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
