file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_scaling.dir/bench_fig9_scaling.cpp.o"
  "CMakeFiles/bench_fig9_scaling.dir/bench_fig9_scaling.cpp.o.d"
  "bench_fig9_scaling"
  "bench_fig9_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
