file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_races.dir/bench_table3_races.cpp.o"
  "CMakeFiles/bench_table3_races.dir/bench_table3_races.cpp.o.d"
  "bench_table3_races"
  "bench_table3_races.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_races.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
