# Empty dependencies file for bench_chain_decomp.
# This may be replaced when dependencies are built.
