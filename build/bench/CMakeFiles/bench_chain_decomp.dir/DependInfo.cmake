
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_chain_decomp.cpp" "bench/CMakeFiles/bench_chain_decomp.dir/bench_chain_decomp.cpp.o" "gcc" "bench/CMakeFiles/bench_chain_decomp.dir/bench_chain_decomp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gold/CMakeFiles/ac_gold.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ac_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ac_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ac_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ac_core.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/ac_report.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ac_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/ac_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ac_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
