file(REMOVE_RECURSE
  "CMakeFiles/bench_chain_decomp.dir/bench_chain_decomp.cpp.o"
  "CMakeFiles/bench_chain_decomp.dir/bench_chain_decomp.cpp.o.d"
  "bench_chain_decomp"
  "bench_chain_decomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chain_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
