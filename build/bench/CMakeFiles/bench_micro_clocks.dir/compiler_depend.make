# Empty compiler generated dependencies file for bench_micro_clocks.
# This may be replaced when dependencies are built.
