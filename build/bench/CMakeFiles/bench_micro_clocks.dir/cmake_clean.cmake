file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_clocks.dir/bench_micro_clocks.cpp.o"
  "CMakeFiles/bench_micro_clocks.dir/bench_micro_clocks.cpp.o.d"
  "bench_micro_clocks"
  "bench_micro_clocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_clocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
