# Empty compiler generated dependencies file for bench_fig10_window.
# This may be replaced when dependencies are built.
