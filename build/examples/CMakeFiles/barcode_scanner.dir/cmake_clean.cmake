file(REMOVE_RECURSE
  "CMakeFiles/barcode_scanner.dir/barcode_scanner.cpp.o"
  "CMakeFiles/barcode_scanner.dir/barcode_scanner.cpp.o.d"
  "barcode_scanner"
  "barcode_scanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barcode_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
