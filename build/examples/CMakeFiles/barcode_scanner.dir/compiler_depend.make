# Empty compiler generated dependencies file for barcode_scanner.
# This may be replaced when dependencies are built.
