file(REMOVE_RECURSE
  "CMakeFiles/chat_app.dir/chat_app.cpp.o"
  "CMakeFiles/chat_app.dir/chat_app.cpp.o.d"
  "chat_app"
  "chat_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chat_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
