# Empty dependencies file for chat_app.
# This may be replaced when dependencies are built.
