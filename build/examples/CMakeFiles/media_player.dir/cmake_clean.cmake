file(REMOVE_RECURSE
  "CMakeFiles/media_player.dir/media_player.cpp.o"
  "CMakeFiles/media_player.dir/media_player.cpp.o.d"
  "media_player"
  "media_player.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_player.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
