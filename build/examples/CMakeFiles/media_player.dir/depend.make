# Empty dependencies file for media_player.
# This may be replaced when dependencies are built.
