#!/usr/bin/env bash
# Daemon soak / chaos run: N concurrent mixed-dialect sessions against
# one asyncclockd under a memory budget small enough to force
# checkpoint evictions, plus one SIGKILL + restart with client resync,
# one poisoned session (interleaved dialect), and a SIGTERM drain.
# Every healthy session's report must be byte-identical to a
# single-shot `trace_analyzer analyze --streaming` over the same
# bytes, and the poisoned session must quarantine without touching a
# neighbor.
#
# Usage: ci/daemon_soak.sh <trace_analyzer-binary> [workdir]
set -eu

BIN=${1:?usage: daemon_soak.sh <trace_analyzer> [workdir]}
WORK=${2:-$(mktemp -d /tmp/daemon_soak.XXXXXX)}
SESSIONS=${SESSIONS:-32}
# Far below the hot working set of the looper sessions, comfortably
# above one session's residency: the LRU ladder must keep
# checkpointing cold sessions out without thrashing the ones making
# progress (resume replays the spool up to the skip point, so a
# budget below a single session's footprint degrades to quadratic
# replay).
MEM_BUDGET=${MEM_BUDGET:-64M}

mkdir -p "$WORK/state"
cd "$WORK"

fail() { echo "daemon_soak: FAIL: $*" >&2; exit 1; }

# ----- traces and single-shot baselines --------------------------------
echo "== generating traces + baselines"
"$BIN" gen Firefox looper_a.trace 0.15 >/dev/null
"$BIN" gen K9Mail looper_b.trace 0.2 >/dev/null
"$BIN" gen AsyncTree async_a.trace 2 >/dev/null
"$BIN" gen AsyncPipeline async_b.trace 2 >/dev/null
for t in looper_a looper_b async_a async_b; do
    "$BIN" analyze "$t.trace" --streaming \
        --report-out="$t.baseline" >/dev/null
done

trace_for() {  # session index -> trace stem (mixed dialects)
    case $(( $1 % 4 )) in
        0) echo looper_a ;;
        1) echo async_a ;;
        2) echo looper_b ;;
        *) echo async_b ;;
    esac
}

start_daemon() {
    "$BIN" daemon --port=0 --state-dir=state --workers=4 \
        --mem-budget="$MEM_BUDGET" --queue-chunks=4 \
        --events-out="$1" > daemon.out 2>&1 &
    DAEMON_PID=$!
    for _ in $(seq 1 100); do
        PORT=$(sed -n 's/.*127\.0\.0\.1:\([0-9]*\).*/\1/p' \
            daemon.out | head -1)
        [ -n "$PORT" ] && break
        sleep 0.1
    done
    [ -n "$PORT" ] || fail "daemon did not start: $(cat daemon.out)"
    echo "== daemon pid $DAEMON_PID on port $PORT"
}

# ----- phase 1: concurrent sessions under memory pressure --------------
start_daemon events1.jsonl

echo "== feeding $SESSIONS concurrent session(s)"
FEED_PIDS=""
# The fault-injected sessions are pinned to looper traces: their
# faults fire at specific 32 KiB chunk indices, and the async traces
# are small enough to fit in a single chunk (the fault would never
# trigger).
for i in $(seq 1 "$SESSIONS"); do
    t=$(trace_for "$i")
    if [ "$i" -eq 7 ]; then
        # Poisoned session: a valid looper start, then the async
        # dialect spliced in mid-stream. Must quarantine alone.
        "$BIN" feed looper_a.trace --port="$PORT" --session="sess$i" \
            --chunk-bytes=32768 --interleave-file=async_a.trace \
            --inject=sess-interleave=3 \
            > "feed$i.log" 2>&1 &
    elif [ "$i" -eq 9 ]; then
        # Session-level chaos that must NOT affect the report:
        # mid-body disconnect + duplicate create.
        "$BIN" feed looper_b.trace --port="$PORT" --session="sess$i" \
            --chunk-bytes=32768 --report-out="sess$i.report" \
            --inject=sess-disconnect=2,sess-dup=4 \
            > "feed$i.log" 2>&1 &
    elif [ "$i" -eq 11 ]; then
        # Left unfinished: survives the SIGKILL below and resyncs.
        "$BIN" feed looper_a.trace --port="$PORT" --session="sess$i" \
            --chunk-bytes=32768 --no-finish > "feed$i.log" 2>&1 &
        RESYNC_TRACE=looper_a
    else
        "$BIN" feed "$t.trace" --port="$PORT" --session="sess$i" \
            --chunk-bytes=32768 --report-out="sess$i.report" \
            > "feed$i.log" 2>&1 &
    fi
    FEED_PIDS="$FEED_PIDS $!"
done
FEED_FAILS=0
for pid in $FEED_PIDS; do
    wait "$pid" || FEED_FAILS=$((FEED_FAILS + 1))
done
# Exactly one feed is allowed to fail: the poisoned session exits 3.
[ "$FEED_FAILS" -le 1 ] || fail "$FEED_FAILS feed client(s) failed"

echo "== scrape endpoints"
curl -fsS "http://127.0.0.1:$PORT/healthz" | grep -q '"status":"ok"' \
    || fail "healthz"
curl -fsS "http://127.0.0.1:$PORT/metrics" > metrics1.txt
grep -q 'asyncclock_daemon_reports_total' metrics1.txt \
    || fail "metrics missing daemon counters"

EVICTIONS=$(sed -n \
    's/^asyncclock_daemon_evictions_total \([0-9]*\)$/\1/p' \
    metrics1.txt)
echo "== evictions so far: ${EVICTIONS:-0} (need >= 8)"
[ "${EVICTIONS:-0}" -ge 8 ] \
    || fail "mem budget forced only ${EVICTIONS:-0} eviction(s)"

# Poisoned session quarantined, neighbors untouched.
curl -fsS "http://127.0.0.1:$PORT/v1/sessions/sess7" \
    | grep -q '"state":"quarantined"' || fail "sess7 not quarantined"
grep -q "quarantined" feed7.log || fail "feed7 missed the 410"

# ----- phase 2: SIGKILL + restart + resync -----------------------------
echo "== SIGKILL daemon mid-flight (sess11 unfinished)"
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
start_daemon events2.jsonl

"$BIN" feed "$RESYNC_TRACE.trace" --port="$PORT" --session=sess11 \
    --chunk-bytes=32768 --report-out=sess11.report \
    > feed11b.log 2>&1
grep -q "rejoining sess11" feed11b.log \
    || fail "client did not resync after restart"
# Quarantine must survive the restart too.
curl -fsS "http://127.0.0.1:$PORT/v1/sessions/sess7" \
    | grep -q '"state":"quarantined"' \
    || fail "sess7 quarantine lost across restart"

# ----- verdict: byte-identity for every healthy session ----------------
echo "== diffing reports against single-shot baselines"
for i in $(seq 1 "$SESSIONS"); do
    [ "$i" -eq 7 ] && continue  # poisoned by design
    case $i in
        9) t=looper_b ;;
        11) t=looper_a ;;
        *) t=$(trace_for "$i") ;;
    esac
    cmp "sess$i.report" "$t.baseline" \
        || fail "sess$i report differs from single-shot baseline"
done
echo "== all $((SESSIONS - 1)) healthy reports byte-identical"

# ----- phase 3: graceful drain -----------------------------------------
echo "== SIGTERM drain"
kill -TERM "$DAEMON_PID"
DRAIN_RC=0
wait "$DAEMON_PID" || DRAIN_RC=$?
[ "$DRAIN_RC" -eq 0 ] || fail "drain exited $DRAIN_RC"
grep -q "drained; exiting" daemon.out || fail "no drain message"

echo "daemon_soak: PASS ($SESSIONS sessions, ${EVICTIONS} evictions,"\
     "1 quarantine, 1 SIGKILL+resync, clean drain)"
