/**
 * @file
 * Quickstart: model a tiny event-driven app, run the AsyncClock race
 * detector on its trace, and print the report.
 *
 * The app is a classic Android shape: a button handler on the main
 * looper kicks off a background fetch on a worker thread; the worker
 * posts the result back to the main looper. One of the two result
 * paths forgets to synchronize — AsyncClock finds the race.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/detector.hh"
#include "report/fasttrack.hh"
#include "report/races.hh"
#include "runtime/runtime.hh"

using namespace asyncclock;

int
main()
{
    // ---- 1. Model the app on the simulated runtime -----------------
    runtime::Runtime rt;
    auto mainQueue = rt.addLooper("main");

    // Shared state: the fetched document and a "loading" spinner flag.
    auto document = rt.var("document");
    auto spinner = rt.var("spinner");
    auto done = rt.handle("fetch.done");

    auto clickSite = rt.site("MainActivity.onClick", trace::Frame::User);
    auto fetchSite = rt.site("FetchTask.run", trace::Frame::User);
    auto drawSite = rt.site("MainActivity.onDraw", trace::Frame::User);

    auto fetchTok = rt.token();
    // Button click: show the spinner, start the fetch, and - the good
    // path - post the UI update only after joining the worker.
    runtime::Script goodUpdate;
    goodUpdate.read(document, drawSite).write(spinner, clickSite);
    runtime::Script onClick;
    onClick.write(spinner, clickSite)
        .fork(fetchTok, "fetch",
              runtime::Script()
                  .sleep(120)
                  .write(document, fetchSite)
                  .signal(done))
        .join(fetchTok)
        .post(mainQueue, goodUpdate);
    rt.spawnWorker("input",
                   runtime::Script().post(mainQueue, onClick));

    // A second, buggy path: a periodic refresh reads the document
    // without waiting for the fetch (no join, no handle) — a harmful
    // order violation just like the paper's BarcodeScanner bug.
    rt.spawnWorker("refresh-timer",
                   runtime::Script().sleep(50).post(
                       mainQueue,
                       runtime::Script().read(document, drawSite)));

    // ---- 2. Execute and collect the trace --------------------------
    trace::Trace tr = rt.run();
    std::printf("trace: %s\n", tr.stats().summary().c_str());

    // ---- 3. Analyze with AsyncClock --------------------------------
    report::FastTrackChecker checker;
    core::DetectorConfig cfg;  // defaults: 2-min window, FIFO chains
    core::AsyncClockDetector detector(tr, checker, cfg);
    detector.runAll();

    std::printf("events analyzed: %llu, chains: %u, live metadata at "
                "end: %llu events\n",
                (unsigned long long)detector.counters().eventsSeen,
                detector.numChains(),
                (unsigned long long)detector.counters().eventsLive);

    // ---- 4. Report ---------------------------------------------------
    report::RaceAnalyzer analyzer(tr);
    report::ReportSummary summary = analyzer.analyze(checker.races());
    std::printf("%s\n", summary.summary().c_str());
    for (const auto &group : summary.reported)
        std::printf("  %s\n", analyzer.describe(group).c_str());

    // The buggy refresh path races on `document`; the good path is
    // ordered through fork/join + the FIFO rule.
    return summary.reported.empty() ? 1 : 0;
}
