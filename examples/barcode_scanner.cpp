/**
 * @file
 * BarcodeScanner case study (paper sections 7.7 and Fig 9b).
 *
 * Reproduces two things from the paper's BarcodeScanner findings:
 *
 *  1. The harmful race: CameraManager is initialized in the onResume
 *     event and used in surfaceCreated, which *usually* arrives later
 *     — but the order is not guaranteed by Android, so the use can
 *     see a stale manager. AsyncClock reports it.
 *
 *  2. The Fig 9b event pattern — chains of input events posting
 *     AtTime events with distinct time constraints — which makes the
 *     EventRacer baseline's backward graph traversal walk the whole
 *     input chain per event, while AsyncClock's async-before lists
 *     stay O(1) per event. The example runs both detectors and prints
 *     their traversal/walk counters side by side.
 *
 * Run: ./build/examples/barcode_scanner [inputEvents]
 */

#include <cstdio>
#include <cstdlib>

#include "core/detector.hh"
#include "graph/eventracer.hh"
#include "report/fasttrack.hh"
#include "report/races.hh"
#include "runtime/runtime.hh"
#include "workload/workload.hh"

using namespace asyncclock;

namespace {

/** The onResume / surfaceCreated order-violation bug. */
trace::Trace
makeBuggyLifecycleTrace()
{
    runtime::Runtime rt;
    auto mainQueue = rt.addLooper("main");
    auto cameraMgr = rt.var("CameraManager");
    auto resumeSite =
        rt.site("CaptureActivity.onResume", trace::Frame::User);
    auto surfaceSite =
        rt.site("CaptureActivity.surfaceCreated", trace::Frame::User);

    // The activity lifecycle posts onResume; the SurfaceHolder
    // callback arrives from a different source (the system), with no
    // ordering between the two sends.
    rt.spawnWorker("lifecycle",
                   runtime::Script().post(
                       mainQueue, runtime::Script().write(cameraMgr,
                                                          resumeSite)));
    rt.spawnWorker("surface-holder",
                   runtime::Script().sleep(3).post(
                       mainQueue, runtime::Script().read(
                                      cameraMgr, surfaceSite)));
    return rt.run();
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned inputs = argc > 1 ? static_cast<unsigned>(
                                     std::strtoul(argv[1], nullptr, 10))
                               : 150;

    // ---- Part 1: the harmful lifecycle race -------------------------
    std::printf("== onResume / surfaceCreated order violation ==\n");
    trace::Trace buggy = makeBuggyLifecycleTrace();
    report::FastTrackChecker checker;
    core::AsyncClockDetector det(buggy, checker, {});
    det.runAll();
    report::RaceAnalyzer analyzer(buggy);
    auto summary = analyzer.analyze(checker.races());
    for (const auto &group : summary.reported)
        std::printf("  %s\n", analyzer.describe(group).c_str());
    if (summary.reported.empty())
        std::printf("  (no races found — unexpected!)\n");

    // ---- Part 2: the Fig 9b scaling pattern -------------------------
    std::printf("\n== Fig 9b input-event chain, %u input events ==\n",
                inputs);
    trace::Trace pattern = workload::barcodePattern(inputs);

    report::FastTrackChecker ftAc;
    core::DetectorConfig cfg;
    cfg.windowMs = 0;  // isolate the algorithmic effect
    core::AsyncClockDetector ac(pattern, ftAc, cfg);
    ac.runAll();

    report::FastTrackChecker ftEr;
    graph::EventRacerDetector er(pattern, ftEr);
    er.runAll();

    std::printf("  %-22s %12s %14s\n", "", "AsyncClock", "EventRacer");
    std::printf("  %-22s %12llu %14llu\n", "predecessor-search steps",
                (unsigned long long)ac.counters().walkSteps,
                (unsigned long long)er.counters().traversalVisits);
    std::printf("  %-22s %12llu %14llu\n", "metadata bytes",
                (unsigned long long)ac.metadataBytes(),
                (unsigned long long)er.metadataBytes());
    std::printf("\nEventRacer's traversal visits grow quadratically "
                "with the chain length;\nAsyncClock's async-before "
                "walks stay near-linear (early stopping).\n");
    return 0;
}
