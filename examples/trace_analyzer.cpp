/**
 * @file
 * End-to-end command-line tool mirroring the paper's workflow:
 * record a trace (here: synthesize one from a Table 2 app profile, or
 * load one from a file), then analyze it offline with AsyncClock or
 * the EventRacer-style baseline and print the race report and
 * resource usage.
 *
 * Usage:
 *   trace_analyzer gen <AppName> <out.trace> [scale] [--binary]
 *   trace_analyzer analyze <in.trace> [--detector=asyncclock|eventracer]
 *                  [--window-ms=N] [--chains=fifo|greedy]
 *                  [--no-reclaim] [--all-races]
 *                  [--streaming] [--shards=N]
 *                  [--progress[=N]] [--trace-out=PATH]
 *                  [--metrics-out=PATH]
 *
 * analyze auto-detects text vs binary traces by magic. --streaming
 * feeds the detector from the file without materializing the op
 * vector (O(1) trace memory); --shards=N fans the race checks out to
 * N parallel FastTrack shards.
 *
 * Observability (all off by default, near-zero cost when off):
 * --progress prints a heartbeat line to stderr every N ops (default
 * 100000); --trace-out writes a Chrome trace-event JSON file of the
 * run's phases (load in Perfetto / chrome://tracing); --metrics-out
 * writes the end-of-run metrics snapshot as JSON.
 *
 * Example:
 *   ./build/examples/trace_analyzer gen Firefox /tmp/firefox.trace 0.02
 *   ./build/examples/trace_analyzer analyze /tmp/firefox.trace \
 *       --streaming --shards=4
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/detector.hh"
#include "graph/eventracer.hh"
#include "obs/obs.hh"
#include "obs/progress.hh"
#include "report/export.hh"
#include "report/fasttrack.hh"
#include "report/races.hh"
#include "report/sharded.hh"
#include "support/format.hh"
#include "trace/trace_io.hh"
#include "workload/workload.hh"

using namespace asyncclock;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  trace_analyzer gen <AppName> <out.trace> [scale] [--binary]\n"
        "  trace_analyzer analyze <in.trace> [options]\n"
        "options:\n"
        "  --detector=asyncclock|eventracer   (default asyncclock)\n"
        "  --window-ms=N    time window, 0 = off (default 120000)\n"
        "  --chains=fifo|greedy               (default fifo)\n"
        "  --no-reclaim     disable heirless-event reclamation\n"
        "  --all-races      disable the user-induced and\n"
        "                   commutativity filters\n"
        "  --streaming      stream the trace from the file instead\n"
        "                   of materializing the operation vector\n"
        "  --shards=N       check races on N parallel shards\n"
        "  --json           print the report as JSON (materialized\n"
        "                   mode only)\n"
        "  --progress[=N]   heartbeat line on stderr every N ops\n"
        "                   (default 100000)\n"
        "  --trace-out=PATH write Chrome trace-event JSON (Perfetto)\n"
        "  --metrics-out=PATH write end-of-run metrics JSON\n");
    return 2;
}

/** Write @p data to @p path, fatal() on failure. */
void
writeTextFile(const std::string &path, const std::string &data)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("cannot open " + path + " for writing");
    if (std::fwrite(data.data(), 1, data.size(), f) != data.size() ||
        std::fclose(f) != 0)
        fatal("short write to " + path);
}

int
cmdGen(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    bool binary = false;
    double scale = 0.05;
    for (int i = 4; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--binary")
            binary = true;
        else
            scale = std::strtod(arg.c_str(), nullptr);
    }
    workload::AppProfile profile =
        workload::profileByName(argv[2], scale);
    std::printf("generating %s at scale %.3f (~%u looper events)...\n",
                profile.name.c_str(), scale, profile.looperEvents);
    workload::GeneratedApp app = workload::generateApp(profile);
    std::string problem = app.trace.validate(true);
    if (!problem.empty())
        fatal("generated trace invalid: " + problem);
    if (binary)
        trace::saveBinaryTraceFile(app.trace, argv[3]);
    else
        trace::saveTraceFile(app.trace, argv[3]);
    std::printf("wrote %s (%s): %s\n", argv[3],
                binary ? "binary" : "text",
                app.trace.stats().summary().c_str());
    return 0;
}

int
cmdAnalyze(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    std::string detectorName = "asyncclock";
    core::DetectorConfig cfg;
    report::FilterConfig filters;
    bool json = false;
    bool streaming = false;
    unsigned shards = 0;
    std::uint64_t progressEvery = 0;
    std::string traceOut;
    std::string metricsOut;
    for (int i = 3; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--detector=", 0) == 0) {
            detectorName = arg.substr(11);
        } else if (arg.rfind("--window-ms=", 0) == 0) {
            cfg.windowMs = std::strtoull(arg.c_str() + 12, nullptr, 10);
        } else if (arg == "--chains=greedy") {
            cfg.chainMode = core::ChainMode::Greedy;
        } else if (arg == "--chains=fifo") {
            cfg.chainMode = core::ChainMode::Fifo;
        } else if (arg == "--no-reclaim") {
            cfg.reclaimHeirless = false;
            cfg.multiPathReduction = false;
        } else if (arg == "--all-races") {
            filters.userInducedOnly = false;
            filters.commutativityFilter = false;
        } else if (arg == "--streaming") {
            streaming = true;
        } else if (arg.rfind("--shards=", 0) == 0) {
            shards = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 9, nullptr, 10));
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--progress") {
            progressEvery = 100000;
        } else if (arg.rfind("--progress=", 0) == 0) {
            progressEvery =
                std::strtoull(arg.c_str() + 11, nullptr, 10);
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            traceOut = arg.substr(12);
        } else if (arg.rfind("--metrics-out=", 0) == 0) {
            metricsOut = arg.substr(14);
        } else {
            return usage();
        }
    }
    if (json && streaming) {
        std::fprintf(stderr,
                     "--json requires materialized mode\n");
        return 2;
    }

    // Observability: a registry iff --metrics-out, a tracer iff
    // --trace-out. Both must outlive the detector and checker (their
    // snapshot callbacks read into those objects), so they live here
    // and everything below holds nullable pointers.
    obs::MetricsRegistry registry;
    obs::Tracer tracer;
    obs::ObsContext octx;
    if (!metricsOut.empty())
        octx.metrics = &registry;
    if (!traceOut.empty())
        octx.tracer = &tracer;

    std::unique_ptr<report::AccessChecker> checker;
    report::ShardedChecker *sharded = nullptr;
    if (shards > 0) {
        report::ShardedConfig scfg;
        scfg.shards = shards;
        scfg.obs = octx;
        auto owned = std::make_unique<report::ShardedChecker>(scfg);
        sharded = owned.get();
        checker = std::move(owned);
    } else {
        checker = std::make_unique<report::FastTrackChecker>();
    }

    trace::Trace tr;            // materialized mode only
    trace::OpenedSource opened; // streaming mode only
    std::unique_ptr<report::Detector> detector;
    bool binary = trace::isBinaryTraceFile(argv[2]);
    if (streaming) {
        opened = trace::openTraceSource(argv[2]);
        std::printf("streaming %s (%s format)\n", argv[2],
                    binary ? "binary" : "text");
    } else {
        tr = binary ? trace::loadBinaryTraceFile(argv[2])
                    : trace::loadTraceFile(argv[2]);
        std::printf("loaded %s: %s\n", argv[2],
                    tr.stats().summary().c_str());
    }
    if (detectorName == "asyncclock") {
        auto ac = streaming
                      ? std::make_unique<core::AsyncClockDetector>(
                            *opened.source, *checker, cfg)
                      : std::make_unique<core::AsyncClockDetector>(
                            tr, *checker, cfg);
        ac->attachObs(octx);
        detector = std::move(ac);
    } else if (detectorName == "eventracer") {
        detector =
            streaming
                ? std::make_unique<graph::EventRacerDetector>(
                      *opened.source, *checker,
                      graph::EventRacerConfig{})
                : std::make_unique<graph::EventRacerDetector>(
                      tr, *checker, graph::EventRacerConfig{});
    } else {
        return usage();
    }

    MemStats mem;
    if (octx.metrics) {
        obs::registerMemStats(*octx.metrics, mem);
        octx.metrics->counterFn("run.ops_processed",
                                [&d = *detector] {
                                    return d.opsProcessed();
                                });
    }
    obs::ProgressMeter meter(progressEvery);
    auto start = std::chrono::steady_clock::now();
    std::uint64_t n = 0;
    while (detector->processNext()) {
        if ((++n % 1024) == 0)
            detector->sampleMemory(mem);
        if (meter.due(n)) {
            detector->sampleMemory(mem);
            obs::ProgressSample s;
            s.ops = n;
            s.liveBytes = mem.liveTotal();
            s.peakBytes = mem.peakTotal();
            s.races = checker->racesFound();
            if (sharded)
                s.queueDepths = sharded->queueDepths();
            meter.report(s);
        }
    }
    detector->sampleMemory(mem);
    if (sharded)
        sharded->drain();
    auto elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    if (octx.metrics)
        octx.metrics->gauge("run.elapsed_us")
            .set(static_cast<std::int64_t>(elapsed * 1e6));
    if (streaming && !opened.source->ok())
        fatal("trace stream failed: " + opened.source->error());

    std::printf("\nanalysis (%s%s): %.3fs, peak metadata %s\n",
                detectorName.c_str(),
                shards > 0 ? strf(", %u shards", shards).c_str() : "",
                elapsed, humanBytes(mem.peakTotal()).c_str());
    std::printf("%s", mem.summary().c_str());

    report::RaceAnalyzer analyzer =
        streaming ? report::RaceAnalyzer(opened.source->meta())
                  : report::RaceAnalyzer(tr);
    report::ReportSummary summary = [&] {
        obs::ScopedSpan span(octx.tracer, obs::kMainTrack,
                             "report_export");
        return analyzer.analyze(checker->races(), filters);
    }();

    if (!traceOut.empty()) {
        tracer.writeFile(traceOut);
        std::printf("wrote trace events to %s\n", traceOut.c_str());
    }
    if (!metricsOut.empty()) {
        writeTextFile(metricsOut, registry.snapshot().toJson());
        std::printf("wrote metrics to %s\n", metricsOut.c_str());
    }

    if (json) {
        std::printf("%s\n", report::toJson(summary, tr).c_str());
        return 0;
    }
    std::printf("\n%s\n", summary.summary().c_str());
    for (const auto &group : summary.reported)
        std::printf("  %s\n", analyzer.describe(group).c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    if (std::strcmp(argv[1], "gen") == 0)
        return cmdGen(argc, argv);
    if (std::strcmp(argv[1], "analyze") == 0)
        return cmdAnalyze(argc, argv);
    return usage();
}
